//! # pap — arrival-pattern-aware MPI collective algorithm selection
//!
//! Meta-crate re-exporting the full toolkit built for the reproduction of
//! *"MPI Collective Algorithm Selection in the Presence of Process Arrival
//! Patterns"* (Salimi Beni, Cosenza, Hunold — IEEE CLUSTER 2024).
//!
//! The workspace layers, bottom-up:
//!
//! * [`sim`] — discrete-event cluster/MPI simulator (SimGrid/SMPI substitute)
//! * [`collectives`] — the collective algorithms of Open MPI/SMPI as message
//!   schedules with verified dataflow
//! * [`arrival`] — artificial & measured process arrival patterns
//! * [`clocksync`] — drifting clocks, HCA3-style synchronization, harmonized
//!   starts
//! * [`parallel`] — deterministic ordered fan-out over OS threads
//!   (`PAP_THREADS` / `--threads`)
//! * [`tracer`] — collective tracing (PMPI-substitute)
//! * [`microbench`] — ReproMPI-style micro-benchmark harness with pattern
//!   injection
//! * [`model`] — closed-form LogGP-style cost models: the analytical
//!   prediction backend (`--backend model`), cross-validated against the
//!   simulator by the differential test suite
//! * [`apps`] — NAS-FT proxy and other mini-apps
//! * [`core`] — the paper's contribution: robustness analysis and
//!   arrival-aware algorithm selection
//! * [`calibrate`] — online platform calibration (`papctl calibrate`):
//!   fit LogGP/eager/rendezvous parameters from a measured probe and
//!   onboard machines the toolkit has never seen
//! * [`obs`] — low-overhead observability: atomic-gated span tracing,
//!   unified metrics registry, Perfetto (Chrome Trace Event) export
//!   (`papctl profile`, `--metrics`)
//! * [`lint`] — zero-execution static schedule verifier (`papctl lint`):
//!   message matching, deadlock/protocol-fragility, tag conflicts, request
//!   lifecycle, slot dataflow
//! * [`service`] — `papd`, the online selection daemon (`papctl serve` /
//!   `papctl query`): tiered caching over precomputed tuning evidence,
//!   arrival-sample classification, background sim refinement
//! * [`sysio`] — std-only OS plumbing for the serving tier: epoll
//!   readiness polling, signal-driven shutdown flags, fd-limit control
//! * [`fleet`] — sharded serving tier (`papctl fleet …`): consistent-hash
//!   routing, warm shard-to-shard replication, event-driven nodes
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pap_apps as apps;
pub use pap_arrival as arrival;
pub use pap_calibrate as calibrate;
pub use pap_clocksync as clocksync;
pub use pap_collectives as collectives;
pub use pap_core as core;
pub use pap_fleet as fleet;
pub use pap_lint as lint;
pub use pap_microbench as microbench;
pub use pap_model as model;
pub use pap_obs as obs;
pub use pap_parallel as parallel;
pub use pap_service as service;
pub use pap_sim as sim;
pub use pap_sysio as sysio;
pub use pap_tracer as tracer;
