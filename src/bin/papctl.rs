//! `papctl` — command-line front end to the toolkit.
//!
//! ```text
//! papctl machines
//! papctl algorithms [collective]
//! papctl pattern <shape> <ranks> <skew_us> [--seed N]
//! papctl bench <machine> <collective> <alg> <bytes> [--ranks N] [--shape S] [--skew-us X] [--nrep N] [--backend B]
//! papctl sweep <machine> <collective> <bytes> [--ranks N] [--nrep N] [--backend B] [--json]
//!              [--faults] [--max-degradation X]
//! papctl tune  <machine> [--ranks N] [--nrep N] [--backend B] [--out FILE] [--faults]
//! papctl serve [--addr A] [--snapshot F] [--backend B] [--threads N] [--machine M]
//!              [--ranks N] [--policy P] [--l1 N] [--refine-threads N] [--no-tune]
//! papctl query <machine> <collective> <bytes> --addr HOST:PORT [--ranks N]
//!              [--arrivals d0,d1,…] [--json]
//! papctl query --addr HOST:PORT {--stats|--metrics|--ping|--shutdown}
//! papctl calibrate {--from <preset> | --probe-json FILE} [--name N] [--ranks N]
//!                  [--reps N] [--no-noise] [--out FILE] [--check] [--json]
//!                  [--addr HOST:PORT]
//! papctl fleet serve [--shards N] [serve flags]
//! papctl fleet query <machine> <collective> <bytes> --addrs A1,A2,… [--ranks N] [--json]
//! papctl fleet stats --addrs A1,A2,… [--json]
//! papctl fleet shutdown --addrs A1,A2,…
//! papctl profile <collective> [--pattern S] [--machine M] [--ranks N] [--bytes B]
//!                [--alg A] [--skew-us X] [--seed N] [--out FILE] [--check]
//!                [--fault SPEC]
//! papctl ft    <machine> [--ranks N] [--alg A] [--iters N]
//! papctl trace <machine> [--ranks N]                       # FT pattern in file format
//! papctl lint  [--json] [--ranks 8,12,32] [--eager BYTES]  # static registry sweep
//! papctl lint --faults [--json] [--ranks 8,12,32] [--eager BYTES]
//! papctl repair <collective> <alg> --fault crash:R [--ranks N] [--bytes B]
//!               [--root R] [--eager BYTES] [--seg-bytes BYTES]
//! ```
//!
//! All commands accept `--threads N` to bound the parallel fan-out
//! (default: `PAP_THREADS` env, else all cores; 1 forces sequential).
//! `bench`/`sweep`/`tune` accept `--backend {sim,model}`: `sim` (default)
//! resolves every cell through the event-driven simulator, `model` through
//! the closed-form analytical cost models of `pap-model` (orders of
//! magnitude faster; cross-validated by the differential test suite).
//!
//! `profile` renders one simulated collective run under an arrival pattern
//! as a Perfetto-loadable Chrome Trace Event file (open in
//! <https://ui.perfetto.dev>): one lane per rank, arrival→exit spans, and a
//! flow arrow per point-to-point message. `bench`/`sweep`/`tune`/`profile`
//! accept `--metrics`, which enables span recording and prints the
//! process-global metrics snapshot to stderr on exit; `query --metrics`
//! fetches the same snapshot from a running daemon.
//!
//! `tune --out FILE` writes the full evidence snapshot (decisions + their
//! benchmark matrices) in the format `papctl serve --snapshot FILE` loads
//! for a warm restart. `serve` runs `papd`, the online selection daemon;
//! `query` is the reference protocol client (see `pap-service`).

use std::process::ExitCode;
use std::str::FromStr;

use pap::apps::{run_ft, FtConfig};
use pap::arrival::{generate, render_pattern_file, Shape};
use pap::collectives::registry::{algorithms, experiment_ids};
use pap::collectives::{CollSpec, CollectiveKind};
use pap::core::report::render_normalized_table;
use pap::core::{
    render_fault_table, select, select_fault_robust, tune_machine, BenchMatrix, FaultMatrix,
    SelectionPolicy, TunePlan,
};
use pap::lint::{
    certified_repair, crash_cone, sweep_faults, sweep_registry, CrashPoint, FaultSweepConfig,
    LintConfig, RepairVerdict, SweepConfig,
};
use pap::microbench::{
    calibrate_avg_runtime, fault_sweep, measure, profile_with_faults, standard_grid, sweep,
    Backend, BenchConfig, SkewPolicy,
};
use pap::calibrate::{fit_probe, selection_agreement, synthesize_probe, Probe, ProbeConfig, CHECK_RANKS};
use pap::service::{
    measure_fault_matrix, Client, DefaultPolicy, QueryRequest, ServeConfig, Server, Snapshot,
};
use pap::sim::{
    register_custom_platform, run_ref, FaultSpec, Job, MachineId, Platform, RankProgram, SimConfig,
    SimError,
};
use pap::tracer::{ideal_observer, CollectiveTrace, TracerConfig};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if it.peek().is_some_and(|n| !n.starts_with("--")) { it.next() } else { None };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag<T: FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn pos(&self, i: usize) -> Result<&str, String> {
        self.positional.get(i).map(String::as_str).ok_or_else(|| "missing argument".to_string())
    }

    /// The value of `--name`, if the flag was given with one.
    fn opt(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--name` was given at all (with or without a value).
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    }
    // Parse flags before picking the command so the global `--threads` flag
    // may appear anywhere: `papctl --threads 2 sweep …` and
    // `papctl sweep … --threads 2` both work.
    let mut args = Args::parse(raw);
    if args.positional.is_empty() {
        if args.flags.iter().any(|(n, _)| n == "help") {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    }
    let cmd = args.positional.remove(0);
    // Global knob: worker threads for the sweep/tune fan-out. 0 keeps the
    // default (PAP_THREADS env, else all cores); 1 forces sequential runs.
    let threads = args.flag("threads", 0usize);
    if threads > 0 {
        pap::parallel::set_threads(threads);
    }
    // `--metrics` on a local measurement command: enable span recording for
    // the run and print the process-global metrics snapshot on the way out.
    // (`query --metrics` is a daemon endpoint instead; see cmd_query.)
    let local_metrics =
        args.has("metrics") && matches!(cmd.as_str(), "bench" | "sweep" | "tune" | "profile");
    if local_metrics {
        pap::obs::set_enabled(true);
    }
    let result = match cmd.as_str() {
        "machines" => machines(),
        "algorithms" => cmd_algorithms(&args),
        "pattern" => cmd_pattern(&args),
        "bench" => cmd_bench(&args),
        "sweep" => cmd_sweep(&args),
        "tune" => cmd_tune(&args),
        "profile" => cmd_profile(&args),
        "serve" => cmd_serve(&args),
        "fleet" => cmd_fleet(&args),
        "query" => cmd_query(&args),
        "calibrate" => cmd_calibrate(&args),
        "ft" => cmd_ft(&args),
        "trace" => cmd_trace(&args),
        "lint" => cmd_lint(&args),
        "repair" => cmd_repair(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    if local_metrics {
        eprint!("{}", pap::obs::global().snapshot().render_table());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("papctl: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: papctl <machines|algorithms|pattern|bench|sweep|tune|profile|serve|fleet|query|calibrate|ft|trace|lint|repair|help> …
global flags: --threads N   worker threads for sweep/tune fan-out
                            (default: PAP_THREADS env, else all cores; 1 = sequential);
                            for `serve`, also the connection-pool size
bench/sweep/tune flags: --backend {sim,model}
                            sim   = event-driven simulator (default)
                            model = closed-form analytical LogGP models
bench/sweep/tune/profile:
             --metrics      record spans and print the metrics snapshot to
                            stderr when the command finishes
sweep flags: --json         print the benchmark matrix as JSON instead of the table
             --faults       sweep the standard runtime-fault grid instead of
                            arrival patterns (sim backend only): stalls, link
                            slowdowns, noise storms, a leaf crash
             --max-degradation X  worst-case degradation bound for the
                            fault-robust pick (default 1.0 = at most 2x slower)
tune flags: --out FILE      also write the evidence snapshot (decisions + matrices)
                            that `papctl serve --snapshot FILE` warm-starts from
            --faults        also measure the standard fault grid per cell and
                            persist it in the snapshot (needs --out), so a
                            warm-restarted `papd --policy fault_robust` serves
                            without lazy fault re-measurement
serve flags: --addr A       listen address (default 127.0.0.1:0 = ephemeral port)
             --snapshot F   warm-start L2 from FILE instead of tuning at startup
             --backend B    backend for startup tuning and cold cells (default model)
             --machine M    machine preset to pre-tune (default simcluster)
             --ranks N      rank count to pre-tune (default 16)
             --policy P     default policy for sample-less queries
                            (robust | no_delay_fastest | fault_robust[:BOUND];
                            default robust)
             --l1 N         L1 answer-cache capacity (default 1024; 0 disables)
             --refine-threads N  background sim-refinement workers (default 1; 0 disables)
             --no-tune      start with an empty L2 (every cell computed on demand)
query flags: --addr A       daemon address (required; printed by `papctl serve`)
             --ranks N      rank count (default 16)
             --arrivals CSV per-rank arrival samples, e.g. 0,0.2,1.5e-3
             --json         print the raw answer/stats JSON
             --stats | --metrics | --ping | --shutdown   control endpoints (no positionals)
calibrate flags: --from M    synthesize the probe from preset M (treated as the
                            machine under test; noise and clock skew enabled)
             --probe-json F  load a measured probe from FILE instead
             --name N        register the fit as custom:N
                            (default: fit-<preset>, or the probe's own name)
             --ranks N       rank count the daemon pre-tunes at (with --addr)
             --reps N        probe repetitions per point (default 7)
             --no-noise      synthesize without the preset's noise model
             --out FILE      write the full fit report (parameters + residuals) as JSON
             --check         closed-loop validation: compare selection fitted-vs-true
                            over the Fig. 4 grid (needs --from)
             --addr A        send the probe to a running papd (it fits, registers
                            custom:N, and publishes a model-backed L2 grid)
fleet:       serve [--shards N] [serve flags]  N event-driven shards; shard 0
                            seeds per the serve flags, the rest warm-replicate
                            its L2 evidence over the wire before accepting
             query/stats/shutdown --addrs A1,A2,…  consistent-hash routed
                            client over the shard list `fleet serve` printed
                            (query retries transport failures and fails over;
                            stats aggregates every live shard)
profile flags: --pattern S  arrival-pattern shape (default imbalanced-linear,
                            an alias for ascending; hyphens ≡ underscores)
             --machine M    machine preset (default simcluster)
             --ranks N      rank count (default 16)
             --bytes B      message size (default 1024)
             --alg A        algorithm id (default: first experiment id)
             --skew-us X    max skew; default 1.5x the algorithm's
                            undelayed runtime
             --out FILE     trace file (default trace.json; open in Perfetto)
             --check        re-read and validate the written trace
             --fault SPEC   inject runtime faults; ;-separated clauses of
                            stall:R@T+D  crash:R@T  link:S-D@F..U*X
                            storm:R0-R1@F..U*X  (times take us/ms/s suffixes,
                            e.g. 'stall:0@1ms+500us;crash:7@2ms')
lint flags: --json          machine-readable SweepSummary document
            --ranks A,B,C   rank counts to sweep (default 8,12,32)
            --eager BYTES   eager threshold for the protocol analysis (default 16384)
            --faults        fault-cone mode: per-rank entry crash cones,
                            blast-radius aggregates, and a certified repair of
                            each case's worst crash (static; fails if any
                            rewrite does not re-verify)
repair flags: --fault crash:R  the rank to route around (required)
            --ranks N       rank count (default 8)
            --bytes B       message size (default 1024)
            --root R        collective root (default 0)
            --eager BYTES   eager threshold (default 16384)
            --seg-bytes B   segment size for segmented algorithms
run `papctl help` or see the module docs for argument details";

fn machines() -> Result<(), String> {
    println!("machine      nodes  cores/node  inter-bw[GB/s]  inter-lat[us]  eager[B]");
    for id in MachineId::ALL {
        let p = Platform::preset(id, 1);
        println!(
            "{:<12} {:>5}  {:>10}  {:>14.1}  {:>13.2}  {:>8}",
            id.name(),
            p.nodes,
            p.cores_per_node,
            p.inter.bandwidth / 1e9,
            p.inter.latency * 1e6,
            p.eager_threshold
        );
    }
    Ok(())
}

fn cmd_algorithms(args: &Args) -> Result<(), String> {
    let kinds: Vec<CollectiveKind> = match args.positional.first() {
        Some(k) => vec![k.parse()?],
        None => vec![
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Alltoall,
            CollectiveKind::Allgather,
            CollectiveKind::Bcast,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
            CollectiveKind::Barrier,
        ],
    };
    for kind in kinds {
        println!("{kind}:");
        for a in algorithms(kind) {
            println!(
                "  {} {} ({}){}",
                a.id,
                a.name,
                a.abbrev,
                a.smpi_alias.map(|s| format!(" smpi:{s}")).unwrap_or_default()
            );
        }
    }
    Ok(())
}

fn cmd_pattern(args: &Args) -> Result<(), String> {
    let shape: Shape = args.pos(0)?.parse()?;
    let p: usize = args.pos(1)?.parse().map_err(|_| "ranks must be a number")?;
    let skew_us: f64 = args.pos(2)?.parse().map_err(|_| "skew_us must be a number")?;
    let seed = args.flag("seed", 1u64);
    let pat = generate(shape, p, skew_us * 1e-6, seed);
    print!("{}", render_pattern_file(&pat));
    Ok(())
}

fn platform_from(args: &Args, machine_pos: usize) -> Result<Platform, String> {
    let machine: MachineId = args.pos(machine_pos)?.parse()?;
    let ranks = args.flag("ranks", 64usize);
    Ok(Platform::preset(machine, ranks))
}

/// The measurement configuration for a machine, honoring `--backend`.
fn bench_config(args: &Args, platform: &Platform, nrep: usize) -> Result<BenchConfig, String> {
    let backend: Backend = match args.flags.iter().find(|(n, _)| n == "backend") {
        Some((_, Some(v))) => v.parse()?,
        Some((_, None)) => return Err("--backend needs a value (sim|model)".to_string()),
        None => Backend::Sim,
    };
    let cfg = if platform.machine == MachineId::SimCluster {
        BenchConfig::simulation()
    } else {
        BenchConfig::real_machine(nrep)
    };
    Ok(cfg.with_backend(backend))
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let platform = platform_from(args, 0)?;
    let kind: CollectiveKind = args.pos(1)?.parse()?;
    let alg: u8 = args.pos(2)?.parse().map_err(|_| "alg must be a number")?;
    let bytes: u64 = args.pos(3)?.parse().map_err(|_| "bytes must be a number")?;
    let shape: Shape = args.flag("shape", "no_delay".to_string()).parse()?;
    let skew_us: f64 = args.flag("skew-us", 0.0);
    let nrep = args.flag("nrep", 3usize);

    let pattern = generate(shape, platform.ranks, skew_us * 1e-6, args.flag("seed", 1u64));
    let cfg = bench_config(args, &platform, nrep)?;
    let spec = CollSpec::new(kind, alg, bytes);
    let stats = measure(&platform, &spec, &pattern, &cfg).map_err(|e| e.to_string())?;
    println!(
        "{} A{alg} {bytes} B on {} ({} ranks), pattern {}: d̂ mean {:.3} ms (min {:.3}, max {:.3}); d* mean {:.3} ms",
        kind,
        platform.machine,
        platform.ranks,
        pattern.name,
        stats.mean_last() * 1e3,
        stats.min_last() * 1e3,
        stats.max_last() * 1e3,
        stats.mean_total() * 1e3,
    );
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let platform = platform_from(args, 0)?;
    let kind: CollectiveKind = args.pos(1)?.parse()?;
    let bytes: u64 = args.pos(2)?.parse().map_err(|_| "bytes must be a number")?;
    let nrep = args.flag("nrep", 3usize);
    let algs = experiment_ids(kind);
    let cfg = bench_config(args, &platform, nrep)?;
    if args.has("faults") {
        return cmd_fault_sweep(args, &platform, kind, &algs, bytes, &cfg);
    }
    let sw = sweep(&platform, kind, &algs, &Shape::SUITE, bytes, SkewPolicy::FactorOfAvg(1.0), &[], &cfg)
        .map_err(|e| e.to_string())?;
    let m = BenchMatrix::from_sweep(&sw);
    if args.flags.iter().any(|(n, _)| n == "json") {
        println!("{}", serde_json::to_string_pretty(&m).map_err(|e| e.to_string())?);
        return Ok(());
    }
    print!("{}", render_normalized_table(&m, &[]));
    let nd = select(&m, &SelectionPolicy::NoDelayFastest)?;
    let robust = select(&m, &SelectionPolicy::robust())?;
    println!("status-quo pick: A{nd}; robust pick: A{robust}");
    Ok(())
}

/// `papctl sweep … --faults`: the Fig. 6 robustness grid over runtime
/// faults instead of arrival patterns.
fn cmd_fault_sweep(
    args: &Args,
    platform: &Platform,
    kind: CollectiveKind,
    algs: &[u8],
    bytes: u64,
    cfg: &BenchConfig,
) -> Result<(), String> {
    if cfg.backend != Backend::Sim {
        return Err("--faults requires the sim backend (the model has no fault model)".to_string());
    }
    let t = calibrate_avg_runtime(platform, kind, algs, bytes, cfg).map_err(|e| e.to_string())?;
    let scenarios = standard_grid(platform.ranks, t);
    let sw = fault_sweep(platform, kind, algs, bytes, &scenarios, cfg).map_err(|e| e.to_string())?;
    let m = FaultMatrix::from_fault_sweep(&sw);
    if args.flags.iter().any(|(n, _)| n == "json") {
        println!("{}", serde_json::to_string_pretty(&m).map_err(|e| e.to_string())?);
        return Ok(());
    }
    let bound: f64 = args.flag("max-degradation", 1.0);
    print!("{}", render_fault_table(&m, 0.25).expect("grid has a clean row"));
    let clean = m.scenario_index("clean").expect("grid has a clean row");
    let status_quo = select(
        &BenchMatrix {
            kind: m.kind,
            bytes: m.bytes,
            algs: m.algs.clone(),
            patterns: vec!["no_delay".into()],
            values: vec![m.values[clean].iter().map(|v| v.expect("clean row is complete")).collect()],
        },
        &SelectionPolicy::NoDelayFastest,
    )?;
    let robust = select_fault_robust(&m, bound)?;
    println!("status-quo pick: A{status_quo}; fault-robust pick (bound {bound}): A{robust}");
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let platform = platform_from(args, 0)?;
    if args.has("faults") && !args.has("out") {
        return Err("--faults enriches the snapshot; it needs --out FILE".to_string());
    }
    let nrep = args.flag("nrep", 3usize);
    let cfg = bench_config(args, &platform, nrep)?;
    let plan = TunePlan::default();
    let (table, records) = tune_machine(&platform, &plan, &cfg)?;
    for rec in &records {
        eprintln!(
            "tuned {} @ {} B -> A{}{}",
            rec.entry.kind,
            rec.entry.bytes,
            rec.entry.alg,
            if rec.entry.alg == rec.status_quo {
                String::new()
            } else {
                format!("  (status quo would pick A{})", rec.status_quo)
            }
        );
    }
    if args.has("out") {
        let path = args.opt("out").ok_or("--out needs a file path")?;
        let mut snap = Snapshot::from_records(
            platform.machine.name(),
            platform.ranks,
            &cfg.backend.to_string(),
            &records,
        );
        if args.has("faults") {
            // Degraded-mode evidence rides along in the snapshot so a
            // warm-restarted `papd --policy fault_robust` never re-measures
            // the fault grid (always sim-backed, whatever --backend said).
            for cell in &mut snap.cells {
                let fm = measure_fault_matrix(
                    platform.machine,
                    cell.entry.kind,
                    cell.entry.ranks,
                    cell.entry.bytes,
                )?;
                eprintln!(
                    "fault grid {} @ {} B: v{} ({} scenarios)",
                    cell.entry.kind,
                    cell.entry.bytes,
                    fm.grid_version,
                    fm.scenarios.len()
                );
                cell.faults = Some(fm);
            }
        }
        snap.save(std::path::Path::new(path))?;
        eprintln!("wrote snapshot {path} ({} cells)", snap.cells.len());
    }
    println!("{}", table.to_json());
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let kind: CollectiveKind = args.pos(0)?.parse()?;
    let machine: MachineId = args.flag("machine", "simcluster".to_string()).parse()?;
    let ranks = args.flag("ranks", 16usize);
    let platform = Platform::preset(machine, ranks);
    let alg = match args.opt("alg") {
        Some(a) => a.parse().map_err(|_| "alg must be a number")?,
        None => match experiment_ids(kind).first() {
            Some(id) => *id,
            // Not every collective is in the paper's experiment set; fall
            // back to the first registered algorithm.
            None => {
                algorithms(kind)
                    .first()
                    .ok_or_else(|| format!("{kind} has no registered algorithms"))?
                    .id
            }
        },
    };
    let bytes = args.flag("bytes", 1024u64);
    let shape: Shape = args.flag("pattern", "imbalanced-linear".to_string()).parse()?;
    let seed = args.flag("seed", 1u64);
    let spec = CollSpec::new(kind, alg, bytes);

    // Default skew: 1.5x the algorithm's undelayed runtime, so the injected
    // imbalance shows at the same scale as the collective itself.
    let skew_s = match args.opt("skew-us") {
        Some(v) => v.parse::<f64>().map_err(|_| "skew-us must be a number")? * 1e-6,
        None => {
            let baseline = generate(Shape::NoDelay, ranks, 0.0, seed);
            let st = measure(&platform, &spec, &baseline, &BenchConfig::simulation())
                .map_err(|e| e.to_string())?;
            st.mean_total() * 1.5
        }
    };
    let pattern = generate(shape, ranks, skew_s, seed);
    let faults = match args.opt("fault") {
        Some(s) => s.parse::<FaultSpec>()?,
        None => {
            if args.has("fault") {
                return Err(
                    "--fault needs a spec, e.g. 'stall:0@1ms+500us;crash:7@2ms'".to_string()
                );
            }
            FaultSpec::none()
        }
    };
    let prof =
        profile_with_faults(&platform, &spec, &pattern, seed, &faults).map_err(|e| e.to_string())?;

    let out = args.flag("out", "trace.json".to_string());
    prof.trace.save(std::path::Path::new(&out)).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "profiled {kind} A{alg} {bytes} B on {} ({} ranks), pattern {} (skew {:.1} us): \
         d̂ {:.3} ms, d* {:.3} ms, {} messages{} -> {out}",
        platform.machine,
        prof.ranks,
        pattern.name,
        skew_s * 1e6,
        prof.d_hat * 1e3,
        prof.d_star * 1e3,
        prof.messages,
        if prof.crashed > 0 { format!(", {} rank(s) crashed", prof.crashed) } else { String::new() },
    );
    if args.has("check") {
        let json = std::fs::read_to_string(&out).map_err(|e| format!("read back {out}: {e}"))?;
        let stats = pap::obs::validate_trace(&json)?;
        println!("trace OK: {}", pap::obs::chrome::describe(&stats));
    }
    Ok(())
}

fn serve_config_from(args: &Args) -> Result<ServeConfig, String> {
    let defaults = ServeConfig::default();
    Ok(ServeConfig {
        addr: args.flag("addr", defaults.addr.clone()),
        snapshot: args.opt("snapshot").map(std::path::PathBuf::from),
        backend: match args.opt("backend") {
            Some(b) => b.parse()?,
            None => defaults.backend,
        },
        machine: args.flag("machine", defaults.machine.clone()),
        ranks: args.flag("ranks", defaults.ranks),
        threads: args.flag("threads", defaults.threads),
        refine_threads: args.flag("refine-threads", defaults.refine_threads),
        l1_capacity: args.flag("l1", defaults.l1_capacity),
        default_policy: match args.opt("policy") {
            Some(p) => p.parse::<DefaultPolicy>()?,
            None => defaults.default_policy,
        },
        read_timeout: defaults.read_timeout,
        tune_at_startup: !args.has("no-tune"),
    })
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let cfg = serve_config_from(args)?;
    let server = Server::start(cfg)?;
    // SIGTERM/SIGINT reuse the same graceful drain as `query --shutdown`:
    // in-flight requests complete, then the listener closes.
    pap::service::install_signal_shutdown(&server)?;
    // Scripted callers (the CI smoke job) read the resolved port from this
    // line, so flush past stdout's pipe buffering before blocking.
    println!("papd listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = std::sync::Arc::clone(server.stats());
    server.join();
    eprint!("papd: shut down\n{}", stats.report().render_table());
    Ok(())
}

fn fleet_addrs(args: &Args) -> Result<Vec<std::net::SocketAddr>, String> {
    args.opt("addrs")
        .ok_or("fleet commands need --addrs A1,A2,… (printed by `papctl fleet serve`)")?
        .split(',')
        .map(|a| a.trim().parse().map_err(|e| format!("bad shard address '{a}': {e}")))
        .collect()
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    match args.pos(0)? {
        "serve" => {
            let shards = args.flag("shards", 2usize);
            let base = serve_config_from(args)?;
            let fleet = pap::fleet::Fleet::start(pap::fleet::FleetConfig { shards, base })?;
            for (i, addr) in fleet.addrs().iter().enumerate() {
                println!("papd shard {i} listening on {addr}");
            }
            // Scripted callers scrape this single line for the client-side
            // --addrs value; flush past stdout's pipe buffering.
            let addrs: Vec<String> = fleet.addrs().iter().map(|a| a.to_string()).collect();
            println!("fleet listening on {}", addrs.join(","));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            // Run until SIGTERM/SIGINT, or until every shard was asked to
            // shut down in-band (`papctl fleet shutdown`).
            pap::sysio::install_shutdown_flag().map_err(|e| format!("signal handler: {e}"))?;
            loop {
                if pap::sysio::shutdown_requested() {
                    break;
                }
                let all_stopping = (0..fleet.shards())
                    .all(|i| fleet.node(i).is_none_or(|n| n.is_shutting_down()));
                if all_stopping {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            fleet.join_all();
            eprintln!("fleet: shut down");
            Ok(())
        }
        "query" => {
            let mut client = pap::fleet::FleetClient::new(fleet_addrs(args)?);
            let machine = args.pos(1)?.to_string();
            let collective: CollectiveKind = args.pos(2)?.parse()?;
            let bytes: u64 = args.pos(3)?.parse().map_err(|_| "bytes must be a number")?;
            let ranks = args.flag("ranks", 16usize);
            let q = QueryRequest { machine, collective, bytes, ranks, arrivals: None };
            let shard = client.route(&q).ok_or("fleet has no live shards")?;
            let answer = client.query(q)?;
            if args.has("json") {
                println!("{}", serde_json::to_string_pretty(&answer).map_err(|e| e.to_string())?);
            } else {
                println!(
                    "{} {} B on {} ({} ranks) via shard {}: use A{}  [policy {}; served from {}]",
                    answer.collective,
                    answer.bytes,
                    answer.machine,
                    answer.ranks,
                    shard,
                    answer.alg,
                    answer.policy,
                    answer.tier.describe(),
                );
            }
            Ok(())
        }
        "stats" => {
            let mut client = pap::fleet::FleetClient::new(fleet_addrs(args)?);
            let agg = client.stats()?;
            if args.has("json") {
                println!("{}", serde_json::to_string_pretty(&agg).map_err(|e| e.to_string())?);
            } else {
                for (shard, report) in client.stats_per_shard()? {
                    println!(
                        "shard {shard}: {} queries, {} connections, {} L2 cells{}",
                        report.endpoints.query,
                        report.connections,
                        report.l2_cells,
                        if report.snapshot_loaded { " (warm)" } else { "" },
                    );
                }
                print!("{}", agg.render_table());
            }
            Ok(())
        }
        "shutdown" => {
            let mut client = pap::fleet::FleetClient::new(fleet_addrs(args)?);
            client.shutdown_all();
            println!("fleet acknowledged shutdown");
            Ok(())
        }
        other => Err(format!("unknown fleet subcommand '{other}'\n{USAGE}")),
    }
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let addr = args
        .opt("addr")
        .ok_or("query needs --addr HOST:PORT (printed by `papctl serve`)")?;
    let mut client = Client::connect(addr)?;
    let json = args.has("json");
    if args.has("stats") {
        let report = client.stats()?;
        if json {
            println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
        } else {
            print!("{}", report.render_table());
        }
        return Ok(());
    }
    if args.has("metrics") {
        let snap = client.metrics()?;
        if json {
            println!("{}", serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?);
        } else {
            print!("{}", snap.render_table());
        }
        return Ok(());
    }
    if args.has("ping") {
        client.ping()?;
        println!("pong");
        return Ok(());
    }
    if args.has("shutdown") {
        client.shutdown()?;
        println!("papd acknowledged shutdown");
        return Ok(());
    }

    let machine = args.pos(0)?.to_string();
    let collective: CollectiveKind = args.pos(1)?.parse()?;
    let bytes: u64 = args.pos(2)?.parse().map_err(|_| "bytes must be a number")?;
    let ranks = args.flag("ranks", 16usize);
    let arrivals = match args.opt("arrivals") {
        Some(csv) => Some(
            csv.split(',')
                .map(|s| s.trim().parse::<f64>().map_err(|_| format!("bad arrival sample '{s}'")))
                .collect::<Result<Vec<f64>, String>>()?,
        ),
        None => None,
    };
    let answer = client.query(QueryRequest { machine, collective, bytes, ranks, arrivals })?;
    if json {
        println!("{}", serde_json::to_string_pretty(&answer).map_err(|e| e.to_string())?);
    } else {
        println!(
            "{} {} B on {} ({} ranks): use A{}  [policy {}; pattern {} (sim {:.2}); \
             served from {}; evidence {} B via {} gen {}{}]",
            answer.collective,
            answer.bytes,
            answer.machine,
            answer.ranks,
            answer.alg,
            answer.policy,
            answer.pattern,
            answer.similarity,
            answer.tier.describe(),
            answer.evidence_bytes,
            answer.backend,
            answer.generation,
            if answer.refine_scheduled { "; sim refinement scheduled" } else { "" },
        );
    }
    Ok(())
}

/// `papctl calibrate`: onboard an unseen machine. Synthesize (or load) a
/// probe, fit the platform parameters, and either register the fit locally
/// (optionally writing the report and running the closed-loop
/// selection-agreement check) or send the probe to a running daemon, which
/// fits and starts serving the machine online.
fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let from: Option<MachineId> = match args.opt("from") {
        Some(m) => Some(m.parse()?),
        None => None,
    };
    let probe: Probe = if let Some(path) = args.opt("probe-json") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Probe::from_json(&text)?
    } else if let Some(machine) = from {
        let defaults = ProbeConfig::default();
        let cfg = ProbeConfig {
            reps: args.flag("reps", defaults.reps),
            seed: args.flag("seed", defaults.seed),
            noise: !args.has("no-noise"),
            ..defaults
        };
        let name = args.flag("name", format!("fit-{}", machine.name().to_ascii_lowercase()));
        synthesize_probe(machine, &name, &cfg)?
    } else {
        return Err(
            "calibrate needs --from <preset> (synthesize a probe) or --probe-json FILE".to_string()
        );
    };
    let name = args.flag("name", probe.name.clone());

    if let Some(addr) = args.opt("addr") {
        // Online path: the daemon fits, registers, and publishes L2
        // evidence, so queries for custom:<name> answer immediately.
        let mut client = Client::connect(addr)?;
        let a = client.calibrate(&name, args.flag("ranks", 16usize), probe)?;
        println!(
            "{}: fit accepted (median residual {:.2}%), {} L2 cells published, \
             {} sim refinement(s) scheduled",
            a.machine,
            a.fit.median_rel_residual * 100.0,
            a.l2_cells,
            a.refine_scheduled,
        );
        return Ok(());
    }

    let fit = fit_probe(&probe).map_err(|e| format!("calibration rejected: {e}"))?;
    let spec = &fit.spec;
    // In --json mode stdout carries exactly one JSON document (the agreement
    // report under --check, the fit report otherwise), so scripts can pipe
    // straight into jq.
    if !args.has("json") {
        println!(
            "fitted custom:{name} from {} observation(s): median residual {:.2}%, max {:.2}%, \
             collective cross-check {:.2}%",
            fit.observations,
            fit.median_rel_residual * 100.0,
            fit.max_rel_residual * 100.0,
            fit.collective_rel_err * 100.0,
        );
        println!(
            "  intra {:.2} us / {:.1} GB/s   inter {:.2} us / {:.1} GB/s   eager {} B   \
             overhead {:.2} us   nic serialized: {}",
            spec.intra.latency * 1e6,
            spec.intra.bandwidth / 1e9,
            spec.inter.latency * 1e6,
            spec.inter.bandwidth / 1e9,
            spec.eager_threshold,
            (spec.send_overhead + spec.recv_overhead) * 1e6,
            spec.nic_serialization,
        );
    }
    if let Some(path) = args.opt("out") {
        std::fs::write(path, serde_json::to_string_pretty(&fit).map_err(|e| e.to_string())?)
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote fit report {path}");
    }
    let machine = register_custom_platform(&name, fit.spec.clone())?;
    if args.has("check") {
        let truth =
            from.ok_or("--check compares against the probed preset; it needs --from <preset>")?;
        let report = selection_agreement(truth, machine, CHECK_RANKS)?;
        if args.has("json") {
            println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
            return Ok(());
        }
        println!("{:<22} {:>13} {:>13} {:>8}", "parameter", "true", "fitted", "rel_err");
        for p in &report.params {
            println!(
                "{:<22} {:>13.4e} {:>13.4e} {:>8.4}",
                p.name, p.true_value, p.fitted_value, p.rel_err
            );
        }
        for c in report.cells.iter().filter(|c| !c.agrees()) {
            println!(
                "disagrees: {} @ {} B under {}: true A{} vs fitted A{}",
                c.kind, c.bytes, c.policy, c.true_pick, c.fitted_pick
            );
        }
        let agreeing = report.cells.iter().filter(|c| c.agrees()).count();
        println!(
            "selection agreement vs {}: {:.1}% ({agreeing}/{} cells at {} ranks)",
            report.machine,
            report.agreement * 100.0,
            report.cells.len(),
            report.ranks,
        );
    } else if args.has("json") {
        println!("{}", serde_json::to_string_pretty(&fit).map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn cmd_ft(args: &Args) -> Result<(), String> {
    let platform = platform_from(args, 0)?;
    let mut cfg = FtConfig::class_d_like(platform.ranks);
    cfg.alltoall_alg = args.flag("alg", cfg.alltoall_alg);
    cfg.iterations = args.flag("iters", cfg.iterations);
    cfg.seed = args.flag("seed", cfg.seed);
    let (rep, _) = run_ft(&platform, &cfg).map_err(|e| e.to_string())?;
    println!(
        "FT on {} ({} ranks, alltoall A{}, {} iters): runtime {:.3} s, compute {:.3} s, MPI {:.3} s ({:.0}%)",
        platform.machine,
        platform.ranks,
        cfg.alltoall_alg,
        cfg.iterations,
        rep.total_runtime,
        rep.compute_time,
        rep.mpi_time,
        rep.mpi_time / rep.total_runtime * 100.0,
    );
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let platform = platform_from(args, 0)?;
    let mut cfg = FtConfig::class_d_like(platform.ranks);
    cfg.seed = args.flag("seed", cfg.seed);
    let (_, out) = run_ft(&platform, &cfg).map_err(|e| e.to_string())?;
    let tr = CollectiveTrace::from_outcome(
        &out,
        platform.ranks,
        CollectiveKind::Alltoall.label_kind(),
        &TracerConfig::default(),
        ideal_observer,
    );
    let pat = tr.to_measured_pattern("ft_scenario").to_pattern();
    eprintln!(
        "# traced {} calls on {}; max skew {:.1} us",
        tr.len(),
        platform.machine,
        tr.max_observed_skew() * 1e6
    );
    print!("{}", render_pattern_file(&pat));
    Ok(())
}

/// Parse a `--ranks A,B,C` list, or keep `default`.
fn ranks_list(args: &Args, default: &[usize]) -> Result<Vec<usize>, String> {
    match args.flags.iter().find(|(n, _)| n == "ranks") {
        Some((_, Some(v))) => {
            let ranks: Vec<usize> = v
                .split(',')
                .map(|s| s.trim().parse::<usize>().map_err(|_| format!("bad rank count '{s}'")))
                .collect::<Result<_, _>>()?;
            if ranks.is_empty() {
                return Err("--ranks needs at least one rank count".to_string());
            }
            Ok(ranks)
        }
        _ => Ok(default.to_vec()),
    }
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    if args.has("faults") {
        return cmd_lint_faults(args);
    }
    let defaults = SweepConfig::default();
    let mut cfg = SweepConfig { ranks: ranks_list(args, &defaults.ranks)?, ..defaults };
    let eager = args.flag("eager", cfg.eager_threshold);
    cfg.eager_threshold = eager;
    // Keep the size grid straddling whatever threshold was chosen.
    cfg.sizes = vec![eager.div_ceil(32).max(1), eager, eager + 1, eager.saturating_mul(8)];
    let summary = sweep_registry(&cfg);
    if args.flags.iter().any(|(n, _)| n == "json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", summary.render_table());
        for f in &summary.findings {
            eprintln!(
                "{} alg {} p={} root={} bytes={}:",
                f.collective, f.alg, f.ranks, f.root, f.bytes
            );
            for d in &f.diagnostics {
                eprintln!("  {d}");
            }
        }
    }
    if summary.is_clean() {
        Ok(())
    } else {
        Err(format!("{} error-severity finding(s) across {} case(s)", summary.errors, summary.cases))
    }
}

/// `papctl lint --faults`: the registry-wide fault-cone sweep — per-rank
/// entry crash cones, blast-radius aggregates, and a certified repair of
/// each case's worst crash. Purely static (no simulation); fails when any
/// produced rewrite does not re-verify.
fn cmd_lint_faults(args: &Args) -> Result<(), String> {
    let defaults = FaultSweepConfig::default();
    let mut cfg = FaultSweepConfig { ranks: ranks_list(args, &defaults.ranks)?, ..defaults };
    let eager = args.flag("eager", cfg.eager_threshold);
    cfg.eager_threshold = eager;
    // Keep one size on each side of whatever threshold was chosen: the
    // protocol split changes which sends block, which changes the cones.
    cfg.sizes = vec![eager.div_ceil(16).max(1), eager.saturating_mul(8)];
    let summary = sweep_faults(&cfg);
    if args.flags.iter().any(|(n, _)| n == "json") {
        println!("{}", serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?);
    } else {
        print!("{}", summary.render_table());
        for row in &summary.case_rows {
            if let RepairVerdict::CertFailed(reason) = &row.repair {
                eprintln!(
                    "CERT FAIL {} alg {} p={} bytes={} victim {}: {reason}",
                    row.collective, row.alg, row.ranks, row.bytes, row.victim
                );
            }
        }
    }
    if summary.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} repair(s) failed certification across {} case(s)",
            summary.cert_failed, summary.cases
        ))
    }
}

/// `papctl repair <collective> <alg> --fault crash:R`: build the registry
/// schedule, compute the static crash cone, produce the certified repair,
/// and prove it completes in the engine under the very crash it routes
/// around.
fn cmd_repair(args: &Args) -> Result<(), String> {
    let kind: CollectiveKind = args.pos(0)?.parse()?;
    let alg: u8 = args.pos(1)?.parse().map_err(|_| "alg must be a number")?;
    let spec = args
        .opt("fault")
        .ok_or("repair needs --fault crash:R (the rank to route around)")?;
    let crashed: usize = spec
        .strip_prefix("crash:")
        .unwrap_or(spec)
        .parse()
        .map_err(|_| format!("bad fault spec '{spec}' (want crash:R)"))?;
    let ranks = args.flag("ranks", 8usize);
    let bytes = args.flag("bytes", 1024u64);
    let root = args.flag("root", 0usize);
    let eager = args.flag("eager", LintConfig::default().eager_threshold);
    let seg = args.flag("seg-bytes", pap::collectives::DEFAULT_SEG_BYTES);

    let cspec = CollSpec::new(kind, alg, bytes).with_root(root).with_seg_bytes(seg);
    let built = pap::collectives::build(&cspec, ranks).map_err(|e| e.to_string())?;
    let job = Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect());
    let cfg = LintConfig { eager_threshold: eager, ..LintConfig::default() };

    let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(crashed)]);
    println!(
        "{kind} A{alg} {bytes} B, {ranks} ranks, root {root} — crash rank {crashed} on entry"
    );
    if cone.is_empty() {
        println!("static cone: empty — every survivor already completes; nothing to repair");
        return Ok(());
    }
    println!(
        "static cone: {} survivor(s) starved: {:?}",
        cone.starved.len(),
        cone.starved_ranks()
    );
    let out = certified_repair(&job, &cfg, crashed).map_err(|e| e.to_string())?;
    println!(
        "repair: dropped {}, rewired {}, inserted {} op(s)",
        out.dropped, out.rewired, out.inserted
    );
    for note in &out.notes {
        println!("  {note}");
    }
    println!("certified: re-lint clean across all diagnostic classes, residual cone empty");

    // Independent evidence beyond the static certificate: the repaired job
    // must complete in the event-driven engine under the repaired crash.
    let sim = SimConfig {
        faults: FaultSpec::none().with_crash(crashed, 0.0),
        ..SimConfig::default()
    };
    match run_ref(&Platform::simcluster(ranks), &out.job, &sim) {
        Ok(run) => {
            let finish = run.finish.iter().cloned().fold(0.0f64, f64::max);
            println!("engine: repaired job completes under the crash (last rank at {:.3} ms)", finish * 1e3);
            Ok(())
        }
        Err(SimError::Deadlock { blocked, .. }) => Err(format!(
            "engine: repaired job still deadlocks — blocked ranks {:?}",
            blocked.iter().map(|(r, _)| *r).collect::<Vec<_>>()
        )),
        Err(e) => Err(format!("engine: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = args(&["hydra", "reduce", "--ranks", "128", "--quickish"]);
        assert_eq!(a.pos(0).unwrap(), "hydra");
        assert_eq!(a.pos(1).unwrap(), "reduce");
        assert_eq!(a.flag("ranks", 0usize), 128);
        assert!(a.pos(2).is_err());
        // Valueless flag falls back to default.
        assert_eq!(a.flag("quickish", 7u32), 7);
    }

    #[test]
    fn flag_defaults_apply() {
        let a = args(&["hydra"]);
        assert_eq!(a.flag("nrep", 3usize), 3);
        assert_eq!(a.flag("shape", "no_delay".to_string()), "no_delay");
    }

    #[test]
    fn backend_flag_selects_model() {
        let a = args(&["simcluster", "--backend", "model"]);
        let p = platform_from(&a, 0).unwrap();
        let cfg = bench_config(&a, &p, 3).unwrap();
        assert_eq!(cfg.backend, Backend::Model);
        let default = bench_config(&args(&["simcluster"]), &p, 3).unwrap();
        assert_eq!(default.backend, Backend::Sim);
        assert!(bench_config(&args(&["simcluster", "--backend", "magic"]), &p, 3).is_err());
    }

    #[test]
    fn platform_from_parses_machines() {
        let a = args(&["galileo100", "--ranks", "32"]);
        let p = platform_from(&a, 0).unwrap();
        assert_eq!(p.machine.name(), "Galileo100");
        assert_eq!(p.ranks, 32);
        assert!(platform_from(&args(&["nonsense"]), 0).is_err());
    }
}
