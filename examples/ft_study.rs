//! Application case study (§V of the paper): trace the FT proxy's Alltoall
//! arrival pattern, replay it in micro-benchmarks, and show that selecting
//! by robustness predicts the in-application winner while the No-delay
//! micro-benchmark can mislead.
//!
//! Run with: `cargo run --release --example ft_study [-- --ranks N]`

use pap::apps::{run_ft, FtConfig};
use pap::arrival::Shape;
use pap::collectives::registry::experiment_ids;
use pap::collectives::CollectiveKind;
use pap::core::{select, BenchMatrix, SelectionPolicy};
use pap::microbench::{sweep, BenchConfig, SkewPolicy};
use pap::sim::Platform;
use pap::tracer::{ideal_observer, CollectiveTrace, TracerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks = args
        .windows(2)
        .find(|w| w[0] == "--ranks")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(128);

    let platform = Platform::galileo100(ranks);
    let ft_cfg = FtConfig::class_d_like(ranks);

    // 1. Trace the application: per-call, per-rank Alltoall arrival times.
    let (report, out) = run_ft(&platform, &ft_cfg).expect("ft");
    let trace = CollectiveTrace::from_outcome(
        &out,
        ranks,
        CollectiveKind::Alltoall.label_kind(),
        &TracerConfig::default(),
        ideal_observer,
    );
    let mp = trace.to_measured_pattern("ft_scenario");
    let (shape, cos) = mp.classify();
    println!(
        "FT on {}: runtime {:.3} s (compute {:.3} s); traced {} Alltoall calls, \
         max skew {:.0} us, pattern resembles '{shape}' (cos {cos:.2})",
        platform.machine,
        report.total_runtime,
        report.compute_time,
        trace.len(),
        trace.max_observed_skew() * 1e6,
    );

    // 2. Micro-benchmark all Alltoall algorithms under the artificial suite
    //    sized to the traced skew, plus the traced FT-Scenario itself.
    let algs = experiment_ids(CollectiveKind::Alltoall);
    let cfg = BenchConfig::real_machine(3);
    let sw = sweep(
        &platform,
        CollectiveKind::Alltoall,
        &algs,
        &Shape::SUITE,
        ft_cfg.bytes_per_pair,
        SkewPolicy::Fixed(trace.max_observed_skew()),
        &[mp.to_pattern()],
        &cfg,
    )
    .expect("sweep");
    let matrix = BenchMatrix::from_sweep(&sw);

    // 3. Compare selection policies against the in-application truth.
    let no_delay = select(&matrix, &SelectionPolicy::NoDelayFastest).unwrap();
    let robust =
        select(&matrix, &SelectionPolicy::RobustAverage { exclude: vec!["ft_scenario".into()] }).unwrap();
    let oracle = select(&matrix, &SelectionPolicy::BestUnderPattern("ft_scenario".into())).unwrap();

    let mut truths = Vec::new();
    for &alg in &algs {
        let rt = run_ft(&platform, &ft_cfg.clone().with_alltoall(alg)).expect("ft").0.total_runtime;
        truths.push((alg, rt));
        println!("  FT with Alltoall A{alg}: {rt:.3} s");
    }
    let ft_best = truths.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
    println!("No-delay pick: A{no_delay} | robust pick: A{robust} | FT-Scenario oracle: A{oracle} | actual FT winner: A{ft_best}");

    let rt_of = |alg: u8| truths.iter().find(|(a, _)| *a == alg).unwrap().1;
    println!(
        "runtime cost of the No-delay pick vs the robust pick: {:.3} s vs {:.3} s",
        rt_of(no_delay),
        rt_of(robust)
    );
}
