//! Arrival-pattern-aware tuning of MPI_Alltoall for one machine: sweep all
//! algorithms over the pattern suite, compare the status-quo (No-delay)
//! selection with the paper's robust selection, and emit a tuning table.
//!
//! Run with: `cargo run --release --example tune_alltoall [-- --ranks N]`

use pap::arrival::Shape;
use pap::collectives::registry::experiment_ids;
use pap::collectives::CollectiveKind;
use pap::core::report::render_normalized_table;
use pap::core::{select, BenchMatrix, SelectionPolicy, TuningEntry, TuningTable};
use pap::microbench::{sweep, BenchConfig, SkewPolicy};
use pap::sim::Platform;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks = args
        .windows(2)
        .find(|w| w[0] == "--ranks")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(128);

    let platform = Platform::hydra(ranks);
    let kind = CollectiveKind::Alltoall;
    let algs = experiment_ids(kind);
    let cfg = BenchConfig::real_machine(3);
    let mut table = TuningTable::new();

    for bytes in [1024u64, 32 * 1024, 256 * 1024] {
        // Benchmark every algorithm under the full artificial pattern
        // suite, skew calibrated to the average No-delay runtime (§III-B).
        let sw = sweep(&platform, kind, &algs, &Shape::SUITE, bytes, SkewPolicy::FactorOfAvg(1.0), &[], &cfg)
            .expect("sweep");
        let matrix = BenchMatrix::from_sweep(&sw);
        println!("{}", render_normalized_table(&matrix, &[]));

        let status_quo = select(&matrix, &SelectionPolicy::NoDelayFastest).expect("selection");
        let robust = select(&matrix, &SelectionPolicy::robust()).expect("selection");
        println!(
            "{} B: status-quo pick = A{status_quo}, robust pick = A{robust}{}\n",
            bytes,
            if status_quo == robust { " (agree)" } else { "  <-- arrival patterns change the decision" }
        );

        table.insert(TuningEntry {
            machine: platform.machine.name().to_string(),
            kind,
            ranks,
            bytes,
            alg: robust,
            policy: "robust_average".into(),
        });
    }

    println!("tuning table (what an MPI library decision map would load):");
    println!("{}", table.to_json());
}
