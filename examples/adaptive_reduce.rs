//! Extension demo: an *arrival-aware* reduction tree (built from a known
//! pattern) versus the static Table II algorithms, across all eight
//! artificial patterns.
//!
//! This is the direction the paper's related work (Marendić et al.,
//! Proficz) points to: if the pattern is known, don't just select among
//! static trees — shape the tree around the pattern.
//!
//! Run with: `cargo run --release --example adaptive_reduce`

use pap::arrival::{generate, Shape};
use pap::collectives::registry::experiment_ids;
use pap::collectives::{build, build_arrival_aware_reduce, CollSpec, CollectiveKind};
use pap::sim::{run, Job, Label, Op, Platform, RankProgram, SimConfig};

fn d_hat(platform: &Platform, rank_ops: Vec<Vec<Op>>, delays: &[f64]) -> f64 {
    let label = Label { kind: 1, seq: 0 };
    let programs = rank_ops
        .into_iter()
        .enumerate()
        .map(|(r, ops)| {
            let mut prog = RankProgram::new();
            prog.push_anon(vec![Op::delay(delays[r])]);
            prog.push_labeled(label, ops);
            prog
        })
        .collect();
    let out = run(platform, Job::new(programs), &SimConfig::default()).expect("run");
    let recs = out.phases_for(label);
    let max_a = recs.iter().map(|r| r.enter).fold(f64::NEG_INFINITY, f64::max);
    let max_e = recs.iter().map(|r| r.exit).fold(f64::NEG_INFINITY, f64::max);
    max_e - max_a
}

fn main() {
    let p = 128;
    let bytes = 1024;
    let platform = Platform::simcluster(p);
    let skew = 1e-3;
    let algs = experiment_ids(CollectiveKind::Reduce);

    println!("Arrival-aware reduce vs static algorithms ({p} ranks, {bytes} B, skew {:.0} us)", skew * 1e6);
    println!("values: last delay d̂ in microseconds\n");
    print!("{:<14}", "pattern");
    for &a in &algs {
        print!("  {:>8}", format!("A{a}"));
    }
    println!("  {:>8}  winner", "adaptive");

    for shape in Shape::SUITE {
        let pattern = generate(shape, p, if shape == Shape::NoDelay { 0.0 } else { skew }, 1);
        print!("{:<14}", shape.name());
        let mut best = (f64::INFINITY, String::new());
        for &a in &algs {
            let spec = CollSpec::new(CollectiveKind::Reduce, a, bytes);
            let t = d_hat(&platform, build(&spec, p).expect("build").rank_ops, &pattern.delays);
            if t < best.0 {
                best = (t, format!("A{a}"));
            }
            print!("  {:>8.1}", t * 1e6);
        }
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, bytes);
        let adaptive = d_hat(
            &platform,
            build_arrival_aware_reduce(&spec, p, &pattern.delays).expect("build").rank_ops,
            &pattern.delays,
        );
        if adaptive < best.0 {
            best = (adaptive, "adaptive".into());
        }
        println!("  {:>8.1}  {}", adaptive * 1e6, best.1);
    }
    println!("\nthe adaptive ladder wins wherever the pattern is pronounced; static trees win NoDelay.");
}
