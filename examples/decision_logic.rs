//! From tuning to deployment: build a tuning table with the robust policy,
//! compile it into a library-side decision function, and watch it answer
//! per-invocation algorithm queries — including sizes and communicator
//! sizes nobody tuned. Also demonstrates ReproMPI-style adaptive
//! repetitions.
//!
//! Run with: `cargo run --release --example decision_logic`

use pap::arrival::{generate, Shape};
use pap::collectives::{CollSpec, CollectiveKind};
use pap::core::{tune_machine, DecisionLogic, DecisionSource, TunePlan};
use pap::microbench::{measure_adaptive, BenchConfig, StopRule};
use pap::sim::Platform;

fn main() {
    let ranks = 64;
    let platform = Platform::hydra(ranks);

    // 1. Tune with the paper's robust policy (small grid for the demo).
    let plan = TunePlan {
        sizes: vec![8, 32 * 1024, 1 << 20],
        ..TunePlan::default()
    };
    let cfg = BenchConfig::real_machine(3);
    let (table, records) = tune_machine(&platform, &plan, &cfg).expect("tuning");
    println!("tuned {} decision points on {}:", records.len(), platform.machine);
    for r in &records {
        println!(
            "  {} @ {:>8} B -> A{} (status quo: A{})",
            r.entry.kind, r.entry.bytes, r.entry.alg, r.status_quo
        );
    }

    // 2. Compile into the decision function an MPI library would query.
    let logic = DecisionLogic::new(platform.machine.name(), table);
    println!("\nper-invocation decisions (incl. untuned points):");
    for (kind, p, bytes) in [
        (CollectiveKind::Alltoall, ranks, 32 * 1024u64),
        (CollectiveKind::Alltoall, ranks, 100_000),
        (CollectiveKind::Reduce, 48, 8),
        (CollectiveKind::Allgather, ranks, 4096),
    ] {
        let (alg, src) = logic.decide(kind, p, bytes);
        println!("  {kind} p={p} {bytes} B -> A{alg} ({src:?})");
        assert!(src == DecisionSource::Exact || src == DecisionSource::Interpolated || src == DecisionSource::Fallback);
    }

    // 3. Adaptive repetitions: noisy cells take more repetitions than quiet
    //    ones, automatically.
    let rule = StopRule { min_reps: 3, max_reps: 40, rel_ci: 0.03 };
    let spec = CollSpec::new(CollectiveKind::Alltoall, 3, 1024);
    let pattern = generate(Shape::Random, ranks, 1e-4, 7);
    let out = measure_adaptive(&platform, &spec, &pattern, &cfg, &rule).expect("adaptive");
    println!(
        "\nadaptive measurement: {} repetitions, converged={}, d̂ = {:.3} ms ± {:.1}%",
        out.stats.len(),
        out.converged,
        out.stats.mean_last() * 1e3,
        out.rel_ci * 100.0
    );
}
