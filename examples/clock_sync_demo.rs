//! The measurement substrate: why drifting node clocks make arrival-time
//! measurement impossible without synchronization, and how the HCA3-style
//! estimator + harmonized starts fix it (§II-B of the paper).
//!
//! Run with: `cargo run --release --example clock_sync_demo`

use pap::clocksync::{harmonize_starts, sync_cluster, ClusterClocks, Hca3Config, SyncedClock};

fn main() {
    let nodes = 36;
    let clocks = ClusterClocks::realistic(nodes, 2024);

    println!(
        "unsynchronized cluster of {nodes} nodes: clock disagreement {:.1} us now, {:.1} us after 60 s of drift",
        clocks.max_disagreement(0.0) * 1e6,
        clocks.max_disagreement(60.0) * 1e6
    );

    // HCA3-style sync: binomial hierarchy, min-RTT ping-pongs, two-pass
    // drift regression.
    let cfg = Hca3Config::default();
    let calib = sync_cluster(&clocks, &cfg, 7);
    for t in [1.0, 10.0, 60.0] {
        let worst = (0..nodes)
            .map(|n| calib[n].error_at(&clocks.nodes[n], t).abs())
            .fold(0.0f64, f64::max);
        println!("synchronized: worst logical-clock error at t={t:>4.0} s: {:.3} us", worst * 1e6);
    }

    // Harmonize: all ranks agree to start at T; with calibrated clocks the
    // realized starts land within the residual sync error — accurate enough
    // to replay arrival patterns with sub-microsecond fidelity.
    let p = nodes * 4;
    let starts = harmonize_starts(&clocks, &calib, p, |r| r / 4, 5.0, 0.0);
    let spread =
        starts.iter().copied().fold(f64::NEG_INFINITY, f64::max) - starts.iter().copied().fold(f64::INFINITY, f64::min);
    println!("harmonized start of {p} ranks at T=5s: realized spread {:.3} us", spread * 1e6);

    // Contrast: harmonizing with *uncalibrated* clocks.
    let naive = vec![SyncedClock::PERFECT; nodes];
    let naive_starts = harmonize_starts(&clocks, &naive, p, |r| r / 4, 5.0, 0.0);
    let naive_spread = naive_starts.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - naive_starts.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "same start without synchronization: spread {:.1} us — would drown any arrival pattern",
        naive_spread * 1e6
    );
}
