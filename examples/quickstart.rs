//! Quickstart: simulate one collective, verify its dataflow, measure it
//! under an arrival pattern, and see why the arrival pattern changes the
//! algorithm ranking.
//!
//! Run with: `cargo run --release --example quickstart`

use pap::arrival::{generate, Shape};
use pap::collectives::{build, verify, CollSpec, CollectiveKind};
use pap::microbench::{measure, BenchConfig};
use pap::sim::{run, Job, Platform, RankProgram, SimConfig};

fn main() {
    let p = 64;
    let platform = Platform::simcluster(p);

    // 1. Build a binomial-tree MPI_Reduce (Table II: Reduce algorithm 5)
    //    for a 1 KiB vector and run it through the simulator with dataflow
    //    tracking, then verify it really reduced all 64 contributions.
    let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
    let built = build(&spec, p).expect("schedule");
    let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
    let out = run(&platform, Job::new(programs), &SimConfig::tracking()).expect("simulation");
    verify(&spec, p, &out).expect("dataflow correctness");
    println!(
        "binomial reduce on {p} ranks: {:.1} us, {} messages, dataflow verified",
        out.makespan() * 1e6,
        out.messages
    );

    // 2. Measure the same collective under two arrival patterns with the
    //    micro-benchmark harness (Listing 1 of the paper). The metric is
    //    the last delay d^ = max(exit) - max(arrival).
    let cfg = BenchConfig::simulation();
    let skew = 1e-3; // 1 ms max process skew
    for shape in [Shape::NoDelay, Shape::LastDelayed] {
        let pattern = generate(shape, p, if shape == Shape::NoDelay { 0.0 } else { skew }, 0);
        let binom = measure(&platform, &CollSpec::new(CollectiveKind::Reduce, 5, 1024), &pattern, &cfg)
            .expect("measure");
        let inbin = measure(&platform, &CollSpec::new(CollectiveKind::Reduce, 6, 1024), &pattern, &cfg)
            .expect("measure");
        println!(
            "{:<13} d^ binomial = {:>8.1} us | in-order binary = {:>8.1} us  -> best: {}",
            pattern.name,
            binom.mean_last() * 1e6,
            inbin.mean_last() * 1e6,
            if binom.mean_last() < inbin.mean_last() { "binomial" } else { "in-order binary" },
        );
    }
    println!("note how the winner flips when the last process is delayed — the paper's core observation.");
}
