//! Visualize *why* algorithms react differently to arrival patterns: record
//! the per-message trace of two Reduce algorithms under a LastDelayed
//! pattern and render their communication timelines side by side.
//!
//! Run with: `cargo run --release --example visualize_collective`

use pap::collectives::{build, CollSpec, CollectiveKind};
use pap::sim::timeline::{per_rank_message_stats, render_timeline};
use pap::sim::{run, Job, Op, Platform, RankProgram, SimConfig};

fn trace(platform: &Platform, alg: u8, delays: &[f64]) -> (Vec<pap::sim::engine::MsgEvent>, f64) {
    let p = platform.ranks;
    let spec = CollSpec::new(CollectiveKind::Reduce, alg, 1024);
    let built = build(&spec, p).expect("build");
    let programs = built
        .rank_ops
        .into_iter()
        .enumerate()
        .map(|(r, ops)| {
            let mut prog = RankProgram::new();
            prog.push_anon(vec![Op::delay(delays[r])]);
            prog.push_anon(ops);
            prog
        })
        .collect();
    let out = run(platform, Job::new(programs), &SimConfig::recording()).expect("run");
    let makespan = out.makespan();
    (out.msg_events.unwrap(), makespan)
}

fn main() {
    let p = 16;
    let platform = Platform::simcluster(p);
    let skew = 100e-6;
    let mut delays = vec![0.0; p];
    delays[p - 1] = skew; // LastDelayed

    for (alg, name) in [(5u8, "binomial (A5)"), (6u8, "in-order binary (A6)")] {
        let (events, makespan) = trace(&platform, alg, &delays);
        println!(
            "MPI_Reduce {name} under LastDelayed ({:.0} us skew): finishes at {:.1} us",
            skew * 1e6,
            makespan * 1e6
        );
        print!("{}", render_timeline(&events, p, 64, Some(&delays)));
        let stats = per_rank_message_stats(&events, p);
        let root_msgs = stats[0].1;
        println!("root received {root_msgs} messages; total messages {}\n", events.len());
    }
    println!(
        "the binomial tree stalls until the delayed rank {} feeds the root's subtree;\n\
         the in-order tree keeps rank {} at the top so everything else is already aggregated.",
        p - 1,
        p - 1
    );
}
