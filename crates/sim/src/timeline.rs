//! ASCII timelines from message traces — the quick-look visualization the
//! paper's simulation study uses SMPI's tracing for ("observe their
//! behavior ... under different circumstances").
//!
//! Render a per-rank activity strip over time: each cell counts the
//! messages a rank sent or received in that time bucket (`.` = idle,
//! `1`–`9` = activity, `+` = ten or more). Arrival markers (`|`) can be
//! injected from per-rank delays so skew is visible against communication.

use crate::engine::MsgEvent;

/// Render per-rank message-activity strips.
///
/// * `events` — recorded messages (`SimConfig::record_messages`).
/// * `ranks` — number of rows.
/// * `width` — number of time buckets.
/// * `arrivals` — optional per-rank arrival instants to mark with `|`.
pub fn render_timeline(events: &[MsgEvent], ranks: usize, width: usize, arrivals: Option<&[f64]>) -> String {
    assert!(width > 0);
    let t_end = events
        .iter()
        .map(|e| e.delivered)
        .fold(arrivals.map_or(0.0, |a| a.iter().copied().fold(0.0, f64::max)), f64::max);
    if t_end == 0.0 {
        return String::from("(empty timeline)\n");
    }
    let bucket_of = |t: f64| (((t / t_end) * width as f64) as usize).min(width - 1);

    let mut counts = vec![vec![0u32; width]; ranks];
    for e in events {
        if e.src < ranks {
            counts[e.src][bucket_of(e.sent)] += 1;
        }
        if e.dst < ranks {
            counts[e.dst][bucket_of(e.delivered)] += 1;
        }
    }

    let mut out = String::with_capacity(ranks * (width + 12));
    out.push_str(&format!(
        "timeline: {width} buckets of {:.2} us each\n",
        t_end / width as f64 * 1e6
    ));
    for (r, row) in counts.iter().enumerate() {
        out.push_str(&format!("r{r:<4} "));
        let arrival_bucket = arrivals.map(|a| bucket_of(a[r]));
        for (b, &c) in row.iter().enumerate() {
            if arrival_bucket == Some(b) && c == 0 {
                out.push('|');
            } else {
                out.push(match c {
                    0 => '.',
                    1..=9 => char::from_digit(c, 10).expect("digit"),
                    _ => '+',
                });
            }
        }
        out.push('\n');
    }
    out
}

/// Aggregate message statistics per rank: `(sent, received, bytes_out)`.
pub fn per_rank_message_stats(events: &[MsgEvent], ranks: usize) -> Vec<(usize, usize, u64)> {
    let mut stats = vec![(0usize, 0usize, 0u64); ranks];
    for e in events {
        if e.src < ranks {
            stats[e.src].0 += 1;
            stats[e.src].2 += e.bytes;
        }
        if e.dst < ranks {
            stats[e.dst].1 += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, RankProgram};
    use crate::{run, Job, Platform, SimConfig};

    fn traced_run() -> crate::RunOutcome {
        let platform = Platform::simcluster(3);
        let job = Job::new(vec![
            RankProgram::from_ops(vec![Op::send(1, 1, 64, 0), Op::send(2, 2, 64, 0)]),
            RankProgram::from_ops(vec![Op::recv(0, 1, 0), Op::send(2, 3, 64, 0)]),
            RankProgram::from_ops(vec![Op::recv(0, 2, 0), Op::recv(1, 3, 0)]),
        ]);
        run(&platform, job, &SimConfig::recording()).unwrap()
    }

    #[test]
    fn events_are_recorded_with_causal_times() {
        let out = traced_run();
        let ev = out.msg_events.as_ref().unwrap();
        assert_eq!(ev.len(), 3);
        for e in ev {
            assert!(e.delivered > e.sent, "{e:?}");
        }
        // Rank 1's forward to rank 2 happens after it received from rank 0.
        let recv01 = ev.iter().find(|e| e.src == 0 && e.dst == 1).unwrap();
        let send12 = ev.iter().find(|e| e.src == 1 && e.dst == 2).unwrap();
        assert!(send12.sent >= recv01.delivered - 1e-12);
    }

    #[test]
    fn recording_off_by_default() {
        let platform = Platform::simcluster(2);
        let job = Job::new(vec![
            RankProgram::from_ops(vec![Op::send(1, 1, 8, 0)]),
            RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
        ]);
        let out = run(&platform, job, &SimConfig::default()).unwrap();
        assert!(out.msg_events.is_none());
    }

    #[test]
    fn timeline_renders_rows_and_marks() {
        let out = traced_run();
        let ev = out.msg_events.unwrap();
        let arrivals = vec![0.0, 0.0, 0.0];
        let s = render_timeline(&ev, 3, 24, Some(&arrivals));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("r0"));
        // Activity appears somewhere.
        assert!(s.chars().any(|c| c.is_ascii_digit() && c != '0'));
    }

    #[test]
    fn empty_events_render_gracefully() {
        assert_eq!(render_timeline(&[], 2, 10, None), "(empty timeline)\n");
    }

    #[test]
    fn per_rank_stats_count_correctly() {
        let out = traced_run();
        let stats = per_rank_message_stats(&out.msg_events.unwrap(), 3);
        assert_eq!(stats[0], (2, 0, 128));
        assert_eq!(stats[1], (1, 1, 64));
        assert_eq!(stats[2], (0, 2, 0));
    }
}
