//! # pap-sim — discrete-event MPI/network simulator
//!
//! This crate is the substrate that replaces SimGrid/SMPI in the reproduction
//! of *"MPI Collective Algorithm Selection in the Presence of Process Arrival
//! Patterns"* (CLUSTER 2024).
//!
//! It simulates a two-level hierarchical cluster (nodes connected through a
//! switch, several cores per node) and executes, per MPI rank, a sequential
//! program of point-to-point operations with MPI semantics:
//!
//! * **eager** and **rendezvous** message protocols with a configurable
//!   threshold,
//! * FIFO message matching per `(source, destination, tag)` in *send order*
//!   (the MPI non-overtaking rule),
//! * per-node NIC egress/ingress serialization so that incast/outcast
//!   contention (the effect that separates a linear all-to-all from a pairwise
//!   exchange) is modelled,
//! * a LogGP-style cost model: `o_s + L + bytes/bw` per uncontended message,
//! * optional seeded noise models so that "real machine" platforms show
//!   run-to-run variance while the "simulator" platform stays perfectly
//!   reproducible (the property §III of the paper relies on),
//! * optional *dataflow tracking*: every message carries an abstract payload
//!   (which blocks from which origin ranks, or which ranks' contributions a
//!   partial reduction already contains) so the correctness of every
//!   collective algorithm can be verified, not just timed.
//!
//! The engine is deliberately deterministic: given the same [`SimConfig`]
//! seed, a run produces bit-identical timings and statistics.
//!
//! ## Example
//!
//! ```
//! use pap_sim::{Platform, SimConfig, engine::run, program::{Job, Op, RankProgram, Segment}};
//!
//! // Two ranks ping-pong one eager message.
//! let platform = Platform::simcluster(2);
//! let p0 = RankProgram::from_ops(vec![
//!     Op::send(1, 7, 64, 0),
//!     Op::recv(1, 8, 0),
//! ]);
//! let p1 = RankProgram::from_ops(vec![
//!     Op::recv(0, 7, 0),
//!     Op::send(0, 8, 64, 0),
//! ]);
//! let out = run(&platform, Job::new(vec![p0, p1]), &SimConfig::default()).unwrap();
//! assert!(out.finish[0] > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
pub mod data;
pub mod engine;
pub mod fault;
pub mod noise;
pub mod platform;
pub mod program;
pub mod time;
pub mod timeline;

pub use data::{RankSet, Value};
pub use engine::{run, run_auto, run_par, run_ref, RunOutcome, SimError};
pub use fault::{FaultSpec, LinkFault, NoiseStorm, RankCrash, RankStall, ANY_NODE};
pub use noise::NoiseModel;
pub use platform::{
    custom_platform_spec, register_custom_platform, CustomTag, LinkParams, MachineId, Platform,
    PlatformSpec,
};
pub use program::{CommDir, CommMeta, Job, Label, Op, RankProgram, Segment};
pub use time::{secs_to_us, us, SimTime};

/// Engine configuration: RNG seed, noise model, and whether message payloads
/// are tracked for dataflow verification.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for all stochastic components (noise). Two runs with the same
    /// seed and inputs are bit-identical.
    pub seed: u64,
    /// Track abstract payloads through every message and local reduction so
    /// that collective correctness can be asserted after the run. Costs time
    /// and memory; disable for large timing sweeps.
    pub track_data: bool,
    /// Noise applied to operation durations. [`NoiseModel::None`] reproduces
    /// the "simulation" setting of the paper (perfectly reproducible);
    /// the machine presets carry their own default noise used by the
    /// micro-benchmark layer.
    pub noise: NoiseModel,
    /// Record one [`engine::MsgEvent`] per delivered message (the SMPI-style
    /// tracing view of a run). Costs memory proportional to the message
    /// count; off by default.
    pub record_messages: bool,
    /// Record one [`engine::PhaseRecord`] per labelled segment per rank. On
    /// by default (the tracer/harness layers consume phases); switch off for
    /// 100K-rank scale runs where the records alone dominate memory.
    pub record_phases: bool,
    /// Runtime faults injected into the run (rank stalls/crashes, link
    /// slowdown windows, noise storms). [`FaultSpec::none`] — the default —
    /// takes exactly the fault-free code paths, so output is bit-identical
    /// to a run without the field. Faults apply at deterministic simulated
    /// timestamps, preserving the byte-identical `run_ref`/`run_par`
    /// contract at any partition count.
    pub faults: FaultSpec,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            track_data: false,
            noise: NoiseModel::None,
            record_messages: false,
            record_phases: true,
            faults: FaultSpec::none(),
        }
    }
}

impl SimConfig {
    /// Configuration with dataflow tracking enabled (for correctness tests).
    pub fn tracking() -> Self {
        Self { track_data: true, ..Self::default() }
    }

    /// Configuration with message-event recording enabled (for timelines).
    pub fn recording() -> Self {
        Self { record_messages: true, ..Self::default() }
    }

    /// Replace the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the noise model, keeping everything else.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replace the fault spec, keeping everything else.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}
