//! Per-rank programs: the operation "ISA" executed by the engine.
//!
//! A [`Job`] holds one [`RankProgram`] per rank. A program is a sequence of
//! [`Segment`]s; each segment optionally carries a [`Label`] so that higher
//! layers (the tracer, the micro-benchmark harness) can observe when a rank
//! *enters* and *exits* that segment — this is exactly the "process arrival
//! time" and "exit time" of the paper (§II-A).

use crate::data::{BlockFilter, Value};
use crate::time::SimTime;

/// Index of a buffer slot within a rank's slot table.
pub type Slot = usize;

/// Index into a rank's request table (for `Isend`/`Irecv`/`WaitAll`).
pub type ReqId = usize;

/// Message tag.
///
/// **Invariant (enforced by `pap-lint`):** within one ordered `(src, dst)`
/// rank pair, a tag names a FIFO channel; the engine matches the k-th send on
/// a `(src, dst, tag)` channel with the k-th posted receive, in posting
/// order. A schedule must therefore not keep two messages outstanding on the
/// same channel unless (a) the FIFO pairing is intended *and* (b) both
/// messages carry the same byte count — on a transport without total
/// per-channel ordering the pairing would otherwise be ambiguous. The
/// `pap-lint` crate reports violations as `TagConflict` (a warning when all
/// sizes on the channel agree, an error when they differ).
pub type Tag = u64;

/// Direction of a point-to-point communication op (see [`Op::comm_meta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommDir {
    /// The op emits a message (`Send`/`Isend`).
    Send,
    /// The op consumes a message (`Recv`/`Irecv`).
    Recv,
}

/// Static metadata of a communication op, extracted by [`Op::comm_meta`] so
/// analysis passes (e.g. `pap-lint`) need not match every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommMeta {
    /// Whether the op sends or receives.
    pub dir: CommDir,
    /// The peer rank (`to` for sends, `from` for receives).
    pub peer: usize,
    /// The match tag.
    pub tag: Tag,
    /// Message size in bytes. Sends declare it; receives take the sender's
    /// size, so this is `None` for `Recv`/`Irecv`.
    pub bytes: Option<u64>,
    /// The payload slot (source for sends, destination for receives).
    pub slot: Slot,
    /// The completion request for non-blocking ops, `None` for blocking ones.
    pub req: Option<ReqId>,
    /// Whether the op may block the issuing rank (`Send`/`Recv`).
    pub blocking: bool,
}

/// One operation of a rank program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Advance local time by `seconds` (models computation or an injected
    /// arrival-pattern delay). Subject to the engine noise model when
    /// `noisy` is true.
    Compute {
        /// Duration in seconds.
        seconds: SimTime,
        /// Whether the noise model perturbs this duration. Injected
        /// arrival-pattern delays use `false` so patterns replay exactly.
        noisy: bool,
    },
    /// Spin until the given *global* simulated time (models
    /// `MPIX_Harmonize`-style synchronized starts; the clock-sync layer adds
    /// its estimation error before constructing this op).
    SleepUntil {
        /// Absolute global time to wait for.
        time: SimTime,
    },
    /// Blocking send of `bytes` from `slot` to rank `to` with `tag`.
    /// Eager sends return after the sender overhead; rendezvous sends block
    /// until the matching receive is posted and the data has left the node.
    Send {
        /// Destination rank.
        to: usize,
        /// Match tag.
        tag: Tag,
        /// Message size in bytes (drives the cost model and the protocol).
        bytes: u64,
        /// Source slot (payload snapshot is taken at execution time).
        slot: Slot,
        /// Which blocks of the slot travel (for partial-buffer sends).
        filter: BlockFilter,
    },
    /// Non-blocking send; completion is observed via `WaitAll`.
    Isend {
        /// Destination rank.
        to: usize,
        /// Match tag.
        tag: Tag,
        /// Message size in bytes.
        bytes: u64,
        /// Source slot.
        slot: Slot,
        /// Which blocks of the slot travel.
        filter: BlockFilter,
        /// Request to complete.
        req: ReqId,
    },
    /// Blocking receive into `slot` (replaces the slot content).
    Recv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: Tag,
        /// Destination slot.
        slot: Slot,
    },
    /// Non-blocking receive; completion is observed via `WaitAll`.
    Irecv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: Tag,
        /// Destination slot.
        slot: Slot,
        /// Request to complete.
        req: ReqId,
    },
    /// Block until all listed requests are complete; local time advances to
    /// the latest completion.
    WaitAll {
        /// Requests to wait for.
        reqs: Vec<ReqId>,
    },
    /// Local reduction: fold slot `from` into slot `into`
    /// (contributor-set union with double-count detection), costing
    /// `bytes × reduce_cost_per_byte` seconds of compute.
    ReduceLocal {
        /// Source slot.
        from: Slot,
        /// Accumulator slot.
        into: Slot,
        /// Reduced payload size in bytes (cost model input).
        bytes: u64,
    },
    /// Zero-cost movement merge of slot `from` into slot `into`
    /// (for assembling gather/allgather/alltoall results).
    MergeMove {
        /// Source slot.
        from: Slot,
        /// Destination slot.
        into: Slot,
    },
    /// Zero-cost per-block overwrite of `into` with the blocks of `from`
    /// (no conflict check; allgather phases replacing stale partials).
    OverwriteMove {
        /// Source slot.
        from: Slot,
        /// Destination slot.
        into: Slot,
    },
    /// Remove blocks matching `filter` from `slot` (blocks that were just
    /// forwarded and no longer live here, e.g. in Bruck rounds).
    DropBlocks {
        /// Slot to prune.
        slot: Slot,
        /// Which blocks to remove.
        filter: BlockFilter,
    },
    /// Zero-cost copy (replace `into` with the content of `from`).
    CopySlot {
        /// Source slot.
        from: Slot,
        /// Destination slot.
        into: Slot,
    },
    /// Initialize a slot with a literal value (rank inputs).
    InitSlot {
        /// Slot to initialize.
        slot: Slot,
        /// Initial content.
        value: Value,
    },
    /// Empty a slot.
    ClearSlot {
        /// Slot to clear.
        slot: Slot,
    },
}

impl Op {
    /// Shorthand for a blocking send of the whole slot.
    pub fn send(to: usize, tag: Tag, bytes: u64, slot: Slot) -> Op {
        Op::Send { to, tag, bytes, slot, filter: BlockFilter::All }
    }

    /// Shorthand for a blocking send of a block subset.
    pub fn send_part(to: usize, tag: Tag, bytes: u64, slot: Slot, filter: BlockFilter) -> Op {
        Op::Send { to, tag, bytes, slot, filter }
    }

    /// Shorthand for a non-blocking send of the whole slot.
    pub fn isend(to: usize, tag: Tag, bytes: u64, slot: Slot, req: ReqId) -> Op {
        Op::Isend { to, tag, bytes, slot, filter: BlockFilter::All, req }
    }

    /// Shorthand for a non-blocking send of a block subset.
    pub fn isend_part(to: usize, tag: Tag, bytes: u64, slot: Slot, filter: BlockFilter, req: ReqId) -> Op {
        Op::Isend { to, tag, bytes, slot, filter, req }
    }

    /// Shorthand for a blocking receive.
    pub fn recv(from: usize, tag: Tag, slot: Slot) -> Op {
        Op::Recv { from, tag, slot }
    }

    /// Shorthand for a non-blocking receive.
    pub fn irecv(from: usize, tag: Tag, slot: Slot, req: ReqId) -> Op {
        Op::Irecv { from, tag, slot, req }
    }

    /// Shorthand for waiting on a set of requests.
    pub fn waitall(reqs: Vec<ReqId>) -> Op {
        Op::WaitAll { reqs }
    }

    /// Shorthand for noisy compute.
    pub fn compute(seconds: SimTime) -> Op {
        Op::Compute { seconds, noisy: true }
    }

    /// Shorthand for an exact (noise-free) delay, used to replay arrival
    /// patterns precisely.
    pub fn delay(seconds: SimTime) -> Op {
        Op::Compute { seconds, noisy: false }
    }

    /// Largest slot index referenced by this op, if any.
    pub fn max_slot(&self) -> Option<Slot> {
        match self {
            Op::Send { slot, .. } | Op::Isend { slot, .. } | Op::Recv { slot, .. } | Op::Irecv { slot, .. } => {
                Some(*slot)
            }
            Op::ReduceLocal { from, into, .. }
            | Op::MergeMove { from, into }
            | Op::OverwriteMove { from, into }
            | Op::CopySlot { from, into } => Some((*from).max(*into)),
            Op::InitSlot { slot, .. } | Op::ClearSlot { slot } | Op::DropBlocks { slot, .. } => Some(*slot),
            _ => None,
        }
    }

    /// Largest request index referenced by this op, if any.
    pub fn max_req(&self) -> Option<ReqId> {
        match self {
            Op::Isend { req, .. } | Op::Irecv { req, .. } => Some(*req),
            Op::WaitAll { reqs } => reqs.iter().copied().max(),
            _ => None,
        }
    }

    /// Communication metadata for point-to-point ops, `None` for local ops.
    pub fn comm_meta(&self) -> Option<CommMeta> {
        match self {
            Op::Send { to, tag, bytes, slot, .. } => Some(CommMeta {
                dir: CommDir::Send,
                peer: *to,
                tag: *tag,
                bytes: Some(*bytes),
                slot: *slot,
                req: None,
                blocking: true,
            }),
            Op::Isend { to, tag, bytes, slot, req, .. } => Some(CommMeta {
                dir: CommDir::Send,
                peer: *to,
                tag: *tag,
                bytes: Some(*bytes),
                slot: *slot,
                req: Some(*req),
                blocking: false,
            }),
            Op::Recv { from, tag, slot } => Some(CommMeta {
                dir: CommDir::Recv,
                peer: *from,
                tag: *tag,
                bytes: None,
                slot: *slot,
                req: None,
                blocking: true,
            }),
            Op::Irecv { from, tag, slot, req } => Some(CommMeta {
                dir: CommDir::Recv,
                peer: *from,
                tag: *tag,
                bytes: None,
                slot: *slot,
                req: Some(*req),
                blocking: false,
            }),
            _ => None,
        }
    }

    /// Whether executing this op may suspend the rank until *another rank*
    /// makes progress (rendezvous sends, receives, request completion).
    /// `Compute`/`SleepUntil` advance local time but never wait on a peer.
    pub fn is_blocking(&self) -> bool {
        matches!(self, Op::Send { .. } | Op::Recv { .. } | Op::WaitAll { .. })
    }

    /// Slots whose *current content* this op consumes. Accumulation targets
    /// (`into` of `ReduceLocal`/`MergeMove`/`OverwriteMove`) and pruned slots
    /// count as reads too: the engine folds into / filters their prior value.
    pub fn slots_read(&self) -> Vec<Slot> {
        match self {
            Op::Send { slot, .. } | Op::Isend { slot, .. } => vec![*slot],
            Op::ReduceLocal { from, into, .. }
            | Op::MergeMove { from, into }
            | Op::OverwriteMove { from, into } => vec![*from, *into],
            Op::CopySlot { from, .. } => vec![*from],
            Op::DropBlocks { slot, .. } => vec![*slot],
            _ => Vec::new(),
        }
    }

    /// Slots this op (or its later completion, for `Irecv`) writes.
    pub fn slots_written(&self) -> Vec<Slot> {
        match self {
            Op::Recv { slot, .. }
            | Op::Irecv { slot, .. }
            | Op::InitSlot { slot, .. }
            | Op::ClearSlot { slot }
            | Op::DropBlocks { slot, .. } => vec![*slot],
            Op::ReduceLocal { into, .. }
            | Op::MergeMove { into, .. }
            | Op::OverwriteMove { into, .. }
            | Op::CopySlot { into, .. } => vec![*into],
            _ => Vec::new(),
        }
    }
}

/// Semantic label of a segment, used by the tracer and harness to identify
/// which collective call (and which call sequence number) a phase represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label {
    /// Application-defined kind (e.g. a `CollectiveKind` discriminant).
    pub kind: u32,
    /// Call sequence number.
    pub seq: u32,
}

/// A contiguous group of ops whose enter/exit times are recorded when
/// labelled.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Optional label; labelled segments produce `PhaseRecord`s.
    pub label: Option<Label>,
    /// The operations of this segment.
    pub ops: Vec<Op>,
}

impl Segment {
    /// Unlabelled segment.
    pub fn anon(ops: Vec<Op>) -> Self {
        Segment { label: None, ops }
    }

    /// Labelled segment.
    pub fn labeled(label: Label, ops: Vec<Op>) -> Self {
        Segment { label: Some(label), ops }
    }
}

/// The full program of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankProgram {
    /// Segments executed in order.
    pub segments: Vec<Segment>,
}

impl RankProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Program with a single anonymous segment.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        RankProgram { segments: vec![Segment::anon(ops)] }
    }

    /// Append an anonymous segment.
    pub fn push_anon(&mut self, ops: Vec<Op>) -> &mut Self {
        self.segments.push(Segment::anon(ops));
        self
    }

    /// Append a labelled segment.
    pub fn push_labeled(&mut self, label: Label, ops: Vec<Op>) -> &mut Self {
        self.segments.push(Segment::labeled(label, ops));
        self
    }

    /// Number of ops across all segments.
    pub fn op_count(&self) -> usize {
        self.segments.iter().map(|s| s.ops.len()).sum()
    }

    fn max_slot(&self) -> Option<Slot> {
        self.segments.iter().flat_map(|s| s.ops.iter().filter_map(Op::max_slot)).max()
    }

    fn max_req(&self) -> Option<ReqId> {
        self.segments.iter().flat_map(|s| s.ops.iter().filter_map(Op::max_req)).max()
    }
}

/// A complete simulation job: one program per rank.
#[derive(Debug, Clone, Default)]
pub struct Job {
    /// Per-rank programs; `programs.len()` is the number of ranks.
    pub programs: Vec<RankProgram>,
    /// Per-rank request-arena sizes, computed lazily on first run. At 10K+
    /// ranks the full-program scan is a measurable slice of a single run,
    /// and jobs are routinely re-run (sweeps, repetitions, partitions), so
    /// the result is cached. `programs` must not be mutated after the
    /// first run of the job.
    req_counts: std::sync::OnceLock<Vec<u32>>,
    /// Flattened engine form (see [`crate::compiled`]), built lazily on the
    /// first run and shared by all later runs and partitions. Same caching
    /// contract as `req_counts`.
    compiled: std::sync::OnceLock<crate::compiled::CompiledJob>,
}

impl Job {
    /// Build a job from per-rank programs.
    pub fn new(programs: Vec<RankProgram>) -> Self {
        Job {
            programs,
            req_counts: std::sync::OnceLock::new(),
            compiled: std::sync::OnceLock::new(),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.programs.len()
    }

    /// Slots needed per rank (max referenced slot + 1).
    pub fn slots_needed(&self, rank: usize) -> usize {
        self.programs[rank].max_slot().map_or(0, |m| m + 1)
    }

    /// Requests needed per rank (max referenced request + 1).
    pub fn reqs_needed(&self, rank: usize) -> usize {
        self.programs[rank].max_req().map_or(0, |m| m + 1)
    }

    /// Requests needed for every rank (cached; see [`Job`] field docs).
    pub fn req_counts(&self) -> &[u32] {
        self.req_counts.get_or_init(|| {
            self.programs.iter().map(|p| p.max_req().map_or(0, |m| m as u32 + 1)).collect()
        })
    }

    /// The flattened engine form (cached; see [`crate::compiled`]).
    pub(crate) fn compiled(&self) -> &crate::compiled::CompiledJob {
        self.compiled.get_or_init(|| crate::compiled::CompiledJob::build(self))
    }

    /// Total op count (sizing diagnostics).
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(|p| p.op_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_shorthands() {
        assert_eq!(
            Op::send(1, 2, 3, 4),
            Op::Send { to: 1, tag: 2, bytes: 3, slot: 4, filter: BlockFilter::All }
        );
        assert_eq!(Op::recv(1, 2, 3), Op::Recv { from: 1, tag: 2, slot: 3 });
        assert!(matches!(Op::compute(1.0), Op::Compute { noisy: true, .. }));
        assert!(matches!(Op::delay(1.0), Op::Compute { noisy: false, .. }));
    }

    #[test]
    fn slot_and_req_sizing() {
        let mut p = RankProgram::new();
        p.push_anon(vec![
            Op::Irecv { from: 1, tag: 0, slot: 9, req: 3 },
            Op::WaitAll { reqs: vec![3, 7] },
        ]);
        let job = Job::new(vec![p]);
        assert_eq!(job.slots_needed(0), 10);
        assert_eq!(job.reqs_needed(0), 8);
        assert_eq!(job.total_ops(), 2);
    }

    #[test]
    fn labels_attach_to_segments() {
        let mut p = RankProgram::new();
        p.push_labeled(Label { kind: 1, seq: 0 }, vec![Op::compute(0.5)]);
        assert_eq!(p.segments[0].label, Some(Label { kind: 1, seq: 0 }));
        assert_eq!(p.op_count(), 1);
    }

    #[test]
    fn comm_meta_classifies_p2p_ops() {
        let m = Op::send(3, 7, 64, 2).comm_meta().unwrap();
        assert_eq!((m.dir, m.peer, m.tag, m.bytes, m.slot, m.req, m.blocking),
                   (CommDir::Send, 3, 7, Some(64), 2, None, true));
        let m = Op::irecv(1, 9, 4, 5).comm_meta().unwrap();
        assert_eq!((m.dir, m.peer, m.tag, m.bytes, m.slot, m.req, m.blocking),
                   (CommDir::Recv, 1, 9, None, 4, Some(5), false));
        assert!(Op::compute(1.0).comm_meta().is_none());
        assert!(Op::waitall(vec![0]).comm_meta().is_none());
    }

    #[test]
    fn blocking_and_slot_access_classification() {
        assert!(Op::send(1, 0, 8, 0).is_blocking());
        assert!(Op::recv(1, 0, 0).is_blocking());
        assert!(Op::waitall(vec![0]).is_blocking());
        assert!(!Op::isend(1, 0, 8, 0, 0).is_blocking());
        assert!(!Op::compute(1.0).is_blocking());
        assert_eq!(Op::ReduceLocal { from: 2, into: 5, bytes: 1 }.slots_read(), vec![2, 5]);
        assert_eq!(Op::ReduceLocal { from: 2, into: 5, bytes: 1 }.slots_written(), vec![5]);
        assert_eq!(Op::recv(1, 0, 3).slots_read(), Vec::<Slot>::new());
        assert_eq!(Op::recv(1, 0, 3).slots_written(), vec![3]);
        assert_eq!(Op::CopySlot { from: 1, into: 2 }.slots_read(), vec![1]);
        assert_eq!(Op::CopySlot { from: 1, into: 2 }.slots_written(), vec![2]);
    }

    #[test]
    fn max_slot_covers_all_variants() {
        assert_eq!(Op::ReduceLocal { from: 2, into: 5, bytes: 1 }.max_slot(), Some(5));
        assert_eq!(Op::MergeMove { from: 7, into: 1 }.max_slot(), Some(7));
        assert_eq!(Op::ClearSlot { slot: 4 }.max_slot(), Some(4));
        assert_eq!(Op::compute(1.0).max_slot(), None);
        assert_eq!(Op::InitSlot { slot: 3, value: Value::empty() }.max_slot(), Some(3));
    }
}
