//! Seeded noise models for operation durations.
//!
//! The paper's "real machine" experiments exhibit run-to-run variance and
//! long-tailed latency distributions (its refs \[7\], \[8\]); the simulation
//! study is deliberately noise-free. We model both: a multiplicative
//! Gaussian-like jitter for ordinary variance and a heavy-tailed variant
//! where a small fraction of operations take several times longer (OS noise
//! "detours").

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative noise applied to operation durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// No noise: durations are exact (simulation setting, §III).
    None,
    /// Truncated-Gaussian-like multiplicative jitter: factor
    /// `max(0.5, 1 + sigma_frac * z)` with `z` approximately standard normal.
    Gaussian {
        /// Relative standard deviation of the factor (e.g. `0.02` = 2 %).
        sigma_frac: f64,
    },
    /// Gaussian jitter plus OS-noise "detours": detour events arrive at a
    /// fixed rate per second of execution (so long compute phases are hit
    /// proportionally more often than microsecond message ops), and each
    /// detour adds an *absolute* exponential delay of mean `detour_mean`
    /// seconds. This is the standard noise-injection model of the HPC noise
    /// literature and matches the long-tailed distributions the paper cites
    /// (its refs \[7\], \[8\]).
    HeavyTail {
        /// Relative standard deviation of the base jitter.
        sigma_frac: f64,
        /// Detour events per second of execution.
        rate_per_sec: f64,
        /// Mean detour length (seconds).
        detour_mean: f64,
    },
}

impl NoiseModel {
    /// Convenience constructor for [`NoiseModel::Gaussian`].
    pub fn gaussian(sigma_frac: f64) -> Self {
        NoiseModel::Gaussian { sigma_frac }
    }

    /// Convenience constructor for [`NoiseModel::HeavyTail`].
    pub fn heavy_tail(sigma_frac: f64, rate_per_sec: f64, detour_mean: f64) -> Self {
        NoiseModel::HeavyTail { sigma_frac, rate_per_sec, detour_mean }
    }

    /// Whether this model perturbs durations at all.
    pub fn is_none(&self) -> bool {
        matches!(self, NoiseModel::None)
    }

    /// Sample the multiplicative jitter applied to wire transfer times
    /// (detours are CPU-side and do not stretch the wire).
    pub fn wire_factor(&self, rng: &mut ChaCha8Rng) -> f64 {
        match *self {
            NoiseModel::None => 1.0,
            NoiseModel::Gaussian { sigma_frac } | NoiseModel::HeavyTail { sigma_frac, .. } => {
                gaussian_factor(rng, sigma_frac)
            }
        }
    }

    /// Perturb a CPU-side duration (compute, overheads, reductions). Zero
    /// durations stay zero.
    #[inline]
    pub fn perturb(&self, duration: f64, rng: &mut ChaCha8Rng) -> f64 {
        match *self {
            NoiseModel::None => duration,
            _ if duration == 0.0 => 0.0,
            NoiseModel::Gaussian { sigma_frac } => duration * gaussian_factor(rng, sigma_frac),
            NoiseModel::HeavyTail { sigma_frac, rate_per_sec, detour_mean } => {
                let mut d = duration * gaussian_factor(rng, sigma_frac);
                // Expected detours in this duration; sample one detour with
                // the aggregate probability (durations are short relative to
                // 1/rate in practice, so 0/1 detours dominate).
                let p_detour = (duration * rate_per_sec).min(1.0);
                if rng.gen::<f64>() < p_detour {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    d += detour_mean * (-u.ln());
                }
                d
            }
        }
    }
}

/// Approximately-normal multiplicative factor via the sum of uniforms,
/// truncated below at 0.5 so the factor is always positive. One keystream
/// word supplies four 16-bit uniforms (Irwin–Hall n=4, rescaled to unit
/// variance) — `perturb` runs once per simulator event, so the sample cost
/// matters.
fn gaussian_factor(rng: &mut ChaCha8Rng, sigma_frac: f64) -> f64 {
    use rand::RngCore;
    let w = rng.next_u64();
    let sum = ((w & 0xFFFF) + ((w >> 16) & 0xFFFF) + ((w >> 32) & 0xFFFF) + (w >> 48)) as f64
        * (1.0 / 65536.0);
    // Irwin–Hall n=4: mean 2, variance 1/3 → ×√3 for a unit-variance z.
    let z = (sum - 2.0) * 1.732_050_807_568_877_2;
    (1.0 + sigma_frac * z).max(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn none_is_identity() {
        let mut r = rng(1);
        assert_eq!(NoiseModel::None.perturb(3.5, &mut r), 3.5);
        assert_eq!(NoiseModel::None.wire_factor(&mut r), 1.0);
    }

    #[test]
    fn gaussian_centered_near_one() {
        let mut r = rng(2);
        let m = NoiseModel::gaussian(0.05);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| m.wire_factor(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean factor {mean}");
    }

    #[test]
    fn perturbed_durations_stay_positive() {
        let mut r = rng(3);
        let m = NoiseModel::heavy_tail(0.5, 100.0, 1e-3);
        for _ in 0..10_000 {
            let d = m.perturb(1e-3, &mut r);
            assert!(d >= 0.5e-3, "duration {d}");
        }
    }

    #[test]
    fn detour_rate_scales_with_duration() {
        // A long phase should be hit by detours far more often than a short
        // op: count perturbations that gained > half a detour.
        let m = NoiseModel::heavy_tail(0.0, 10.0, 1e-3);
        let hits = |dur: f64, seed: u64| {
            let mut r = rng(seed);
            (0..5_000).filter(|_| m.perturb(dur, &mut r) > dur * 1.001 + 0.2e-3).count()
        };
        let long = hits(10e-3, 5); // p ≈ 0.1
        let short = hits(10e-6, 6); // p ≈ 1e-4
        assert!(long > 300, "long-phase detours: {long}");
        assert!(short < 20, "short-op detours: {short}");
    }

    #[test]
    fn detours_are_absolute_not_multiplicative() {
        // Mean extra time should approximate rate·duration·detour_mean,
        // independent of how that duration would scale multiplicatively.
        let m = NoiseModel::heavy_tail(0.0, 50.0, 2e-3);
        let mut r = rng(9);
        let dur = 10e-3;
        let n = 20_000;
        let mean_extra: f64 =
            (0..n).map(|_| m.perturb(dur, &mut r) - dur).sum::<f64>() / n as f64;
        let expect = dur * 50.0 * 2e-3; // 1 ms
        assert!((mean_extra - expect).abs() < expect * 0.2, "{mean_extra} vs {expect}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = NoiseModel::heavy_tail(0.05, 20.0, 1e-3);
        let a: Vec<f64> = { let mut r = rng(7); (0..100).map(|_| m.perturb(1e-3, &mut r)).collect() };
        let b: Vec<f64> = { let mut r = rng(7); (0..100).map(|_| m.perturb(1e-3, &mut r)).collect() };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_duration_unperturbed() {
        let mut r = rng(8);
        assert_eq!(NoiseModel::gaussian(0.5).perturb(0.0, &mut r), 0.0);
    }
}
