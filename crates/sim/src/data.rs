//! Abstract dataflow payloads used to *verify* collective algorithms.
//!
//! Instead of moving real bytes, every buffer slot holds a [`Value`]: a map
//! from a logical block coordinate to the set of ranks whose contributions
//! that block currently contains.
//!
//! * Data-movement collectives (bcast/scatter/gather/allgather/alltoall) use
//!   blocks `(origin_rank, index)` whose contributor set is the singleton
//!   `{origin_rank}`.
//! * Reduction collectives use blocks `(0, segment)`; a partial reduction of
//!   segment `s` over ranks `{2,5}` is the entry `(0,s) → {2,5}`. Reducing
//!   two partials with overlapping contributor sets is a *double-count* and
//!   is reported as a dataflow error.
//!
//! After a tracked run, per-collective predicates (in `pap-collectives`)
//! assert the final values, e.g. "every rank's result block `(0,s)` contains
//! all `p` contributions exactly once" for Allreduce.

use std::collections::BTreeMap;
use std::sync::Arc;

/// A set of ranks, stored as a bitset (supports up to a few thousand ranks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankSet {
    words: Vec<u64>,
}

impl RankSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Singleton set `{rank}`.
    pub fn singleton(rank: usize) -> Self {
        let mut s = Self::new();
        s.insert(rank);
        s
    }

    /// Set `{0, 1, …, p-1}`.
    pub fn full(p: usize) -> Self {
        let mut s = Self::new();
        for r in 0..p {
            s.insert(r);
        }
        s
    }

    /// Insert a rank. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, rank: usize) -> bool {
        let (w, b) = (rank / 64, rank % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Membership test.
    pub fn contains(&self, rank: usize) -> bool {
        let (w, b) = (rank / 64, rank % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Number of ranks in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set is exactly `{0..p}`.
    pub fn is_full(&self, p: usize) -> bool {
        self.len() == p && (0..p).all(|r| self.contains(r))
    }

    /// Whether the two sets share any rank.
    pub fn intersects(&self, other: &RankSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &RankSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(w, &bits)| (0..64).filter(move |b| bits & (1 << b) != 0).map(move |b| w * 64 + b))
    }
}

impl FromIterator<usize> for RankSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = RankSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// Logical block coordinate: `(origin, index)` for data movement, `(0, seg)`
/// for reductions.
pub type BlockCoord = (u32, u32);

/// Selects a subset of a slot's blocks, for sends that transfer only part of
/// a buffer (segmented algorithms, reduce-scatter chunks, Bruck rounds).
///
/// Filters act on the *index* part of the coordinate (`coord.1`): the segment
/// for reductions, the destination rank for all-to-all blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockFilter {
    /// Keep every block.
    All,
    /// Keep blocks with `lo <= coord.1 < hi`.
    SegRange(u32, u32),
    /// Keep all-to-all blocks whose Bruck *position*
    /// `(dest - origin) mod modulo` (i.e. `(coord.1 - coord.0) mod modulo`)
    /// has `bit` set. A block's position is invariant while it is forwarded,
    /// which is exactly the Bruck round selection rule.
    OriginOffsetBit {
        /// Bit of the position that must be set.
        bit: u8,
        /// Ring size (the process count).
        modulo: u32,
    },
    /// Keep blocks whose selected coordinate, taken relative to `base` on a
    /// ring of `modulo`, falls in `[lo, hi)`: i.e.
    /// `(c + modulo - base) % modulo ∈ [lo, hi)` with `c = coord.0` when
    /// `on_origin` else `coord.1`. Used by Bruck/recursive-doubling
    /// allgather rounds (origin windows relative to the sender) and by
    /// binomial scatter (subtree index windows relative to the root).
    OffsetRange {
        /// Match on `coord.0` (origin) when true, else on `coord.1`.
        on_origin: bool,
        /// Ring base the offset is taken against.
        base: u32,
        /// Inclusive lower offset.
        lo: u32,
        /// Exclusive upper offset.
        hi: u32,
        /// Ring size.
        modulo: u32,
    },
}

impl BlockFilter {
    /// Whether `coord` passes the filter.
    #[inline]
    pub fn matches(&self, coord: BlockCoord) -> bool {
        match *self {
            BlockFilter::All => true,
            BlockFilter::SegRange(lo, hi) => coord.1 >= lo && coord.1 < hi,
            BlockFilter::OriginOffsetBit { bit, modulo } => {
                let off = (coord.1 + modulo - coord.0 % modulo) % modulo;
                off & (1 << bit) != 0
            }
            BlockFilter::OffsetRange { on_origin, base, lo, hi, modulo } => {
                let c = if on_origin { coord.0 } else { coord.1 };
                let off = (c % modulo + modulo - base % modulo) % modulo;
                off >= lo && off < hi
            }
        }
    }
}

/// Abstract content of one buffer slot.
///
/// The block map is `Arc`-backed copy-on-write: cloning a `Value` (payload
/// snapshots, slot copies) is a reference-count bump, and a deep copy happens
/// only when a shared value is mutated. This is what makes the engine's
/// tracked-data mode affordable — every send snapshots its payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Value {
    blocks: Arc<BTreeMap<BlockCoord, RankSet>>,
}

impl Value {
    /// Empty value.
    pub fn empty() -> Self {
        Self::default()
    }

    fn from_map(blocks: BTreeMap<BlockCoord, RankSet>) -> Self {
        Value { blocks: Arc::new(blocks) }
    }

    /// Mutable access to the block map, copying it first if shared.
    #[inline]
    fn blocks_mut(&mut self) -> &mut BTreeMap<BlockCoord, RankSet> {
        Arc::make_mut(&mut self.blocks)
    }

    /// The input contribution of `rank` for reduction segments
    /// `seg_lo..seg_hi`: each segment maps to `{rank}`.
    pub fn reduce_input(rank: usize, seg_lo: u32, seg_hi: u32) -> Self {
        let mut blocks = BTreeMap::new();
        for s in seg_lo..seg_hi {
            blocks.insert((0, s), RankSet::singleton(rank));
        }
        Self::from_map(blocks)
    }

    /// A movement block `(origin, index)` owned by `origin`.
    pub fn movement_block(origin: usize, index: u32) -> Self {
        let mut blocks = BTreeMap::new();
        blocks.insert((origin as u32, index), RankSet::singleton(origin));
        Self::from_map(blocks)
    }

    /// Several movement blocks from one origin: indices `lo..hi`.
    pub fn movement_blocks(origin: usize, lo: u32, hi: u32) -> Self {
        let mut blocks = BTreeMap::new();
        for i in lo..hi {
            blocks.insert((origin as u32, i), RankSet::singleton(origin));
        }
        Self::from_map(blocks)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the value holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Contributor set of a block, if present.
    pub fn get(&self, coord: BlockCoord) -> Option<&RankSet> {
        self.blocks.get(&coord)
    }

    /// Insert/replace one block.
    pub fn set(&mut self, coord: BlockCoord, contribs: RankSet) {
        self.blocks_mut().insert(coord, contribs);
    }

    /// Iterate over `(coord, contributors)` in coordinate order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockCoord, &RankSet)> {
        self.blocks.iter().map(|(&c, s)| (c, s))
    }

    /// Reduction merge: union contributor sets per block; overlapping
    /// contributors for the same block are a double-count.
    ///
    /// Returns `Err` with a description on double-count; the merge still
    /// proceeds (so downstream checks see the union).
    pub fn reduce_from(&mut self, other: &Value) -> Result<(), String> {
        if self.is_empty() {
            // No overlap possible: share the other side's map.
            self.blocks = Arc::clone(&other.blocks);
            return Ok(());
        }
        let mut err = None;
        let blocks = Arc::make_mut(&mut self.blocks);
        for (coord, set) in other.blocks.iter() {
            match blocks.get_mut(coord) {
                Some(existing) => {
                    if existing.intersects(set) && err.is_none() {
                        err = Some(format!(
                            "double-counted contribution in block {coord:?}: {:?} ∩ {:?}",
                            existing.iter().collect::<Vec<_>>(),
                            set.iter().collect::<Vec<_>>()
                        ));
                    }
                    existing.union_with(set);
                }
                None => {
                    blocks.insert(*coord, set.clone());
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Movement merge: union of block maps. A block arriving twice with the
    /// *same* contributors is idempotent; differing contributors are an
    /// error (two different things claiming the same coordinate).
    pub fn merge_from(&mut self, other: &Value) -> Result<(), String> {
        if self.is_empty() {
            // No conflict possible: share the other side's map.
            self.blocks = Arc::clone(&other.blocks);
            return Ok(());
        }
        let mut err = None;
        let blocks = Arc::make_mut(&mut self.blocks);
        for (coord, set) in other.blocks.iter() {
            match blocks.get_mut(coord) {
                Some(existing) if existing == set => {}
                Some(existing) => {
                    if err.is_none() {
                        err = Some(format!(
                            "conflicting content for block {coord:?}: {:?} vs {:?}",
                            existing.iter().collect::<Vec<_>>(),
                            set.iter().collect::<Vec<_>>()
                        ));
                    }
                    existing.union_with(set);
                }
                None => {
                    blocks.insert(*coord, set.clone());
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Extract a sub-value containing only blocks with coordinates for which
    /// `pred` returns true (used by schedules that send a slice of a slot).
    pub fn filtered(&self, mut pred: impl FnMut(BlockCoord) -> bool) -> Value {
        Self::from_map(
            self.blocks
                .iter()
                .filter(|(&c, _)| pred(c))
                .map(|(&c, s)| (c, s.clone()))
                .collect(),
        )
    }

    /// Overwrite merge: replace/insert every block of `other` (no conflict
    /// checking). Used by allgather phases where complete blocks replace
    /// stale partials.
    pub fn overwrite_from(&mut self, other: &Value) {
        if self.is_empty() {
            self.blocks = Arc::clone(&other.blocks);
            return;
        }
        let blocks = Arc::make_mut(&mut self.blocks);
        for (coord, set) in other.blocks.iter() {
            blocks.insert(*coord, set.clone());
        }
    }

    /// Remove every block matching `filter` (e.g. blocks just forwarded in a
    /// Bruck round).
    pub fn drop_matching(&mut self, filter: BlockFilter) {
        if self.blocks.keys().any(|&c| filter.matches(c)) {
            self.blocks_mut().retain(|&c, _| !filter.matches(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rankset_basics() {
        let mut s = RankSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(130));
        assert!(s.contains(5));
        assert!(s.contains(130));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 130]);
    }

    #[test]
    fn rankset_full_and_union() {
        let f = RankSet::full(100);
        assert!(f.is_full(100));
        assert!(!f.is_full(101));
        let mut a = RankSet::singleton(1);
        let b = RankSet::singleton(99);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(99));
        assert!(a.intersects(&b));
    }

    #[test]
    fn rankset_from_iterator() {
        let s: RankSet = [3usize, 1, 4, 1, 5].into_iter().collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
    }

    #[test]
    fn reduce_merge_unions_contributions() {
        let mut a = Value::reduce_input(0, 0, 4);
        let b = Value::reduce_input(1, 0, 4);
        a.reduce_from(&b).unwrap();
        for s in 0..4 {
            assert!(a.get((0, s)).unwrap().is_full(2));
        }
    }

    #[test]
    fn reduce_merge_detects_double_count() {
        let mut a = Value::reduce_input(0, 0, 1);
        let b = Value::reduce_input(0, 0, 1);
        assert!(a.reduce_from(&b).is_err());
    }

    #[test]
    fn movement_merge_detects_conflicts_and_idempotence() {
        let mut a = Value::movement_block(0, 3);
        // Same block again: fine.
        a.merge_from(&Value::movement_block(0, 3)).unwrap();
        // A block claiming the same coordinate with other contributors: error.
        let mut rogue = Value::empty();
        rogue.set((0, 3), RankSet::singleton(7));
        assert!(a.merge_from(&rogue).is_err());
    }

    #[test]
    fn filtered_selects_blocks() {
        let v = Value::movement_blocks(2, 0, 10);
        let f = v.filtered(|(_, i)| i < 3);
        assert_eq!(f.len(), 3);
        assert!(f.get((2, 2)).is_some());
        assert!(f.get((2, 3)).is_none());
    }

    #[test]
    fn block_filters_select_expected_coords() {
        assert!(BlockFilter::All.matches((3, 9)));
        let r = BlockFilter::SegRange(2, 5);
        assert!(r.matches((0, 2)) && r.matches((0, 4)));
        assert!(!r.matches((0, 5)) && !r.matches((0, 1)));
        // Origin-offset bit: block (origin 3, dest 4) has position 1 in a
        // ring of 8; position is invariant under forwarding.
        let f = BlockFilter::OriginOffsetBit { bit: 0, modulo: 8 };
        assert!(f.matches((3, 4))); // position 1, bit0 set
        assert!(!f.matches((3, 5))); // position 2
        assert!(f.matches((3, 6))); // position 3
        assert!(!f.matches((3, 3))); // position 0
        assert!(f.matches((7, 0))); // wrap-around: position 1
        let f1 = BlockFilter::OriginOffsetBit { bit: 1, modulo: 8 };
        assert!(f1.matches((3, 5))); // position 2
        assert!(!f1.matches((3, 4))); // position 1
        // Offset range on origin: base 6, ring 8, window [0, 3) → origins 6,7,0.
        let fr = BlockFilter::OffsetRange { on_origin: true, base: 6, lo: 0, hi: 3, modulo: 8 };
        assert!(fr.matches((6, 0)) && fr.matches((7, 0)) && fr.matches((0, 0)));
        assert!(!fr.matches((1, 0)) && !fr.matches((5, 0)));
        // Same window on the index coordinate.
        let fi = BlockFilter::OffsetRange { on_origin: false, base: 2, lo: 1, hi: 2, modulo: 4 };
        assert!(fi.matches((9, 3)));
        assert!(!fi.matches((9, 2)) && !fi.matches((9, 0)));
    }

    #[test]
    fn overwrite_and_drop() {
        let mut v = Value::movement_blocks(0, 0, 4);
        let mut repl = Value::empty();
        repl.set((0, 1), RankSet::singleton(9));
        v.overwrite_from(&repl);
        assert!(v.get((0, 1)).unwrap().contains(9));
        v.drop_matching(BlockFilter::SegRange(0, 2));
        assert_eq!(v.len(), 2);
        assert!(v.get((0, 2)).is_some() && v.get((0, 0)).is_none());
    }

    #[test]
    fn reduce_input_spans_segments() {
        let v = Value::reduce_input(3, 2, 5);
        assert_eq!(v.len(), 3);
        assert!(v.get((0, 2)).unwrap().contains(3));
        assert!(v.get((0, 1)).is_none());
    }
}
