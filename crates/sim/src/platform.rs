//! Cluster platform models: a two-level hierarchy (cores within a node,
//! nodes behind a switch), with per-level latency/bandwidth, protocol
//! thresholds, and CPU overheads.
//!
//! Four presets are provided:
//!
//! * [`Platform::simcluster`] — the noise-free simulation platform of §III-A
//!   of the paper (32 nodes × 32 cores, 10 Gb/s, 1 µs intra / 2 µs inter).
//! * [`Platform::hydra`], [`Platform::galileo100`], [`Platform::discoverer`]
//!   — analogues of the three production machines of Table I. They are not
//!   one-to-one copies of the real interconnects; they are configured so the
//!   *qualitative* regime differences (latency/bandwidth ratio, protocol
//!   threshold, noise level) that make the three machines disagree about the
//!   best algorithm are present.

use serde::{Deserialize, Serialize};

use crate::noise::NoiseModel;
use crate::time::SimTime;

/// Latency/bandwidth parameters of one level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way latency in seconds.
    pub latency: SimTime,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkParams {
    /// Pure transfer time of `bytes` over this link (no contention).
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Identifier of a machine preset (used by experiment configs and tuning
/// tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineId {
    /// Noise-free simulation platform of §III-A.
    SimCluster,
    /// Hydra analogue (36 nodes, Omni-Path 100 Gb/s, Table I).
    Hydra,
    /// Galileo100 analogue (554 nodes, IB HDR100, Table I).
    Galileo100,
    /// Discoverer analogue (1128 nodes, IB HDR Dragonfly+, Table I).
    Discoverer,
}

impl MachineId {
    /// All machine presets, simulation platform first.
    pub const ALL: [MachineId; 4] =
        [MachineId::SimCluster, MachineId::Hydra, MachineId::Galileo100, MachineId::Discoverer];

    /// The three "real machine" presets of Table I.
    pub const REAL: [MachineId; 3] = [MachineId::Hydra, MachineId::Galileo100, MachineId::Discoverer];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MachineId::SimCluster => "SimCluster",
            MachineId::Hydra => "Hydra",
            MachineId::Galileo100 => "Galileo100",
            MachineId::Discoverer => "Discoverer",
        }
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MachineId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "simcluster" | "sim" => Ok(MachineId::SimCluster),
            "hydra" => Ok(MachineId::Hydra),
            "galileo100" | "galileo" | "g100" => Ok(MachineId::Galileo100),
            "discoverer" | "disco" => Ok(MachineId::Discoverer),
        other => Err(format!("unknown machine '{other}' (expected simcluster|hydra|galileo100|discoverer)")),
        }
    }
}

/// A concrete platform: machine parameters plus the number of MPI ranks laid
/// out on it (block mapping: rank `r` runs on node `r / cores_per_node`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Which preset this platform was built from.
    pub machine: MachineId,
    /// Number of compute nodes available.
    pub nodes: usize,
    /// Cores (rank slots) per node.
    pub cores_per_node: usize,
    /// Number of MPI ranks placed on the machine.
    pub ranks: usize,
    /// Shared-memory (intra-node) link parameters.
    pub intra: LinkParams,
    /// Network (inter-node) link parameters.
    pub inter: LinkParams,
    /// Messages strictly larger than this use the rendezvous protocol.
    pub eager_threshold: u64,
    /// Per-message sender CPU overhead `o_s` (seconds).
    pub send_overhead: SimTime,
    /// Per-message receiver CPU overhead `o_r` (seconds).
    pub recv_overhead: SimTime,
    /// Local reduction cost per byte (seconds/byte).
    pub reduce_cost_per_byte: f64,
    /// Model per-node NIC egress/ingress serialization (contention). The
    /// simulation study and all experiments keep this on; an ablation bench
    /// turns it off.
    pub nic_serialization: bool,
    /// Default noise model of this machine (used by the micro-benchmark
    /// layer; the engine itself takes noise via `SimConfig`).
    pub default_noise: NoiseModel,
}

impl Platform {
    /// Build a platform preset with `ranks` MPI ranks.
    ///
    /// Rank counts beyond the preset's validated baseline capacity scale
    /// the machine out with identical additional nodes (same per-node core
    /// count and link parameters) — the synthetic growth used by the
    /// 10K–100K-rank scale benchmarks and `papctl --ranks`.
    ///
    /// # Panics
    /// Panics if `ranks` is zero.
    pub fn preset(machine: MachineId, ranks: usize) -> Self {
        let mut p = match machine {
            MachineId::SimCluster => Self {
                machine,
                nodes: 32,
                cores_per_node: 32,
                ranks,
                intra: LinkParams { latency: 1e-6, bandwidth: 1.25e9 },
                inter: LinkParams { latency: 2e-6, bandwidth: 1.25e9 },
                eager_threshold: 16 * 1024,
                send_overhead: 0.5e-6,
                recv_overhead: 0.5e-6,
                reduce_cost_per_byte: 5e-11,
                nic_serialization: true,
                default_noise: NoiseModel::None,
            },
            MachineId::Hydra => Self {
                machine,
                nodes: 36,
                cores_per_node: 32,
                ranks,
                intra: LinkParams { latency: 0.3e-6, bandwidth: 8.0e9 },
                inter: LinkParams { latency: 1.1e-6, bandwidth: 12.5e9 },
                eager_threshold: 16 * 1024,
                send_overhead: 0.2e-6,
                recv_overhead: 0.2e-6,
                reduce_cost_per_byte: 4e-11,
                nic_serialization: true,
                default_noise: NoiseModel::gaussian(0.02),
            },
            MachineId::Galileo100 => Self {
                machine,
                nodes: 554,
                cores_per_node: 48,
                ranks,
                intra: LinkParams { latency: 0.35e-6, bandwidth: 9.0e9 },
                inter: LinkParams { latency: 1.0e-6, bandwidth: 12.5e9 },
                eager_threshold: 64 * 1024,
                send_overhead: 0.25e-6,
                recv_overhead: 0.25e-6,
                reduce_cost_per_byte: 4.5e-11,
                nic_serialization: true,
                default_noise: NoiseModel::heavy_tail(0.03, 4.0, 1.5e-3),
            },
            MachineId::Discoverer => Self {
                machine,
                nodes: 1128,
                cores_per_node: 128,
                ranks,
                intra: LinkParams { latency: 0.4e-6, bandwidth: 10.0e9 },
                inter: LinkParams { latency: 1.3e-6, bandwidth: 25.0e9 },
                eager_threshold: 32 * 1024,
                send_overhead: 0.3e-6,
                recv_overhead: 0.3e-6,
                reduce_cost_per_byte: 5e-11,
                nic_serialization: true,
                default_noise: NoiseModel::heavy_tail(0.025, 6.0, 2.0e-3),
            },
        };
        assert!(ranks > 0, "platform needs at least one rank");
        if ranks > p.nodes * p.cores_per_node {
            p.nodes = ranks.div_ceil(p.cores_per_node);
        }
        p
    }

    /// The noise-free simulation platform of §III-A with `ranks` ranks.
    pub fn simcluster(ranks: usize) -> Self {
        Self::preset(MachineId::SimCluster, ranks)
    }

    /// Hydra analogue with `ranks` ranks.
    pub fn hydra(ranks: usize) -> Self {
        Self::preset(MachineId::Hydra, ranks)
    }

    /// Galileo100 analogue with `ranks` ranks.
    pub fn galileo100(ranks: usize) -> Self {
        Self::preset(MachineId::Galileo100, ranks)
    }

    /// Discoverer analogue with `ranks` ranks.
    pub fn discoverer(ranks: usize) -> Self {
        Self::preset(MachineId::Discoverer, ranks)
    }

    /// Node hosting `rank` (block mapping).
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Link parameters governing a message from `a` to `b`.
    #[inline]
    pub fn link(&self, a: usize, b: usize) -> &LinkParams {
        if self.same_node(a, b) {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// Number of nodes actually occupied by the rank layout.
    pub fn occupied_nodes(&self) -> usize {
        self.ranks.div_ceil(self.cores_per_node)
    }

    /// Whether a message of `bytes` uses the eager protocol.
    #[inline]
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Uncontended point-to-point time estimate (`o_s + L + bytes/bw`),
    /// useful for back-of-envelope model checks in tests.
    pub fn p2p_estimate(&self, from: usize, to: usize, bytes: u64) -> SimTime {
        self.send_overhead + self.link(from, to).transfer_time(bytes) + self.recv_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_places_ranks() {
        let p = Platform::simcluster(64);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(31), 0);
        assert_eq!(p.node_of(32), 1);
        assert!(p.same_node(0, 31));
        assert!(!p.same_node(31, 32));
        assert_eq!(p.occupied_nodes(), 2);
    }

    #[test]
    fn link_selection_follows_hierarchy() {
        let p = Platform::simcluster(64);
        assert_eq!(p.link(0, 1).latency, p.intra.latency);
        assert_eq!(p.link(0, 32).latency, p.inter.latency);
    }

    #[test]
    fn oversubscribed_rank_counts_scale_the_machine_out() {
        let p = Platform::simcluster(32 * 32 + 1);
        assert_eq!(p.nodes, 33, "one extra node for the overflow rank");
        assert_eq!(p.occupied_nodes(), 33);
        let big = Platform::simcluster(102_400);
        assert_eq!(big.nodes, 3200);
        // Baseline capacity keeps the validated topology untouched.
        assert_eq!(Platform::simcluster(1024).nodes, 32);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = Platform::simcluster(0);
    }

    #[test]
    fn presets_have_distinct_regimes() {
        let h = Platform::hydra(4);
        let g = Platform::galileo100(4);
        let d = Platform::discoverer(4);
        // The FT message size (32768 B) must fall in different protocol
        // regimes on different machines — one lever behind Fig. 7/8.
        assert!(!h.is_eager(32_768));
        assert!(g.is_eager(32_768));
        assert!(d.is_eager(32_768));
        assert!(!d.is_eager(32_769));
        assert!(d.inter.bandwidth > h.inter.bandwidth);
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth_term() {
        let l = LinkParams { latency: 1e-6, bandwidth: 1e9 };
        let t = l.transfer_time(1000);
        assert!((t - (1e-6 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn machine_id_parses_and_displays() {
        use std::str::FromStr;
        for m in MachineId::ALL {
            let round = MachineId::from_str(&m.name().to_lowercase()).unwrap();
            assert_eq!(round, m);
        }
        assert!(MachineId::from_str("nope").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::hydra(8);
        let s = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&s).unwrap();
        assert_eq!(back.machine, p.machine);
        assert_eq!(back.ranks, p.ranks);
        assert_eq!(back.eager_threshold, p.eager_threshold);
    }
}
