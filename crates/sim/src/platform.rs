//! Cluster platform models: a two-level hierarchy (cores within a node,
//! nodes behind a switch), with per-level latency/bandwidth, protocol
//! thresholds, and CPU overheads.
//!
//! Four presets are provided:
//!
//! * [`Platform::simcluster`] — the noise-free simulation platform of §III-A
//!   of the paper (32 nodes × 32 cores, 10 Gb/s, 1 µs intra / 2 µs inter).
//! * [`Platform::hydra`], [`Platform::galileo100`], [`Platform::discoverer`]
//!   — analogues of the three production machines of Table I. They are not
//!   one-to-one copies of the real interconnects; they are configured so the
//!   *qualitative* regime differences (latency/bandwidth ratio, protocol
//!   threshold, noise level) that make the three machines disagree about the
//!   best algorithm are present.
//!
//! Beyond the presets, a [`MachineId::Custom`] machine carries parameters
//! fitted by `pap-calibrate` from a measured probe: its name is interned
//! process-wide (so `MachineId` stays `Copy + Eq + Hash`) and its
//! [`PlatformSpec`] lives in a global registry populated by
//! [`register_custom_platform`].

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use serde::{Content, Deserialize, Error as SerdeError, Serialize};

use crate::noise::NoiseModel;
use crate::time::SimTime;

/// Latency/bandwidth parameters of one level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way latency in seconds.
    pub latency: SimTime,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkParams {
    /// Pure transfer time of `bytes` over this link (no contention).
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Opaque interned handle of a [`MachineId::Custom`] machine.
///
/// The wrapped index points into the process-global custom-machine registry;
/// two tags are equal iff they name the same (case-normalized) machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomTag(u32);

/// Identifier of a machine preset (used by experiment configs and tuning
/// tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineId {
    /// Noise-free simulation platform of §III-A.
    SimCluster,
    /// Hydra analogue (36 nodes, Omni-Path 100 Gb/s, Table I).
    Hydra,
    /// Galileo100 analogue (554 nodes, IB HDR100, Table I).
    Galileo100,
    /// Discoverer analogue (1128 nodes, IB HDR Dragonfly+, Table I).
    Discoverer,
    /// A calibrated machine that is not one of the built-in presets. The tag
    /// indexes the process-global registry of interned names and fitted
    /// [`PlatformSpec`]s (see [`register_custom_platform`]).
    Custom(CustomTag),
}

/// Interned names and fitted specs of all custom machines seen by this
/// process. Names are leaked exactly once so `MachineId::name` can keep its
/// `&'static str` return type; the set of distinct custom names per process
/// is tiny (one per calibrated machine).
struct CustomRegistry {
    /// Full display names (`"custom:<name>"`), indexed by tag.
    names: Vec<&'static str>,
    /// Case-normalized bare name → tag index.
    index: HashMap<String, u32>,
    /// Fitted parameters, present once the machine has been registered.
    specs: Vec<Option<PlatformSpec>>,
}

fn custom_registry() -> &'static RwLock<CustomRegistry> {
    static REG: OnceLock<RwLock<CustomRegistry>> = OnceLock::new();
    REG.get_or_init(|| {
        RwLock::new(CustomRegistry { names: Vec::new(), index: HashMap::new(), specs: Vec::new() })
    })
}

/// Largest accepted custom machine name.
pub const CUSTOM_NAME_MAX: usize = 48;

fn validate_custom_name(name: &str) -> Result<String, String> {
    let norm = name.trim().to_ascii_lowercase();
    if norm.is_empty() || norm.len() > CUSTOM_NAME_MAX {
        return Err(format!("custom machine name must be 1..={CUSTOM_NAME_MAX} characters"));
    }
    if !norm.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c)) {
        return Err(format!("custom machine name '{norm}' has characters outside [a-z0-9._-]"));
    }
    if norm.parse::<MachineId>().map(|m| !m.is_custom()).unwrap_or(false) {
        return Err(format!("'{norm}' is a built-in preset name"));
    }
    Ok(norm)
}

/// Register (or re-register) the fitted parameters of a custom machine and
/// return its [`MachineId`]. Re-registering an existing name replaces the
/// spec in place — recalibration keeps the same tag, so `MachineId` values
/// held elsewhere stay valid and see the new parameters.
pub fn register_custom_platform(name: &str, spec: PlatformSpec) -> Result<MachineId, String> {
    if spec.cores_per_node == 0 || spec.nodes == 0 {
        return Err("custom platform needs at least one node and one core".into());
    }
    let id = MachineId::custom(name)?;
    let MachineId::Custom(tag) = id else { unreachable!("custom() returns Custom") };
    custom_registry().write().unwrap().specs[tag.0 as usize] = Some(spec);
    Ok(id)
}

/// Fitted parameters of a custom machine, if it has been registered.
pub fn custom_platform_spec(machine: MachineId) -> Option<PlatformSpec> {
    match machine {
        MachineId::Custom(tag) => {
            custom_registry().read().unwrap().specs.get(tag.0 as usize).cloned().flatten()
        }
        _ => None,
    }
}

impl MachineId {
    /// All machine presets, simulation platform first.
    pub const ALL: [MachineId; 4] =
        [MachineId::SimCluster, MachineId::Hydra, MachineId::Galileo100, MachineId::Discoverer];

    /// The three "real machine" presets of Table I.
    pub const REAL: [MachineId; 3] = [MachineId::Hydra, MachineId::Galileo100, MachineId::Discoverer];

    /// Intern a custom machine name. Names are case-normalized and restricted
    /// to `[a-z0-9._-]`; interning does not require a registered spec, so
    /// `"custom:site"` parses (e.g. from a snapshot) before calibration has
    /// run — [`Platform::try_preset`] reports the missing spec.
    pub fn custom(name: &str) -> Result<MachineId, String> {
        let norm = validate_custom_name(name)?;
        let mut reg = custom_registry().write().unwrap();
        if let Some(&tag) = reg.index.get(&norm) {
            return Ok(MachineId::Custom(CustomTag(tag)));
        }
        let tag = u32::try_from(reg.names.len()).expect("custom machine registry overflow");
        let display: &'static str = Box::leak(format!("custom:{norm}").into_boxed_str());
        reg.names.push(display);
        reg.specs.push(None);
        reg.index.insert(norm, tag);
        Ok(MachineId::Custom(CustomTag(tag)))
    }

    /// Whether this is a calibrated custom machine (not a built-in preset).
    pub fn is_custom(self) -> bool {
        matches!(self, MachineId::Custom(_))
    }

    /// Stable small integer for seed derivation. Presets keep the values of
    /// the old unit-only discriminant (`machine as u64`), so benchmark seeds
    /// are unchanged; custom machines follow after the presets.
    pub fn seed_tag(self) -> u64 {
        match self {
            MachineId::SimCluster => 0,
            MachineId::Hydra => 1,
            MachineId::Galileo100 => 2,
            MachineId::Discoverer => 3,
            MachineId::Custom(tag) => 4 + tag.0 as u64,
        }
    }

    /// Human-readable name as used in the paper. Custom machines render as
    /// `custom:<name>`, which parses back via [`std::str::FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            MachineId::SimCluster => "SimCluster",
            MachineId::Hydra => "Hydra",
            MachineId::Galileo100 => "Galileo100",
            MachineId::Discoverer => "Discoverer",
            MachineId::Custom(tag) => custom_registry().read().unwrap().names[tag.0 as usize],
        }
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MachineId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(bare) = s.strip_prefix("custom:").or_else(|| s.strip_prefix("Custom:")) {
            return MachineId::custom(bare);
        }
        match s.to_ascii_lowercase().as_str() {
            "simcluster" | "sim" => Ok(MachineId::SimCluster),
            "hydra" => Ok(MachineId::Hydra),
            "galileo100" | "galileo" | "g100" => Ok(MachineId::Galileo100),
            "discoverer" | "disco" => Ok(MachineId::Discoverer),
            other => Err(format!(
                "unknown machine '{other}' (expected simcluster|hydra|galileo100|discoverer|custom:<name>)"
            )),
        }
    }
}

// Manual serde: unit presets serialize exactly as the old derive did (the
// variant identifier as a string), so existing snapshots and wire frames are
// unchanged; custom machines serialize as "custom:<name>" strings, which old
// formats simply never contained.
impl Serialize for MachineId {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_string())
    }
}

impl Deserialize for MachineId {
    fn from_content(c: &Content) -> Result<Self, SerdeError> {
        let s = c
            .as_str()
            .ok_or_else(|| SerdeError::custom(format!("expected machine name string, found {}", c.kind())))?;
        s.parse().map_err(SerdeError::custom)
    }
}

/// Machine parameters without a rank layout: everything [`Platform::preset`]
/// knows about a machine except `machine` and `ranks`. This is the unit that
/// `pap-calibrate` fits from a probe and that the custom-machine registry
/// stores; [`Platform::from_spec`] instantiates it for a rank count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of compute nodes available at baseline.
    pub nodes: usize,
    /// Cores (rank slots) per node.
    pub cores_per_node: usize,
    /// Shared-memory (intra-node) link parameters.
    pub intra: LinkParams,
    /// Network (inter-node) link parameters.
    pub inter: LinkParams,
    /// Messages strictly larger than this use the rendezvous protocol.
    pub eager_threshold: u64,
    /// Per-message sender CPU overhead `o_s` (seconds).
    pub send_overhead: SimTime,
    /// Per-message receiver CPU overhead `o_r` (seconds).
    pub recv_overhead: SimTime,
    /// Local reduction cost per byte (seconds/byte).
    pub reduce_cost_per_byte: f64,
    /// Model per-node NIC egress/ingress serialization (contention).
    pub nic_serialization: bool,
    /// Default noise model of this machine.
    pub default_noise: NoiseModel,
}

fn builtin_spec(machine: MachineId) -> Option<PlatformSpec> {
    let spec = match machine {
        MachineId::SimCluster => PlatformSpec {
            nodes: 32,
            cores_per_node: 32,
            intra: LinkParams { latency: 1e-6, bandwidth: 1.25e9 },
            inter: LinkParams { latency: 2e-6, bandwidth: 1.25e9 },
            eager_threshold: 16 * 1024,
            send_overhead: 0.5e-6,
            recv_overhead: 0.5e-6,
            reduce_cost_per_byte: 5e-11,
            nic_serialization: true,
            default_noise: NoiseModel::None,
        },
        MachineId::Hydra => PlatformSpec {
            nodes: 36,
            cores_per_node: 32,
            intra: LinkParams { latency: 0.3e-6, bandwidth: 8.0e9 },
            inter: LinkParams { latency: 1.1e-6, bandwidth: 12.5e9 },
            eager_threshold: 16 * 1024,
            send_overhead: 0.2e-6,
            recv_overhead: 0.2e-6,
            reduce_cost_per_byte: 4e-11,
            nic_serialization: true,
            default_noise: NoiseModel::gaussian(0.02),
        },
        MachineId::Galileo100 => PlatformSpec {
            nodes: 554,
            cores_per_node: 48,
            intra: LinkParams { latency: 0.35e-6, bandwidth: 9.0e9 },
            inter: LinkParams { latency: 1.0e-6, bandwidth: 12.5e9 },
            eager_threshold: 64 * 1024,
            send_overhead: 0.25e-6,
            recv_overhead: 0.25e-6,
            reduce_cost_per_byte: 4.5e-11,
            nic_serialization: true,
            default_noise: NoiseModel::heavy_tail(0.03, 4.0, 1.5e-3),
        },
        MachineId::Discoverer => PlatformSpec {
            nodes: 1128,
            cores_per_node: 128,
            intra: LinkParams { latency: 0.4e-6, bandwidth: 10.0e9 },
            inter: LinkParams { latency: 1.3e-6, bandwidth: 25.0e9 },
            eager_threshold: 32 * 1024,
            send_overhead: 0.3e-6,
            recv_overhead: 0.3e-6,
            reduce_cost_per_byte: 5e-11,
            nic_serialization: true,
            default_noise: NoiseModel::heavy_tail(0.025, 6.0, 2.0e-3),
        },
        MachineId::Custom(_) => return None,
    };
    Some(spec)
}

/// A concrete platform: machine parameters plus the number of MPI ranks laid
/// out on it (block mapping: rank `r` runs on node `r / cores_per_node`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Which preset this platform was built from.
    pub machine: MachineId,
    /// Number of compute nodes available.
    pub nodes: usize,
    /// Cores (rank slots) per node.
    pub cores_per_node: usize,
    /// Number of MPI ranks placed on the machine.
    pub ranks: usize,
    /// Shared-memory (intra-node) link parameters.
    pub intra: LinkParams,
    /// Network (inter-node) link parameters.
    pub inter: LinkParams,
    /// Messages strictly larger than this use the rendezvous protocol.
    pub eager_threshold: u64,
    /// Per-message sender CPU overhead `o_s` (seconds).
    pub send_overhead: SimTime,
    /// Per-message receiver CPU overhead `o_r` (seconds).
    pub recv_overhead: SimTime,
    /// Local reduction cost per byte (seconds/byte).
    pub reduce_cost_per_byte: f64,
    /// Model per-node NIC egress/ingress serialization (contention). The
    /// simulation study and all experiments keep this on; an ablation bench
    /// turns it off.
    pub nic_serialization: bool,
    /// Default noise model of this machine (used by the micro-benchmark
    /// layer; the engine itself takes noise via `SimConfig`).
    pub default_noise: NoiseModel,
}

impl Platform {
    /// Build a platform preset with `ranks` MPI ranks.
    ///
    /// Rank counts beyond the preset's validated baseline capacity scale
    /// the machine out with identical additional nodes (same per-node core
    /// count and link parameters) — the synthetic growth used by the
    /// 10K–100K-rank scale benchmarks and `papctl --ranks`.
    ///
    /// # Panics
    /// Panics if `ranks` is zero, or if `machine` is a custom machine with no
    /// registered spec — service paths should use [`Platform::try_preset`].
    pub fn preset(machine: MachineId, ranks: usize) -> Self {
        Self::try_preset(machine, ranks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Platform::preset`]: custom machines resolve through
    /// the registry and report a missing calibration instead of panicking.
    pub fn try_preset(machine: MachineId, ranks: usize) -> Result<Self, String> {
        if ranks == 0 {
            return Err("platform needs at least one rank".into());
        }
        let spec = match builtin_spec(machine) {
            Some(spec) => spec,
            None => custom_platform_spec(machine).ok_or_else(|| {
                format!("machine '{}' has no registered calibration (run `papctl calibrate` or send a Calibrate frame first)", machine.name())
            })?,
        };
        Ok(Self::from_spec(machine, &spec, ranks))
    }

    /// Instantiate a [`PlatformSpec`] for `ranks` ranks, applying the same
    /// scale-out rule as [`Platform::preset`].
    ///
    /// # Panics
    /// Panics if `ranks` is zero.
    pub fn from_spec(machine: MachineId, spec: &PlatformSpec, ranks: usize) -> Self {
        assert!(ranks > 0, "platform needs at least one rank");
        let mut nodes = spec.nodes;
        if ranks > nodes * spec.cores_per_node {
            nodes = ranks.div_ceil(spec.cores_per_node);
        }
        Platform {
            machine,
            nodes,
            cores_per_node: spec.cores_per_node,
            ranks,
            intra: spec.intra,
            inter: spec.inter,
            eager_threshold: spec.eager_threshold,
            send_overhead: spec.send_overhead,
            recv_overhead: spec.recv_overhead,
            reduce_cost_per_byte: spec.reduce_cost_per_byte,
            nic_serialization: spec.nic_serialization,
            default_noise: spec.default_noise,
        }
    }

    /// The machine parameters of this platform, without the rank layout
    /// (inverse of [`Platform::from_spec`] up to the scale-out rule).
    pub fn spec(&self) -> PlatformSpec {
        PlatformSpec {
            nodes: self.nodes,
            cores_per_node: self.cores_per_node,
            intra: self.intra,
            inter: self.inter,
            eager_threshold: self.eager_threshold,
            send_overhead: self.send_overhead,
            recv_overhead: self.recv_overhead,
            reduce_cost_per_byte: self.reduce_cost_per_byte,
            nic_serialization: self.nic_serialization,
            default_noise: self.default_noise,
        }
    }

    /// The noise-free simulation platform of §III-A with `ranks` ranks.
    pub fn simcluster(ranks: usize) -> Self {
        Self::preset(MachineId::SimCluster, ranks)
    }

    /// Hydra analogue with `ranks` ranks.
    pub fn hydra(ranks: usize) -> Self {
        Self::preset(MachineId::Hydra, ranks)
    }

    /// Galileo100 analogue with `ranks` ranks.
    pub fn galileo100(ranks: usize) -> Self {
        Self::preset(MachineId::Galileo100, ranks)
    }

    /// Discoverer analogue with `ranks` ranks.
    pub fn discoverer(ranks: usize) -> Self {
        Self::preset(MachineId::Discoverer, ranks)
    }

    /// Node hosting `rank` (block mapping).
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Link parameters governing a message from `a` to `b`.
    #[inline]
    pub fn link(&self, a: usize, b: usize) -> &LinkParams {
        if self.same_node(a, b) {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// Number of nodes actually occupied by the rank layout.
    pub fn occupied_nodes(&self) -> usize {
        self.ranks.div_ceil(self.cores_per_node)
    }

    /// Whether a message of `bytes` uses the eager protocol.
    #[inline]
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Uncontended point-to-point time estimate (`o_s + L + bytes/bw`),
    /// useful for back-of-envelope model checks in tests.
    pub fn p2p_estimate(&self, from: usize, to: usize, bytes: u64) -> SimTime {
        self.send_overhead + self.link(from, to).transfer_time(bytes) + self.recv_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_places_ranks() {
        let p = Platform::simcluster(64);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(31), 0);
        assert_eq!(p.node_of(32), 1);
        assert!(p.same_node(0, 31));
        assert!(!p.same_node(31, 32));
        assert_eq!(p.occupied_nodes(), 2);
    }

    #[test]
    fn link_selection_follows_hierarchy() {
        let p = Platform::simcluster(64);
        assert_eq!(p.link(0, 1).latency, p.intra.latency);
        assert_eq!(p.link(0, 32).latency, p.inter.latency);
    }

    #[test]
    fn oversubscribed_rank_counts_scale_the_machine_out() {
        let p = Platform::simcluster(32 * 32 + 1);
        assert_eq!(p.nodes, 33, "one extra node for the overflow rank");
        assert_eq!(p.occupied_nodes(), 33);
        let big = Platform::simcluster(102_400);
        assert_eq!(big.nodes, 3200);
        // Baseline capacity keeps the validated topology untouched.
        assert_eq!(Platform::simcluster(1024).nodes, 32);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = Platform::simcluster(0);
    }

    #[test]
    fn presets_have_distinct_regimes() {
        let h = Platform::hydra(4);
        let g = Platform::galileo100(4);
        let d = Platform::discoverer(4);
        // The FT message size (32768 B) must fall in different protocol
        // regimes on different machines — one lever behind Fig. 7/8.
        assert!(!h.is_eager(32_768));
        assert!(g.is_eager(32_768));
        assert!(d.is_eager(32_768));
        assert!(!d.is_eager(32_769));
        assert!(d.inter.bandwidth > h.inter.bandwidth);
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth_term() {
        let l = LinkParams { latency: 1e-6, bandwidth: 1e9 };
        let t = l.transfer_time(1000);
        assert!((t - (1e-6 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn machine_id_parses_and_displays() {
        use std::str::FromStr;
        for m in MachineId::ALL {
            let round = MachineId::from_str(&m.name().to_lowercase()).unwrap();
            assert_eq!(round, m);
        }
        assert!(MachineId::from_str("nope").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::hydra(8);
        let s = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&s).unwrap();
        assert_eq!(back.machine, p.machine);
        assert_eq!(back.ranks, p.ranks);
        assert_eq!(back.eager_threshold, p.eager_threshold);
    }

    #[test]
    fn machine_id_wire_form_is_the_preset_name_string() {
        // The old derived serde encoded unit variants as their identifier
        // string; the manual impl must keep that byte-identical so existing
        // snapshots load.
        for m in MachineId::ALL {
            let s = serde_json::to_string(&m).unwrap();
            assert_eq!(s, format!("\"{}\"", m.name()));
        }
        let back: MachineId = serde_json::from_str("\"Galileo100\"").unwrap();
        assert_eq!(back, MachineId::Galileo100);
    }

    #[test]
    fn custom_machine_interns_and_round_trips() {
        use std::str::FromStr;
        let a = MachineId::custom("SiteA").unwrap();
        let b = MachineId::custom("sitea").unwrap();
        assert_eq!(a, b, "names are case-normalized before interning");
        assert_eq!(a.name(), "custom:sitea");
        assert!(a.is_custom());
        assert_eq!(MachineId::from_str("custom:sitea").unwrap(), a);
        // Serde round-trip as a plain string.
        let s = serde_json::to_string(&a).unwrap();
        assert_eq!(s, "\"custom:sitea\"");
        let back: MachineId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, a);
        // Distinct names get distinct tags.
        let c = MachineId::custom("siteb").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn custom_names_are_validated() {
        assert!(MachineId::custom("").is_err());
        assert!(MachineId::custom("has space").is_err());
        assert!(MachineId::custom("hydra").is_err(), "preset names are reserved");
        assert!(MachineId::custom(&"x".repeat(CUSTOM_NAME_MAX + 1)).is_err());
        assert!(MachineId::custom("ok-name_1.2").is_ok());
    }

    #[test]
    fn unregistered_custom_machine_fails_try_preset() {
        let m = MachineId::custom("never-registered").unwrap();
        let err = Platform::try_preset(m, 8).unwrap_err();
        assert!(err.contains("no registered calibration"), "{err}");
    }

    #[test]
    fn registered_custom_machine_builds_platforms() {
        let spec = PlatformSpec { nodes: 4, cores_per_node: 8, ..Platform::hydra(1).spec() };
        let m = register_custom_platform("reg-test", spec.clone()).unwrap();
        let p = Platform::try_preset(m, 16).unwrap();
        assert_eq!(p.machine, m);
        assert_eq!(p.cores_per_node, 8);
        assert_eq!(p.nodes, 4);
        assert_eq!(p.intra, spec.intra);
        // Scale-out rule applies to custom machines too.
        let big = Platform::preset(m, 1000);
        assert_eq!(big.nodes, 125);
        // Re-registration replaces the spec under the same tag.
        let spec2 = PlatformSpec { eager_threshold: 999, ..spec };
        let m2 = register_custom_platform("reg-test", spec2).unwrap();
        assert_eq!(m, m2);
        assert_eq!(Platform::preset(m, 2).eager_threshold, 999);
    }

    #[test]
    fn spec_round_trips_through_from_spec() {
        for m in MachineId::ALL {
            let p = Platform::preset(m, 8);
            let rebuilt = Platform::from_spec(m, &p.spec(), 8);
            assert_eq!(rebuilt.eager_threshold, p.eager_threshold);
            assert_eq!(rebuilt.intra, p.intra);
            assert_eq!(rebuilt.inter, p.inter);
            assert_eq!(rebuilt.nodes, p.nodes);
        }
        // PlatformSpec itself serde round-trips (it is the calibration
        // artifact format).
        let spec = Platform::discoverer(4).spec();
        let s = serde_json::to_string(&spec).unwrap();
        let back: PlatformSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(back, spec);
    }
}
