//! Runtime fault injection: the [`FaultSpec`] carried by
//! [`crate::SimConfig`].
//!
//! The paper's robustness study (Fig. 6) perturbs *arrival patterns*; a
//! production selector must also survive faults that strike mid-collective.
//! Four fault families are modelled, all applied at **deterministic simulated
//! timestamps** so a faulted run stays byte-identical between [`crate::run_ref`]
//! and [`crate::run_par`] at any partition count:
//!
//! * [`RankStall`] — the rank freezes for a fixed interval starting at a
//!   simulated time; every completion on that rank at or after the stall is
//!   pushed back by its duration (a "warp" of the rank's local clock).
//! * [`RankCrash`] — the rank halts permanently at a simulated time. Ranks
//!   depending on it block forever and the run reports
//!   [`crate::SimError::Deadlock`], which the metric layers map to a penalty.
//! * [`LinkFault`] — a transient slowdown window on a `(src node, dst node)`
//!   channel: transfer (serialization) times of messages claiming the NIC
//!   while the window is active are multiplied by a factor.
//! * [`NoiseStorm`] — correlated CPU slowdown over a contiguous rank range
//!   and time window: noisy compute, reductions and messaging overheads
//!   started inside the window are multiplied by a factor.
//!
//! Stalls and crashes are *consumed-once per-rank state*; link and storm
//! windows are *pure functions of timestamps*. Both survive partitioned
//! execution (see DESIGN.md §13 for the argument).
//!
//! Random generation (e.g. [`FaultSpec::random_storms`]) happens at
//! **construction time** from an explicit seed — the engine itself never
//! draws fault randomness, so fault injection composes with the noise
//! models and with event elision without changing RNG streams.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Wildcard node index for [`LinkFault`] endpoints: matches every node.
pub const ANY_NODE: usize = usize::MAX;

/// Largest accepted fault timestamp/duration (seconds). Bounds the
/// arithmetic (`t + stall`, `wire × factor`) away from `f64` overflow so a
/// validated spec can never push a non-finite event time into the engine.
pub const MAX_FAULT_TIME: f64 = 1e12;

/// Largest accepted slowdown factor for links and storms.
pub const MAX_FAULT_FACTOR: f64 = 1e9;

/// A rank freeze: at simulated time `at`, rank `rank` stops making progress
/// for `stall` seconds. Work completing at or after `at` is pushed back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankStall {
    /// Global rank that stalls.
    pub rank: usize,
    /// Simulated time the freeze begins (seconds).
    pub at: SimTime,
    /// Freeze duration (seconds).
    pub stall: f64,
}

/// A permanent rank halt at simulated time `at`. The rank executes no
/// operation that would start at or after the crash event; its finish time
/// is pinned to `at`. Messages already in flight still travel, deliveries
/// addressed to the dead rank are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankCrash {
    /// Global rank that crashes.
    pub rank: usize,
    /// Simulated time of the crash (seconds).
    pub at: SimTime,
}

/// A transient slowdown window on the `(src_node, dst_node)` channel:
/// while `from <= t < until`, transfer times of messages claiming the
/// NIC at `t` are multiplied by `factor`. Either endpoint may be
/// [`ANY_NODE`] to match every node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Source cluster node (or [`ANY_NODE`]).
    pub src_node: usize,
    /// Destination cluster node (or [`ANY_NODE`]).
    pub dst_node: usize,
    /// Window start (seconds, inclusive).
    pub from: SimTime,
    /// Window end (seconds, exclusive).
    pub until: SimTime,
    /// Multiplier on the transfer time (≥ 0; > 1 slows the link down).
    pub factor: f64,
}

/// A correlated noise storm: while `from <= t < until`, CPU-side durations
/// (noisy compute, reductions, send/receive overheads) started at `t` on
/// ranks `first_rank..=last_rank` are multiplied by `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseStorm {
    /// First global rank covered (inclusive).
    pub first_rank: usize,
    /// Last global rank covered (inclusive).
    pub last_rank: usize,
    /// Window start (seconds, inclusive).
    pub from: SimTime,
    /// Window end (seconds, exclusive).
    pub until: SimTime,
    /// Multiplier on CPU-side durations (≥ 0; > 1 slows ranks down).
    pub factor: f64,
}

/// A set of runtime faults injected into one simulation run.
///
/// The default spec is empty ([`FaultSpec::none`]) and adds **zero**
/// per-event overhead: an empty spec takes exactly the code paths of the
/// pre-fault engine, so un-faulted output is bit-identical to it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Rank freeze intervals.
    pub stalls: Vec<RankStall>,
    /// Permanent rank halts.
    pub crashes: Vec<RankCrash>,
    /// Link slowdown windows.
    pub links: Vec<LinkFault>,
    /// Correlated CPU noise storms.
    pub storms: Vec<NoiseStorm>,
}

impl FaultSpec {
    /// The empty fault spec (no faults; identical output to a pre-fault run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this spec injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.stalls.is_empty()
            && self.crashes.is_empty()
            && self.links.is_empty()
            && self.storms.is_empty()
    }

    /// Add a rank stall (builder style).
    pub fn with_stall(mut self, rank: usize, at: SimTime, stall: f64) -> Self {
        self.stalls.push(RankStall { rank, at, stall });
        self
    }

    /// Add a rank crash (builder style).
    pub fn with_crash(mut self, rank: usize, at: SimTime) -> Self {
        self.crashes.push(RankCrash { rank, at });
        self
    }

    /// Add a link slowdown window (builder style).
    pub fn with_link(
        mut self,
        src_node: usize,
        dst_node: usize,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        self.links.push(LinkFault { src_node, dst_node, from, until, factor });
        self
    }

    /// Add a noise storm over `first_rank..=last_rank` (builder style).
    pub fn with_storm(
        mut self,
        first_rank: usize,
        last_rank: usize,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        self.storms.push(NoiseStorm { first_rank, last_rank, from, until, factor });
        self
    }

    /// Generate `count` correlated noise storms from a seed, each covering a
    /// random contiguous quarter of the rank space and a random window inside
    /// `[0, horizon)` of mean length `mean_len`, slowing CPU work by
    /// `factor`. All randomness is drawn here, at construction time — the
    /// engine consumes the storms as plain deterministic windows.
    pub fn random_storms(
        seed: u64,
        ranks: usize,
        count: usize,
        horizon: f64,
        mean_len: f64,
        factor: f64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let span = (ranks / 4).max(1);
        let mut spec = FaultSpec::none();
        for _ in 0..count {
            let first = rng.gen_range(0..ranks.max(1));
            let last = (first + span - 1).min(ranks.saturating_sub(1));
            let from = rng.gen::<f64>() * horizon;
            let len = mean_len * (0.5 + rng.gen::<f64>());
            spec.storms.push(NoiseStorm { first_rank: first, last_rank: last, from, until: from + len, factor });
        }
        spec
    }

    /// Whether any stall or crash targets a rank (the consumed-once per-rank
    /// fault families; link/storm windows are stateless).
    pub fn has_rank_faults(&self) -> bool {
        !self.stalls.is_empty() || !self.crashes.is_empty()
    }

    /// Combined CPU slowdown factor for `rank` at simulated time `t` — the
    /// product of every storm window covering `(rank, t)`. Pure function of
    /// its arguments, hence safe under any event processing order.
    #[inline]
    pub fn storm_factor(&self, rank: usize, t: SimTime) -> f64 {
        let mut f = 1.0;
        for s in &self.storms {
            if rank >= s.first_rank && rank <= s.last_rank && t >= s.from && t < s.until {
                f *= s.factor;
            }
        }
        f
    }

    /// Combined transfer-time factor for a message claiming the
    /// `(src_node, dst_node)` channel at simulated time `t`. Pure function
    /// of its arguments.
    #[inline]
    pub fn link_factor(&self, src_node: usize, dst_node: usize, t: SimTime) -> f64 {
        let mut f = 1.0;
        for lf in &self.links {
            if (lf.src_node == ANY_NODE || lf.src_node == src_node)
                && (lf.dst_node == ANY_NODE || lf.dst_node == dst_node)
                && t >= lf.from
                && t < lf.until
            {
                f *= lf.factor;
            }
        }
        f
    }

    /// Check the spec against a platform of `ranks` ranks and `nodes` nodes.
    /// Rejects out-of-range ranks/nodes, non-finite or negative times, and
    /// factors outside `[0, MAX_FAULT_FACTOR]` — the envelope inside which
    /// the engine's event-time arithmetic provably stays finite.
    pub fn validate(&self, ranks: usize, nodes: usize) -> Result<(), String> {
        let time_ok = |t: f64| t.is_finite() && (0.0..=MAX_FAULT_TIME).contains(&t);
        let factor_ok = |f: f64| f.is_finite() && (0.0..=MAX_FAULT_FACTOR).contains(&f);
        for s in &self.stalls {
            if s.rank >= ranks {
                return Err(format!("stall targets rank {} of {ranks}", s.rank));
            }
            if !time_ok(s.at) || !time_ok(s.stall) {
                return Err(format!("stall at rank {} has out-of-range times", s.rank));
            }
        }
        for c in &self.crashes {
            if c.rank >= ranks {
                return Err(format!("crash targets rank {} of {ranks}", c.rank));
            }
            if !time_ok(c.at) {
                return Err(format!("crash at rank {} has an out-of-range time", c.rank));
            }
        }
        for l in &self.links {
            for node in [l.src_node, l.dst_node] {
                if node != ANY_NODE && node >= nodes {
                    return Err(format!("link fault targets node {node} of {nodes}"));
                }
            }
            if !time_ok(l.from) || !time_ok(l.until) || l.from > l.until {
                return Err("link fault window is out of range or inverted".into());
            }
            if !factor_ok(l.factor) {
                return Err(format!("link fault factor {} out of range", l.factor));
            }
        }
        for s in &self.storms {
            if s.first_rank >= ranks || s.last_rank >= ranks || s.first_rank > s.last_rank {
                return Err(format!(
                    "storm rank range {}-{} invalid for {ranks} ranks",
                    s.first_rank, s.last_rank
                ));
            }
            if !time_ok(s.from) || !time_ok(s.until) || s.from > s.until {
                return Err("storm window is out of range or inverted".into());
            }
            if !factor_ok(s.factor) {
                return Err(format!("storm factor {} out of range", s.factor));
            }
        }
        Ok(())
    }
}

/// Parse a time with an optional `us`/`ms`/`s` suffix (plain numbers are
/// seconds).
fn parse_time(s: &str) -> Result<f64, String> {
    let (num, mult) = if let Some(x) = s.strip_suffix("us") {
        (x, 1e-6)
    } else if let Some(x) = s.strip_suffix("ms") {
        (x, 1e-3)
    } else if let Some(x) = s.strip_suffix('s') {
        (x, 1.0)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>().map(|v| v * mult).map_err(|e| format!("bad time '{s}': {e}"))
}

/// Parse a node index or `*` (any node).
fn parse_node(s: &str) -> Result<usize, String> {
    if s == "*" {
        Ok(ANY_NODE)
    } else {
        s.parse().map_err(|e| format!("bad node '{s}': {e}"))
    }
}

/// Split `s` once on `sep`, reporting `what` on failure.
fn split2<'a>(s: &'a str, sep: &str, what: &str) -> Result<(&'a str, &'a str), String> {
    s.split_once(sep).ok_or_else(|| format!("expected '{sep}' in {what}: '{s}'"))
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    /// Parse a `;`-separated list of fault clauses (the `papctl --fault`
    /// grammar, also produced by [`FaultSpec`]'s `Display`):
    ///
    /// * `stall:R@T+D` — rank `R` stalls at time `T` for `D`,
    /// * `crash:R@T` — rank `R` crashes at time `T`,
    /// * `link:S-D@F..U*X` — channel node `S` → node `D` (either may be
    ///   `*`) slowed by factor `X` during `[F, U)`,
    /// * `storm:R0-R1@F..U*X` — ranks `R0..=R1` CPU-slowed by `X` during
    ///   `[F, U)`.
    ///
    /// Times accept `us`/`ms`/`s` suffixes; plain numbers are seconds.
    fn from_str(s: &str) -> Result<Self, String> {
        let mut spec = FaultSpec::none();
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = split2(clause, ":", "fault clause")?;
            match kind {
                "stall" => {
                    let (rank, when) = split2(rest, "@", "stall")?;
                    let (at, dur) = split2(when, "+", "stall")?;
                    spec.stalls.push(RankStall {
                        rank: rank.parse().map_err(|e| format!("bad rank '{rank}': {e}"))?,
                        at: parse_time(at)?,
                        stall: parse_time(dur)?,
                    });
                }
                "crash" => {
                    let (rank, at) = split2(rest, "@", "crash")?;
                    spec.crashes.push(RankCrash {
                        rank: rank.parse().map_err(|e| format!("bad rank '{rank}': {e}"))?,
                        at: parse_time(at)?,
                    });
                }
                "link" => {
                    let (pair, win) = split2(rest, "@", "link")?;
                    let (src, dst) = split2(pair, "-", "link nodes")?;
                    let (range, factor) = split2(win, "*", "link window")?;
                    let (from, until) = split2(range, "..", "link window")?;
                    spec.links.push(LinkFault {
                        src_node: parse_node(src)?,
                        dst_node: parse_node(dst)?,
                        from: parse_time(from)?,
                        until: parse_time(until)?,
                        factor: factor.parse().map_err(|e| format!("bad factor '{factor}': {e}"))?,
                    });
                }
                "storm" => {
                    let (ranks, win) = split2(rest, "@", "storm")?;
                    let (r0, r1) = split2(ranks, "-", "storm ranks")?;
                    let (range, factor) = split2(win, "*", "storm window")?;
                    let (from, until) = split2(range, "..", "storm window")?;
                    spec.storms.push(NoiseStorm {
                        first_rank: r0.parse().map_err(|e| format!("bad rank '{r0}': {e}"))?,
                        last_rank: r1.parse().map_err(|e| format!("bad rank '{r1}': {e}"))?,
                        from: parse_time(from)?,
                        until: parse_time(until)?,
                        factor: factor.parse().map_err(|e| format!("bad factor '{factor}': {e}"))?,
                    });
                }
                other => return Err(format!("unknown fault kind '{other}'")),
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for FaultSpec {
    /// Render in the grammar `from_str` accepts (times in plain seconds), so
    /// `spec.to_string().parse()` round-trips exactly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let node = |n: usize| {
            if n == ANY_NODE {
                "*".to_string()
            } else {
                n.to_string()
            }
        };
        for s in &self.stalls {
            write!(f, "{sep}stall:{}@{}+{}", s.rank, s.at, s.stall)?;
            sep = ";";
        }
        for c in &self.crashes {
            write!(f, "{sep}crash:{}@{}", c.rank, c.at)?;
            sep = ";";
        }
        for l in &self.links {
            write!(f, "{sep}link:{}-{}@{}..{}*{}", node(l.src_node), node(l.dst_node), l.from, l.until, l.factor)?;
            sep = ";";
        }
        for s in &self.storms {
            write!(f, "{sep}storm:{}-{}@{}..{}*{}", s.first_rank, s.last_rank, s.from, s.until, s.factor)?;
            sep = ";";
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::none().with_crash(0, 1.0).is_none());
    }

    #[test]
    fn parse_all_clause_kinds() {
        let spec: FaultSpec = "stall:3@10us+50us; crash:0@2ms; link:1-2@0..1ms*8; storm:0-7@0.5ms..1ms*4"
            .parse()
            .expect("parse");
        assert_eq!(spec.stalls[0].rank, 3);
        assert!((spec.stalls[0].at - 10e-6).abs() < 1e-12);
        assert!((spec.stalls[0].stall - 50e-6).abs() < 1e-12);
        assert_eq!(spec.crashes[0].rank, 0);
        assert!((spec.crashes[0].at - 2e-3).abs() < 1e-12);
        assert_eq!(spec.links.len(), 1);
        assert!((spec.links[0].factor - 8.0).abs() < 1e-12);
        assert_eq!((spec.storms[0].first_rank, spec.storms[0].last_rank), (0, 7));
    }

    #[test]
    fn parse_wildcard_link_node() {
        let spec: FaultSpec = "link:*-3@1us..2us*2.5".parse().expect("parse");
        assert_eq!(spec.links[0].src_node, ANY_NODE);
        assert_eq!(spec.links[0].dst_node, 3);
    }

    #[test]
    fn display_round_trips() {
        let spec = FaultSpec::none()
            .with_stall(3, 1e-5, 5e-5)
            .with_crash(0, 2e-3)
            .with_link(ANY_NODE, 2, 0.0, 1e-3, 8.0)
            .with_storm(0, 7, 5e-4, 1e-3, 4.0);
        let back: FaultSpec = spec.to_string().parse().expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["stall:x@1+2", "crash:1", "link:1-2@3*4", "storm:5@1..2*3", "boom:1@2"] {
            assert!(bad.parse::<FaultSpec>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn validate_catches_out_of_range() {
        let ok = FaultSpec::none().with_stall(1, 0.0, 1.0);
        assert!(ok.validate(4, 2).is_ok());
        assert!(FaultSpec::none().with_stall(9, 0.0, 1.0).validate(4, 2).is_err());
        assert!(FaultSpec::none().with_crash(0, f64::NAN).validate(4, 2).is_err());
        assert!(FaultSpec::none().with_link(5, 0, 0.0, 1.0, 2.0).validate(4, 2).is_err());
        assert!(FaultSpec::none().with_link(0, 1, 2.0, 1.0, 2.0).validate(4, 2).is_err());
        assert!(FaultSpec::none().with_storm(2, 1, 0.0, 1.0, 2.0).validate(4, 2).is_err());
        assert!(FaultSpec::none().with_storm(0, 1, 0.0, 1.0, f64::INFINITY).validate(4, 2).is_err());
    }

    #[test]
    fn storm_factor_is_windowed_product() {
        let spec = FaultSpec::none().with_storm(0, 3, 1.0, 2.0, 4.0).with_storm(2, 5, 1.5, 3.0, 2.0);
        assert_eq!(spec.storm_factor(0, 0.5), 1.0);
        assert_eq!(spec.storm_factor(0, 1.5), 4.0);
        assert_eq!(spec.storm_factor(2, 1.75), 8.0);
        assert_eq!(spec.storm_factor(5, 2.5), 2.0);
        assert_eq!(spec.storm_factor(0, 2.0), 1.0, "window end is exclusive");
    }

    #[test]
    fn link_factor_matches_endpoints_and_wildcards() {
        let spec = FaultSpec::none().with_link(1, 2, 0.0, 1.0, 8.0).with_link(ANY_NODE, 2, 0.0, 1.0, 2.0);
        assert_eq!(spec.link_factor(1, 2, 0.5), 16.0);
        assert_eq!(spec.link_factor(0, 2, 0.5), 2.0);
        assert_eq!(spec.link_factor(1, 0, 0.5), 1.0);
        assert_eq!(spec.link_factor(1, 2, 1.0), 1.0, "window end is exclusive");
    }

    #[test]
    fn random_storms_deterministic_per_seed() {
        let a = FaultSpec::random_storms(7, 64, 3, 1e-3, 1e-4, 4.0);
        let b = FaultSpec::random_storms(7, 64, 3, 1e-3, 1e-4, 4.0);
        let c = FaultSpec::random_storms(8, 64, 3, 1e-3, 1e-4, 4.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.storms.len(), 3);
        assert!(a.validate(64, 16).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let spec = FaultSpec::none().with_stall(1, 2e-5, 3e-5).with_link(0, 1, 0.0, 1e-3, 4.0);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: FaultSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(spec, back);
    }
}
