//! Compiled form of a [`Job`]: the engine's cache-dense op stream.
//!
//! [`crate::program::Op`] is a builder-friendly enum — per-op `Vec`s for
//! WaitAll request lists, inline [`BlockFilter`]s, owned [`Value`]s — and at
//! 10K+ ranks the engine pays for that comfort on every activation: each op
//! is ~2 cache lines, and every WaitAll chases a separate heap allocation
//! for its request list. [`CompiledJob`] flattens the whole job once per
//! job (lazily, cached) into arena/SoA form:
//!
//! * all ops of all ranks in **one contiguous array** of fixed-size
//!   [`COp`]s, rank-major in program order — a rank's execution walks a
//!   flat slice with one indexed load per op, across segment boundaries;
//! * WaitAll request lists flattened into one side array, referenced by
//!   `(off, len)` — the per-rank slices are read in program order, so they
//!   ride the same cache stream as the ops;
//! * block filters deduplicated into a small table (most sends transfer
//!   the whole slot and carry no filter at all); `InitSlot` values in a
//!   side table so `COp` stays `Copy`;
//! * segment boundaries and labels in a flat per-rank segment table, only
//!   touched when a segment completes.
//!
//! Blocking and non-blocking variants are merged (`req == CNIL` means
//! blocking), which also halves the dispatch fan-out of the hot loop.

use std::collections::HashMap;

use crate::data::{BlockFilter, Value};
use crate::program::{Job, Label, Op};
use crate::time::SimTime;

/// Sentinel index ("none") for [`COp`] fields.
pub(crate) const CNIL: u32 = u32::MAX;

/// Compact fixed-size op. See the module docs; field meanings mirror
/// [`crate::program::Op`] with indices narrowed to `u32` and rare payloads
/// (filters, values) moved to side tables in [`CompiledJob`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum COp {
    Compute { seconds: SimTime, noisy: bool },
    SleepUntil { time: SimTime },
    /// `req == CNIL`: blocking send. `filter == CNIL`: whole slot.
    Send { to: u32, slot: u32, tag: u64, bytes: u64, filter: u32, req: u32 },
    /// `req == CNIL`: blocking receive.
    Recv { from: u32, slot: u32, tag: u64, req: u32 },
    /// Requests `wait_reqs[off .. off + len]`.
    WaitAll { off: u32, len: u32 },
    ReduceLocal { from: u32, into: u32, bytes: u64 },
    MergeMove { from: u32, into: u32 },
    OverwriteMove { from: u32, into: u32 },
    DropBlocks { slot: u32, filter: u32 },
    CopySlot { from: u32, into: u32 },
    InitSlot { slot: u32, value: u32 },
    ClearSlot { slot: u32 },
}

/// One segment of one rank: `end` is the absolute index one past its last
/// op in [`CompiledJob::ops`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct CSeg {
    pub end: u32,
    kind: u32,
    seq: u32,
    labelled: bool,
}

impl CSeg {
    pub fn label(&self) -> Option<Label> {
        self.labelled.then_some(Label { kind: self.kind, seq: self.seq })
    }
}

/// The flattened job. Built once per [`Job`] (see [`Job::compiled`]) and
/// shared by every partition of every run.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledJob {
    /// All ops, rank-major in program order.
    pub ops: Vec<COp>,
    /// Rank `r` owns ops `rank_ops[r] .. rank_ops[r + 1]` (len: ranks + 1).
    pub rank_ops: Vec<u32>,
    /// All segments, rank-major in program order.
    pub segs: Vec<CSeg>,
    /// Rank `r` owns segments `rank_segs[r] .. rank_segs[r + 1]`.
    pub rank_segs: Vec<u32>,
    /// Flattened WaitAll request lists (see [`COp::WaitAll`]).
    pub wait_reqs: Vec<u32>,
    /// Deduplicated non-trivial block filters.
    pub filters: Vec<BlockFilter>,
    /// `InitSlot` payloads.
    pub values: Vec<Value>,
}

/// Narrow a builder-side `usize` to the engine's `u32` indices. Saturates:
/// a saturated peer/slot/request index is out of range for any real job,
/// so the engine's existing validity checks still fire on it.
#[inline]
fn narrow(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

impl CompiledJob {
    pub fn build(job: &Job) -> CompiledJob {
        let mut c = CompiledJob::default();
        c.rank_ops.reserve(job.programs.len() + 1);
        c.rank_segs.reserve(job.programs.len() + 1);
        c.ops.reserve(job.total_ops());
        let mut filter_ids: HashMap<BlockFilter, u32> = HashMap::new();
        let mut filter_id = |filters: &mut Vec<BlockFilter>, f: BlockFilter| -> u32 {
            if f == BlockFilter::All {
                return CNIL;
            }
            *filter_ids.entry(f).or_insert_with(|| {
                filters.push(f);
                (filters.len() - 1) as u32
            })
        };

        for prog in &job.programs {
            c.rank_ops.push(c.ops.len() as u32);
            c.rank_segs.push(c.segs.len() as u32);
            for seg in &prog.segments {
                for op in &seg.ops {
                    let cop = match *op {
                        Op::Compute { seconds, noisy } => COp::Compute { seconds, noisy },
                        Op::SleepUntil { time } => COp::SleepUntil { time },
                        Op::Send { to, tag, bytes, slot, filter } => COp::Send {
                            to: narrow(to),
                            slot: narrow(slot),
                            tag,
                            bytes,
                            filter: filter_id(&mut c.filters, filter),
                            req: CNIL,
                        },
                        Op::Isend { to, tag, bytes, slot, filter, req } => COp::Send {
                            to: narrow(to),
                            slot: narrow(slot),
                            tag,
                            bytes,
                            filter: filter_id(&mut c.filters, filter),
                            req: narrow(req),
                        },
                        Op::Recv { from, tag, slot } => {
                            COp::Recv { from: narrow(from), slot: narrow(slot), tag, req: CNIL }
                        }
                        Op::Irecv { from, tag, slot, req } => {
                            COp::Recv { from: narrow(from), slot: narrow(slot), tag, req: narrow(req) }
                        }
                        Op::WaitAll { ref reqs } => {
                            let off = c.wait_reqs.len() as u32;
                            c.wait_reqs.extend(reqs.iter().map(|&r| narrow(r)));
                            COp::WaitAll { off, len: reqs.len() as u32 }
                        }
                        Op::ReduceLocal { from, into, bytes } => {
                            COp::ReduceLocal { from: narrow(from), into: narrow(into), bytes }
                        }
                        Op::MergeMove { from, into } => {
                            COp::MergeMove { from: narrow(from), into: narrow(into) }
                        }
                        Op::OverwriteMove { from, into } => {
                            COp::OverwriteMove { from: narrow(from), into: narrow(into) }
                        }
                        Op::DropBlocks { slot, filter } => COp::DropBlocks {
                            slot: narrow(slot),
                            filter: filter_id(&mut c.filters, filter),
                        },
                        Op::CopySlot { from, into } => {
                            COp::CopySlot { from: narrow(from), into: narrow(into) }
                        }
                        Op::InitSlot { slot, ref value } => {
                            c.values.push(value.clone());
                            COp::InitSlot { slot: narrow(slot), value: (c.values.len() - 1) as u32 }
                        }
                        Op::ClearSlot { slot } => COp::ClearSlot { slot: narrow(slot) },
                    };
                    c.ops.push(cop);
                }
                c.segs.push(CSeg {
                    end: c.ops.len() as u32,
                    kind: seg.label.map_or(0, |l| l.kind),
                    seq: seg.label.map_or(0, |l| l.seq),
                    labelled: seg.label.is_some(),
                });
            }
        }
        c.rank_ops.push(c.ops.len() as u32);
        c.rank_segs.push(c.segs.len() as u32);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RankProgram;

    #[test]
    fn cop_is_one_cache_line_for_two_ops() {
        // The whole point of the compiled form: a fixed, small op size.
        assert!(std::mem::size_of::<COp>() <= 40, "COp grew: {}", std::mem::size_of::<COp>());
    }

    #[test]
    fn flattening_preserves_structure() {
        let mut p0 = RankProgram::new();
        p0.push_labeled(Label { kind: 3, seq: 1 }, vec![
            Op::irecv(1, 7, 0, 0),
            Op::isend(1, 7, 64, 1, 1),
            Op::waitall(vec![0, 1]),
        ]);
        p0.push_anon(vec![Op::compute(1.0)]);
        let p1 = RankProgram::from_ops(vec![Op::send_part(
            0,
            7,
            64,
            2,
            BlockFilter::SegRange(0, 4),
        )]);
        let job = Job::new(vec![p0, p1]);
        let c = job.compiled();

        assert_eq!(c.rank_ops, vec![0, 4, 5]);
        assert_eq!(c.rank_segs, vec![0, 2, 3]);
        assert_eq!(c.segs[0].end, 3);
        assert_eq!(c.segs[0].label(), Some(Label { kind: 3, seq: 1 }));
        assert_eq!(c.segs[1].end, 4);
        assert_eq!(c.segs[1].label(), None);
        assert_eq!(c.segs[2].end, 5);
        assert!(matches!(c.ops[0], COp::Recv { from: 1, slot: 0, tag: 7, req: 0 }));
        assert!(matches!(c.ops[2], COp::WaitAll { off: 0, len: 2 }));
        assert_eq!(c.wait_reqs, vec![0, 1]);
        // Blocking send gets the CNIL request, its filter lands in the table.
        match c.ops[4] {
            COp::Send { to: 0, filter, req: CNIL, .. } => {
                assert_eq!(c.filters[filter as usize], BlockFilter::SegRange(0, 4));
            }
            ref other => panic!("expected compiled Send, got {other:?}"),
        }
        // Same value is returned on every call (cached).
        assert!(std::ptr::eq(job.compiled(), c));
    }

    #[test]
    fn filters_are_deduplicated() {
        let f = BlockFilter::SegRange(2, 9);
        let prog = RankProgram::from_ops(vec![
            Op::send_part(1, 0, 8, 0, f),
            Op::send_part(1, 1, 8, 0, f),
            Op::send_part(1, 2, 8, 0, BlockFilter::All),
        ]);
        let job = Job::new(vec![prog, RankProgram::new()]);
        let c = job.compiled();
        assert_eq!(c.filters, vec![f]);
        assert!(matches!(c.ops[2], COp::Send { filter: CNIL, .. }));
    }
}
