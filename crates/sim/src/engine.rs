//! The discrete-event execution engine.
//!
//! Each rank executes its [`crate::program::RankProgram`] sequentially. Ranks may run ahead
//! of global event time (lazy virtual time); correctness of message matching
//! does not depend on processing order because all completion times are
//! computed from timestamps (`max` of the two sides), and FIFO queues per
//! `(src, dst, tag)` channel are only ever filled in program order by a
//! single rank per side.
//!
//! ## Protocols
//!
//! * **Eager** (`bytes <= eager_threshold`): the sender resumes after its
//!   send overhead `o_s`; the message is injected into the network in the
//!   background (serializing on the source node's NIC egress), travels for
//!   `L + bytes/bw`, serializes on the destination NIC ingress, and is
//!   delivered; a matching receive completes at
//!   `max(delivered, posted) + o_r`.
//! * **Rendezvous** (`bytes > eager_threshold`): the sender announces (RTS)
//!   and blocks; when the matching receive is posted, the handshake completes
//!   at `max(ts + L, tr) + L` and injection begins; the sender resumes when
//!   the data has left the node (egress complete), the receiver completes at
//!   delivery + `o_r`.
//!
//! ## Contention
//!
//! Each node has one NIC; concurrent inter-node transfers serialize on the
//! egress of the source node and the ingress of the destination node. This
//! is the mechanism that makes a flat linear all-to-all collapse under
//! incast while pairwise exchange does not — the effect the paper's
//! All-to-all analysis hinges on. Intra-node messages bypass the NIC.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::data::Value;
use crate::noise::NoiseModel;
use crate::platform::Platform;
use crate::program::{Job, Label, Op, ReqId, Slot, Tag};
use crate::time::{OrdTime, SimTime};
use crate::SimConfig;

/// Enter/exit times of one labelled segment on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRecord {
    /// Rank that executed the segment.
    pub rank: usize,
    /// The segment's label.
    pub label: Label,
    /// Time the rank started the segment (its *arrival time* `a_i`).
    pub enter: SimTime,
    /// Time the rank finished the segment (its *exit time* `e_i`).
    pub exit: SimTime,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No more events but some ranks have not finished: circular wait.
    Deadlock {
        /// Time at which progress stopped.
        at: SimTime,
        /// `(rank, description of the op it is blocked on)`.
        blocked: Vec<(usize, String)>,
    },
    /// The job referenced invalid ranks/slots or misused requests.
    InvalidProgram(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at t={at:.9}s; blocked: ")?;
                for (r, d) in blocked.iter().take(8) {
                    write!(f, "[{r}: {d}] ")?;
                }
                if blocked.len() > 8 {
                    write!(f, "… ({} total)", blocked.len())?;
                }
                Ok(())
            }
            SimError::InvalidProgram(s) => write!(f, "invalid program: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One delivered point-to-point message (recorded when
/// `SimConfig::record_messages` is set) — the simulator's SMPI-style
/// communication trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgEvent {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Match tag.
    pub tag: Tag,
    /// Message size in bytes.
    pub bytes: u64,
    /// Time the sender initiated the message (after its send overhead).
    pub sent: SimTime,
    /// Time the receive completed at the destination.
    pub delivered: SimTime,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-rank completion time of the whole program.
    pub finish: Vec<SimTime>,
    /// Enter/exit records of labelled segments, in completion order.
    pub phases: Vec<PhaseRecord>,
    /// Final slot contents per rank (only when `track_data`).
    pub slots: Option<Vec<Vec<Value>>>,
    /// Dataflow violations detected (double counts, conflicting blocks).
    /// Empty on a correct collective schedule.
    pub data_errors: Vec<String>,
    /// Number of events processed (diagnostics).
    pub events: u64,
    /// Number of point-to-point messages transferred.
    pub messages: u64,
    /// Per-message trace (only when `record_messages`).
    pub msg_events: Option<Vec<MsgEvent>>,
}

impl RunOutcome {
    /// Latest finish time over all ranks (the makespan).
    pub fn makespan(&self) -> SimTime {
        self.finish.iter().copied().fold(0.0, f64::max)
    }

    /// Records of a specific label, ordered by rank.
    pub fn phases_for(&self, label: Label) -> Vec<PhaseRecord> {
        let mut v: Vec<PhaseRecord> = self.phases_for_iter(label).copied().collect();
        v.sort_by_key(|p| p.rank);
        v
    }

    /// Records of a specific label in completion order, without allocating.
    ///
    /// Use this in per-measurement hot paths (the harness folds min/max over
    /// it); use [`phases_for`](Self::phases_for) when rank order matters.
    pub fn phases_for_iter(&self, label: Label) -> impl Iterator<Item = &PhaseRecord> {
        self.phases.iter().filter(move |p| p.label == label)
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

type MsgId = usize;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Protocol {
    Eager,
    Rendezvous,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MsgState {
    /// Created; not yet matched with a receive.
    Unmatched,
    /// Eager data has arrived but no receive was posted yet.
    DeliveredUnmatched(SimTime),
    /// Matched; delivery event will complete the receive.
    WaitingDelivery,
    /// Fully consumed.
    Done,
}

#[derive(Debug, Clone, Copy)]
enum RecvWake {
    /// A blocking `Recv`; the rank is parked on it.
    Blocking,
    /// An `Irecv`; completing it resolves this request.
    Req(ReqId),
}

#[derive(Debug, Clone, Copy)]
struct RecvInfo {
    slot: Slot,
    posted_at: SimTime,
    wake: RecvWake,
}

#[derive(Debug, Clone, Copy)]
enum SenderWake {
    /// Blocking rendezvous `Send`; the rank is parked on it.
    Blocked,
    /// Rendezvous `Isend`; completing egress resolves this request.
    Req(ReqId),
    /// Eager send: the sender resumed immediately, nothing to wake.
    None,
}

struct Msg {
    src: u32,
    dst: u32,
    tag: Tag,
    bytes: u64,
    protocol: Protocol,
    /// Sender-side ready time (after `o_s`).
    ready: SimTime,
    /// Pre-sampled multiplicative noise on the wire time (sampled in sender
    /// program order so results do not depend on event processing order).
    wire_factor: f64,
    state: MsgState,
    recv: Option<RecvInfo>,
    sender_wake: SenderWake,
    payload: Option<Value>,
}

#[derive(Default)]
struct Channel {
    /// Unmatched incoming sends, in send order.
    incoming: VecDeque<MsgId>,
    /// Unmatched posted receives, in post order.
    posted: VecDeque<RecvInfo>,
}

/// `(src, dst, tag)` packed into one integer so channel lookups hash a
/// single u128 instead of a tuple field by field.
type ChanKey = u128;

#[inline]
fn chan_key(src: u32, dst: u32, tag: Tag) -> ChanKey {
    ((src as u128) << 96) | ((dst as u128) << 64) | tag as u128
}

/// Multiply-xor hasher for [`ChanKey`]s (FxHash-style). SipHash dominated
/// the channel-map profile; channel keys are program-controlled, not
/// attacker-controlled, so a non-DoS-resistant hash is fine here.
#[derive(Default)]
struct ChanHasher {
    hash: u64,
}

const CHAN_HASH_K: u64 = 0x517c_c1b7_2722_0a95;

impl std::hash::Hasher for ChanHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(CHAN_HASH_K);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
}

type ChanMap = HashMap<ChanKey, Channel, std::hash::BuildHasherDefault<ChanHasher>>;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ReqState {
    Free,
    Pending,
    Done(SimTime),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Runnable,
    BlockedRecv,
    BlockedSend,
    BlockedWaitAll,
    Finished,
}

struct RankState {
    seg: usize,
    pc: usize,
    local: SimTime,
    status: Status,
    reqs: Vec<ReqState>,
    slots: Vec<Value>,
    seg_enter: SimTime,
    rng: ChaCha8Rng,
    /// Set when a wake event is already scheduled, to avoid duplicates.
    wake_pending: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Resume a rank whose `local` time has been set by the scheduler.
    Wake { rank: usize },
    /// A message is ready to be injected into the network.
    Inject { msg: MsgId },
    /// The full message has arrived at the destination node's NIC.
    WireArrival { msg: MsgId },
    /// The message content is available to the destination rank.
    Delivered { msg: MsgId },
}

struct HeapEntry {
    t: OrdTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

struct Engine<'a> {
    platform: &'a Platform,
    cfg: &'a SimConfig,
    ranks: Vec<RankState>,
    /// Borrowed (not owned) so the hot loop can hold `&'a Op` references
    /// into programs while mutating the rest of the engine — no per-event
    /// `Op` clone.
    programs: &'a [crate::program::RankProgram],
    heap: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    channels: ChanMap,
    msgs: Vec<Msg>,
    free_msgs: Vec<MsgId>,
    egress_free: Vec<SimTime>,
    ingress_free: Vec<SimTime>,
    phases: Vec<PhaseRecord>,
    finish: Vec<SimTime>,
    msg_events: Vec<MsgEvent>,
    data_errors: Vec<String>,
    events: u64,
    messages: u64,
    error: Option<SimError>,
}

/// Run a job on a platform. See the crate docs for the model description.
pub fn run(platform: &Platform, job: Job, cfg: &SimConfig) -> Result<RunOutcome, SimError> {
    run_ref(platform, &job, cfg)
}

/// Cached handles into the global metrics registry — resolved once so the
/// per-run cost is three relaxed atomic adds, never the registry lock.
fn run_metrics() -> &'static (pap_obs::Counter, pap_obs::Counter, pap_obs::Counter) {
    static M: std::sync::OnceLock<(pap_obs::Counter, pap_obs::Counter, pap_obs::Counter)> =
        std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = pap_obs::global();
        (reg.counter("sim.runs"), reg.counter("sim.events"), reg.counter("sim.messages"))
    })
}

/// [`run`] without consuming the job — repetition loops (ReproMPI-style
/// NREP) build the program once and run it many times with different seeds.
pub fn run_ref(platform: &Platform, job: &Job, cfg: &SimConfig) -> Result<RunOutcome, SimError> {
    let _span = pap_obs::span("sim", "run");
    let p = job.ranks();
    if p == 0 {
        return Err(SimError::InvalidProgram("job has no ranks".into()));
    }
    if p != platform.ranks {
        return Err(SimError::InvalidProgram(format!(
            "job has {p} ranks but platform is configured for {}",
            platform.ranks
        )));
    }

    let mut ranks = Vec::with_capacity(p);
    for r in 0..p {
        let slots = if cfg.track_data { vec![Value::empty(); job.slots_needed(r)] } else { Vec::new() };
        ranks.push(RankState {
            seg: 0,
            pc: 0,
            local: 0.0,
            status: Status::Runnable,
            reqs: vec![ReqState::Free; job.reqs_needed(r)],
            slots,
            seg_enter: 0.0,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(r as u64)),
            wake_pending: false,
        });
    }

    let nodes = platform.occupied_nodes();
    let mut eng = Engine {
        platform,
        cfg,
        ranks,
        programs: &job.programs,
        heap: BinaryHeap::new(),
        seq: 0,
        channels: ChanMap::default(),
        msgs: Vec::new(),
        free_msgs: Vec::new(),
        egress_free: vec![0.0; nodes],
        ingress_free: vec![0.0; nodes],
        phases: Vec::new(),
        finish: vec![0.0; p],
        msg_events: Vec::new(),
        data_errors: Vec::new(),
        events: 0,
        messages: 0,
        error: None,
    };

    for r in 0..p {
        eng.schedule(0.0, Event::Wake { rank: r });
        eng.ranks[r].wake_pending = true;
    }

    eng.event_loop()?;

    let slots = if cfg.track_data {
        Some(eng.ranks.into_iter().map(|r| r.slots).collect())
    } else {
        None
    };
    let msg_events = if cfg.record_messages { Some(eng.msg_events) } else { None };
    let (runs, events, messages) = run_metrics();
    runs.inc();
    events.add(eng.events);
    messages.add(eng.messages);
    Ok(RunOutcome {
        finish: eng.finish,
        phases: eng.phases,
        slots,
        data_errors: eng.data_errors,
        events: eng.events,
        messages: eng.messages,
        msg_events,
    })
}

impl<'a> Engine<'a> {
    fn schedule(&mut self, t: SimTime, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry { t: OrdTime::new(t), seq: self.seq, ev }));
    }

    fn schedule_wake(&mut self, rank: usize, t: SimTime) {
        if !self.ranks[rank].wake_pending {
            self.ranks[rank].wake_pending = true;
            self.schedule(t, Event::Wake { rank });
        }
    }

    fn event_loop(&mut self) -> Result<(), SimError> {
        let mut last_t = 0.0;
        while let Some(Reverse(entry)) = self.heap.pop() {
            self.events += 1;
            last_t = entry.t.0;
            match entry.ev {
                Event::Wake { rank } => {
                    self.ranks[rank].wake_pending = false;
                    self.advance(rank);
                }
                Event::Inject { msg } => self.on_inject(msg, entry.t.0),
                Event::WireArrival { msg } => self.on_wire_arrival(msg, entry.t.0),
                Event::Delivered { msg } => self.on_delivered(msg, entry.t.0),
            }
            if let Some(e) = self.error.take() {
                return Err(e);
            }
        }
        let blocked: Vec<(usize, String)> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.status != Status::Finished)
            .map(|(i, r)| (i, self.describe_block(i, r)))
            .collect();
        if blocked.is_empty() {
            Ok(())
        } else {
            Err(SimError::Deadlock { at: last_t, blocked })
        }
    }

    fn describe_block(&self, rank: usize, st: &RankState) -> String {
        let prog = &self.programs[rank];
        match prog.segments.get(st.seg).and_then(|s| s.ops.get(st.pc)) {
            Some(op) => format!("{:?} (seg {}, pc {}, status {:?})", op, st.seg, st.pc, st.status),
            None => format!("end-of-program? (seg {}, pc {}, status {:?})", st.seg, st.pc, st.status),
        }
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(SimError::InvalidProgram(msg));
        }
    }

    // -- rank execution ----------------------------------------------------

    /// Execute ops of `rank` until it blocks or finishes.
    fn advance(&mut self, rank: usize) {
        loop {
            match self.ranks[rank].status {
                Status::Finished | Status::BlockedRecv | Status::BlockedSend => return,
                Status::BlockedWaitAll => {
                    // Re-evaluate the WaitAll the rank is parked on; on
                    // success the op is complete, so advance past it.
                    if !self.try_waitall(rank) {
                        return;
                    }
                    self.ranks[rank].status = Status::Runnable;
                    self.step(rank);
                }
                Status::Runnable => {}
            }

            // Segment bookkeeping.
            let (seg, pc) = (self.ranks[rank].seg, self.ranks[rank].pc);
            let nsegs = self.programs[rank].segments.len();
            if seg >= nsegs {
                let t = self.ranks[rank].local;
                self.finish[rank] = t;
                self.ranks[rank].status = Status::Finished;
                return;
            }
            if pc >= self.programs[rank].segments[seg].ops.len() {
                // Segment complete.
                if let Some(label) = self.programs[rank].segments[seg].label {
                    let enter = self.ranks[rank].seg_enter;
                    let exit = self.ranks[rank].local;
                    self.phases.push(PhaseRecord { rank, label, enter, exit });
                }
                self.ranks[rank].seg += 1;
                self.ranks[rank].pc = 0;
                self.ranks[rank].seg_enter = self.ranks[rank].local;
                continue;
            }
            if pc == 0 {
                self.ranks[rank].seg_enter = self.ranks[rank].local;
            }

            // `programs` is a borrow with the engine's outer lifetime, so
            // `op` does not pin `self` while exec_op mutates it.
            let programs = self.programs;
            let op = &programs[rank].segments[seg].ops[pc];
            if !self.exec_op(rank, op) {
                return;
            }
            if self.error.is_some() {
                return;
            }
        }
    }

    /// Execute one op. Returns false if the rank blocked (pc stays on the
    /// op); returns true if execution should continue (pc advanced).
    fn exec_op(&mut self, rank: usize, op: &Op) -> bool {
        match *op {
            Op::Compute { seconds, noisy } => {
                let d = if noisy { self.perturb(rank, seconds) } else { seconds };
                self.ranks[rank].local += d;
                self.step(rank);
                true
            }
            Op::SleepUntil { time } => {
                let r = &mut self.ranks[rank];
                r.local = r.local.max(time);
                self.step(rank);
                true
            }
            Op::Send { to, tag, bytes, slot, filter } => self.do_send(rank, to, tag, bytes, slot, filter, None),
            Op::Isend { to, tag, bytes, slot, filter, req } => {
                self.do_send(rank, to, tag, bytes, slot, filter, Some(req))
            }
            Op::Recv { from, tag, slot } => self.do_recv(rank, from, tag, slot, None),
            Op::Irecv { from, tag, slot, req } => self.do_recv(rank, from, tag, slot, Some(req)),
            Op::WaitAll { .. } => {
                if self.try_waitall(rank) {
                    self.step(rank);
                    true
                } else {
                    self.ranks[rank].status = Status::BlockedWaitAll;
                    false
                }
            }
            Op::ReduceLocal { from, into, bytes } => {
                let cost = bytes as f64 * self.platform.reduce_cost_per_byte;
                let d = self.perturb(rank, cost);
                self.ranks[rank].local += d;
                if self.cfg.track_data {
                    // Value clones are Arc bumps; the deep copy happens only
                    // if reduce_from must mutate shared blocks.
                    let src = self.ranks[rank].slots[from].clone();
                    if let Err(e) = self.ranks[rank].slots[into].reduce_from(&src) {
                        self.data_errors.push(format!("rank {rank}: {e}"));
                    }
                }
                self.step(rank);
                true
            }
            Op::MergeMove { from, into } => {
                if self.cfg.track_data {
                    let src = self.ranks[rank].slots[from].clone();
                    if let Err(e) = self.ranks[rank].slots[into].merge_from(&src) {
                        self.data_errors.push(format!("rank {rank}: {e}"));
                    }
                }
                self.step(rank);
                true
            }
            Op::OverwriteMove { from, into } => {
                if self.cfg.track_data {
                    let src = self.ranks[rank].slots[from].clone();
                    self.ranks[rank].slots[into].overwrite_from(&src);
                }
                self.step(rank);
                true
            }
            Op::DropBlocks { slot, filter } => {
                if self.cfg.track_data {
                    self.ranks[rank].slots[slot].drop_matching(filter);
                }
                self.step(rank);
                true
            }
            Op::CopySlot { from, into } => {
                if self.cfg.track_data {
                    let src = self.ranks[rank].slots[from].clone();
                    self.ranks[rank].slots[into] = src;
                }
                self.step(rank);
                true
            }
            Op::InitSlot { slot, ref value } => {
                if self.cfg.track_data {
                    self.ranks[rank].slots[slot] = value.clone();
                }
                self.step(rank);
                true
            }
            Op::ClearSlot { slot } => {
                if self.cfg.track_data {
                    self.ranks[rank].slots[slot] = Value::empty();
                }
                self.step(rank);
                true
            }
        }
    }

    /// Advance pc past the current op.
    fn step(&mut self, rank: usize) {
        self.ranks[rank].pc += 1;
    }

    fn perturb(&mut self, rank: usize, d: SimTime) -> SimTime {
        match self.cfg.noise {
            NoiseModel::None => d,
            m => m.perturb(d, &mut self.ranks[rank].rng),
        }
    }

    // -- sends & receives ---------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn do_send(
        &mut self,
        rank: usize,
        to: usize,
        tag: Tag,
        bytes: u64,
        slot: Slot,
        filter: crate::data::BlockFilter,
        req: Option<ReqId>,
    ) -> bool {
        if to >= self.ranks.len() {
            self.fail(format!("rank {rank} sends to non-existent rank {to}"));
            return false;
        }
        if to == rank {
            self.fail(format!("rank {rank} sends to itself (use CopySlot)"));
            return false;
        }
        if let Some(r) = req {
            if self.ranks[rank].reqs[r] != ReqState::Free {
                self.fail(format!("rank {rank} reuses request {r} before WaitAll"));
                return false;
            }
        }

        let o_s = self.platform.send_overhead;
        let ts = self.ranks[rank].local + self.perturb(rank, o_s);
        let wire_factor = match self.cfg.noise {
            NoiseModel::None => 1.0,
            m => m.wire_factor(&mut self.ranks[rank].rng),
        };
        let eager = self.platform.is_eager(bytes);
        let payload = if self.cfg.track_data {
            Some(match filter {
                crate::data::BlockFilter::All => self.ranks[rank].slots[slot].clone(),
                f => self.ranks[rank].slots[slot].filtered(|c| f.matches(c)),
            })
        } else {
            None
        };

        let id = self.alloc_msg(Msg {
            src: rank as u32,
            dst: to as u32,
            tag,
            bytes,
            protocol: if eager { Protocol::Eager } else { Protocol::Rendezvous },
            ready: ts,
            wire_factor,
            state: MsgState::Unmatched,
            recv: None,
            sender_wake: SenderWake::None,
            payload,
        });
        self.messages += 1;

        if eager {
            // Sender resumes immediately; data is injected in the background.
            self.schedule(ts, Event::Inject { msg: id });
            self.ranks[rank].local = ts;
            if let Some(r) = req {
                self.ranks[rank].reqs[r] = ReqState::Done(ts);
            }
            self.match_send_with_posted(id);
            self.step(rank);
            true
        } else {
            self.msgs[id].sender_wake = match req {
                Some(r) => {
                    self.ranks[rank].reqs[r] = ReqState::Pending;
                    SenderWake::Req(r)
                }
                None => SenderWake::Blocked,
            };
            self.ranks[rank].local = ts;
            let matched = self.match_send_with_posted(id);
            if req.is_some() {
                // Isend: continue; request completes at egress done.
                self.step(rank);
                true
            } else if matched && self.msgs[id].state == MsgState::Done {
                // Cannot happen for rendezvous (delivery is always async),
                // but keep the invariant explicit.
                self.step(rank);
                true
            } else {
                self.ranks[rank].status = Status::BlockedSend;
                false
            }
        }
    }

    /// Try to match a freshly created send against an already-posted recv.
    /// Returns true if matched.
    fn match_send_with_posted(&mut self, id: MsgId) -> bool {
        let m = &self.msgs[id];
        let key = chan_key(m.src, m.dst, m.tag);
        let ch = self.channels.entry(key).or_default();
        if let Some(recv) = ch.posted.pop_front() {
            self.attach_recv(id, recv);
            true
        } else {
            ch.incoming.push_back(id);
            false
        }
    }

    fn do_recv(&mut self, rank: usize, from: usize, tag: Tag, slot: Slot, req: Option<ReqId>) -> bool {
        if from >= self.ranks.len() {
            self.fail(format!("rank {rank} receives from non-existent rank {from}"));
            return false;
        }
        if from == rank {
            self.fail(format!("rank {rank} receives from itself"));
            return false;
        }
        if let Some(r) = req {
            if self.ranks[rank].reqs[r] != ReqState::Free {
                self.fail(format!("rank {rank} reuses request {r} before WaitAll"));
                return false;
            }
            self.ranks[rank].reqs[r] = ReqState::Pending;
        }

        // Posting a receive costs CPU (descriptor setup / matching-queue
        // insertion). This per-message software cost is what makes
        // aggregating algorithms (Bruck) win small-message collectives over
        // posting one pair of requests per peer.
        let post = self.perturb(rank, self.platform.recv_overhead);
        self.ranks[rank].local += post;
        let tr = self.ranks[rank].local;
        let wake = match req {
            Some(r) => RecvWake::Req(r),
            None => RecvWake::Blocking,
        };
        let info = RecvInfo { slot, posted_at: tr, wake };
        let key = chan_key(from as u32, rank as u32, tag);
        let ch = self.channels.entry(key).or_default();

        if let Some(&mid) = ch.incoming.front() {
            ch.incoming.pop_front();
            // Eager message already delivered: complete inline.
            if let MsgState::DeliveredUnmatched(t_d) = self.msgs[mid].state {
                let o_r = self.platform.recv_overhead;
                let done = tr.max(t_d) + self.perturb(rank, o_r);
                self.finish_recv(mid, rank, slot, done, req);
                // Blocking recv continues at `done`.
                if req.is_none() {
                    self.ranks[rank].local = done;
                }
                self.step(rank);
                return true;
            }
            self.attach_recv(mid, info);
            match req {
                Some(_) => {
                    self.step(rank);
                    true
                }
                None => {
                    self.ranks[rank].status = Status::BlockedRecv;
                    false
                }
            }
        } else {
            ch.posted.push_back(info);
            match req {
                Some(_) => {
                    self.step(rank);
                    true
                }
                None => {
                    self.ranks[rank].status = Status::BlockedRecv;
                    false
                }
            }
        }
    }

    /// Pair a send with a receive; for rendezvous this starts the handshake.
    fn attach_recv(&mut self, id: MsgId, recv: RecvInfo) {
        let (protocol, ready, src, dst) =
            (self.msgs[id].protocol, self.msgs[id].ready, self.msgs[id].src as usize, self.msgs[id].dst as usize);
        self.msgs[id].recv = Some(recv);
        self.msgs[id].state = MsgState::WaitingDelivery;
        if protocol == Protocol::Rendezvous {
            let lat = self.platform.link(src, dst).latency;
            let inject_ready = (ready + lat).max(recv.posted_at) + lat;
            self.schedule(inject_ready, Event::Inject { msg: id });
        }
    }

    // -- network pipeline ---------------------------------------------------

    fn on_inject(&mut self, id: MsgId, now: SimTime) {
        let m = &self.msgs[id];
        let (src, dst, bytes) = (m.src as usize, m.dst as usize, m.bytes);
        let link = *self.platform.link(src, dst);
        let wire = bytes as f64 / link.bandwidth * m.wire_factor;
        let intra = self.platform.same_node(src, dst);

        let (start, egress_done) = if !intra && self.platform.nic_serialization {
            let node = self.platform.node_of(src);
            let start = now.max(self.egress_free[node]);
            self.egress_free[node] = start + wire;
            (start, start + wire)
        } else {
            (now, now + wire)
        };

        // Wake a rendezvous sender once the data has left the node.
        match self.msgs[id].sender_wake {
            SenderWake::Blocked => {
                let rank = src;
                self.ranks[rank].local = egress_done;
                self.ranks[rank].status = Status::Runnable;
                self.step(rank);
                self.schedule_wake(rank, egress_done);
            }
            SenderWake::Req(r) => {
                self.complete_req(src, r, egress_done);
            }
            SenderWake::None => {}
        }
        self.msgs[id].sender_wake = SenderWake::None;

        if intra {
            // Shared memory: latency + copy, no NIC.
            self.schedule(start + link.latency + wire, Event::Delivered { msg: id });
        } else {
            self.schedule(start + link.latency + wire, Event::WireArrival { msg: id });
        }
    }

    fn on_wire_arrival(&mut self, id: MsgId, now: SimTime) {
        let m = &self.msgs[id];
        let (src, dst, bytes) = (m.src as usize, m.dst as usize, m.bytes);
        debug_assert!(!self.platform.same_node(src, dst));
        let wire = bytes as f64 / self.platform.inter.bandwidth * m.wire_factor;
        let delivered = if self.platform.nic_serialization {
            let node = self.platform.node_of(dst);
            let t = now.max(self.ingress_free[node]);
            self.ingress_free[node] = t + wire;
            t
        } else {
            now
        };
        if delivered <= now {
            self.on_delivered(id, now);
        } else {
            self.schedule(delivered, Event::Delivered { msg: id });
        }
    }

    fn on_delivered(&mut self, id: MsgId, now: SimTime) {
        match self.msgs[id].state {
            MsgState::WaitingDelivery => {
                let recv = self.msgs[id].recv.expect("matched message must have recv info");
                let dst = self.msgs[id].dst as usize;
                let o_r = self.platform.recv_overhead;
                let done = now.max(recv.posted_at) + self.perturb(dst, o_r);
                match recv.wake {
                    RecvWake::Blocking => {
                        self.finish_recv(id, dst, recv.slot, done, None);
                        self.ranks[dst].local = done;
                        self.ranks[dst].status = Status::Runnable;
                        self.step(dst);
                        self.schedule_wake(dst, done);
                    }
                    RecvWake::Req(r) => {
                        self.finish_recv(id, dst, recv.slot, done, Some(r));
                    }
                }
            }
            MsgState::Unmatched => {
                self.msgs[id].state = MsgState::DeliveredUnmatched(now);
            }
            s => {
                self.fail(format!("message {id} delivered in unexpected state {s:?}"));
            }
        }
    }

    /// Write payload into the slot, complete the request if any, retire msg.
    fn finish_recv(&mut self, id: MsgId, rank: usize, slot: Slot, done: SimTime, req: Option<ReqId>) {
        if self.cfg.record_messages {
            let m = &self.msgs[id];
            self.msg_events.push(MsgEvent {
                src: m.src as usize,
                dst: m.dst as usize,
                tag: m.tag,
                bytes: m.bytes,
                sent: m.ready,
                delivered: done,
            });
        }
        if self.cfg.track_data {
            if let Some(v) = self.msgs[id].payload.take() {
                self.ranks[rank].slots[slot] = v;
            }
        }
        self.msgs[id].state = MsgState::Done;
        self.retire_msg(id);
        if let Some(r) = req {
            self.complete_req(rank, r, done);
        }
    }

    fn complete_req(&mut self, rank: usize, req: ReqId, t: SimTime) {
        debug_assert_eq!(self.ranks[rank].reqs[req], ReqState::Pending);
        self.ranks[rank].reqs[req] = ReqState::Done(t);
        if self.ranks[rank].status == Status::BlockedWaitAll {
            // Peek the WaitAll the rank is parked on; if now satisfied,
            // schedule the resume (advance() re-checks idempotently).
            if let Some(t_resume) = self.waitall_resume_time(rank) {
                self.schedule_wake(rank, t_resume);
            }
        }
    }

    /// If the rank's current op is a satisfied WaitAll, the time it resumes.
    fn waitall_resume_time(&self, rank: usize) -> Option<SimTime> {
        let st = &self.ranks[rank];
        let op = self.programs[rank].segments.get(st.seg)?.ops.get(st.pc)?;
        if let Op::WaitAll { reqs } = op {
            let mut t = st.local;
            for &r in reqs {
                match st.reqs.get(r) {
                    Some(ReqState::Done(d)) => t = t.max(*d),
                    _ => return None,
                }
            }
            Some(t)
        } else {
            None
        }
    }

    /// Attempt to complete the WaitAll at the current pc. On success the
    /// rank's local time advances and the requests are freed.
    fn try_waitall(&mut self, rank: usize) -> bool {
        let Some(t) = self.waitall_resume_time(rank) else {
            // Validate requests are at least known.
            let st = &self.ranks[rank];
            if let Some(Op::WaitAll { reqs }) = self.programs[rank].segments.get(st.seg).and_then(|s| s.ops.get(st.pc))
            {
                for &r in reqs {
                    if st.reqs.get(r).copied() == Some(ReqState::Free) {
                        self.fail(format!("rank {rank} waits on request {r} that was never started"));
                        return false;
                    }
                }
            }
            return false;
        };
        // Free the requests for reuse. `programs` outlives the `ranks`
        // mutation below, so no clone of the request list is needed.
        let programs = self.programs;
        let (seg, pc) = (self.ranks[rank].seg, self.ranks[rank].pc);
        let reqs = match &programs[rank].segments[seg].ops[pc] {
            Op::WaitAll { reqs } => reqs,
            _ => unreachable!("try_waitall called on non-WaitAll op"),
        };
        for &r in reqs {
            self.ranks[rank].reqs[r] = ReqState::Free;
        }
        self.ranks[rank].local = t;
        true
    }

    // -- message table ------------------------------------------------------

    fn alloc_msg(&mut self, m: Msg) -> MsgId {
        if let Some(id) = self.free_msgs.pop() {
            self.msgs[id] = m;
            id
        } else {
            self.msgs.push(m);
            self.msgs.len() - 1
        }
    }

    fn retire_msg(&mut self, id: MsgId) {
        self.msgs[id].payload = None;
        self.free_msgs.push(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RankProgram;

    fn run2(ops0: Vec<Op>, ops1: Vec<Op>) -> RunOutcome {
        let platform = Platform::simcluster(2);
        let job = Job::new(vec![RankProgram::from_ops(ops0), RankProgram::from_ops(ops1)]);
        run(&platform, job, &SimConfig::tracking()).expect("run")
    }

    #[test]
    fn eager_message_arrives_with_loggp_cost() {
        let p = Platform::simcluster(2);
        let bytes = 1024u64; // eager
        let out = run2(
            vec![Op::send(1, 1, bytes, 0)],
            vec![Op::recv(0, 1, 0)],
        );
        // Receiver finish ≈ o_s + L + bytes/bw + o_r (both ranks on node 0).
        let expect = p.send_overhead + p.intra.latency + bytes as f64 / p.intra.bandwidth + p.recv_overhead;
        assert!((out.finish[1] - expect).abs() < 1e-12, "{} vs {}", out.finish[1], expect);
        // Eager sender finishes after o_s only.
        assert!((out.finish[0] - p.send_overhead).abs() < 1e-12);
    }

    #[test]
    fn rendezvous_sender_blocks_for_receiver() {
        let p = Platform::simcluster(2);
        let bytes = p.eager_threshold + 1;
        let delay = 1.0;
        let out = run2(
            vec![Op::send(1, 1, bytes, 0)],
            vec![Op::delay(delay), Op::recv(0, 1, 0)],
        );
        // Sender cannot complete before the receiver posts at t=1.
        assert!(out.finish[0] > delay, "sender finished at {} before receiver posted", out.finish[0]);
        assert!(out.finish[1] > out.finish[0]);
    }

    #[test]
    fn eager_sender_does_not_block() {
        let out = run2(
            vec![Op::send(1, 1, 8, 0)],
            vec![Op::delay(1.0), Op::recv(0, 1, 0)],
        );
        assert!(out.finish[0] < 1e-3, "eager sender blocked: {}", out.finish[0]);
        assert!(out.finish[1] > 1.0);
    }

    #[test]
    fn unexpected_message_is_buffered() {
        // Send long before recv posted; matching must still succeed.
        let out = run2(
            vec![Op::send(1, 9, 64, 0)],
            vec![Op::delay(0.5), Op::recv(0, 9, 0)],
        );
        assert!(out.finish[1] >= 0.5);
        assert_eq!(out.messages, 1);
    }

    #[test]
    fn fifo_matching_two_messages_same_tag() {
        let out = run2(
            vec![
                Op::InitSlot { slot: 0, value: Value::movement_block(0, 0) },
                Op::InitSlot { slot: 1, value: Value::movement_block(0, 1) },
                Op::send(1, 5, 64, 0),
                Op::send(1, 5, 64, 1),
            ],
            vec![Op::recv(0, 5, 0), Op::recv(0, 5, 1)],
        );
        let slots = out.slots.unwrap();
        // First sent block lands in first posted recv.
        assert!(slots[1][0].get((0, 0)).is_some());
        assert!(slots[1][1].get((0, 1)).is_some());
    }

    #[test]
    fn isend_irecv_waitall_round_trip() {
        let out = run2(
            vec![
                Op::isend(1, 1, 256, 0, 0),
                Op::Irecv { from: 1, tag: 2, slot: 1, req: 1 },
                Op::WaitAll { reqs: vec![0, 1] },
            ],
            vec![
                Op::Irecv { from: 0, tag: 1, slot: 0, req: 0 },
                Op::isend(0, 2, 256, 1, 1),
                Op::WaitAll { reqs: vec![0, 1] },
            ],
        );
        assert!(out.finish[0] > 0.0 && out.finish[1] > 0.0);
        assert_eq!(out.messages, 2);
    }

    #[test]
    fn request_reuse_after_waitall_is_allowed() {
        let mk = |peer: usize, first_send: bool| {
            let mut ops = Vec::new();
            for round in 0..3u64 {
                if first_send {
                    ops.push(Op::isend(peer, round, 64, 0, 0));
                    ops.push(Op::Irecv { from: peer, tag: 100 + round, slot: 1, req: 1 });
                } else {
                    ops.push(Op::Irecv { from: peer, tag: round, slot: 1, req: 1 });
                    ops.push(Op::isend(peer, 100 + round, 64, 0, 0));
                }
                ops.push(Op::WaitAll { reqs: vec![0, 1] });
            }
            ops
        };
        let out = run2(mk(1, true), mk(0, false));
        assert_eq!(out.messages, 6);
    }

    #[test]
    fn request_reuse_without_waitall_is_an_error() {
        let platform = Platform::simcluster(2);
        let job = Job::new(vec![
            RankProgram::from_ops(vec![
                Op::isend(1, 1, 64, 0, 0),
                Op::isend(1, 2, 64, 0, 0),
            ]),
            RankProgram::from_ops(vec![Op::recv(0, 1, 0), Op::recv(0, 2, 0)]),
        ]);
        let err = run(&platform, job, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)), "{err:?}");
    }

    #[test]
    fn self_send_is_rejected() {
        let platform = Platform::simcluster(1);
        let job = Job::new(vec![RankProgram::from_ops(vec![Op::send(0, 1, 64, 0)])]);
        assert!(matches!(run(&platform, job, &SimConfig::default()), Err(SimError::InvalidProgram(_))));
    }

    #[test]
    fn deadlock_is_detected() {
        let out = {
            let platform = Platform::simcluster(2);
            let job = Job::new(vec![
                RankProgram::from_ops(vec![Op::recv(1, 1, 0)]),
                RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
            ]);
            run(&platform, job, &SimConfig::default())
        };
        match out {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn rendezvous_deadlock_two_blocking_sends() {
        // Classic head-to-head blocking Send deadlock (rendezvous).
        let platform = Platform::simcluster(2);
        let big = platform.eager_threshold + 1;
        let job = Job::new(vec![
            RankProgram::from_ops(vec![Op::send(1, 1, big, 0), Op::recv(1, 2, 0)]),
            RankProgram::from_ops(vec![Op::send(0, 2, big, 0), Op::recv(0, 1, 0)]),
        ]);
        assert!(matches!(run(&platform, job, &SimConfig::default()), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn eager_pair_of_blocking_sends_succeeds() {
        // The same exchange with eager messages completes (buffered sends).
        let out = run2(
            vec![Op::send(1, 1, 64, 0), Op::recv(1, 2, 0)],
            vec![Op::send(0, 2, 64, 0), Op::recv(0, 1, 0)],
        );
        assert_eq!(out.messages, 2);
    }

    #[test]
    fn sleep_until_advances_time() {
        let out = run2(
            vec![Op::SleepUntil { time: 2.0 }],
            vec![Op::SleepUntil { time: 1.0 }, Op::SleepUntil { time: 0.5 }],
        );
        assert_eq!(out.finish[0], 2.0);
        assert_eq!(out.finish[1], 1.0); // never goes backwards
    }

    #[test]
    fn phases_record_enter_and_exit() {
        let platform = Platform::simcluster(2);
        let label = Label { kind: 3, seq: 7 };
        let mut p0 = RankProgram::new();
        p0.push_anon(vec![Op::delay(0.25)]);
        p0.push_labeled(label, vec![Op::send(1, 1, 64, 0)]);
        let mut p1 = RankProgram::new();
        p1.push_labeled(label, vec![Op::recv(0, 1, 0)]);
        let out = run(&platform, Job::new(vec![p0, p1]), &SimConfig::default()).unwrap();
        let recs = out.phases_for(label);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].rank, 0);
        assert!((recs[0].enter - 0.25).abs() < 1e-12, "arrival reflects the delay");
        assert!(recs[0].exit >= recs[0].enter);
        assert_eq!(recs[1].enter, 0.0);
        assert!(recs[1].exit > 0.25, "receiver exits only after the delayed sender sends");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let platform = Platform::hydra(4);
        let mk = || {
            let mut programs = Vec::new();
            for r in 0..4usize {
                let peer = r ^ 1;
                let ops = if r < peer {
                    vec![Op::compute(1e-4), Op::send(peer, 1, 4096, 0), Op::recv(peer, 2, 0)]
                } else {
                    vec![Op::recv(peer, 1, 0), Op::compute(5e-5), Op::send(peer, 2, 4096, 0)]
                };
                programs.push(RankProgram::from_ops(ops));
            }
            Job::new(programs)
        };
        let cfg = SimConfig { seed: 42, track_data: false, noise: NoiseModel::gaussian(0.05), ..SimConfig::default() };
        let a = run(&platform, mk(), &cfg).unwrap();
        let b = run(&platform, mk(), &cfg).unwrap();
        assert_eq!(a.finish, b.finish);
        let cfg2 = SimConfig { seed: 43, ..cfg };
        let c = run(&platform, mk(), &cfg2).unwrap();
        assert_ne!(a.finish, c.finish, "different seed should perturb timings");
    }

    #[test]
    fn nic_serialization_creates_incast_contention() {
        // 8 senders on different nodes all send to rank 0 concurrently;
        // with NIC serialization the last delivery is pushed out.
        let ranks = 9usize;
        let mut platform = Platform::simcluster(ranks);
        platform.cores_per_node = 1; // one rank per node → all inter-node
        let bytes = 16 * 1024u64;
        let mk_job = || {
            let mut programs = vec![RankProgram::new(); ranks];
            let mut ops0 = Vec::new();
            for s in 1..ranks {
                ops0.push(Op::Irecv { from: s, tag: s as u64, slot: 0, req: s - 1 });
            }
            ops0.push(Op::WaitAll { reqs: (0..ranks - 1).collect() });
            programs[0] = RankProgram::from_ops(ops0);
            for (s, prog) in programs.iter_mut().enumerate().skip(1) {
                *prog = RankProgram::from_ops(vec![Op::send(0, s as u64, bytes, 0)]);
            }
            Job::new(programs)
        };
        let with = run(&platform, mk_job(), &SimConfig::default()).unwrap();
        platform.nic_serialization = false;
        let without = run(&platform, mk_job(), &SimConfig::default()).unwrap();
        assert!(
            with.finish[0] > without.finish[0] * 2.0,
            "incast should be much slower with NIC serialization: {} vs {}",
            with.finish[0],
            without.finish[0]
        );
    }

    #[test]
    fn dataflow_payload_travels() {
        let out = run2(
            vec![
                Op::InitSlot { slot: 0, value: Value::reduce_input(0, 0, 4) },
                Op::send(1, 1, 1024, 0),
            ],
            vec![
                Op::InitSlot { slot: 0, value: Value::reduce_input(1, 0, 4) },
                Op::recv(0, 1, 1),
                Op::ReduceLocal { from: 1, into: 0, bytes: 1024 },
            ],
        );
        assert!(out.data_errors.is_empty(), "{:?}", out.data_errors);
        let slots = out.slots.unwrap();
        for s in 0..4 {
            assert!(slots[1][0].get((0, s)).unwrap().is_full(2));
        }
    }

    #[test]
    fn double_reduce_is_reported() {
        let out = run2(
            vec![
                Op::InitSlot { slot: 0, value: Value::reduce_input(0, 0, 1) },
                Op::InitSlot { slot: 1, value: Value::reduce_input(0, 0, 1) },
                Op::ReduceLocal { from: 1, into: 0, bytes: 8 },
            ],
            vec![],
        );
        assert_eq!(out.data_errors.len(), 1);
    }

    #[test]
    fn mismatched_platform_rank_count_rejected() {
        let platform = Platform::simcluster(4);
        let job = Job::new(vec![RankProgram::new(); 2]);
        assert!(matches!(run(&platform, job, &SimConfig::default()), Err(SimError::InvalidProgram(_))));
    }

    #[test]
    fn compute_noise_only_when_noisy() {
        let platform = Platform::simcluster(1);
        let cfg = SimConfig { seed: 9, track_data: false, noise: NoiseModel::gaussian(0.2), ..SimConfig::default() };
        let exact = run(
            &platform,
            Job::new(vec![RankProgram::from_ops(vec![Op::delay(1.0)])]),
            &cfg,
        )
        .unwrap();
        assert_eq!(exact.finish[0], 1.0, "Op::delay must be exact under noise");
        let noisy = run(
            &platform,
            Job::new(vec![RankProgram::from_ops(vec![Op::compute(1.0)])]),
            &cfg,
        )
        .unwrap();
        assert_ne!(noisy.finish[0], 1.0, "Op::compute should be perturbed");
    }
}
