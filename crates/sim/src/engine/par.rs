//! Conservative-lookahead lockstep driver for partitioned runs.
//!
//! Each worker thread owns one [`Part`] and repeats synchronized rounds:
//!
//! 1. **Report** — publish the partition's next event time and error flag;
//!    after a barrier, every worker computes the identical global window
//!    start `W = min(next_t)` (and whether any partition errored) from the
//!    same reports.
//! 2. **Advance** — process all local events with `t < W + Δ`, where the
//!    lookahead `Δ` is the inter-node link latency. Any message effect
//!    crossing partitions is at least one inter-node hop away, so nothing a
//!    peer does in this window can schedule an event before `W + Δ`:
//!    processing the window locally is safe.
//! 3. **Exchange** — publish per-target handoff lists; after a barrier,
//!    apply inbound handoffs in source-partition order. Applying announces
//!    can emit rendezvous replies (`InjectAt`), which go through a second
//!    publish/apply phase.
//!
//! The loop ends when every partition is idle (`W = ∞`) or any partition
//! stopped on an error — both decisions are computed by every worker from
//! identical data, so all workers leave together.
//!
//! Determinism: within a window each partition pops events in the canonical
//! key order (see [`super::queue`]), all cross-partition effects carry
//! explicit timestamps computed by the owning side, and handoffs are applied
//! in a fixed order — so the set of (event key → state change) pairs is
//! exactly the sequential one. See DESIGN.md §12 for the full argument.

use std::sync::{Barrier, Mutex};

use super::part::{Handoff, Part};

/// Advance all partitions to completion in lockstep windows of `horizon`
/// seconds of lookahead. Returns the partitions with their results.
pub(super) fn drive(parts: Vec<Part<'_>>, horizon: f64) -> Vec<Part<'_>> {
    let n = parts.len();
    debug_assert!(n > 1);
    debug_assert!(horizon.is_finite() && horizon > 0.0);
    let slots: Vec<Mutex<Part>> = parts.into_iter().map(Mutex::new).collect();
    let reports: Vec<Mutex<(f64, bool)>> = (0..n).map(|_| Mutex::new((0.0, false))).collect();
    let published: Vec<Mutex<Vec<Vec<Handoff>>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let replies: Vec<Mutex<Vec<Vec<Handoff>>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(n);

    pap_parallel::lockstep(n, |i| {
        let mut part = slots[i].lock().expect("partition lock");
        loop {
            *reports[i].lock().expect("report lock") = (part.next_time(), part.has_error());
            barrier.wait();
            let mut w = f64::INFINITY;
            let mut any_err = false;
            for r in &reports {
                let (t, e) = *r.lock().expect("report lock");
                w = w.min(t);
                any_err |= e;
            }
            // Identical inputs → identical decision on every worker. No
            // barrier needed before the next report write: it happens after
            // the three barriers below, which everyone still in the loop
            // must reach first.
            if any_err || w == f64::INFINITY {
                break;
            }

            part.run_until(w + horizon);

            *published[i].lock().expect("publish lock") = part.take_outbox();
            barrier.wait();
            for src in &published {
                let h = std::mem::take(&mut src.lock().expect("publish lock")[i]);
                if !h.is_empty() {
                    part.apply(h);
                }
            }
            *replies[i].lock().expect("reply lock") = part.take_aux();
            barrier.wait();
            for src in &replies {
                let h = std::mem::take(&mut src.lock().expect("reply lock")[i]);
                if !h.is_empty() {
                    part.apply(h);
                }
            }
            barrier.wait();
        }
    });

    slots.into_iter().map(|m| m.into_inner().expect("partition lock")).collect()
}
