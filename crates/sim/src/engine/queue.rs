//! The engine's pending-event queue: a canonical total order and two
//! interchangeable implementations.
//!
//! ## Canonical event order
//!
//! Events are ordered by `(t, kind, uid, idx)`. The old engine broke
//! timestamp ties by insertion sequence, which is a property of *one
//! particular execution*; partitioned execution (see
//! [`crate::engine`]) processes the same events from several queues, so ties
//! must be broken by a key that every execution computes identically:
//!
//! * `kind` — [`QEvent::KIND_WAKE`] < inject < wire-arrival < delivered,
//! * `uid` — for rank wakes the rank id; for message events a stable message
//!   uid `(src_rank << 40) | k` where `k` counts the rank's sends in program
//!   order. Both are execution-independent.
//!
//! Keys are unique in engine use (one pending wake per rank, one lifecycle
//! event of each kind per message), so the order is total and seed-stable.
//!
//! ## Implementations
//!
//! * [`EventQueue::heap`] — a plain binary heap, best at small rank counts.
//! * [`EventQueue::calendar`] — a Brown-style calendar queue: a ring of
//!   unsorted future buckets (`O(1)` insert) plus a small heap holding only
//!   the current bucket. Events beyond one ring lap live in an overflow list
//!   that is re-dripped as the ring advances. At 10K+ ranks this replaces the
//!   `O(log n)` heap churn of tens of thousands of pending events with
//!   near-constant-time operations.
//!
//! [`EventQueue::auto`] picks between them from the expected scale;
//! equivalence of pop order is pinned by proptest (see
//! `crates/sim/tests/queue_equivalence.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One pending event: timestamp, kind, canonical uid and the payload index
/// (rank for wakes, message-table index otherwise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QEvent {
    /// Event time (finite; debug-asserted on push).
    pub t: f64,
    /// Event kind, one of the `KIND_*` constants; part of the sort key.
    pub kind: u8,
    /// Canonical tie-break id (rank or stable message uid).
    pub uid: u64,
    /// Payload: rank index for wakes, message-table index otherwise.
    pub idx: u32,
}

impl QEvent {
    /// Resume a rank (uid = rank).
    pub const KIND_WAKE: u8 = 0;
    /// Message ready for network injection.
    pub const KIND_INJECT: u8 = 1;
    /// Message bits fully arrived at the destination NIC.
    pub const KIND_WIRE: u8 = 2;
    /// Message content available to the destination rank.
    pub const KIND_DELIVERED: u8 = 3;
    /// A rank halts permanently ([`crate::fault::RankCrash`]; uid = rank).
    /// Sorts after same-instant message events: work completing exactly at
    /// the crash time still lands.
    pub const KIND_CRASH: u8 = 4;
}

impl Eq for QEvent {}

impl PartialOrd for QEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QEvent {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times are finite (asserted on push), so total_cmp is numeric order.
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.kind.cmp(&other.kind))
            .then_with(|| self.uid.cmp(&other.uid))
            .then_with(|| self.idx.cmp(&other.idx))
    }
}

/// Number of ring buckets (power of two; one lap ≈ `nb × width` seconds).
const NBUCKETS: usize = 2048;

/// Rank count at which [`EventQueue::auto`] switches to the calendar.
pub const CALENDAR_MIN_RANKS: usize = 2048;

/// Brown-style calendar queue specialized for simulation-time floats.
///
/// Bucket membership is defined by the *computed* absolute index
/// `floor(t / width)`, which is monotone in `t`, so floating-point edge
/// rounding can never reorder pops — at worst an event lands one bucket
/// early/late and is still drained in key order by the current-bucket heap.
#[derive(Debug)]
pub struct CalendarQueue {
    width_inv: f64,
    /// Future events, slot `b % NBUCKETS` for absolute index `b` in
    /// `(cur, cur + NBUCKETS]`. At most one absolute index per slot alive.
    ring: Vec<Vec<QEvent>>,
    /// Absolute index of the current bucket; its events sit in `cur_events`.
    cur: u64,
    /// Current bucket, sorted *descending* so the minimum pops from the
    /// tail. A bucket holds at most a few hundred events (width tracks the
    /// natural event spacing), so one `sort_unstable` per bucket plus a
    /// contiguous `insert` per late arrival beats a binary heap's
    /// cache-hostile sifts — the heap was ~20% of the 10K-rank profile.
    cur_events: Vec<QEvent>,
    /// Events beyond one ring lap, re-dripped as the ring advances.
    overflow: Vec<QEvent>,
    len: usize,
}

impl CalendarQueue {
    /// New calendar with the given bucket width in seconds.
    pub fn new(width: f64) -> Self {
        assert!(width.is_finite() && width > 0.0, "bucket width must be positive");
        CalendarQueue {
            width_inv: 1.0 / width,
            ring: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            cur: 0,
            cur_events: Vec::new(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn abs_idx(&self, t: f64) -> u64 {
        (t * self.width_inv) as u64
    }

    #[inline]
    fn push(&mut self, e: QEvent) {
        debug_assert!(e.t.is_finite() && e.t >= 0.0, "event time {} out of range", e.t);
        self.len += 1;
        let b = self.abs_idx(e.t);
        if b <= self.cur {
            // Late arrival into the current bucket: sorted insert (keys
            // descending, minimum at the tail).
            let pos = self.cur_events.partition_point(|x| *x > e);
            self.cur_events.insert(pos, e);
        } else if b - self.cur <= NBUCKETS as u64 {
            self.ring[(b % NBUCKETS as u64) as usize].push(e);
        } else {
            self.overflow.push(e);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<QEvent> {
        if self.len == 0 {
            return None;
        }
        while self.cur_events.is_empty() {
            self.advance();
        }
        self.len -= 1;
        self.cur_events.pop()
    }

    #[inline]
    fn peek(&mut self) -> Option<&QEvent> {
        if self.len == 0 {
            return None;
        }
        while self.cur_events.is_empty() {
            self.advance();
        }
        self.cur_events.last()
    }

    /// Sort a freshly filled current bucket into pop order (descending,
    /// minimum at the tail).
    #[inline]
    fn sort_cur(&mut self) {
        self.cur_events.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Move `cur` forward to the next non-empty bucket and drain it into
    /// `cur_events`. Precondition: `cur_events` empty, `len > 0`.
    fn advance(&mut self) {
        let nb = NBUCKETS as u64;
        let mut scanned = 0usize;
        loop {
            self.cur += 1;
            if self.cur.is_multiple_of(nb) && !self.overflow.is_empty() {
                self.redrip();
                if !self.cur_events.is_empty() {
                    self.sort_cur();
                    return;
                }
            }
            let slot = (self.cur % nb) as usize;
            if !self.ring[slot].is_empty() {
                std::mem::swap(&mut self.cur_events, &mut self.ring[slot]);
                self.sort_cur();
                return;
            }
            scanned += 1;
            if scanned >= NBUCKETS {
                // A full empty lap: every remaining event is in overflow.
                // Jump straight to the earliest one instead of spinning.
                debug_assert!(!self.overflow.is_empty());
                let min_b =
                    self.overflow.iter().map(|e| self.abs_idx(e.t)).min().expect("overflow non-empty");
                self.cur = min_b;
                self.redrip();
                if !self.cur_events.is_empty() {
                    self.sort_cur();
                    return;
                }
                scanned = 0;
            }
        }
    }

    /// Move overflow events now within one lap of `cur` into the ring (or
    /// the current bucket, unsorted — callers sort before returning).
    fn redrip(&mut self) {
        let nb = NBUCKETS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let b = self.abs_idx(self.overflow[i].t);
            if b <= self.cur {
                let e = self.overflow.swap_remove(i);
                self.cur_events.push(e);
            } else if b - self.cur <= nb {
                let e = self.overflow.swap_remove(i);
                self.ring[(b % nb) as usize].push(e);
            } else {
                i += 1;
            }
        }
    }
}

/// The engine's pending-event queue; see the module docs for the two
/// implementations and when each is used.
#[derive(Debug)]
pub enum EventQueue {
    /// Binary-heap implementation (small rank counts).
    Heap(BinaryHeap<Reverse<QEvent>>),
    /// Calendar-queue implementation (large rank counts).
    Calendar(CalendarQueue),
}

impl EventQueue {
    /// Plain binary heap.
    pub fn heap() -> Self {
        EventQueue::Heap(BinaryHeap::new())
    }

    /// Calendar queue with the given bucket width (seconds).
    pub fn calendar(width: f64) -> Self {
        EventQueue::Calendar(CalendarQueue::new(width))
    }

    /// Pick an implementation for a run of `ranks` ranks whose natural event
    /// spacing is `gap_hint` seconds (the engine passes the inter-node
    /// latency): heap below [`CALENDAR_MIN_RANKS`], calendar above with a
    /// bucket width of half the hint.
    pub fn auto(ranks: usize, gap_hint: f64) -> Self {
        if std::env::var_os("PAP_SIM_FORCE_HEAP").is_none() && ranks >= CALENDAR_MIN_RANKS && gap_hint.is_finite() && gap_hint > 0.0 {
            Self::calendar(gap_hint * 0.5)
        } else {
            Self::heap()
        }
    }

    /// Insert an event.
    #[inline]
    pub fn push(&mut self, e: QEvent) {
        debug_assert!(e.t.is_finite() && e.t >= 0.0, "event time {} out of range", e.t);
        match self {
            EventQueue::Heap(h) => h.push(Reverse(e)),
            EventQueue::Calendar(c) => c.push(e),
        }
    }

    /// Remove and return the minimum event in canonical order.
    #[inline]
    pub fn pop(&mut self) -> Option<QEvent> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| e),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    /// The minimum pending event, without removing it. Takes `&mut self`
    /// because the calendar may advance its ring to find it.
    #[inline]
    pub fn peek(&mut self) -> Option<&QEvent> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(e)| e),
            EventQueue::Calendar(c) => c.peek(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: u8, uid: u64) -> QEvent {
        QEvent { t, kind, uid, idx: uid as u32 }
    }

    fn drain(q: &mut EventQueue) -> Vec<QEvent> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn heap_and_calendar_agree_on_a_mixed_batch() {
        let events: Vec<QEvent> = (0..1000)
            .map(|i| {
                let i = i as u64;
                ev((i % 97) as f64 * 1e-6, (i % 4) as u8, i)
            })
            .collect();
        let mut h = EventQueue::heap();
        let mut c = EventQueue::calendar(0.5e-6);
        for &e in &events {
            h.push(e);
            c.push(e);
        }
        assert_eq!(drain(&mut h), drain(&mut c));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut c = EventQueue::calendar(1e-6);
        c.push(ev(5e-6, 0, 1));
        c.push(ev(1e-6, 0, 2));
        assert_eq!(c.pop().unwrap().uid, 2);
        // Push at exactly the current time (events never go backwards).
        c.push(ev(1e-6, 3, 3));
        c.push(ev(2e-3, 0, 4)); // deep into overflow
        assert_eq!(c.pop().unwrap().uid, 3);
        assert_eq!(c.pop().unwrap().uid, 1);
        assert_eq!(c.pop().unwrap().uid, 4);
        assert!(c.pop().is_none());
    }

    #[test]
    fn big_time_jumps_cross_overflow_laps() {
        let mut c = EventQueue::calendar(0.25e-6);
        // One lap is 2048 * 0.25us ≈ 0.5ms; jump whole seconds.
        for i in (0..10u64).rev() {
            c.push(ev(i as f64 * 0.1, 0, i));
        }
        let out = drain(&mut c);
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn kind_breaks_timestamp_ties() {
        let mut q = EventQueue::heap();
        q.push(ev(1.0, QEvent::KIND_DELIVERED, 0));
        q.push(ev(1.0, QEvent::KIND_WAKE, 9));
        q.push(ev(1.0, QEvent::KIND_INJECT, 4));
        let kinds: Vec<u8> = drain(&mut q).iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![QEvent::KIND_WAKE, QEvent::KIND_INJECT, QEvent::KIND_DELIVERED]);
    }

    #[test]
    fn auto_picks_by_scale() {
        assert!(matches!(EventQueue::auto(64, 2e-6), EventQueue::Heap(_)));
        assert!(matches!(EventQueue::auto(10_240, 2e-6), EventQueue::Calendar(_)));
    }

    #[test]
    fn peek_matches_pop() {
        let mut c = EventQueue::calendar(1e-6);
        for i in 0..100u64 {
            c.push(ev(((i * 37) % 50) as f64 * 1e-6, (i % 4) as u8, i));
        }
        while let Some(&p) = c.peek() {
            assert_eq!(c.pop(), Some(p));
        }
        assert!(c.is_empty());
    }
}
