//! One rank partition of a simulation run.
//!
//! [`Part`] is the execution core: it owns a contiguous, node-aligned range
//! of ranks `[r0, r1)` and processes their events in canonical key order
//! (see [`super::queue`]). A sequential run is a single `Part` covering all
//! ranks; a parallel run is several `Part`s advanced window-by-window by
//! [`super::par`], exchanging cross-partition message effects as
//! [`Handoff`]s at window barriers.
//!
//! The state layout is arena/SoA-style for 10K–100K rank scale:
//!
//! * per-rank control state ([`RankState`]) is a small flat struct; request
//!   slots live in one flat arena indexed by per-rank prefix offsets, RNGs
//!   are materialized only when a noise model is active, and payload slots
//!   only when dataflow tracking is on;
//! * channels `(src, dst, tag)` are dense [`Chan`] records in a free-listed
//!   table bucketed by destination rank, with FIFO queues as intrusive
//!   lists over two shared node arenas — an emptied channel returns its
//!   record and its bucket entry, so the table tracks in-flight traffic
//!   instead of growing with every distinct channel ever used (the seed
//!   engine's dominant memory cost at 100K ranks);
//! * messages live in a free-listed arena, as before.

use std::collections::HashMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::queue::{EventQueue, QEvent};
use super::{MsgEvent, PhaseRecord, SimError};
use crate::compiled::{COp, CompiledJob, CNIL};
use crate::data::{BlockFilter, Value};
use crate::noise::NoiseModel;
use crate::platform::Platform;
use crate::program::{Job, ReqId, Slot, Tag};
use crate::time::SimTime;
use crate::SimConfig;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Protocol {
    Eager,
    Rendezvous,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MsgState {
    /// Created; not yet matched with a receive.
    Unmatched,
    /// Eager data has arrived but no receive was posted yet.
    DeliveredUnmatched(SimTime),
    /// Matched; delivery event will complete the receive.
    WaitingDelivery,
    /// Fully consumed.
    Done,
}

/// A posted receive waiting in a channel. Packed to 16 bytes — one of
/// these sits in the shared `recv_nodes` arena per unmatched receive and
/// inside every matched [`Msg`], so its size is a per-message cache cost.
#[derive(Debug, Clone, Copy)]
struct RecvInfo {
    slot: u32,
    /// `NIL` = blocking `Recv` (the rank is parked on it); any other value
    /// is the `Irecv` request to resolve on completion.
    wake: u32,
    posted_at: SimTime,
}

#[derive(Debug, Clone, Copy)]
enum SenderWake {
    /// Blocking rendezvous `Send`; the rank is parked on it.
    Blocked,
    /// Rendezvous `Isend`; completing egress resolves this request.
    Req(u32),
    /// Eager send: the sender resumed immediately, nothing to wake.
    None,
}

struct Msg {
    /// Canonical id `(src << 40) | program-order send counter`; ties network
    /// events to the sender's program, not to one execution's bookkeeping.
    uid: u64,
    src: u32,
    dst: u32,
    tag: Tag,
    bytes: u64,
    protocol: Protocol,
    /// Sender-side ready time (after `o_s`).
    ready: SimTime,
    /// Pre-sampled multiplicative noise on the wire time (sampled in sender
    /// program order so results do not depend on event processing order).
    wire_factor: f64,
    state: MsgState,
    recv: Option<RecvInfo>,
    sender_wake: SenderWake,
    payload: Option<Value>,
    /// For a message announced from another partition: the sender-side
    /// message index over there (echoed back in `Handoff::InjectAt`).
    src_ref: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ReqState {
    Free,
    Pending,
    /// Pending and listed in the WaitAll the rank is currently parked on.
    /// Completion decrements the rank's cached countdown instead of
    /// re-scanning the op's request list (the scan dominated the profile
    /// at 10K ranks: every completion chased program pointers).
    PendingWaited,
    Done(SimTime),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Runnable,
    BlockedRecv,
    BlockedSend,
    BlockedWaitAll,
    Finished,
    /// Halted permanently by a [`crate::fault::RankCrash`]. Terminal like
    /// `Finished` (excluded from deadlock reporting), but deliveries and
    /// request completions addressed to the rank are dropped instead of
    /// resuming it.
    Crashed,
}

struct RankState {
    /// Absolute index of the rank's next op in [`CompiledJob::ops`] — the
    /// hot loop is one indexed load into a single shared flat array.
    op_i: u32,
    /// Absolute index of the current segment in [`CompiledJob::segs`].
    seg_i: u32,
    /// First op of the current segment (phase-enter detection).
    seg_start: u32,
    /// One past the last op of the current segment.
    seg_end: u32,
    local: SimTime,
    status: Status,
    seg_enter: SimTime,
    /// Set when a wake event is already scheduled, to avoid duplicates.
    wake_pending: bool,
    /// Set while the rank is inside `advance` (executing ops). Inline
    /// resumes check it so a cascade never re-enters a rank that is
    /// already running — it schedules a wake event instead.
    active: bool,
    /// While parked on a WaitAll: how many listed requests are still
    /// pending, and the max completion time seen so far. Together these
    /// make request completion O(1) — no program access, no list scan.
    wa_left: u32,
    wa_t: SimTime,
}

/// `(src, dst, tag)` packed into one integer so channel lookups hash a
/// single u128 instead of a tuple field by field.
type ChanKey = u128;

#[inline]
fn chan_key(src: u32, dst: u32, tag: Tag) -> ChanKey {
    ((src as u128) << 96) | ((dst as u128) << 64) | tag as u128
}

/// Multiply-xor hasher (FxHash-style) for the uid map. SipHash dominated
/// the map profile; keys are program-controlled, not attacker-controlled,
/// so a non-DoS-resistant hash is fine here.
#[derive(Default)]
struct ChanHasher {
    hash: u64,
}

const CHAN_HASH_K: u64 = 0x517c_c1b7_2722_0a95;

/// Cap on nested inline resumes/deliveries. Bounds stack growth on long
/// intra-node dependency chains (e.g. a ping-pong loop inside one node);
/// past the cap the engine falls back to queue events.
const INLINE_DEPTH_MAX: u32 = 64;

impl std::hash::Hasher for ChanHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(CHAN_HASH_K);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
}

type ChanHash = std::hash::BuildHasherDefault<ChanHasher>;

/// A live channel: intrusive FIFO lists of unmatched sends and unmatched
/// posted receives. Both lists index into the owning table's node arenas.
#[derive(Clone, Copy)]
struct Chan {
    in_head: u32,
    in_tail: u32,
    po_head: u32,
    po_tail: u32,
}

/// Dense channel table: live channels bucketed by local destination rank,
/// with two node arenas backing the per-channel FIFO queues. A channel's
/// bucket entry is dropped as soon as both queues drain, so the table
/// tracks in-flight traffic only.
///
/// A rank has only a handful of channels in flight at any instant, so one
/// short walk of a per-rank list — with the [`Chan`] record stored *inline*
/// in the node — beats a global hash map (whose random-probe misses were
/// ~15% of the 10K-rank profile) and also beats an index into a separate
/// channel arena (a second dependent miss). The lists are intrusive into
/// one shared node arena rather than per-rank `Vec`s: with 10K+ ranks the
/// per-run churn of one heap allocation per rank was itself visible in the
/// profile. Destination ranks are always partition-local (cross-partition
/// sends match on the destination side), so the head index is `dst - r0`.
struct ChanTable {
    r0: u32,
    /// Head of each local destination rank's live-channel list (`NIL` = none).
    by_dst: Vec<u32>,
    /// `((key, channel), next)` nodes of the per-destination lists.
    chan_nodes: Vec<((ChanKey, Chan), u32)>,
    free_chan_nodes: Vec<u32>,
    /// `(message index, next)` nodes for the `incoming` lists.
    msg_nodes: Vec<(u32, u32)>,
    free_msg_nodes: Vec<u32>,
    /// `(receive info, next)` nodes for the `posted` lists.
    recv_nodes: Vec<(RecvInfo, u32)>,
    free_recv_nodes: Vec<u32>,
}

/// Append a value to an intrusive free-listed node arena.
#[inline]
fn alloc_node<T: Copy>(nodes: &mut Vec<(T, u32)>, free: &mut Vec<u32>, v: T) -> u32 {
    match free.pop() {
        Some(n) => {
            nodes[n as usize] = (v, NIL);
            n
        }
        None => {
            nodes.push((v, NIL));
            (nodes.len() - 1) as u32
        }
    }
}

impl ChanTable {
    fn new(r0: u32, n: usize) -> ChanTable {
        ChanTable {
            r0,
            by_dst: vec![NIL; n],
            chan_nodes: Vec::new(),
            free_chan_nodes: Vec::new(),
            msg_nodes: Vec::new(),
            free_msg_nodes: Vec::new(),
            recv_nodes: Vec::new(),
            free_recv_nodes: Vec::new(),
        }
    }

    /// Find `key` in its destination's channel list. Returns the node and
    /// its predecessor (`NIL` when the node is the head / key is absent).
    #[inline]
    fn find(&self, key: ChanKey) -> (usize, u32, u32) {
        let dst = ((key >> 64) & 0xFFFF_FFFF) as u32;
        let slot = (dst - self.r0) as usize;
        let (mut prev, mut cur) = (NIL, self.by_dst[slot]);
        while cur != NIL {
            let ((k, _), next) = self.chan_nodes[cur as usize];
            if k == key {
                break;
            }
            prev = cur;
            cur = next;
        }
        (slot, prev, cur)
    }

    /// Unlink a drained channel node and return it to the free list.
    #[inline]
    fn release(&mut self, slot: usize, prev: u32, cur: u32) {
        let next = self.chan_nodes[cur as usize].1;
        if prev == NIL {
            self.by_dst[slot] = next;
        } else {
            self.chan_nodes[prev as usize].1 = next;
        }
        self.free_chan_nodes.push(cur);
    }

    /// A send arrives on `key`: pop the oldest posted receive if one exists,
    /// otherwise append `msg` to the channel's incoming list. One list walk
    /// total, including the empty-channel release.
    fn send_arrives(&mut self, key: ChanKey, msg: u32) -> Option<RecvInfo> {
        let (slot, prev, cur) = self.find(key);
        if cur == NIL {
            let n = alloc_node(&mut self.msg_nodes, &mut self.free_msg_nodes, msg);
            let chan = Chan { in_head: n, in_tail: n, po_head: NIL, po_tail: NIL };
            let cn = alloc_node(&mut self.chan_nodes, &mut self.free_chan_nodes, (key, chan));
            self.chan_nodes[cn as usize].1 = self.by_dst[slot];
            self.by_dst[slot] = cn;
            return None;
        }
        let c = &mut self.chan_nodes[cur as usize].0 .1;
        let head = c.po_head;
        if head != NIL {
            let (info, next) = self.recv_nodes[head as usize];
            c.po_head = next;
            if next == NIL {
                c.po_tail = NIL;
            }
            if c.in_head == NIL && c.po_head == NIL {
                self.release(slot, prev, cur);
            }
            self.free_recv_nodes.push(head);
            return Some(info);
        }
        let n = alloc_node(&mut self.msg_nodes, &mut self.free_msg_nodes, msg);
        let c = &mut self.chan_nodes[cur as usize].0 .1;
        if c.in_tail == NIL {
            c.in_head = n;
        } else {
            self.msg_nodes[c.in_tail as usize].1 = n;
        }
        c.in_tail = n;
        None
    }

    /// A receive arrives on `key`: pop the oldest unmatched send if one
    /// exists, otherwise append `info` to the channel's posted list.
    fn recv_arrives(&mut self, key: ChanKey, info: RecvInfo) -> Option<u32> {
        let (slot, prev, cur) = self.find(key);
        if cur == NIL {
            let n = alloc_node(&mut self.recv_nodes, &mut self.free_recv_nodes, info);
            let chan = Chan { in_head: NIL, in_tail: NIL, po_head: n, po_tail: n };
            let cn = alloc_node(&mut self.chan_nodes, &mut self.free_chan_nodes, (key, chan));
            self.chan_nodes[cn as usize].1 = self.by_dst[slot];
            self.by_dst[slot] = cn;
            return None;
        }
        let c = &mut self.chan_nodes[cur as usize].0 .1;
        let head = c.in_head;
        if head != NIL {
            let (msg, next) = self.msg_nodes[head as usize];
            c.in_head = next;
            if next == NIL {
                c.in_tail = NIL;
            }
            if c.in_head == NIL && c.po_head == NIL {
                self.release(slot, prev, cur);
            }
            self.free_msg_nodes.push(head);
            return Some(msg);
        }
        let n = alloc_node(&mut self.recv_nodes, &mut self.free_recv_nodes, info);
        let c = &mut self.chan_nodes[cur as usize].0 .1;
        if c.po_tail == NIL {
            c.po_head = n;
        } else {
            self.recv_nodes[c.po_tail as usize].1 = n;
        }
        c.po_tail = n;
        None
    }

    /// Arena slots ever allocated (capacity high-water mark).
    fn arena_slots(&self) -> usize {
        self.msg_nodes.len() + self.recv_nodes.len() + self.chan_nodes.len()
    }
}

/// A cross-partition message effect, exchanged at window barriers.
///
/// `Announce` and `WireArrivalAt` travel sender → receiver partition;
/// `InjectAt` travels back. Application order (by source partition, then
/// emission order) preserves per-channel FIFO and the announce-before-wire
/// invariant, because all traffic of one channel originates from a single
/// rank, hence a single partition.
pub(super) enum Handoff {
    /// A send whose destination rank lives in the receiving partition. The
    /// destination allocates its own message record and runs the usual
    /// matching against posted receives.
    Announce {
        uid: u64,
        src: u32,
        dst: u32,
        tag: Tag,
        bytes: u64,
        eager: bool,
        ready: SimTime,
        wire_factor: f64,
        src_ref: u32,
        payload: Option<Value>,
    },
    /// Rendezvous response: the receiver matched the announce; the sender
    /// partition schedules network injection of its message `src_ref` at `t`.
    InjectAt { src_ref: u32, t: SimTime },
    /// The sender partition finished egress; the bits of message `uid`
    /// reach the receiver's NIC at `t`.
    WireArrivalAt { uid: u64, t: SimTime },
}

/// The execution core for ranks `[r0, r1)` of a run. See the module docs.
pub(super) struct Part<'a> {
    platform: &'a Platform,
    cfg: &'a SimConfig,
    /// The job's flattened op stream (see [`crate::compiled`]). Borrowed so
    /// the hot loop can hold `&'a COp` references while mutating the rest
    /// of the state — no per-event op clone.
    comp: &'a CompiledJob,
    /// Partition rank boundaries of the whole run (`bounds[i]..bounds[i+1]`
    /// is partition `i`); used to route cross-partition handoffs.
    bounds: &'a [usize],
    r0: usize,
    r1: usize,
    /// First cluster node of this partition (partitions are node-aligned, so
    /// NIC egress/ingress state is partition-local).
    node0: usize,
    ranks: Vec<RankState>,
    /// Per-rank RNG streams; empty when the noise model is `None` (the
    /// common sweep configuration), saving one ChaCha init per rank.
    rngs: Vec<ChaCha8Rng>,
    /// Flat request arena; rank `l` owns `req_base[l]..req_base[l+1]`.
    reqs: Vec<ReqState>,
    req_base: Vec<u32>,
    /// Per-rank payload slots; empty unless `track_data`.
    slots: Vec<Vec<Value>>,
    queue: EventQueue,
    chans: ChanTable,
    msgs: Vec<Msg>,
    free_msgs: Vec<u32>,
    egress_free: Vec<SimTime>,
    ingress_free: Vec<SimTime>,
    /// Per-rank count of sends initiated, in program order (uid minor part).
    send_seq: Vec<u64>,
    /// uid → local message index for messages announced from elsewhere.
    uid_map: HashMap<u64, u32, ChanHash>,
    /// Handoffs emitted while processing a window, indexed by target
    /// partition.
    outbox: Vec<Vec<Handoff>>,
    /// Handoffs emitted while *applying* inbound handoffs (rendezvous
    /// `InjectAt` responses), exchanged in a second barrier phase.
    aux: Vec<Vec<Handoff>>,
    in_apply: bool,
    /// Current inline-cascade depth (see [`Part::resume_inline`]).
    inline_depth: u32,
    /// Pending stall intervals `(at, duration)` of this partition's ranks,
    /// flat and sorted per rank by start time; rank `l` owns
    /// `fault_stall_base[l]..fault_stall_base[l+1]`. Empty (with `has_stalls`
    /// false) when the fault spec carries no stalls for these ranks.
    fault_stalls: Vec<(SimTime, f64)>,
    fault_stall_base: Vec<u32>,
    /// Per-rank cursor into `fault_stalls`: the next unconsumed stall. A
    /// stall is consumed exactly once, the first time the rank's local clock
    /// is assigned a time at or past its start.
    fault_next: Vec<u32>,
    /// Per-rank crash instant (`f64::INFINITY` = never). Ranks execute ahead
    /// of the global clock, so a crash must be enforced where time actually
    /// advances: every local-clock assignment runs through [`Part::warp`],
    /// which halts the rank the moment an assignment would cross this value.
    /// The [`QEvent::KIND_CRASH`] queue event is only the backstop for ranks
    /// parked on a peer that never responds (their clock never moves again).
    fault_crash: Vec<SimTime>,
    /// Fast-path gates: whether any stall/crash targets this partition's
    /// ranks / any storm or link window exists in the spec. With all four
    /// false the engine takes exactly the fault-free code paths.
    has_stalls: bool,
    has_crashes: bool,
    has_storms: bool,
    has_links: bool,
    pub(super) phases: Vec<PhaseRecord>,
    pub(super) finish: Vec<SimTime>,
    pub(super) msg_events: Vec<MsgEvent>,
    pub(super) data_errors: Vec<(u32, String)>,
    pub(super) events: u64,
    pub(super) messages: u64,
    /// First error raised, tagged with the canonical key of the event being
    /// processed — across partitions, the minimum key is the error the
    /// sequential run would have reported.
    pub(super) error: Option<(QEvent, SimError)>,
    pub(super) last_t: SimTime,
    cur_key: QEvent,
    /// False until the first `run_until` has swept every rank once. The
    /// sweep replaces the seed engine's p initial wake events: ranks start
    /// in ascending order, exactly the canonical order of the elided
    /// `(t=0, WAKE, rank)` keys, so outputs are unchanged.
    started: bool,
    pub(super) queue_hwm: usize,
    live_msgs: usize,
    pub(super) live_msgs_hwm: usize,
}

impl<'a> Part<'a> {
    pub(super) fn new(
        platform: &'a Platform,
        job: &'a Job,
        cfg: &'a SimConfig,
        bounds: &'a [usize],
        me: usize,
    ) -> Part<'a> {
        let (r0, r1) = (bounds[me], bounds[me + 1]);
        let n = r1 - r0;
        let nparts = bounds.len() - 1;
        let node0 = platform.node_of(r0);
        let nnodes = platform.node_of(r1 - 1) + 1 - node0;

        let req_counts = job.req_counts();
        let comp = job.compiled();
        let mut ranks = Vec::with_capacity(n);
        let mut req_base = Vec::with_capacity(n + 1);
        let mut nreqs = 0u32;
        for (g, &rc) in req_counts.iter().enumerate().take(r1).skip(r0) {
            req_base.push(nreqs);
            nreqs += rc;
            let (s0, s1) = (comp.rank_segs[g], comp.rank_segs[g + 1]);
            let op0 = comp.rank_ops[g];
            ranks.push(RankState {
                op_i: op0,
                seg_i: s0,
                seg_start: op0,
                seg_end: if s0 < s1 { comp.segs[s0 as usize].end } else { op0 },
                local: 0.0,
                status: Status::Runnable,
                seg_enter: 0.0,
                wake_pending: false,
                active: false,
                wa_left: 0,
                wa_t: 0.0,
            });
        }
        req_base.push(nreqs);

        let rngs = if cfg.noise.is_none() {
            Vec::new()
        } else {
            (r0..r1)
                .map(|g| {
                    ChaCha8Rng::seed_from_u64(
                        cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(g as u64),
                    )
                })
                .collect()
        };
        let slots = if cfg.track_data {
            (r0..r1).map(|g| vec![Value::empty(); job.slots_needed(g)]).collect()
        } else {
            Vec::new()
        };

        let queue = EventQueue::auto(n, platform.inter.latency);

        // Per-rank stall plan: local ranks' stalls, flattened and sorted by
        // (rank, start). The sort key is execution-independent, so every
        // partitioning consumes stalls in the same per-rank order.
        let mut local_stalls: Vec<(u32, SimTime, f64)> = cfg
            .faults
            .stalls
            .iter()
            .filter(|s| (r0..r1).contains(&s.rank))
            .map(|s| ((s.rank - r0) as u32, s.at, s.stall))
            .collect();
        local_stalls.sort_by(|a, b| {
            a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.total_cmp(&b.2))
        });
        let has_stalls = !local_stalls.is_empty();
        let mut fault_stall_base = Vec::new();
        let mut fault_stalls = Vec::new();
        let mut fault_next = Vec::new();
        if has_stalls {
            fault_stall_base.reserve(n + 1);
            let mut it = local_stalls.iter().peekable();
            for l in 0..n as u32 {
                fault_stall_base.push(fault_stalls.len() as u32);
                fault_next.push(fault_stalls.len() as u32);
                while let Some(&&(lr, at, dur)) = it.peek() {
                    if lr != l {
                        break;
                    }
                    fault_stalls.push((at, dur));
                    it.next();
                }
            }
            fault_stall_base.push(fault_stalls.len() as u32);
        }

        // Per-rank crash instant (earliest wins if a spec lists several).
        let mut fault_crash = Vec::new();
        let mut has_crashes = false;
        for c in &cfg.faults.crashes {
            if (r0..r1).contains(&c.rank) {
                if !has_crashes {
                    fault_crash = vec![f64::INFINITY; n];
                    has_crashes = true;
                }
                let slot = &mut fault_crash[c.rank - r0];
                *slot = slot.min(c.at);
            }
        }

        let mut part = Part {
            platform,
            cfg,
            comp,
            bounds,
            r0,
            r1,
            node0,
            ranks,
            rngs,
            reqs: vec![ReqState::Free; nreqs as usize],
            req_base,
            slots,
            queue,
            chans: ChanTable::new(r0 as u32, n),
            msgs: Vec::new(),
            free_msgs: Vec::new(),
            egress_free: vec![0.0; nnodes],
            ingress_free: vec![0.0; nnodes],
            send_seq: vec![0; n],
            uid_map: HashMap::default(),
            outbox: (0..nparts).map(|_| Vec::new()).collect(),
            aux: (0..nparts).map(|_| Vec::new()).collect(),
            in_apply: false,
            inline_depth: 0,
            fault_stalls,
            fault_stall_base,
            fault_next,
            fault_crash,
            has_stalls,
            has_crashes,
            has_storms: !cfg.faults.storms.is_empty(),
            has_links: !cfg.faults.links.is_empty(),
            phases: Vec::new(),
            finish: vec![0.0; n],
            msg_events: Vec::new(),
            data_errors: Vec::new(),
            events: 0,
            messages: 0,
            error: None,
            last_t: 0.0,
            cur_key: QEvent { t: 0.0, kind: 0, uid: 0, idx: 0 },
            started: false,
            queue_hwm: 0,
            live_msgs: 0,
            live_msgs_hwm: 0,
        };
        // Crash events carry their own queue kind so a rank parked on a
        // receive that never arrives still halts at its crash time (a purely
        // clock-based check would never fire for it).
        for c in &cfg.faults.crashes {
            if (r0..r1).contains(&c.rank) {
                part.push_event(c.at, QEvent::KIND_CRASH, c.rank as u64, (c.rank - r0) as u32);
            }
        }
        part
    }

    /// Global rank of local index `l`.
    #[inline]
    fn g(&self, l: usize) -> usize {
        self.r0 + l
    }

    #[inline]
    fn owns(&self, rank: usize) -> bool {
        (self.r0..self.r1).contains(&rank)
    }

    /// Partition owning a global rank (partitions are contiguous).
    #[inline]
    fn part_of(&self, rank: usize) -> usize {
        self.bounds.partition_point(|&b| b <= rank) - 1
    }

    fn emit(&mut self, target: usize, h: Handoff) {
        if self.in_apply {
            self.aux[target].push(h);
        } else {
            self.outbox[target].push(h);
        }
    }

    /// Timestamp of the next pending event (`∞` when idle or errored).
    pub(super) fn next_time(&mut self) -> f64 {
        if self.error.is_some() {
            return f64::INFINITY;
        }
        if !self.started {
            // The startup sweep (all ranks begin at t = 0) is still pending.
            return 0.0;
        }
        self.queue.peek().map_or(f64::INFINITY, |e| e.t)
    }

    pub(super) fn has_error(&self) -> bool {
        self.error.is_some()
    }

    /// Move this partition's emitted handoffs out for publication.
    pub(super) fn take_outbox(&mut self) -> Vec<Vec<Handoff>> {
        let n = self.outbox.len();
        std::mem::replace(&mut self.outbox, (0..n).map(|_| Vec::new()).collect())
    }

    /// Move the barrier-phase responses out for publication.
    pub(super) fn take_aux(&mut self) -> Vec<Vec<Handoff>> {
        let n = self.aux.len();
        std::mem::replace(&mut self.aux, (0..n).map(|_| Vec::new()).collect())
    }

    /// Apply inbound handoffs from one source partition, in emission order.
    pub(super) fn apply(&mut self, handoffs: Vec<Handoff>) {
        self.in_apply = true;
        for h in handoffs {
            match h {
                Handoff::Announce {
                    uid,
                    src,
                    dst,
                    tag,
                    bytes,
                    eager,
                    ready,
                    wire_factor,
                    src_ref,
                    payload,
                } => {
                    let id = self.alloc_msg(Msg {
                        uid,
                        src,
                        dst,
                        tag,
                        bytes,
                        protocol: if eager { Protocol::Eager } else { Protocol::Rendezvous },
                        ready,
                        wire_factor,
                        state: MsgState::Unmatched,
                        recv: None,
                        sender_wake: SenderWake::None,
                        payload,
                        src_ref,
                    });
                    self.uid_map.insert(uid, id as u32);
                    if let Some(info) = self.chans.send_arrives(chan_key(src, dst, tag), id as u32) {
                        self.attach_recv(id, info);
                    }
                }
                Handoff::InjectAt { src_ref, t } => {
                    let uid = self.msgs[src_ref as usize].uid;
                    self.push_event(t, QEvent::KIND_INJECT, uid, src_ref);
                }
                Handoff::WireArrivalAt { uid, t } => {
                    let idx = self.uid_map[&uid];
                    self.push_event(t, QEvent::KIND_WIRE, uid, idx);
                }
            }
        }
        self.in_apply = false;
    }

    #[inline]
    fn push_event(&mut self, t: SimTime, kind: u8, uid: u64, idx: u32) {
        self.queue.push(QEvent { t, kind, uid, idx });
        if self.queue.len() > self.queue_hwm {
            self.queue_hwm = self.queue.len();
        }
    }

    fn schedule_wake(&mut self, l: usize, t: SimTime) {
        if !self.ranks[l].wake_pending {
            self.ranks[l].wake_pending = true;
            self.push_event(t, QEvent::KIND_WAKE, self.g(l) as u64, l as u32);
        }
    }

    /// Process pending events with `t < until` in canonical order; stops
    /// early on the first error.
    pub(super) fn run_until(&mut self, until: f64) {
        if self.error.is_some() {
            return;
        }
        if !self.started {
            if until <= 0.0 {
                return;
            }
            // Startup sweep: run every rank once from t = 0 in ascending
            // rank order — the canonical order of the initial wake events
            // this replaces (`t` ties broken by kind, then uid = rank).
            self.started = true;
            for l in 0..self.ranks.len() {
                self.cur_key =
                    QEvent { t: 0.0, kind: QEvent::KIND_WAKE, uid: self.g(l) as u64, idx: l as u32 };
                self.advance(l);
                if self.error.is_some() {
                    return;
                }
            }
        }
        while let Some(&key) = self.queue.peek() {
            if key.t >= until {
                break;
            }
            self.queue.pop();
            self.events += 1;
            self.last_t = key.t;
            self.cur_key = key;
            match key.kind {
                QEvent::KIND_WAKE => {
                    let l = key.idx as usize;
                    self.ranks[l].wake_pending = false;
                    self.advance(l);
                }
                QEvent::KIND_INJECT => self.on_inject(key.idx as usize, key.t),
                QEvent::KIND_WIRE => self.on_wire_arrival(key.idx as usize, key.t),
                QEvent::KIND_CRASH => self.on_crash(key.idx as usize, key.t),
                _ => self.on_delivered(key.idx as usize, key.t),
            }
            if self.error.is_some() {
                return;
            }
        }
    }

    /// Ranks of this partition that have not finished, with a description of
    /// what blocks them (deadlock reporting). Crashed ranks are terminal —
    /// they halted by design, so only their *dependents* count as blocked.
    pub(super) fn blocked(&self) -> Vec<(usize, String)> {
        self.ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.status != Status::Finished && r.status != Status::Crashed)
            .map(|(l, st)| {
                let g = self.g(l);
                let seg = st.seg_i - self.comp.rank_segs[g];
                let pc = st.op_i - st.seg_start;
                let desc = if st.op_i < self.comp.rank_ops[g + 1] {
                    let op = &self.comp.ops[st.op_i as usize];
                    format!("{:?} (seg {}, pc {}, status {:?})", op, seg, pc, st.status)
                } else {
                    format!("end-of-program? (seg {}, pc {}, status {:?})", seg, pc, st.status)
                };
                (g, desc)
            })
            .collect()
    }

    /// Allocated arena slots (messages + channel records + queue nodes).
    pub(super) fn arena_slots(&self) -> usize {
        self.msgs.len() + self.chans.arena_slots()
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some((self.cur_key, SimError::InvalidProgram(msg)));
        }
    }

    // -- fault injection ----------------------------------------------------

    /// Apply any pending stalls of rank `l` to a new local-clock value `t`:
    /// every stall starting at or before `t` freezes the rank, pushing the
    /// completion back by its duration (which may pull later stalls into
    /// range — they cascade). Called at every local-clock assignment point;
    /// consumption order is per-rank canonical (all of a rank's clock
    /// assignments happen while its owning partition processes events in
    /// canonical order), so every partitioning consumes stalls identically.
    ///
    /// The same hook enforces crashes: if the (stall-adjusted) time crosses
    /// the rank's crash instant, the rank halts there — status flips to
    /// [`Status::Crashed`], `finish` pins to the crash time, and the
    /// returned time is the crash time. Callers must check
    /// [`Part::crashed`] before performing the op's side effects (injecting
    /// a message, posting a receive, completing a request): work strictly
    /// after the crash never happens. Work completing *exactly at* the
    /// crash instant still lands (strict `>`), matching the ordering of
    /// [`QEvent::KIND_CRASH`] after same-instant message events.
    #[inline]
    fn warp(&mut self, l: usize, t: SimTime) -> SimTime {
        if !self.has_stalls && !self.has_crashes {
            return t;
        }
        self.warp_slow(l, t)
    }

    fn warp_slow(&mut self, l: usize, mut t: SimTime) -> SimTime {
        if self.has_stalls {
            let end = self.fault_stall_base[l + 1];
            let mut i = self.fault_next[l];
            while i < end {
                let (at, dur) = self.fault_stalls[i as usize];
                if at > t {
                    break;
                }
                t += dur;
                i += 1;
            }
            self.fault_next[l] = i;
        }
        if self.has_crashes {
            let c = self.fault_crash[l];
            if t > c {
                self.ranks[l].status = Status::Crashed;
                self.finish[l] = c;
                return c;
            }
        }
        t
    }

    /// Whether rank `l` is dead — checked after every [`Part::warp`] call
    /// that precedes a side effect.
    #[inline]
    fn crashed(&self, l: usize) -> bool {
        self.ranks[l].status == Status::Crashed
    }

    /// A CPU-side duration with noise and any active noise-storm slowdown
    /// applied. `at` is the simulated time the work starts; storm windows
    /// are pure functions of `(rank, at)`, so the factor is independent of
    /// event processing order.
    #[inline]
    fn cpu_time(&mut self, l: usize, d: SimTime, at: SimTime) -> SimTime {
        let d = self.perturb(l, d);
        if self.has_storms {
            d * self.cfg.faults.storm_factor(self.g(l), at)
        } else {
            d
        }
    }

    /// Transfer-time multiplier from link-fault windows active at `t` on the
    /// `src → dst` node channel (1.0 when no link faults exist).
    #[inline]
    fn link_fault_factor(&self, src: usize, dst: usize, t: SimTime) -> f64 {
        if !self.has_links {
            return 1.0;
        }
        self.cfg.faults.link_factor(self.platform.node_of(src), self.platform.node_of(dst), t)
    }

    /// A [`crate::fault::RankCrash`] fires: halt the rank permanently. Work
    /// already completed stands; deliveries and completions arriving later
    /// are dropped by the `Crashed` guards. Ranks blocked on the dead rank
    /// park forever and surface as [`SimError::Deadlock`].
    fn on_crash(&mut self, l: usize, at: SimTime) {
        let st = &mut self.ranks[l];
        if matches!(st.status, Status::Finished | Status::Crashed) {
            return;
        }
        st.status = Status::Crashed;
        self.finish[l] = at;
    }

    // -- rank execution ----------------------------------------------------

    /// Execute ops of local rank `l` until it blocks or finishes.
    fn advance(&mut self, l: usize) {
        self.ranks[l].active = true;
        self.advance_inner(l);
        self.ranks[l].active = false;
    }

    /// Resume rank `l` inline (its local clock already carries its logical
    /// time) instead of round-tripping a wake event through the queue.
    /// Matching is FIFO head-to-head per channel and NIC claims still go
    /// through timestamped events, so with noise off — where no cross-rank
    /// RNG interleaving can shift — the outcome is identical. Refuses (and
    /// returns false, caller schedules a wake) when the rank is already
    /// mid-`advance` or the cascade is deep enough to threaten the stack.
    /// Cascades only propagate intra-node, and partitions are node-aligned,
    /// so sequential and partitioned runs take identical decisions here.
    fn resume_inline(&mut self, l: usize) -> bool {
        if !self.cfg.noise.is_none()
            || self.inline_depth >= INLINE_DEPTH_MAX
            || self.ranks[l].active
        {
            return false;
        }
        self.inline_depth += 1;
        self.advance(l);
        self.inline_depth -= 1;
        true
    }

    fn advance_inner(&mut self, l: usize) {
        loop {
            match self.ranks[l].status {
                Status::Finished | Status::Crashed | Status::BlockedRecv | Status::BlockedSend => {
                    return
                }
                Status::BlockedWaitAll => {
                    // Re-evaluate the WaitAll the rank is parked on; on
                    // success the op is complete, so advance past it.
                    if !self.try_waitall(l) {
                        return;
                    }
                    self.ranks[l].status = Status::Runnable;
                    self.step(l);
                }
                Status::Runnable => {}
            }

            // Fast path: the next op is one indexed load into the job's
            // flat compiled op stream; segment tables are only touched at
            // boundaries below.
            let comp = self.comp;
            let st = &mut self.ranks[l];
            let op_i = st.op_i;
            if op_i < st.seg_end {
                if op_i == st.seg_start {
                    st.seg_enter = st.local;
                }
                // `comp` borrows the job with the outer lifetime, so `op`
                // does not pin `self` while exec_op mutates it.
                let op = &comp.ops[op_i as usize];
                if !self.exec_op(l, op) {
                    return;
                }
                if self.error.is_some() {
                    return;
                }
                continue;
            }

            // Segment bookkeeping.
            let seg_i = st.seg_i;
            let g = self.r0 + l;
            if seg_i >= comp.rank_segs[g + 1] {
                let st = &mut self.ranks[l];
                st.status = Status::Finished;
                let t = st.local;
                self.finish[l] = t;
                return;
            }
            // Segment complete (op_i ran past its end).
            if self.cfg.record_phases {
                if let Some(label) = comp.segs[seg_i as usize].label() {
                    let enter = self.ranks[l].seg_enter;
                    let exit = self.ranks[l].local;
                    self.phases.push(PhaseRecord { rank: g, label, enter, exit });
                }
            }
            let st = &mut self.ranks[l];
            st.seg_i = seg_i + 1;
            st.seg_start = op_i;
            st.seg_enter = st.local;
            st.seg_end = if seg_i + 1 < comp.rank_segs[g + 1] {
                comp.segs[(seg_i + 1) as usize].end
            } else {
                op_i
            };
        }
    }

    /// Execute one op. Returns false if the rank blocked (`op_i` stays on
    /// the op); returns true if execution should continue (`op_i` advanced).
    fn exec_op(&mut self, l: usize, op: &COp) -> bool {
        match *op {
            COp::Compute { seconds, noisy } => {
                let at = self.ranks[l].local;
                let d = if noisy { self.cpu_time(l, seconds, at) } else { seconds };
                self.ranks[l].local = self.warp(l, at + d);
                if self.crashed(l) {
                    return false;
                }
                self.step(l);
                true
            }
            COp::SleepUntil { time } => {
                let t = self.ranks[l].local.max(time);
                self.ranks[l].local = self.warp(l, t);
                if self.crashed(l) {
                    return false;
                }
                self.step(l);
                true
            }
            COp::Send { to, slot, tag, bytes, filter, req } => self.do_send(
                l,
                to as usize,
                tag,
                bytes,
                slot as usize,
                filter,
                (req != CNIL).then_some(req as usize),
            ),
            COp::Recv { from, slot, tag, req } => {
                self.do_recv(l, from as usize, tag, slot as usize, (req != CNIL).then_some(req as usize))
            }
            COp::WaitAll { .. } => {
                if self.enter_waitall(l) {
                    self.step(l);
                    true
                } else {
                    // `enter_waitall` also returns false when the final
                    // completion time crossed the crash instant — the rank
                    // is dead, not parked.
                    if !self.crashed(l) {
                        self.ranks[l].status = Status::BlockedWaitAll;
                    }
                    false
                }
            }
            COp::ReduceLocal { from, into, bytes } => {
                let cost = bytes as f64 * self.platform.reduce_cost_per_byte;
                let at = self.ranks[l].local;
                let d = self.cpu_time(l, cost, at);
                self.ranks[l].local = self.warp(l, at + d);
                if self.crashed(l) {
                    return false;
                }
                if self.cfg.track_data {
                    // Value clones are Arc bumps; the deep copy happens only
                    // if reduce_from must mutate shared blocks.
                    let src = self.slots[l][from as usize].clone();
                    if let Err(e) = self.slots[l][into as usize].reduce_from(&src) {
                        self.data_error(l, e);
                    }
                }
                self.step(l);
                true
            }
            COp::MergeMove { from, into } => {
                if self.cfg.track_data {
                    let src = self.slots[l][from as usize].clone();
                    if let Err(e) = self.slots[l][into as usize].merge_from(&src) {
                        self.data_error(l, e);
                    }
                }
                self.step(l);
                true
            }
            COp::OverwriteMove { from, into } => {
                if self.cfg.track_data {
                    let src = self.slots[l][from as usize].clone();
                    self.slots[l][into as usize].overwrite_from(&src);
                }
                self.step(l);
                true
            }
            COp::DropBlocks { slot, filter } => {
                if self.cfg.track_data {
                    let f = self.filter(filter);
                    self.slots[l][slot as usize].drop_matching(f);
                }
                self.step(l);
                true
            }
            COp::CopySlot { from, into } => {
                if self.cfg.track_data {
                    let src = self.slots[l][from as usize].clone();
                    self.slots[l][into as usize] = src;
                }
                self.step(l);
                true
            }
            COp::InitSlot { slot, value } => {
                if self.cfg.track_data {
                    self.slots[l][slot as usize] = self.comp.values[value as usize].clone();
                }
                self.step(l);
                true
            }
            COp::ClearSlot { slot } => {
                if self.cfg.track_data {
                    self.slots[l][slot as usize] = Value::empty();
                }
                self.step(l);
                true
            }
        }
    }

    /// Resolve a compiled filter index (`CNIL` = whole slot).
    #[inline]
    fn filter(&self, f: u32) -> BlockFilter {
        if f == CNIL {
            BlockFilter::All
        } else {
            self.comp.filters[f as usize]
        }
    }

    fn data_error(&mut self, l: usize, e: impl std::fmt::Display) {
        let rank = self.g(l);
        self.data_errors.push((rank as u32, format!("rank {rank}: {e}")));
    }

    /// Advance past the current op.
    fn step(&mut self, l: usize) {
        self.ranks[l].op_i += 1;
    }

    fn perturb(&mut self, l: usize, d: SimTime) -> SimTime {
        match self.cfg.noise {
            NoiseModel::None => d,
            m => m.perturb(d, &mut self.rngs[l]),
        }
    }

    #[inline]
    fn req(&mut self, l: usize, r: ReqId) -> &mut ReqState {
        &mut self.reqs[self.req_base[l] as usize + r]
    }

    // -- sends & receives ---------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn do_send(
        &mut self,
        l: usize,
        to: usize,
        tag: Tag,
        bytes: u64,
        slot: Slot,
        filter: u32,
        req: Option<ReqId>,
    ) -> bool {
        let rank = self.g(l);
        if to >= self.platform.ranks {
            self.fail(format!("rank {rank} sends to non-existent rank {to}"));
            return false;
        }
        if to == rank {
            self.fail(format!("rank {rank} sends to itself (use CopySlot)"));
            return false;
        }
        if let Some(r) = req {
            if *self.req(l, r) != ReqState::Free {
                self.fail(format!("rank {rank} reuses request {r} before WaitAll"));
                return false;
            }
        }

        let o_s = self.platform.send_overhead;
        let at = self.ranks[l].local;
        let ts = {
            let d = self.cpu_time(l, o_s, at);
            self.warp(l, at + d)
        };
        if self.crashed(l) {
            // Died during the send overhead: the message never left.
            self.ranks[l].local = ts;
            return false;
        }
        let wire_factor = match self.cfg.noise {
            NoiseModel::None => 1.0,
            m => m.wire_factor(&mut self.rngs[l]),
        };
        let eager = self.platform.is_eager(bytes);
        let payload = if self.cfg.track_data {
            Some(match self.filter(filter) {
                BlockFilter::All => self.slots[l][slot].clone(),
                f => self.slots[l][slot].filtered(|c| f.matches(c)),
            })
        } else {
            None
        };
        let uid = ((rank as u64) << 40) | self.send_seq[l];
        self.send_seq[l] += 1;
        self.messages += 1;

        let cross = !self.owns(to);
        let sender_wake = if eager {
            SenderWake::None
        } else {
            match req {
                Some(r) => {
                    *self.req(l, r) = ReqState::Pending;
                    SenderWake::Req(r as u32)
                }
                None => SenderWake::Blocked,
            }
        };
        let id = self.alloc_msg(Msg {
            uid,
            src: rank as u32,
            dst: to as u32,
            tag,
            bytes,
            protocol: if eager { Protocol::Eager } else { Protocol::Rendezvous },
            ready: ts,
            wire_factor,
            state: MsgState::Unmatched,
            recv: None,
            sender_wake,
            // A cross-partition payload travels inside the announce; the
            // destination owns matching and delivery.
            payload: if cross { None } else { payload.clone() },
            src_ref: NIL,
        });
        if cross {
            self.emit(
                self.part_of(to),
                Handoff::Announce {
                    uid,
                    src: rank as u32,
                    dst: to as u32,
                    tag,
                    bytes,
                    eager,
                    ready: ts,
                    wire_factor,
                    src_ref: id as u32,
                    payload,
                },
            );
        }

        if eager {
            // Sender resumes immediately; data is injected in the background.
            self.ranks[l].local = ts;
            if let Some(r) = req {
                *self.req(l, r) = ReqState::Done(ts);
            }
            if !cross {
                if let Some(info) = self.chans.send_arrives(chan_key(rank as u32, to as u32, tag), id as u32)
                {
                    self.attach_recv(id, info);
                }
            }
            self.step(l);
            self.inject_or_push(id, ts);
            true
        } else if req.is_some() {
            self.ranks[l].local = ts;
            if !cross {
                if let Some(info) = self.chans.send_arrives(chan_key(rank as u32, to as u32, tag), id as u32)
                {
                    self.attach_recv(id, info);
                }
            }
            // Isend: continue; request completes at egress done.
            self.step(l);
            true
        } else {
            // Rendezvous delivery is always asynchronous, so a blocking
            // send parks here whether or not it matched. Park BEFORE the
            // match: an inline intra-node injection triggered by the match
            // observes a parked sender and schedules the resume wake.
            self.ranks[l].local = ts;
            self.ranks[l].status = Status::BlockedSend;
            if !cross {
                if let Some(info) = self.chans.send_arrives(chan_key(rank as u32, to as u32, tag), id as u32)
                {
                    self.attach_recv(id, info);
                }
            }
            false
        }
    }

    fn do_recv(&mut self, l: usize, from: usize, tag: Tag, slot: Slot, req: Option<ReqId>) -> bool {
        let rank = self.g(l);
        if from >= self.platform.ranks {
            self.fail(format!("rank {rank} receives from non-existent rank {from}"));
            return false;
        }
        if from == rank {
            self.fail(format!("rank {rank} receives from itself"));
            return false;
        }
        if let Some(r) = req {
            if *self.req(l, r) != ReqState::Free {
                self.fail(format!("rank {rank} reuses request {r} before WaitAll"));
                return false;
            }
            *self.req(l, r) = ReqState::Pending;
        }

        // Posting a receive costs CPU (descriptor setup / matching-queue
        // insertion). This per-message software cost is what makes
        // aggregating algorithms (Bruck) win small-message collectives over
        // posting one pair of requests per peer.
        let at = self.ranks[l].local;
        let post = self.cpu_time(l, self.platform.recv_overhead, at);
        let tr = self.warp(l, at + post);
        self.ranks[l].local = tr;
        if self.crashed(l) {
            // Died posting the receive: nothing was matched or consumed.
            return false;
        }
        let wake = match req {
            Some(r) => r as u32,
            None => NIL,
        };
        let info = RecvInfo { slot: slot as u32, posted_at: tr, wake };

        if req.is_none() {
            // Park BEFORE the match: an inline intra-node delivery triggered
            // by the match observes a parked receiver, marks it Runnable and
            // schedules its resume — which must not be clobbered afterwards.
            self.ranks[l].status = Status::BlockedRecv;
        }
        if let Some(mid) = self.chans.recv_arrives(chan_key(from as u32, rank as u32, tag), info) {
            let mid = mid as usize;
            // Eager message already delivered: complete inline.
            if let MsgState::DeliveredUnmatched(t_d) = self.msgs[mid].state {
                let o_r = self.platform.recv_overhead;
                let start = tr.max(t_d);
                let done = {
                    let d = self.cpu_time(l, o_r, start);
                    self.warp(l, start + d)
                };
                if self.crashed(l) {
                    // Died mid-copy: the matched message is consumed but
                    // never lands anywhere.
                    self.drop_msg(mid);
                    return false;
                }
                self.finish_recv(mid, l, slot, done, req);
                // Blocking recv continues at `done`.
                if req.is_none() {
                    self.ranks[l].local = done;
                    self.ranks[l].status = Status::Runnable;
                }
                self.step(l);
                return true;
            }
            self.attach_recv(mid, info);
        }
        match req {
            Some(_) => {
                self.step(l);
                true
            }
            None => false,
        }
    }

    /// Pair a send with a receive; for rendezvous this starts the handshake.
    fn attach_recv(&mut self, id: usize, recv: RecvInfo) {
        let m = &self.msgs[id];
        let (protocol, ready, src, dst) = (m.protocol, m.ready, m.src as usize, m.dst as usize);
        self.msgs[id].recv = Some(recv);
        self.msgs[id].state = MsgState::WaitingDelivery;
        if protocol == Protocol::Rendezvous {
            let lat = self.platform.link(src, dst).latency;
            let inject_ready = (ready + lat).max(recv.posted_at) + lat;
            if self.owns(src) {
                self.inject_or_push(id, inject_ready);
            } else {
                // The sender partition owns injection (egress serialization
                // and sender wake-up); answer the announce with the time.
                let src_ref = self.msgs[id].src_ref;
                self.emit(self.part_of(src), Handoff::InjectAt { src_ref, t: inject_ready });
            }
        }
    }

    // -- network pipeline ---------------------------------------------------

    /// Run the injection pipeline for message `id` inline when it is an
    /// intra-node transfer in a noise-free run — shared-memory transfers
    /// claim no NIC resource, so nothing about them depends on global event
    /// order — otherwise schedule the inject event at `t`.
    fn inject_or_push(&mut self, id: usize, t: SimTime) {
        let m = &self.msgs[id];
        let (src, dst, uid) = (m.src as usize, m.dst as usize, m.uid);
        if self.cfg.noise.is_none()
            && self.inline_depth < INLINE_DEPTH_MAX
            && self.platform.same_node(src, dst)
        {
            self.inline_depth += 1;
            self.on_inject(id, t);
            self.inline_depth -= 1;
        } else {
            self.push_event(t, QEvent::KIND_INJECT, uid, id as u32);
        }
    }

    fn on_inject(&mut self, id: usize, now: SimTime) {
        let m = &self.msgs[id];
        let (src, dst, bytes, uid) = (m.src as usize, m.dst as usize, m.bytes, m.uid);
        let link = *self.platform.link(src, dst);
        let wire =
            bytes as f64 / link.bandwidth * m.wire_factor * self.link_fault_factor(src, dst, now);
        let intra = self.platform.same_node(src, dst);

        let (start, egress_done) = if !intra && self.platform.nic_serialization {
            let node = self.platform.node_of(src) - self.node0;
            let start = now.max(self.egress_free[node]);
            self.egress_free[node] = start + wire;
            (start, start + wire)
        } else {
            (now, now + wire)
        };

        // Wake a rendezvous sender once the data has left the node (unless
        // it crashed while parked — the data was already in flight).
        match self.msgs[id].sender_wake {
            SenderWake::Blocked => {
                let l = src - self.r0;
                if self.ranks[l].status != Status::Crashed {
                    let resume = self.warp(l, egress_done);
                    self.ranks[l].local = resume;
                    // The resume itself may cross the crash instant: the
                    // data left the node, but the sender never runs again.
                    if !self.crashed(l) {
                        self.ranks[l].status = Status::Runnable;
                        self.step(l);
                        if !self.resume_inline(l) {
                            self.schedule_wake(l, resume);
                        }
                    }
                }
            }
            SenderWake::Req(r) => {
                self.complete_req(src - self.r0, r as usize, egress_done);
            }
            SenderWake::None => {}
        }
        self.msgs[id].sender_wake = SenderWake::None;

        if !self.owns(dst) {
            // Cross-partition (hence inter-node): the rest of the pipeline —
            // ingress serialization, delivery, matching — runs at the
            // destination.
            self.emit(self.part_of(dst), Handoff::WireArrivalAt { uid, t: start + link.latency + wire });
            self.retire_msg(id);
        } else if intra {
            // Shared memory: latency + copy, no NIC. The delivery time is
            // fully determined here; with noise off no RNG draw order can
            // change, so deliver inline instead of scheduling a third event
            // per message (channel FIFO and all computed times are
            // identical — see the module docs on event elision).
            let t_arr = start + link.latency + wire;
            if self.cfg.noise.is_none() && self.inline_depth < INLINE_DEPTH_MAX {
                self.inline_depth += 1;
                self.on_delivered(id, t_arr);
                self.inline_depth -= 1;
            } else {
                self.push_event(t_arr, QEvent::KIND_DELIVERED, uid, id as u32);
            }
        } else {
            self.push_event(start + link.latency + wire, QEvent::KIND_WIRE, uid, id as u32);
        }
    }

    fn on_wire_arrival(&mut self, id: usize, now: SimTime) {
        let m = &self.msgs[id];
        let (src, dst, bytes, uid) = (m.src as usize, m.dst as usize, m.bytes, m.uid);
        debug_assert!(!self.platform.same_node(src, dst));
        let wire = bytes as f64 / self.platform.inter.bandwidth
            * m.wire_factor
            * self.link_fault_factor(src, dst, now);
        let delivered = if self.platform.nic_serialization {
            let node = self.platform.node_of(dst) - self.node0;
            let t = now.max(self.ingress_free[node]);
            self.ingress_free[node] = t + wire;
            t
        } else {
            now
        };
        // `delivered` is fully determined at wire-arrival time (the ingress
        // NIC slot was just claimed), so with noise off — where no RNG draw
        // order can shift — the delivery is processed inline rather than
        // through a third queue event per message. Receives posted between
        // now and `delivered` observe the identical outcome through the
        // `DeliveredUnmatched` path in `do_recv`.
        if (delivered <= now || self.cfg.noise.is_none()) && self.inline_depth < INLINE_DEPTH_MAX {
            self.inline_depth += 1;
            self.on_delivered(id, delivered);
            self.inline_depth -= 1;
        } else {
            self.push_event(delivered, QEvent::KIND_DELIVERED, uid, id as u32);
        }
    }

    /// Drop a message whose receiver is dead: mark it done and retire it
    /// without touching any slot, request, or record.
    fn drop_msg(&mut self, id: usize) {
        let src = self.msgs[id].src as usize;
        self.msgs[id].state = MsgState::Done;
        if !self.owns(src) {
            self.uid_map.remove(&self.msgs[id].uid);
        }
        self.retire_msg(id);
    }

    fn on_delivered(&mut self, id: usize, now: SimTime) {
        // A delivery addressed to a crashed rank is dropped on the floor:
        // the data arrived, but nobody is alive to complete the receive.
        {
            let l = self.msgs[id].dst as usize - self.r0;
            if self.ranks[l].status == Status::Crashed {
                self.drop_msg(id);
                return;
            }
        }
        match self.msgs[id].state {
            MsgState::WaitingDelivery => {
                let recv = self.msgs[id].recv.expect("matched message must have recv info");
                let l = self.msgs[id].dst as usize - self.r0;
                let o_r = self.platform.recv_overhead;
                let start = now.max(recv.posted_at);
                let done = {
                    let d = self.cpu_time(l, o_r, start);
                    self.warp(l, start + d)
                };
                if self.crashed(l) {
                    // Died during the receive-side copy.
                    self.drop_msg(id);
                    return;
                }
                if recv.wake == NIL {
                    self.finish_recv(id, l, recv.slot as usize, done, None);
                    self.ranks[l].local = done;
                    self.ranks[l].status = Status::Runnable;
                    self.step(l);
                    if !self.resume_inline(l) {
                        self.schedule_wake(l, done);
                    }
                } else {
                    self.finish_recv(id, l, recv.slot as usize, done, Some(recv.wake as usize));
                }
            }
            MsgState::Unmatched => {
                self.msgs[id].state = MsgState::DeliveredUnmatched(now);
            }
            s => {
                self.fail(format!("message {id} delivered in unexpected state {s:?}"));
            }
        }
    }

    /// Write payload into the slot, complete the request if any, retire msg.
    fn finish_recv(&mut self, id: usize, l: usize, slot: Slot, done: SimTime, req: Option<ReqId>) {
        if self.cfg.record_messages {
            let m = &self.msgs[id];
            self.msg_events.push(MsgEvent {
                src: m.src as usize,
                dst: m.dst as usize,
                tag: m.tag,
                bytes: m.bytes,
                sent: m.ready,
                delivered: done,
            });
        }
        if self.cfg.track_data {
            if let Some(v) = self.msgs[id].payload.take() {
                self.slots[l][slot] = v;
            }
        }
        self.msgs[id].state = MsgState::Done;
        if !self.owns(self.msgs[id].src as usize) {
            self.uid_map.remove(&self.msgs[id].uid);
        }
        self.retire_msg(id);
        if let Some(r) = req {
            self.complete_req(l, r, done);
        }
    }

    fn complete_req(&mut self, l: usize, req: ReqId, t: SimTime) {
        // A crashed rank never resumes: record the completion (the transfer
        // itself happened) but leave its WaitAll parked forever.
        let crashed = self.ranks[l].status == Status::Crashed;
        let slot = self.req(l, req);
        debug_assert!(matches!(*slot, ReqState::Pending | ReqState::PendingWaited));
        let waited = matches!(*slot, ReqState::PendingWaited);
        *slot = ReqState::Done(t);
        if waited && !crashed {
            // The rank is parked on a WaitAll listing this request; fold
            // the completion into its cached countdown and resume once the
            // last one lands.
            let st = &mut self.ranks[l];
            st.wa_t = st.wa_t.max(t);
            st.wa_left -= 1;
            if st.wa_left == 0 {
                let t_resume = st.wa_t;
                if !self.resume_inline(l) {
                    self.schedule_wake(l, t_resume);
                }
            }
        }
    }

    /// First encounter with a WaitAll while the rank is running. Scans the
    /// request list exactly once: completed requests contribute their time,
    /// still-pending ones are marked [`ReqState::PendingWaited`] and counted
    /// into the rank's cached countdown. Returns true if the op completed
    /// inline (all requests were already done).
    fn enter_waitall(&mut self, l: usize) -> bool {
        // `comp` borrows the job with the outer lifetime, so `reqs` does
        // not pin `self` while the loop mutates the request arena.
        let reqs = self.wait_reqs(l);
        let base = self.req_base[l] as usize;
        let mut t = self.ranks[l].local;
        let mut left = 0u32;
        for &r in reqs {
            match self.reqs[base + r as usize] {
                ReqState::Done(d) => t = t.max(d),
                ReqState::Pending => {
                    self.reqs[base + r as usize] = ReqState::PendingWaited;
                    left += 1;
                }
                // Same request listed twice in one WaitAll: already counted.
                ReqState::PendingWaited => {}
                ReqState::Free => {
                    let rank = self.g(l);
                    self.fail(format!("rank {rank} waits on request {r} that was never started"));
                    return false;
                }
            }
        }
        if left == 0 {
            for &r in reqs {
                self.reqs[base + r as usize] = ReqState::Free;
            }
            self.ranks[l].local = self.warp(l, t);
            if self.crashed(l) {
                return false;
            }
            true
        } else {
            let st = &mut self.ranks[l];
            st.wa_left = left;
            st.wa_t = t;
            false
        }
    }

    /// Request list of the WaitAll rank `l` currently points at.
    #[inline]
    fn wait_reqs(&self, l: usize) -> &'a [u32] {
        let comp = self.comp;
        match comp.ops[self.ranks[l].op_i as usize] {
            COp::WaitAll { off, len } => &comp.wait_reqs[off as usize..(off + len) as usize],
            _ => unreachable!("wait_reqs called on non-WaitAll op"),
        }
    }

    /// Attempt to complete the WaitAll the rank is parked on. On success the
    /// rank's local time advances and the requests are freed.
    fn try_waitall(&mut self, l: usize) -> bool {
        if self.ranks[l].wa_left > 0 {
            return false;
        }
        let reqs = self.wait_reqs(l);
        let base = self.req_base[l] as usize;
        for &r in reqs {
            self.reqs[base + r as usize] = ReqState::Free;
        }
        let t = self.ranks[l].wa_t;
        self.ranks[l].local = self.warp(l, t);
        // Crossing the crash instant leaves the rank dead, not resumed;
        // `advance_inner` returns without touching its status.
        !self.crashed(l)
    }

    // -- message table ------------------------------------------------------

    fn alloc_msg(&mut self, m: Msg) -> usize {
        self.live_msgs += 1;
        if self.live_msgs > self.live_msgs_hwm {
            self.live_msgs_hwm = self.live_msgs;
        }
        if let Some(id) = self.free_msgs.pop() {
            self.msgs[id as usize] = m;
            id as usize
        } else {
            self.msgs.push(m);
            self.msgs.len() - 1
        }
    }

    fn retire_msg(&mut self, id: usize) {
        self.msgs[id].payload = None;
        self.free_msgs.push(id as u32);
        self.live_msgs -= 1;
    }

    // -- output extraction --------------------------------------------------

    /// Move this partition's per-rank results out (consumes the part).
    pub(super) fn into_results(self) -> PartResults {
        PartResults {
            finish: self.finish,
            phases: self.phases,
            slots: if self.cfg.track_data { Some(self.slots) } else { None },
            data_errors: self.data_errors,
            msg_events: self.msg_events,
            events: self.events,
            messages: self.messages,
        }
    }
}

/// Per-partition outputs, merged by [`super::assemble`].
pub(super) struct PartResults {
    pub(super) finish: Vec<SimTime>,
    pub(super) phases: Vec<PhaseRecord>,
    pub(super) slots: Option<Vec<Vec<Value>>>,
    pub(super) data_errors: Vec<(u32, String)>,
    pub(super) msg_events: Vec<MsgEvent>,
    pub(super) events: u64,
    pub(super) messages: u64,
}

