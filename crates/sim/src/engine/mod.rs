//! The discrete-event execution engine.
//!
//! Each rank executes its [`crate::program::RankProgram`] sequentially. Ranks may run ahead
//! of global event time (lazy virtual time); correctness of message matching
//! does not depend on processing order because all completion times are
//! computed from timestamps (`max` of the two sides), and FIFO queues per
//! `(src, dst, tag)` channel are only ever filled in program order by a
//! single rank per side.
//!
//! ## Protocols
//!
//! * **Eager** (`bytes <= eager_threshold`): the sender resumes after its
//!   send overhead `o_s`; the message is injected into the network in the
//!   background (serializing on the source node's NIC egress), travels for
//!   `L + bytes/bw`, serializes on the destination NIC ingress, and is
//!   delivered; a matching receive completes at
//!   `max(delivered, posted) + o_r`.
//! * **Rendezvous** (`bytes > eager_threshold`): the sender announces (RTS)
//!   and blocks; when the matching receive is posted, the handshake completes
//!   at `max(ts + L, tr) + L` and injection begins; the sender resumes when
//!   the data has left the node (egress complete), the receiver completes at
//!   delivery + `o_r`.
//!
//! ## Contention
//!
//! Each node has one NIC; concurrent inter-node transfers serialize on the
//! egress of the source node and the ingress of the destination node. This
//! is the mechanism that makes a flat linear all-to-all collapse under
//! incast while pairwise exchange does not — the effect the paper's
//! All-to-all analysis hinges on. Intra-node messages bypass the NIC.
//!
//! ## Scale
//!
//! The engine is built to stay fast from 32 to 100K ranks: events live in a
//! [`queue::EventQueue`] (calendar queue at scale, heap below), per-rank and
//! per-message state in flat arenas, and channels in a dense free-listed
//! table sized by *in-flight* traffic rather than by every channel ever
//! used. See DESIGN.md §12 for the memory layout.
//!
//! A single run can also execute across threads with [`run_par`] /
//! [`run_auto`]: ranks are partitioned along node boundaries and each
//! partition is advanced window-by-window under conservative lookahead (the
//! inter-node link latency). Events are keyed by an execution-independent
//! canonical order (see [`queue`]), which makes the parallel result
//! **byte-identical** to the sequential one at any thread count.

pub mod queue;

mod par;
mod part;

use crate::data::Value;
use crate::platform::Platform;
use crate::program::{Job, Label, Tag};
use crate::time::SimTime;
use crate::SimConfig;

use part::{Part, PartResults};

/// Enter/exit times of one labelled segment on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRecord {
    /// Rank that executed the segment.
    pub rank: usize,
    /// The segment's label.
    pub label: Label,
    /// Time the rank started the segment (its *arrival time* `a_i`).
    pub enter: SimTime,
    /// Time the rank finished the segment (its *exit time* `e_i`).
    pub exit: SimTime,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No more events but some ranks have not finished: circular wait.
    Deadlock {
        /// Time at which progress stopped.
        at: SimTime,
        /// `(rank, description of the op it is blocked on)`.
        blocked: Vec<(usize, String)>,
    },
    /// The job referenced invalid ranks/slots or misused requests.
    InvalidProgram(String),
}

impl SimError {
    /// The sorted set of ranks starved at a deadlock (survivors blocked on
    /// an op that can never complete); empty for other errors. This is the
    /// dynamic counterpart of `pap-lint`'s static crash cone — differential
    /// tests pin the two against each other.
    pub fn starved_ranks(&self) -> Vec<usize> {
        match self {
            SimError::Deadlock { blocked, .. } => {
                let mut ranks: Vec<usize> = blocked.iter().map(|(r, _)| *r).collect();
                ranks.sort_unstable();
                ranks.dedup();
                ranks
            }
            SimError::InvalidProgram(_) => Vec::new(),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at t={at:.9}s; blocked: ")?;
                for (r, d) in blocked.iter().take(8) {
                    write!(f, "[{r}: {d}] ")?;
                }
                if blocked.len() > 8 {
                    write!(f, "… ({} total)", blocked.len())?;
                }
                Ok(())
            }
            SimError::InvalidProgram(s) => write!(f, "invalid program: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One delivered point-to-point message (recorded when
/// `SimConfig::record_messages` is set) — the simulator's SMPI-style
/// communication trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgEvent {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Match tag.
    pub tag: Tag,
    /// Message size in bytes.
    pub bytes: u64,
    /// Time the sender initiated the message (after its send overhead).
    pub sent: SimTime,
    /// Time the receive completed at the destination.
    pub delivered: SimTime,
}

/// Result of a run.
///
/// All collections are in *canonical* order — sorted by rank (and for
/// message events by delivery time) rather than by the order the engine
/// happened to process events — so sequential and partitioned executions of
/// the same job produce byte-identical outcomes.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-rank completion time of the whole program.
    pub finish: Vec<SimTime>,
    /// Enter/exit records of labelled segments, ordered by rank (and by
    /// program order within a rank). Empty when `record_phases` is off.
    pub phases: Vec<PhaseRecord>,
    /// Final slot contents per rank (only when `track_data`).
    pub slots: Option<Vec<Vec<Value>>>,
    /// Dataflow violations detected (double counts, conflicting blocks).
    /// Empty on a correct collective schedule.
    pub data_errors: Vec<String>,
    /// Number of events processed (diagnostics).
    pub events: u64,
    /// Number of point-to-point messages transferred.
    pub messages: u64,
    /// Per-message trace (only when `record_messages`).
    pub msg_events: Option<Vec<MsgEvent>>,
}

impl RunOutcome {
    /// Latest finish time over all ranks (the makespan).
    pub fn makespan(&self) -> SimTime {
        self.finish.iter().copied().fold(0.0, f64::max)
    }

    /// Records of a specific label, ordered by rank.
    pub fn phases_for(&self, label: Label) -> Vec<PhaseRecord> {
        let mut v: Vec<PhaseRecord> = self.phases_for_iter(label).copied().collect();
        v.sort_by_key(|p| p.rank);
        v
    }

    /// Records of a specific label in stored order, without allocating.
    ///
    /// Use this in per-measurement hot paths (the harness folds min/max over
    /// it); use [`phases_for`](Self::phases_for) when rank order matters.
    pub fn phases_for_iter(&self, label: Label) -> impl Iterator<Item = &PhaseRecord> {
        self.phases.iter().filter(move |p| p.label == label)
    }
}

/// Run a job on a platform. See the crate docs for the model description.
pub fn run(platform: &Platform, job: Job, cfg: &SimConfig) -> Result<RunOutcome, SimError> {
    run_ref(platform, &job, cfg)
}

/// [`run`] without consuming the job — repetition loops (ReproMPI-style
/// NREP) build the program once and run it many times with different seeds.
pub fn run_ref(platform: &Platform, job: &Job, cfg: &SimConfig) -> Result<RunOutcome, SimError> {
    run_parts(platform, job, cfg, 1)
}

/// Run a *single* job across `parts` partitions in parallel under
/// conservative lookahead.
///
/// Ranks are split into contiguous, node-aligned partitions; each partition
/// advances through one lookahead window (the inter-node link latency) at a
/// time, exchanging cross-partition message effects at window barriers. The
/// result is byte-identical to [`run_ref`] for every `parts` value — see
/// DESIGN.md §12 for why determinism survives partitioning.
///
/// `parts` is clamped to `[1, occupied nodes]`; partitions must own whole
/// nodes so NIC contention state stays partition-local.
pub fn run_par(
    platform: &Platform,
    job: &Job,
    cfg: &SimConfig,
    parts: usize,
) -> Result<RunOutcome, SimError> {
    run_parts(platform, job, cfg, parts)
}

/// [`run_par`] with the partition count taken from the `pap-parallel`
/// thread configuration (`PAP_THREADS` / `set_threads`).
///
/// Inside a `pap-parallel` worker (sweeps already parallelize *across*
/// runs) this stays sequential instead of oversubscribing the machine.
pub fn run_auto(platform: &Platform, job: &Job, cfg: &SimConfig) -> Result<RunOutcome, SimError> {
    let parts = if pap_parallel::in_worker() { 1 } else { pap_parallel::threads() };
    run_parts(platform, job, cfg, parts)
}

/// Cached handles into the global metrics registry — resolved once so the
/// per-run cost is a handful of relaxed atomic stores, never the registry
/// lock.
#[allow(clippy::type_complexity)]
fn run_metrics() -> &'static (
    pap_obs::Counter,
    pap_obs::Counter,
    pap_obs::Counter,
    pap_obs::Gauge,
    pap_obs::Gauge,
    pap_obs::Gauge,
) {
    static M: std::sync::OnceLock<(
        pap_obs::Counter,
        pap_obs::Counter,
        pap_obs::Counter,
        pap_obs::Gauge,
        pap_obs::Gauge,
        pap_obs::Gauge,
    )> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = pap_obs::global();
        (
            reg.counter("sim.runs"),
            reg.counter("sim.events"),
            reg.counter("sim.messages"),
            reg.gauge("sim.engine.queue_hwm"),
            reg.gauge("sim.engine.msgs_live_hwm"),
            reg.gauge("sim.engine.arena_slots"),
        )
    })
}

/// Node-aligned contiguous rank boundaries for `nparts` partitions
/// (`bounds[i]..bounds[i+1]` is partition `i`). Requires
/// `nparts <= occupied_nodes` so every partition is non-empty.
fn partition_bounds(platform: &Platform, nparts: usize) -> Vec<usize> {
    let nodes = platform.occupied_nodes();
    let cpn = platform.cores_per_node;
    debug_assert!(nparts >= 1 && nparts <= nodes);
    (0..=nparts).map(|i| (i * nodes / nparts * cpn).min(platform.ranks)).collect()
}

fn run_parts(
    platform: &Platform,
    job: &Job,
    cfg: &SimConfig,
    parts: usize,
) -> Result<RunOutcome, SimError> {
    let _span = pap_obs::span("sim", "run");
    let p = job.ranks();
    if p == 0 {
        return Err(SimError::InvalidProgram("job has no ranks".into()));
    }
    if p != platform.ranks {
        return Err(SimError::InvalidProgram(format!(
            "job has {p} ranks but platform is configured for {}",
            platform.ranks
        )));
    }
    if !cfg.faults.is_none() {
        // Reject out-of-range fault specs before any partition schedules a
        // crash event — inside the validated envelope every fault-adjusted
        // event time provably stays finite.
        if let Err(e) = cfg.faults.validate(platform.ranks, platform.nodes) {
            return Err(SimError::InvalidProgram(format!("invalid fault spec: {e}")));
        }
    }

    let nparts = parts.clamp(1, platform.occupied_nodes());
    let bounds = partition_bounds(platform, nparts);
    let mut partitions: Vec<Part> =
        (0..nparts).map(|i| Part::new(platform, job, cfg, &bounds, i)).collect();
    if nparts == 1 {
        partitions[0].run_until(f64::INFINITY);
    } else {
        partitions = par::drive(partitions, platform.inter.latency);
    }
    assemble(partitions, cfg)
}

/// Merge per-partition results into one canonical [`RunOutcome`].
fn assemble(parts: Vec<Part>, cfg: &SimConfig) -> Result<RunOutcome, SimError> {
    let (runs, events_c, messages_c, g_queue, g_msgs, g_arena) = run_metrics();
    g_queue.set(parts.iter().map(|p| p.queue_hwm as i64).sum());
    g_msgs.set(parts.iter().map(|p| p.live_msgs_hwm as i64).sum());
    g_arena.set(parts.iter().map(|p| p.arena_slots() as i64).sum());

    // First error in canonical event order — the one the sequential run
    // would have hit first.
    if let Some((_, e)) =
        parts.iter().filter_map(|p| p.error.clone()).min_by(|a, b| a.0.cmp(&b.0))
    {
        return Err(e);
    }

    let blocked: Vec<(usize, String)> = parts.iter().flat_map(|p| p.blocked()).collect();
    if !blocked.is_empty() {
        let at = parts.iter().map(|p| p.last_t).fold(0.0, f64::max);
        return Err(SimError::Deadlock { at, blocked });
    }

    let mut finish = Vec::new();
    let mut phases = Vec::new();
    let mut slots = cfg.track_data.then(Vec::new);
    let mut tagged_errors: Vec<(u32, String)> = Vec::new();
    let mut msg_events = cfg.record_messages.then(Vec::new);
    let mut events = 0u64;
    let mut messages = 0u64;
    for part in parts {
        let PartResults {
            finish: f,
            phases: ph,
            slots: sl,
            data_errors: de,
            msg_events: me,
            events: ev,
            messages: ms,
        } = part.into_results();
        finish.extend(f);
        phases.extend(ph);
        if let (Some(all), Some(sl)) = (slots.as_mut(), sl) {
            all.extend(sl);
        }
        tagged_errors.extend(de);
        if let Some(all) = msg_events.as_mut() {
            all.extend(me);
        }
        events += ev;
        messages += ms;
    }
    // Canonical orders (partition-count independent): phases by rank (stable
    // — within a rank they are already in program order), data errors by
    // rank, message events by delivery then endpoints.
    phases.sort_by_key(|ph: &PhaseRecord| ph.rank);
    tagged_errors.sort_by_key(|(r, _)| *r);
    if let Some(me) = msg_events.as_mut() {
        me.sort_by(|a, b| {
            a.delivered
                .total_cmp(&b.delivered)
                .then_with(|| a.src.cmp(&b.src))
                .then_with(|| a.dst.cmp(&b.dst))
                .then_with(|| a.sent.total_cmp(&b.sent))
                .then_with(|| a.tag.cmp(&b.tag))
                .then_with(|| a.bytes.cmp(&b.bytes))
        });
    }

    runs.inc();
    events_c.add(events);
    messages_c.add(messages);
    Ok(RunOutcome {
        finish,
        phases,
        slots,
        data_errors: tagged_errors.into_iter().map(|(_, s)| s).collect(),
        events,
        messages,
        msg_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::program::{Op, RankProgram};

    fn run2(ops0: Vec<Op>, ops1: Vec<Op>) -> RunOutcome {
        let platform = Platform::simcluster(2);
        let job = Job::new(vec![RankProgram::from_ops(ops0), RankProgram::from_ops(ops1)]);
        run(&platform, job, &SimConfig::tracking()).expect("run")
    }

    #[test]
    fn eager_message_arrives_with_loggp_cost() {
        let p = Platform::simcluster(2);
        let bytes = 1024u64; // eager
        let out = run2(
            vec![Op::send(1, 1, bytes, 0)],
            vec![Op::recv(0, 1, 0)],
        );
        // Receiver finish ≈ o_s + L + bytes/bw + o_r (both ranks on node 0).
        let expect = p.send_overhead + p.intra.latency + bytes as f64 / p.intra.bandwidth + p.recv_overhead;
        assert!((out.finish[1] - expect).abs() < 1e-12, "{} vs {}", out.finish[1], expect);
        // Eager sender finishes after o_s only.
        assert!((out.finish[0] - p.send_overhead).abs() < 1e-12);
    }

    #[test]
    fn rendezvous_sender_blocks_for_receiver() {
        let p = Platform::simcluster(2);
        let bytes = p.eager_threshold + 1;
        let delay = 1.0;
        let out = run2(
            vec![Op::send(1, 1, bytes, 0)],
            vec![Op::delay(delay), Op::recv(0, 1, 0)],
        );
        // Sender cannot complete before the receiver posts at t=1.
        assert!(out.finish[0] > delay, "sender finished at {} before receiver posted", out.finish[0]);
        assert!(out.finish[1] > out.finish[0]);
    }

    #[test]
    fn eager_sender_does_not_block() {
        let out = run2(
            vec![Op::send(1, 1, 8, 0)],
            vec![Op::delay(1.0), Op::recv(0, 1, 0)],
        );
        assert!(out.finish[0] < 1e-3, "eager sender blocked: {}", out.finish[0]);
        assert!(out.finish[1] > 1.0);
    }

    #[test]
    fn unexpected_message_is_buffered() {
        // Send long before recv posted; matching must still succeed.
        let out = run2(
            vec![Op::send(1, 9, 64, 0)],
            vec![Op::delay(0.5), Op::recv(0, 9, 0)],
        );
        assert!(out.finish[1] >= 0.5);
        assert_eq!(out.messages, 1);
    }

    #[test]
    fn fifo_matching_two_messages_same_tag() {
        let out = run2(
            vec![
                Op::InitSlot { slot: 0, value: Value::movement_block(0, 0) },
                Op::InitSlot { slot: 1, value: Value::movement_block(0, 1) },
                Op::send(1, 5, 64, 0),
                Op::send(1, 5, 64, 1),
            ],
            vec![Op::recv(0, 5, 0), Op::recv(0, 5, 1)],
        );
        let slots = out.slots.unwrap();
        // First sent block lands in first posted recv.
        assert!(slots[1][0].get((0, 0)).is_some());
        assert!(slots[1][1].get((0, 1)).is_some());
    }

    #[test]
    fn isend_irecv_waitall_round_trip() {
        let out = run2(
            vec![
                Op::isend(1, 1, 256, 0, 0),
                Op::Irecv { from: 1, tag: 2, slot: 1, req: 1 },
                Op::WaitAll { reqs: vec![0, 1] },
            ],
            vec![
                Op::Irecv { from: 0, tag: 1, slot: 0, req: 0 },
                Op::isend(0, 2, 256, 1, 1),
                Op::WaitAll { reqs: vec![0, 1] },
            ],
        );
        assert!(out.finish[0] > 0.0 && out.finish[1] > 0.0);
        assert_eq!(out.messages, 2);
    }

    #[test]
    fn request_reuse_after_waitall_is_allowed() {
        let mk = |peer: usize, first_send: bool| {
            let mut ops = Vec::new();
            for round in 0..3u64 {
                if first_send {
                    ops.push(Op::isend(peer, round, 64, 0, 0));
                    ops.push(Op::Irecv { from: peer, tag: 100 + round, slot: 1, req: 1 });
                } else {
                    ops.push(Op::Irecv { from: peer, tag: round, slot: 1, req: 1 });
                    ops.push(Op::isend(peer, 100 + round, 64, 0, 0));
                }
                ops.push(Op::WaitAll { reqs: vec![0, 1] });
            }
            ops
        };
        let out = run2(mk(1, true), mk(0, false));
        assert_eq!(out.messages, 6);
    }

    #[test]
    fn request_reuse_without_waitall_is_an_error() {
        let platform = Platform::simcluster(2);
        let job = Job::new(vec![
            RankProgram::from_ops(vec![
                Op::isend(1, 1, 64, 0, 0),
                Op::isend(1, 2, 64, 0, 0),
            ]),
            RankProgram::from_ops(vec![Op::recv(0, 1, 0), Op::recv(0, 2, 0)]),
        ]);
        let err = run(&platform, job, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)), "{err:?}");
    }

    #[test]
    fn self_send_is_rejected() {
        let platform = Platform::simcluster(1);
        let job = Job::new(vec![RankProgram::from_ops(vec![Op::send(0, 1, 64, 0)])]);
        assert!(matches!(run(&platform, job, &SimConfig::default()), Err(SimError::InvalidProgram(_))));
    }

    #[test]
    fn deadlock_is_detected() {
        let out = {
            let platform = Platform::simcluster(2);
            let job = Job::new(vec![
                RankProgram::from_ops(vec![Op::recv(1, 1, 0)]),
                RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
            ]);
            run(&platform, job, &SimConfig::default())
        };
        match out {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn rendezvous_deadlock_two_blocking_sends() {
        // Classic head-to-head blocking Send deadlock (rendezvous).
        let platform = Platform::simcluster(2);
        let big = platform.eager_threshold + 1;
        let job = Job::new(vec![
            RankProgram::from_ops(vec![Op::send(1, 1, big, 0), Op::recv(1, 2, 0)]),
            RankProgram::from_ops(vec![Op::send(0, 2, big, 0), Op::recv(0, 1, 0)]),
        ]);
        assert!(matches!(run(&platform, job, &SimConfig::default()), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn eager_pair_of_blocking_sends_succeeds() {
        // The same exchange with eager messages completes (buffered sends).
        let out = run2(
            vec![Op::send(1, 1, 64, 0), Op::recv(1, 2, 0)],
            vec![Op::send(0, 2, 64, 0), Op::recv(0, 1, 0)],
        );
        assert_eq!(out.messages, 2);
    }

    #[test]
    fn sleep_until_advances_time() {
        let out = run2(
            vec![Op::SleepUntil { time: 2.0 }],
            vec![Op::SleepUntil { time: 1.0 }, Op::SleepUntil { time: 0.5 }],
        );
        assert_eq!(out.finish[0], 2.0);
        assert_eq!(out.finish[1], 1.0); // never goes backwards
    }

    #[test]
    fn phases_record_enter_and_exit() {
        let platform = Platform::simcluster(2);
        let label = Label { kind: 3, seq: 7 };
        let mut p0 = RankProgram::new();
        p0.push_anon(vec![Op::delay(0.25)]);
        p0.push_labeled(label, vec![Op::send(1, 1, 64, 0)]);
        let mut p1 = RankProgram::new();
        p1.push_labeled(label, vec![Op::recv(0, 1, 0)]);
        let out = run(&platform, Job::new(vec![p0, p1]), &SimConfig::default()).unwrap();
        let recs = out.phases_for(label);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].rank, 0);
        assert!((recs[0].enter - 0.25).abs() < 1e-12, "arrival reflects the delay");
        assert!(recs[0].exit >= recs[0].enter);
        assert_eq!(recs[1].enter, 0.0);
        assert!(recs[1].exit > 0.25, "receiver exits only after the delayed sender sends");
    }

    #[test]
    fn record_phases_off_skips_phase_output() {
        let platform = Platform::simcluster(2);
        let label = Label { kind: 1, seq: 0 };
        let mut p0 = RankProgram::new();
        p0.push_labeled(label, vec![Op::send(1, 1, 64, 0)]);
        let mut p1 = RankProgram::new();
        p1.push_labeled(label, vec![Op::recv(0, 1, 0)]);
        let cfg = SimConfig { record_phases: false, ..SimConfig::default() };
        let out = run(&platform, Job::new(vec![p0, p1]), &cfg).unwrap();
        assert!(out.phases.is_empty());
        assert!(out.finish[1] > 0.0, "timing is unaffected");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let platform = Platform::hydra(4);
        let mk = || {
            let mut programs = Vec::new();
            for r in 0..4usize {
                let peer = r ^ 1;
                let ops = if r < peer {
                    vec![Op::compute(1e-4), Op::send(peer, 1, 4096, 0), Op::recv(peer, 2, 0)]
                } else {
                    vec![Op::recv(peer, 1, 0), Op::compute(5e-5), Op::send(peer, 2, 4096, 0)]
                };
                programs.push(RankProgram::from_ops(ops));
            }
            Job::new(programs)
        };
        let cfg = SimConfig { seed: 42, track_data: false, noise: NoiseModel::gaussian(0.05), ..SimConfig::default() };
        let a = run(&platform, mk(), &cfg).unwrap();
        let b = run(&platform, mk(), &cfg).unwrap();
        assert_eq!(a.finish, b.finish);
        let cfg2 = SimConfig { seed: 43, ..cfg };
        let c = run(&platform, mk(), &cfg2).unwrap();
        assert_ne!(a.finish, c.finish, "different seed should perturb timings");
    }

    #[test]
    fn nic_serialization_creates_incast_contention() {
        // 8 senders on different nodes all send to rank 0 concurrently;
        // with NIC serialization the last delivery is pushed out.
        let ranks = 9usize;
        let mut platform = Platform::simcluster(ranks);
        platform.cores_per_node = 1; // one rank per node → all inter-node
        let bytes = 16 * 1024u64;
        let mk_job = || {
            let mut programs = vec![RankProgram::new(); ranks];
            let mut ops0 = Vec::new();
            for s in 1..ranks {
                ops0.push(Op::Irecv { from: s, tag: s as u64, slot: 0, req: s - 1 });
            }
            ops0.push(Op::WaitAll { reqs: (0..ranks - 1).collect() });
            programs[0] = RankProgram::from_ops(ops0);
            for (s, prog) in programs.iter_mut().enumerate().skip(1) {
                *prog = RankProgram::from_ops(vec![Op::send(0, s as u64, bytes, 0)]);
            }
            Job::new(programs)
        };
        let with = run(&platform, mk_job(), &SimConfig::default()).unwrap();
        platform.nic_serialization = false;
        let without = run(&platform, mk_job(), &SimConfig::default()).unwrap();
        assert!(
            with.finish[0] > without.finish[0] * 2.0,
            "incast should be much slower with NIC serialization: {} vs {}",
            with.finish[0],
            without.finish[0]
        );
    }

    #[test]
    fn dataflow_payload_travels() {
        let out = run2(
            vec![
                Op::InitSlot { slot: 0, value: Value::reduce_input(0, 0, 4) },
                Op::send(1, 1, 1024, 0),
            ],
            vec![
                Op::InitSlot { slot: 0, value: Value::reduce_input(1, 0, 4) },
                Op::recv(0, 1, 1),
                Op::ReduceLocal { from: 1, into: 0, bytes: 1024 },
            ],
        );
        assert!(out.data_errors.is_empty(), "{:?}", out.data_errors);
        let slots = out.slots.unwrap();
        for s in 0..4 {
            assert!(slots[1][0].get((0, s)).unwrap().is_full(2));
        }
    }

    #[test]
    fn double_reduce_is_reported() {
        let out = run2(
            vec![
                Op::InitSlot { slot: 0, value: Value::reduce_input(0, 0, 1) },
                Op::InitSlot { slot: 1, value: Value::reduce_input(0, 0, 1) },
                Op::ReduceLocal { from: 1, into: 0, bytes: 8 },
            ],
            vec![],
        );
        assert_eq!(out.data_errors.len(), 1);
    }

    #[test]
    fn mismatched_platform_rank_count_rejected() {
        let platform = Platform::simcluster(4);
        let job = Job::new(vec![RankProgram::new(); 2]);
        assert!(matches!(run(&platform, job, &SimConfig::default()), Err(SimError::InvalidProgram(_))));
    }

    #[test]
    fn compute_noise_only_when_noisy() {
        let platform = Platform::simcluster(1);
        let cfg = SimConfig { seed: 9, track_data: false, noise: NoiseModel::gaussian(0.2), ..SimConfig::default() };
        let exact = run(
            &platform,
            Job::new(vec![RankProgram::from_ops(vec![Op::delay(1.0)])]),
            &cfg,
        )
        .unwrap();
        assert_eq!(exact.finish[0], 1.0, "Op::delay must be exact under noise");
        let noisy = run(
            &platform,
            Job::new(vec![RankProgram::from_ops(vec![Op::compute(1.0)])]),
            &cfg,
        )
        .unwrap();
        assert_ne!(noisy.finish[0], 1.0, "Op::compute should be perturbed");
    }

    #[test]
    fn rank_stall_pushes_completions_back() {
        let platform = Platform::simcluster(1);
        let job = || Job::new(vec![RankProgram::from_ops(vec![Op::delay(1.0), Op::delay(1.0)])]);
        let clean = run(&platform, job(), &SimConfig::default()).unwrap();
        assert_eq!(clean.finish[0], 2.0);
        // Freeze rank 0 for 0.5 s at t = 1.5: the second delay (completing
        // at 2.0 ≥ 1.5) is pushed back by the stall.
        let cfg = SimConfig::default()
            .with_faults(crate::FaultSpec::none().with_stall(0, 1.5, 0.5));
        let faulted = run(&platform, job(), &cfg).unwrap();
        assert_eq!(faulted.finish[0], 2.5);
        // A stall entirely after the program completes changes nothing.
        let late = SimConfig::default()
            .with_faults(crate::FaultSpec::none().with_stall(0, 10.0, 5.0));
        assert_eq!(run(&platform, job(), &late).unwrap().finish[0], 2.0);
    }

    #[test]
    fn crash_halts_rank_and_dependents_deadlock() {
        let platform = Platform::simcluster(2);
        let mk = || {
            Job::new(vec![
                RankProgram::from_ops(vec![Op::delay(1.0), Op::send(1, 1, 64, 0)]),
                RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
            ])
        };
        // Rank 0 dies before its send: rank 1 waits forever.
        let cfg = SimConfig::default().with_faults(crate::FaultSpec::none().with_crash(0, 0.5));
        match run(&platform, mk(), &cfg) {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1, "only the dependent blocks: {blocked:?}");
                assert_eq!(blocked[0].0, 1);
            }
            other => panic!("expected dependent deadlock, got {other:?}"),
        }
        // Rank 0 dies after its send (mid trailing compute): the run
        // completes, the dead rank's finish pinned at the crash time.
        let job = Job::new(vec![
            RankProgram::from_ops(vec![Op::delay(1.0), Op::send(1, 1, 64, 0), Op::delay(5.0)]),
            RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
        ]);
        let cfg = SimConfig::default().with_faults(crate::FaultSpec::none().with_crash(0, 2.0));
        let out = run(&platform, job, &cfg).unwrap();
        assert_eq!(out.finish[0], 2.0);
        assert!(out.finish[1] > 1.0 && out.finish[1] < 2.0);
        // A crash after a rank completes changes nothing.
        let late = SimConfig::default().with_faults(crate::FaultSpec::none().with_crash(0, 50.0));
        let clean = run(&platform, mk(), &SimConfig::default()).unwrap();
        let out = run(&platform, mk(), &late).unwrap();
        assert_eq!(out.finish[0].to_bits(), clean.finish[0].to_bits());
        assert_eq!(out.finish[1].to_bits(), clean.finish[1].to_bits());
    }

    #[test]
    fn link_fault_window_slows_transfers_inside_it_only() {
        // Two ranks on different nodes exchange one eager message each way.
        let mut platform = Platform::simcluster(2);
        platform.cores_per_node = 1;
        let job = || {
            Job::new(vec![
                RankProgram::from_ops(vec![Op::send(1, 1, 8192, 0)]),
                RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
            ])
        };
        let clean = run(&platform, job(), &SimConfig::default()).unwrap();
        let slow_cfg = SimConfig::default()
            .with_faults(crate::FaultSpec::none().with_link(0, 1, 0.0, 1.0, 10.0));
        let slowed = run(&platform, job(), &slow_cfg).unwrap();
        assert!(
            slowed.finish[1] > clean.finish[1],
            "in-window transfer should slow down: {} vs {}",
            slowed.finish[1],
            clean.finish[1]
        );
        // Window closes before the transfer: no effect.
        let closed = SimConfig::default()
            .with_faults(crate::FaultSpec::none().with_link(0, 1, 1e9, 2e9, 10.0));
        let out = run(&platform, job(), &closed).unwrap();
        assert_eq!(out.finish[1].to_bits(), clean.finish[1].to_bits());
    }

    #[test]
    fn noise_storm_slows_covered_ranks_inside_window() {
        let platform = Platform::simcluster(2);
        let job = || {
            Job::new(vec![
                RankProgram::from_ops(vec![Op::compute(1.0)]),
                RankProgram::from_ops(vec![Op::compute(1.0)]),
            ])
        };
        let cfg = SimConfig::default()
            .with_faults(crate::FaultSpec::none().with_storm(0, 0, 0.0, 0.5, 3.0));
        let out = run(&platform, job(), &cfg).unwrap();
        assert_eq!(out.finish[0], 3.0, "storm-covered compute is stretched");
        assert_eq!(out.finish[1], 1.0, "rank outside the storm is untouched");
    }

    #[test]
    fn invalid_fault_spec_is_rejected() {
        let platform = Platform::simcluster(2);
        let job = Job::new(vec![RankProgram::new(); 2]);
        let cfg = SimConfig::default().with_faults(crate::FaultSpec::none().with_crash(7, 1.0));
        assert!(matches!(
            run(&platform, job, &cfg),
            Err(SimError::InvalidProgram(msg)) if msg.contains("fault")
        ));
    }

    #[test]
    fn partition_bounds_are_node_aligned_and_cover_all_ranks() {
        let mut platform = Platform::simcluster(100);
        platform.cores_per_node = 8;
        for nparts in 1..=platform.occupied_nodes() {
            let b = partition_bounds(&platform, nparts);
            assert_eq!(b.len(), nparts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), 100);
            for w in b.windows(2) {
                assert!(w[0] < w[1], "empty partition in {b:?}");
                assert!(w[1] == 100 || w[1] % 8 == 0, "bound off node edge in {b:?}");
            }
        }
    }

    #[test]
    fn run_par_matches_run_ref_on_a_small_exchange() {
        let mut platform = Platform::simcluster(8);
        platform.cores_per_node = 2; // 4 nodes → up to 4 partitions
        let mk = || {
            let mut programs = Vec::new();
            for r in 0..8usize {
                // Pair r ↔ r+4: every message crosses nodes (and partitions
                // for any partition count > 1).
                let peer = r ^ 4;
                let ops = if r < peer {
                    vec![Op::send(peer, 1, 4096, 0), Op::recv(peer, 2, 0)]
                } else {
                    vec![Op::recv(peer, 1, 0), Op::send(peer, 2, 4096, 0)]
                };
                programs.push(RankProgram::from_ops(ops));
            }
            Job::new(programs)
        };
        let cfg = SimConfig::default();
        let seq = run_ref(&platform, &mk(), &cfg).unwrap();
        for parts in 2..=4 {
            let par = run_par(&platform, &mk(), &cfg, parts).unwrap();
            assert_eq!(seq.finish, par.finish, "parts={parts}");
            assert_eq!(seq.events, par.events, "parts={parts}");
        }
    }
}
