//! Simulated time: `f64` seconds with helpers and a total-order wrapper used
//! by the event queue.

/// Simulated time in seconds. All engine timestamps use this alias; the
/// simulation never produces NaN (asserted at event insertion).
pub type SimTime = f64;

/// Convert microseconds to seconds.
#[inline]
pub fn us(v: f64) -> SimTime {
    v * 1e-6
}

/// Convert milliseconds to seconds.
#[inline]
pub fn ms(v: f64) -> SimTime {
    v * 1e-3
}

/// Convert a time in seconds to microseconds (for reporting).
#[inline]
pub fn secs_to_us(t: SimTime) -> f64 {
    t * 1e6
}

/// Convert a time in seconds to milliseconds (for reporting).
#[inline]
pub fn secs_to_ms(t: SimTime) -> f64 {
    t * 1e3
}

/// Total-order wrapper over a finite `f64` timestamp, for use as a
/// `BinaryHeap` key. Construction asserts finiteness, which makes the total
/// order legitimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdTime(pub SimTime);

impl OrdTime {
    /// Wrap a timestamp, asserting it is finite.
    #[inline]
    pub fn new(t: SimTime) -> Self {
        debug_assert!(t.is_finite(), "non-finite simulation timestamp: {t}");
        OrdTime(t)
    }
}

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite by construction, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("finite timestamps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert!((us(1.0) - 1e-6).abs() < 1e-18);
        assert!((ms(1.0) - 1e-3).abs() < 1e-15);
        assert!((secs_to_us(us(3.5)) - 3.5).abs() < 1e-9);
        assert!((secs_to_ms(ms(3.5)) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn ord_time_orders_like_f64() {
        let a = OrdTime::new(1.0);
        let b = OrdTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn ord_time_in_heap_pops_min_with_reverse() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for t in [3.0, 1.0, 2.0] {
            h.push(Reverse(OrdTime::new(t)));
        }
        assert_eq!(h.pop().unwrap().0 .0, 1.0);
        assert_eq!(h.pop().unwrap().0 .0, 2.0);
        assert_eq!(h.pop().unwrap().0 .0, 3.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn ord_time_rejects_nan_in_debug() {
        let _ = OrdTime::new(f64::NAN);
    }
}
