//! Property-based tests of the fault-injection layer: *arbitrary* valid
//! [`FaultSpec`]s must never panic, never hang the event queue, and must
//! produce bit-identical outcomes at every partition count — crashing runs
//! included (a crash that starves dependents surfaces as a deterministic
//! [`SimError::Deadlock`], not a hang). Invalid specs are rejected up front
//! with [`SimError::InvalidProgram`], never a panic.

use pap_sim::{
    run_par, run_ref, FaultSpec, Job, Op, Platform, RankProgram, SimConfig, SimError, ANY_NODE,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A small multi-node platform: 4 ranks per node so partition counts up to
/// 8 genuinely split the machine.
fn multinode(p: usize) -> Platform {
    let mut platform = Platform::simcluster(p);
    platform.cores_per_node = 4;
    platform.nodes = p.div_ceil(4);
    platform
}

/// Binomial-tree broadcast with per-rank arrival delays — the canonical
/// deadlock-free workload (crashes may still starve dependents, which is
/// exactly the behavior under test).
fn bcast_job(p: usize, delays_seed: u64) -> Job {
    let mut programs: Vec<Vec<Op>> = (0..p)
        .map(|r| vec![Op::delay(((delays_seed >> (r % 17)) & 0x3F) as f64 * 1e-6)])
        .collect();
    let mut k = 1usize;
    while k < p {
        for r in 0..k.min(p) {
            let peer = r + k;
            if peer < p {
                programs[r].push(Op::send(peer, k as u64, 2048, 0));
                programs[peer].push(Op::recv(r, k as u64, 0));
            }
        }
        k <<= 1;
    }
    Job::new(programs.into_iter().map(RankProgram::from_ops).collect())
}

/// Fold raw sampled tuples into a valid spec for a `p`-rank machine with
/// `nodes` nodes: ranks are folded with `% p`, node index `nodes` maps to
/// the [`ANY_NODE`] wildcard, windows are ordered by construction.
#[allow(clippy::type_complexity)]
fn build_spec(
    p: usize,
    nodes: usize,
    stalls: Vec<(usize, f64, f64)>,
    crashes: Vec<(usize, f64)>,
    links: Vec<(usize, usize, f64, f64, f64)>,
    storms: Vec<(usize, usize, f64, f64, f64)>,
) -> FaultSpec {
    let node = |n: usize| {
        let n = n % (nodes + 1);
        if n == nodes {
            ANY_NODE
        } else {
            n
        }
    };
    let mut spec = FaultSpec::none();
    for (rank, at, dur) in stalls {
        spec = spec.with_stall(rank % p, at, dur);
    }
    for (rank, at) in crashes {
        spec = spec.with_crash(rank % p, at);
    }
    for (src, dst, from, len, factor) in links {
        spec = spec.with_link(node(src), node(dst), from, from + len, factor);
    }
    for (a, b, from, len, factor) in storms {
        let (a, b) = ((a % p).min(b % p), (a % p).max(b % p));
        spec = spec.with_storm(a, b, from, from + len, factor);
    }
    spec
}

/// Blocked rank list of a deadlock, for cross-partition comparison (the
/// reported `at` is a progress watermark and may legitimately differ).
fn blocked_ranks(e: &SimError) -> Vec<usize> {
    match e {
        SimError::Deadlock { blocked, .. } => blocked.iter().map(|(r, _)| *r).collect(),
        e => panic!("expected deadlock, got {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The headline property: any valid spec terminates (Ok or a clean
    /// deadlock report) and partitions bit-identically at 1, 2, and 8
    /// threads — crashes, cascading stalls, wildcard windows and all.
    #[test]
    fn arbitrary_specs_terminate_and_partition_identically(
        p in 8usize..40,
        stalls in pvec((0usize..1024, 0.0..5e-3f64, 0.0..2e-3f64), 0..4),
        crashes in pvec((0usize..1024, 0.0..5e-3f64), 0..2),
        links in pvec((0usize..1024, 0usize..1024, 0.0..3e-3f64, 0.0..3e-3f64, 0.1..16.0f64), 0..3),
        storms in pvec((0usize..1024, 0usize..1024, 0.0..3e-3f64, 0.0..3e-3f64, 0.1..16.0f64), 0..3),
        delays_seed in any::<u64>(),
    ) {
        let platform = multinode(p);
        let spec = build_spec(p, platform.nodes, stalls, crashes, links, storms);
        let cfg = SimConfig::default().with_faults(spec);
        let job = bcast_job(p, delays_seed);
        let seq = run_ref(&platform, &job, &cfg);
        for parts in [2usize, 8] {
            let par = run_par(&platform, &job, &cfg, parts);
            match (&seq, &par) {
                (Ok(a), Ok(b)) => {
                    for (i, (x, y)) in a.finish.iter().zip(&b.finish).enumerate() {
                        prop_assert_eq!(x.to_bits(), y.to_bits(),
                            "finish[{}] diverged at parts={}", i, parts);
                    }
                    prop_assert_eq!(a.messages, b.messages);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(blocked_ranks(a), blocked_ranks(b),
                        "blocked sets diverged at parts={}", parts);
                }
                _ => prop_assert!(false,
                    "Ok/Err disagreement at parts={}: {:?} vs {:?}", parts, seq, par),
            }
        }
    }

    /// Same seed, same spec: `random_storms` is a pure function and the
    /// engine run on its output is bit-deterministic.
    #[test]
    fn random_storms_are_deterministic_per_seed(
        seed in any::<u64>(),
        count in 1usize..6,
        delays_seed in any::<u64>(),
    ) {
        let p = 32;
        let platform = multinode(p);
        let a = FaultSpec::random_storms(seed, p, count, 2e-3, 3e-4, 5.0);
        let b = FaultSpec::random_storms(seed, p, count, 2e-3, 3e-4, 5.0);
        prop_assert_eq!(&a, &b, "spec construction must be pure in the seed");
        let job = bcast_job(p, delays_seed);
        let cfg = SimConfig::default().with_faults(a);
        let x = run_ref(&platform, &job, &cfg).unwrap();
        let y = run_par(&platform, &job, &cfg, 8).unwrap();
        for (i, (u, v)) in x.finish.iter().zip(&y.finish).enumerate() {
            prop_assert_eq!(u.to_bits(), v.to_bits(), "finish[{}]", i);
        }
    }

    /// Out-of-envelope specs — bad ranks, bad nodes, non-finite or huge
    /// times, reversed storm spans — are rejected as `InvalidProgram`, and
    /// never panic or schedule anything.
    #[test]
    fn invalid_specs_are_rejected_not_run(
        bad_rank in 40usize..1000,
        t in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(2e12), Just(-1.0)],
    ) {
        let p = 8;
        let platform = multinode(p);
        let job = bcast_job(p, 0);
        for spec in [
            FaultSpec::none().with_crash(bad_rank, 1e-3),
            FaultSpec::none().with_stall(0, t, 1e-3),
            FaultSpec::none().with_link(platform.nodes + 7, 0, 0.0, 1e-3, 2.0),
            FaultSpec::none().with_storm(3, 1, 0.0, 1e-3, 2.0),
        ] {
            let cfg = SimConfig::default().with_faults(spec);
            let res = run_ref(&platform, &job, &cfg);
            prop_assert!(
                matches!(&res, Err(SimError::InvalidProgram(m)) if m.contains("fault")),
                "expected fault rejection, got {:?}", res
            );
        }
    }
}
