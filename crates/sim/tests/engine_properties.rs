//! Property-based tests of the discrete-event engine: physical lower
//! bounds, monotonicity, determinism, and conservation properties that must
//! hold for *arbitrary* deadlock-free programs.

use pap_sim::{run, Job, NoiseModel, Op, Platform, RankProgram, SimConfig};
use proptest::prelude::*;

/// A random but deadlock-free exchange pattern: a sequence of rounds; in
/// each round, ranks are paired up and exchange one message via
/// isend/irecv/waitall.
#[derive(Debug, Clone)]
struct ExchangePlan {
    p: usize,
    /// Per round: a permutation-derived pairing (list of (a, b) disjoint).
    rounds: Vec<Vec<(usize, usize)>>,
    bytes: u64,
    delays: Vec<f64>,
}

fn plan_strategy() -> impl Strategy<Value = ExchangePlan> {
    (2usize..12, 1usize..6, 1u64..100_000, any::<u64>()).prop_map(|(p, nrounds, bytes, seed)| {
        // Deterministic pseudo-pairings from the seed.
        let mut rounds = Vec::new();
        let mut s = seed;
        for _ in 0..nrounds {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let shift = (s >> 33) as usize % (p - 1) + 1;
            let mut used = vec![false; p];
            let mut pairs = Vec::new();
            for a in 0..p {
                let b = (a + shift) % p;
                if !used[a] && !used[b] && a != b {
                    used[a] = true;
                    used[b] = true;
                    pairs.push((a, b));
                }
            }
            rounds.push(pairs);
        }
        let delays = (0..p).map(|r| ((seed >> (r % 13)) & 0xFF) as f64 * 1e-6).collect();
        ExchangePlan { p, rounds, bytes, delays }
    })
}

fn build_job(plan: &ExchangePlan, with_delays: bool) -> Job {
    let mut programs: Vec<Vec<Op>> = (0..plan.p)
        .map(|r| {
            if with_delays {
                vec![Op::delay(plan.delays[r])]
            } else {
                Vec::new()
            }
        })
        .collect();
    for (round, pairs) in plan.rounds.iter().enumerate() {
        for &(a, b) in pairs {
            let tag = round as u64;
            programs[a].push(Op::isend(b, tag, plan.bytes, 0, 0));
            programs[a].push(Op::irecv(b, tag + 1000, 0, 1));
            programs[a].push(Op::waitall(vec![0, 1]));
            programs[b].push(Op::irecv(a, tag, 0, 0));
            programs[b].push(Op::isend(a, tag + 1000, plan.bytes, 0, 1));
            programs[b].push(Op::waitall(vec![0, 1]));
        }
    }
    Job::new(programs.into_iter().map(RankProgram::from_ops).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every pairing plan completes (no deadlock) and respects the physical
    /// lower bound: any rank that communicated needs at least one
    /// latency + transfer.
    #[test]
    fn exchanges_complete_with_physical_lower_bound(plan in plan_strategy()) {
        let platform = Platform::simcluster(plan.p);
        let out = run(&platform, build_job(&plan, false), &SimConfig::default()).unwrap();
        let total_pairs: usize = plan.rounds.iter().map(Vec::len).sum();
        prop_assert_eq!(out.messages, 2 * total_pairs as u64);
        if total_pairs > 0 {
            let min_cost = platform.intra.latency + plan.bytes as f64 / platform.intra.bandwidth;
            prop_assert!(out.makespan() >= min_cost, "makespan {} < {}", out.makespan(), min_cost);
        }
    }

    /// Adding per-rank start delays never makes any rank finish *earlier*
    /// (event-time monotonicity), and shifts the makespan by at most the
    /// largest delay (the exchange structure itself is unchanged).
    #[test]
    fn delays_shift_but_never_speed_up(plan in plan_strategy()) {
        let platform = Platform::simcluster(plan.p);
        let base = run(&platform, build_job(&plan, false), &SimConfig::default()).unwrap();
        let delayed = run(&platform, build_job(&plan, true), &SimConfig::default()).unwrap();
        let max_delay = plan.delays.iter().copied().fold(0.0f64, f64::max);
        for r in 0..plan.p {
            prop_assert!(delayed.finish[r] + 1e-15 >= base.finish[r], "rank {r} sped up");
        }
        prop_assert!(delayed.makespan() <= base.makespan() + max_delay + 1e-12);
    }

    /// Determinism: two runs with identical config are bit-identical, and
    /// event/message counts match.
    #[test]
    fn runs_are_bit_deterministic(plan in plan_strategy(), seed in any::<u64>()) {
        let platform = Platform::hydra(plan.p);
        let cfg = SimConfig { seed, track_data: false, noise: NoiseModel::heavy_tail(0.05, 50.0, 1e-4), ..SimConfig::default() };
        let a = run(&platform, build_job(&plan, true), &cfg).unwrap();
        let b = run(&platform, build_job(&plan, true), &cfg).unwrap();
        prop_assert_eq!(a.finish.clone(), b.finish.clone());
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.messages, b.messages);
    }

    /// Bigger messages never arrive earlier (transfer-time monotonicity),
    /// all else equal.
    #[test]
    fn transfer_time_monotone_in_bytes(small in 1u64..10_000, extra in 1u64..1_000_000) {
        let platform = Platform::simcluster(2);
        let t = |bytes: u64| {
            let job = Job::new(vec![
                RankProgram::from_ops(vec![Op::send(1, 1, bytes, 0)]),
                RankProgram::from_ops(vec![Op::recv(0, 1, 0)]),
            ]);
            run(&platform, job, &SimConfig::default()).unwrap().finish[1]
        };
        prop_assert!(t(small + extra) >= t(small));
    }

    /// Eager sends never block the sender on the receiver: the sender's
    /// finish time is independent of an arbitrary receiver-side delay.
    #[test]
    fn eager_sender_independent_of_receiver(delay_us in 0.0f64..100_000.0) {
        let platform = Platform::simcluster(2);
        let job = |d: f64| Job::new(vec![
            RankProgram::from_ops(vec![Op::send(1, 1, 512, 0)]),
            RankProgram::from_ops(vec![Op::delay(d), Op::recv(0, 1, 0)]),
        ]);
        let a = run(&platform, job(0.0), &SimConfig::default()).unwrap();
        let b = run(&platform, job(delay_us * 1e-6), &SimConfig::default()).unwrap();
        prop_assert_eq!(a.finish[0], b.finish[0]);
    }

    /// Rendezvous senders DO wait for the receiver: the sender's finish
    /// tracks the receiver's posting time once the delay dominates.
    #[test]
    fn rendezvous_sender_tracks_receiver(delay_ms in 1.0f64..100.0) {
        let platform = Platform::simcluster(2);
        let bytes = platform.eager_threshold + 1;
        let d = delay_ms * 1e-3;
        let job = Job::new(vec![
            RankProgram::from_ops(vec![Op::send(1, 1, bytes, 0)]),
            RankProgram::from_ops(vec![Op::delay(d), Op::recv(0, 1, 0)]),
        ]);
        let out = run(&platform, job, &SimConfig::default()).unwrap();
        prop_assert!(out.finish[0] >= d, "rendezvous sender finished at {} before receiver posted at {}", out.finish[0], d);
    }

    /// NIC serialization conserves bandwidth: n concurrent inter-node
    /// transfers into one node take at least n·bytes/bw.
    #[test]
    fn incast_respects_aggregate_bandwidth(n in 2usize..10, kib in 1u64..64) {
        let bytes = kib * 1024;
        let ranks = n + 1;
        let mut platform = Platform::simcluster(ranks);
        platform.cores_per_node = 1; // all inter-node
        let mut programs = vec![RankProgram::new(); ranks];
        let mut ops0 = Vec::new();
        for s in 1..ranks {
            ops0.push(Op::irecv(s, s as u64, 0, s - 1));
        }
        ops0.push(Op::waitall((0..ranks - 1).collect()));
        programs[0] = RankProgram::from_ops(ops0);
        for (s, prog) in programs.iter_mut().enumerate().skip(1) {
            *prog = RankProgram::from_ops(vec![Op::send(0, s as u64, bytes, 0)]);
        }
        let out = run(&platform, Job::new(programs), &SimConfig::default()).unwrap();
        let floor = n as f64 * bytes as f64 / platform.inter.bandwidth;
        prop_assert!(out.finish[0] >= floor, "incast {} finished below bandwidth floor {}", out.finish[0], floor);
    }
}

/// Analytical anchor: a binomial broadcast of a tiny message on an
/// uncontended intra-node platform should cost about
/// `ceil(log2 p) · (o_s + o_r(post) + L + o_r(complete))` — the engine's
/// constants must compose the LogGP terms, not invent time.
#[test]
fn binomial_bcast_matches_logp_estimate() {
    for p in [4usize, 8, 16, 32] {
        let platform = Platform::simcluster(p);
        // Hand-built binomial bcast over vranks (root 0), 1-byte payload.
        let mut programs: Vec<RankProgram> = Vec::new();
        for me in 0..p {
            let mut ops = Vec::new();
            if me != 0 {
                let parent = me & (me - 1);
                ops.push(Op::recv(parent, me as u64, 0));
            }
            let mut k = 0;
            while (1usize << k) <= me || me == 0 {
                let child = me + (1 << k);
                if me != 0 && (me & (1 << k)) != 0 {
                    break;
                }
                if child < p && (child & (child - 1)) == me {
                    ops.push(Op::send(child, child as u64, 1, 0));
                }
                k += 1;
                if (1 << k) >= p {
                    break;
                }
            }
            programs.push(RankProgram::from_ops(ops));
        }
        let out = run(&platform, Job::new(programs), &SimConfig::default()).unwrap();
        let depth = (usize::BITS - (p - 1).leading_zeros()) as f64;
        let hop = platform.send_overhead
            + platform.intra.latency
            + 1.0 / platform.intra.bandwidth
            + 2.0 * platform.recv_overhead; // posting + completion
        let expect = depth * hop;
        let got = out.makespan();
        assert!(
            (got - expect).abs() < expect * 0.35,
            "p={p}: makespan {got:.2e} vs LogP estimate {expect:.2e}"
        );
    }
}
