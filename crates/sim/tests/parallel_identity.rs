//! Regression: partitioned execution is **byte-identical** to sequential.
//!
//! The parallel driver ([`pap_sim::run_par`]) splits a run into node-aligned
//! rank partitions advanced window-by-window under conservative lookahead.
//! Its contract is not "statistically equivalent" but *bitwise equal output
//! at any partition count* — every `f64` in the outcome compared via
//! `to_bits`, every count exactly equal. These tests pin that contract at
//! 10K ranks (where the scale machinery — calendar queue, startup sweep,
//! handoff batching — is actually engaged) and under noise + dataflow
//! tracking + message recording (where every optional subsystem must stay
//! deterministic too).

use pap_sim::{
    run_auto, run_par, run_ref, FaultSpec, Job, NoiseModel, Op, Platform, RankProgram, RunOutcome,
    SimConfig, ANY_NODE,
};

/// SimCluster scaled out to `ranks` (presets grow nodes synthetically
/// past their validated baseline capacity).
fn scaled_simcluster(ranks: usize) -> Platform {
    Platform::simcluster(ranks)
}

/// Hand-rolled binomial-tree broadcast from rank 0: round `k` has every
/// rank `r < k` with `r + k < p` forward to `r + k`. Receives land before
/// later-round sends because rounds are emitted in ascending order.
fn binomial_bcast(p: usize, bytes: u64) -> Job {
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); p];
    let mut k = 1usize;
    while k < p {
        for r in 0..k.min(p) {
            let peer = r + k;
            if peer < p {
                programs[r].push(Op::send(peer, k as u64, bytes, 0));
                programs[peer].push(Op::recv(r, k as u64, 0));
            }
        }
        k <<= 1;
    }
    Job::new(programs.into_iter().map(RankProgram::from_ops).collect())
}

/// Recursive-doubling exchange (power-of-two ranks): log2(p) rounds of
/// pairwise isend/irecv/waitall with a little compute between rounds.
fn rdb_exchange(p: usize, bytes: u64) -> Job {
    assert!(p.is_power_of_two());
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); p];
    let mut k = 1usize;
    while k < p {
        for (r, ops) in programs.iter_mut().enumerate() {
            let peer = r ^ k;
            ops.push(Op::compute(1e-7));
            ops.push(Op::isend(peer, k as u64, bytes, 0, 0));
            ops.push(Op::Irecv { from: peer, tag: k as u64, slot: 1, req: 1 });
            ops.push(Op::WaitAll { reqs: vec![0, 1] });
        }
        k <<= 1;
    }
    Job::new(programs.into_iter().map(RankProgram::from_ops).collect())
}

/// Bitwise equality of two outcomes: every float compared via `to_bits`.
fn assert_bit_identical(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.finish.len(), b.finish.len(), "{what}: finish length");
    for (i, (x, y)) in a.finish.iter().zip(&b.finish).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: finish[{i}] {x:e} vs {y:e}");
    }
    assert_eq!(a.phases.len(), b.phases.len(), "{what}: phase count");
    for (x, y) in a.phases.iter().zip(&b.phases) {
        assert_eq!(x.rank, y.rank, "{what}: phase rank");
        assert_eq!(x.label, y.label, "{what}: phase label");
        assert_eq!(x.enter.to_bits(), y.enter.to_bits(), "{what}: phase enter");
        assert_eq!(x.exit.to_bits(), y.exit.to_bits(), "{what}: phase exit");
    }
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.events, b.events, "{what}: events");
    assert_eq!(a.data_errors, b.data_errors, "{what}: data errors");
    assert_eq!(a.slots, b.slots, "{what}: tracked slots");
    match (&a.msg_events, &b.msg_events) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.len(), y.len(), "{what}: msg event count");
            for (m, n) in x.iter().zip(y) {
                assert_eq!(
                    (m.src, m.dst, m.tag, m.bytes),
                    (n.src, n.dst, n.tag, n.bytes),
                    "{what}: msg event endpoints"
                );
                assert_eq!(m.sent.to_bits(), n.sent.to_bits(), "{what}: msg sent time");
                assert_eq!(m.delivered.to_bits(), n.delivered.to_bits(), "{what}: msg delivered");
            }
        }
        _ => panic!("{what}: msg_events presence differs"),
    }
}

/// The headline regression: 10 240-rank broadcast, `PAP_THREADS` ∈
/// {1, 2, 3, 8} all bit-identical to the sequential engine.
#[test]
fn ten_k_bcast_is_byte_identical_across_thread_counts() {
    let p = 10_240;
    let platform = scaled_simcluster(p);
    let job = binomial_bcast(p, 1024);
    let cfg = SimConfig::default();
    let seq = run_ref(&platform, &job, &cfg).expect("sequential run");
    assert!(seq.makespan() > 0.0);
    for parts in [1usize, 2, 3, 8] {
        let par = run_par(&platform, &job, &cfg, parts).expect("parallel run");
        assert_bit_identical(&seq, &par, &format!("bcast p=10240 parts={parts}"));
    }
}

/// Every optional subsystem on at once — seeded noise, dataflow tracking,
/// message recording — must survive partitioning bit-for-bit too.
#[test]
fn noisy_tracked_recorded_run_is_byte_identical() {
    let p = 1_024;
    let platform = scaled_simcluster(p);
    let job = rdb_exchange(p, 4096);
    let cfg = SimConfig {
        seed: 0xA11CE,
        track_data: true,
        noise: NoiseModel::gaussian(0.08),
        record_messages: true,
        record_phases: true,
        ..SimConfig::default()
    };
    let seq = run_ref(&platform, &job, &cfg).expect("sequential run");
    for parts in [2usize, 3, 8] {
        let par = run_par(&platform, &job, &cfg, parts).expect("parallel run");
        assert_bit_identical(&seq, &par, &format!("rdb p=1024 parts={parts}"));
    }
}

/// A fully-loaded fault spec — stalls (cascading, multiple per rank), a
/// crash on the final leaf receiver, link-slowdown windows (one wildcard),
/// and a noise storm — stays byte-identical at 10 240 ranks across every
/// partition count. This is the determinism contract of the fault layer:
/// partitions must consume stalls, enforce crash caps, and evaluate fault
/// windows exactly as the sequential engine does.
#[test]
fn faulted_ten_k_bcast_is_byte_identical_across_thread_counts() {
    let p = 10_240;
    let platform = scaled_simcluster(p);
    let job = binomial_bcast(p, 1024);
    let faults = FaultSpec::none()
        .with_stall(1, 1e-5, 3e-4)
        .with_stall(1, 2e-4, 1e-4)
        .with_stall(5_000, 0.0, 2e-4)
        .with_crash(p - 1, 2e-6)
        .with_link(0, 1, 0.0, 5e-3, 7.5)
        .with_link(ANY_NODE, 3, 1e-4, 2e-3, 3.0)
        .with_storm(2_000, 2_600, 0.0, 1e-2, 4.0);
    let cfg = SimConfig::default().with_faults(faults);
    let seq = run_ref(&platform, &job, &cfg).expect("sequential faulted run");
    // The spec must actually bite — otherwise this degenerates into the
    // clean identity test above.
    let clean = run_ref(&platform, &job, &SimConfig::default()).expect("clean run");
    assert!(
        seq.makespan() > clean.makespan(),
        "faults did not perturb the run: {} vs {}",
        seq.makespan(),
        clean.makespan()
    );
    for parts in [1usize, 2, 3, 8] {
        let par = run_par(&platform, &job, &cfg, parts).expect("parallel faulted run");
        assert_bit_identical(&seq, &par, &format!("faulted bcast p=10240 parts={parts}"));
    }
}

/// Faults layered on top of every optional subsystem — seeded noise,
/// dataflow tracking, message recording — still partition bit-for-bit.
#[test]
fn faulted_noisy_tracked_run_is_byte_identical() {
    let p = 1_024;
    let platform = scaled_simcluster(p);
    let job = rdb_exchange(p, 4096);
    let cfg = SimConfig {
        seed: 0xFA_017,
        track_data: true,
        noise: NoiseModel::gaussian(0.08),
        record_messages: true,
        record_phases: true,
        faults: FaultSpec::none()
            .with_stall(7, 5e-6, 8e-5)
            .with_link(ANY_NODE, 0, 0.0, 1e-3, 5.0)
            .with_storm(100, 180, 1e-5, 5e-4, 6.0),
    };
    let seq = run_ref(&platform, &job, &cfg).expect("sequential run");
    for parts in [2usize, 3, 8] {
        let par = run_par(&platform, &job, &cfg, parts).expect("parallel run");
        assert_bit_identical(&seq, &par, &format!("faulted rdb p=1024 parts={parts}"));
    }
}

/// `FaultSpec::none()` takes exactly the fault-free code paths: the output
/// is byte-identical to a config that never mentions faults, sequential
/// and partitioned alike.
#[test]
fn fault_spec_none_is_byte_identical_to_no_faults() {
    let p = 1_024;
    let platform = scaled_simcluster(p);
    let job = binomial_bcast(p, 1024);
    let plain = run_ref(&platform, &job, &SimConfig::default()).expect("plain run");
    let none_cfg = SimConfig::default().with_faults(FaultSpec::none());
    let none_ref = run_ref(&platform, &job, &none_cfg).expect("none() run_ref");
    assert_bit_identical(&plain, &none_ref, "FaultSpec::none() run_ref");
    let none_par = run_par(&platform, &job, &none_cfg, 4).expect("none() run_par");
    assert_bit_identical(&plain, &none_par, "FaultSpec::none() run_par");
}

/// `run_auto` takes its partition count from the `pap-parallel` thread
/// setting — the `PAP_THREADS` plumbing used by papd/papctl.
#[test]
fn run_auto_follows_thread_setting() {
    let p = 1_024;
    let platform = scaled_simcluster(p);
    let job = binomial_bcast(p, 512);
    let cfg = SimConfig::default();
    let seq = run_ref(&platform, &job, &cfg).expect("sequential run");
    pap_parallel::set_threads(3);
    let auto = run_auto(&platform, &job, &cfg).expect("auto run");
    pap_parallel::set_threads(1);
    assert_bit_identical(&seq, &auto, "run_auto threads=3");
}
