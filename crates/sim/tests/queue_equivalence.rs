//! Property test pinning the calendar queue to the reference binary heap:
//! for *arbitrary* interleaved push/pop sequences the two implementations
//! must pop the exact same event sequence.
//!
//! This is the safety net for [`pap_sim::engine::queue`]'s invariant that
//! bucket membership (`floor(t / width)`) is monotone in `t` — floating
//! point edge rounding may place an event a bucket early or late, but can
//! never reorder pops. Times are drawn from a small set of multiples so
//! exact FP ties (equal `t`, differing kind/uid/idx) occur constantly, and
//! three widths exercise the sub-bucket, ring, and overflow-lap regimes.

use pap_sim::engine::queue::{EventQueue, QEvent};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum QOp {
    Push(QEvent),
    Pop,
}

fn event_strategy() -> impl Strategy<Value = QEvent> {
    // `k * 0.37µs` makes ties across independently drawn events common
    // while still spanning ~190µs (hundreds of calendar buckets at the
    // narrow width, several overflow laps at the narrowest).
    (0u64..512, 0u8..4, 0u64..16, 0u32..8)
        .prop_map(|(k, kind, uid, idx)| QEvent { t: k as f64 * 0.37e-6, kind, uid, idx })
}

fn op_strategy() -> impl Strategy<Value = QOp> {
    // ~3:1 push:pop mix (the vendored proptest has no weighted arms).
    prop_oneof![
        event_strategy().prop_map(QOp::Push),
        event_strategy().prop_map(QOp::Push),
        event_strategy().prop_map(QOp::Push),
        Just(QOp::Pop),
    ]
}

proptest! {
    #[test]
    fn calendar_pop_order_equals_heap(
        ops in proptest::collection::vec(op_strategy(), 0..500),
        width_sel in 0usize..3,
    ) {
        // Narrow (events span many laps), natural (≈ event spacing), and
        // wide (everything lands in a handful of buckets).
        let width = [0.1e-6, 1e-6, 64e-6][width_sel];
        let mut h = EventQueue::heap();
        let mut c = EventQueue::calendar(width);
        for op in ops {
            match op {
                QOp::Push(e) => {
                    h.push(e);
                    c.push(e);
                }
                QOp::Pop => {
                    prop_assert_eq!(h.pop(), c.pop());
                }
            }
            prop_assert_eq!(h.len(), c.len());
        }
        // Drain whatever is left; order must still agree exactly.
        loop {
            let (a, b) = (h.pop(), c.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

/// Exact FP ties: same timestamp, every kind, shuffled insertion order.
/// The pop order must be the canonical key order regardless of queue.
#[test]
fn fp_tie_timestamps_pop_in_canonical_order() {
    let t = 3.000000000000001e-6; // not representable as a clean multiple
    let mut events = Vec::new();
    for kind in (0u8..4).rev() {
        for uid in (0u64..4).rev() {
            events.push(QEvent { t, kind, uid, idx: uid as u32 });
        }
    }
    // A second tie group one ULP away must stay strictly after the first.
    let t2 = f64::from_bits(t.to_bits() + 1);
    events.push(QEvent { t: t2, kind: 0, uid: 0, idx: 0 });

    let mut h = EventQueue::heap();
    let mut c = EventQueue::calendar(1e-6);
    for &e in &events {
        h.push(e);
        c.push(e);
    }
    let mut prev: Option<QEvent> = None;
    loop {
        let (a, b) = (h.pop(), c.pop());
        assert_eq!(a, b);
        let Some(e) = a else { break };
        if let Some(p) = prev {
            assert!(
                (p.t, p.kind, p.uid, p.idx) <= (e.t, e.kind, e.uid, e.idx),
                "pop order regressed: {p:?} then {e:?}"
            );
        }
        prev = Some(e);
    }
}

/// Events exactly on bucket boundaries (`t = k * width`) — the rounding
/// edge case the monotone bucket-index argument is about.
#[test]
fn bucket_boundary_times_agree() {
    let width = 1e-6;
    let mut h = EventQueue::heap();
    let mut c = EventQueue::calendar(width);
    for k in (0u64..100).rev() {
        let e = QEvent { t: k as f64 * width, kind: (k % 4) as u8, uid: k, idx: k as u32 };
        h.push(e);
        c.push(e);
    }
    while let Some(a) = h.pop() {
        assert_eq!(Some(a), c.pop());
    }
    assert!(c.pop().is_none());
}
