//! Per-node linear clock models: `local(g) = g·(1 + drift) + offset`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One node's clock: a linear function of true (global) time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeClock {
    /// Offset at global time 0 (seconds). Realistic NTP-synchronized
    /// clusters sit in the 10 µs – 10 ms range.
    pub offset: f64,
    /// Relative drift (dimensionless); typical crystal oscillators drift a
    /// few ppm (1e-6).
    pub drift: f64,
}

impl NodeClock {
    /// The perfect clock (offset 0, no drift).
    pub const IDEAL: NodeClock = NodeClock { offset: 0.0, drift: 0.0 };

    /// Local reading at global time `g`.
    #[inline]
    pub fn local_of(&self, g: f64) -> f64 {
        g * (1.0 + self.drift) + self.offset
    }

    /// Global time at which the local clock reads `l` (exact inverse).
    #[inline]
    pub fn global_of(&self, l: f64) -> f64 {
        (l - self.offset) / (1.0 + self.drift)
    }
}

/// The clocks of a whole cluster, one per node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterClocks {
    /// Per-node clocks.
    pub nodes: Vec<NodeClock>,
}

impl ClusterClocks {
    /// All-ideal clocks (the simulation setting of §III, where no
    /// synchronization is needed).
    pub fn ideal(nodes: usize) -> Self {
        ClusterClocks { nodes: vec![NodeClock::IDEAL; nodes] }
    }

    /// Random realistic clocks: offsets uniform in `±max_offset`, drifts
    /// uniform in `±max_drift`. Node 0 is the reference (ideal) so that
    /// "global time" is well defined as its clock.
    pub fn generate(nodes: usize, max_offset: f64, max_drift: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut v = Vec::with_capacity(nodes);
        for i in 0..nodes {
            if i == 0 {
                v.push(NodeClock::IDEAL);
            } else {
                v.push(NodeClock {
                    offset: rng.gen_range(-max_offset..=max_offset),
                    drift: rng.gen_range(-max_drift..=max_drift),
                });
            }
        }
        ClusterClocks { nodes: v }
    }

    /// Defaults matching an NTP-disciplined production cluster: offsets up
    /// to ±500 µs, drifts up to ±5 ppm.
    pub fn realistic(nodes: usize, seed: u64) -> Self {
        Self::generate(nodes, 500e-6, 5e-6, seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Largest pairwise clock disagreement at global time `g` — what an
    /// unsynchronized timestamp comparison would suffer.
    pub fn max_disagreement(&self, g: f64) -> f64 {
        let readings: Vec<f64> = self.nodes.iter().map(|c| c.local_of(g)).collect();
        let lo = readings.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = readings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_global_round_trip() {
        let c = NodeClock { offset: 1e-3, drift: 3e-6 };
        for g in [0.0, 1.0, 123.456] {
            let l = c.local_of(g);
            assert!((c.global_of(l) - g).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_is_identity() {
        assert_eq!(NodeClock::IDEAL.local_of(5.0), 5.0);
        assert_eq!(NodeClock::IDEAL.global_of(5.0), 5.0);
    }

    #[test]
    fn node0_is_reference() {
        let c = ClusterClocks::realistic(8, 42);
        assert_eq!(c.nodes[0], NodeClock::IDEAL);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let a = ClusterClocks::generate(16, 1e-3, 1e-5, 7);
        let b = ClusterClocks::generate(16, 1e-3, 1e-5, 7);
        assert_eq!(a.nodes, b.nodes);
        for c in &a.nodes {
            assert!(c.offset.abs() <= 1e-3);
            assert!(c.drift.abs() <= 1e-5);
        }
    }

    #[test]
    fn disagreement_grows_with_drift() {
        let c = ClusterClocks::generate(4, 0.0, 1e-5, 3);
        let d0 = c.max_disagreement(0.0);
        let d1 = c.max_disagreement(1000.0);
        assert!(d1 > d0, "drift should widen disagreement over time");
    }
}
