//! # pap-clocksync — clock models, HCA3-style synchronization, harmonize
//!
//! The paper's measurement methodology (§II-B, §IV-A) depends on two pieces
//! of infrastructure that do not exist on a machine with independent,
//! drifting node clocks:
//!
//! 1. **A precise logical global clock** — provided on real machines by
//!    HCA3 (Hunold & Carpen-Amarie, CLUSTER'18), which synchronizes MPI
//!    processes in a logarithmic number of ping-pong rounds and achieves
//!    sub-microsecond accuracy.
//! 2. **`MPIX_Harmonize`** (Schuchart, Hunold, Bosilca, EuroMPI'23) — agree
//!    on a *future* global start time and have every rank spin until its
//!    local estimate of that instant, so that arrival patterns can be
//!    replayed precisely (Listing 1 of the paper).
//!
//! This crate models both: per-node linear clocks (offset + drift + read
//! jitter), an HCA3-style hierarchical estimator built from simulated NTP
//! ping-pongs (minimum-RTT selection, two-pass drift regression, binomial
//! propagation from a reference node), and harmonized starts that translate
//! a requested global instant into per-rank *true* start times including the
//! residual synchronization error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod harmonize;
pub mod hca3;

pub use clock::{ClusterClocks, NodeClock};
pub use harmonize::{harmonize_starts, observe};
pub use hca3::{sync_cluster, sync_cluster_offset_only, Hca3Config, SyncedClock};
