//! Harmonized starts (`MPIX_Harmonize`) and observed timestamps.
//!
//! Listing 1 of the paper establishes an arrival pattern by synchronizing
//! processes *in time*: all ranks agree on a global start instant `T`, each
//! spins until its local clock estimate of `T`, and then waits its pattern
//! delay. Because calibrations are imperfect, rank `i` really starts at
//! `T + ε_i` where `ε_i` is its residual synchronization error — which this
//! module computes, so the simulator can replay harmonized starts with
//! realistic imperfection.

use crate::clock::ClusterClocks;
use crate::hca3::SyncedClock;

/// True global times at which each rank starts after harmonizing on target
/// `T`.
///
/// `node_of` maps a rank to its node (ranks on one node share the node
/// clock). A rank spins until its *estimated* global clock reads `T`; the
/// true instant is `T + ε` with `ε` its calibration's residual error — and
/// never earlier than `now` (a target already in the past fires
/// immediately).
pub fn harmonize_starts(
    clocks: &ClusterClocks,
    calib: &[SyncedClock],
    p: usize,
    node_of: impl Fn(usize) -> usize,
    target: f64,
    now: f64,
) -> Vec<f64> {
    assert_eq!(calib.len(), clocks.len(), "one calibration per node");
    (0..p)
        .map(|r| {
            let n = node_of(r);
            // The rank spins until local reading == calib.local_of(target);
            // invert through the true clock to get the true instant.
            let true_t = clocks.nodes[n].global_of(calib[n].local_of(target));
            true_t.max(now)
        })
        .collect()
}

/// The timestamp a rank *observes* (through its estimated global clock) for
/// an event that truly happens at global time `g`.
pub fn observe(clocks: &ClusterClocks, calib: &[SyncedClock], node: usize, g: f64) -> f64 {
    calib[node].global_of(clocks.nodes[node].local_of(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hca3::{sync_cluster, Hca3Config};

    #[test]
    fn ideal_clocks_start_exactly_on_target() {
        let clocks = ClusterClocks::ideal(4);
        let calib = vec![SyncedClock::PERFECT; 4];
        let starts = harmonize_starts(&clocks, &calib, 8, |r| r / 2, 1.0, 0.0);
        assert!(starts.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn realistic_clocks_start_within_sync_error() {
        let clocks = ClusterClocks::realistic(8, 3);
        let calib = sync_cluster(&clocks, &Hca3Config::default(), 3);
        let starts = harmonize_starts(&clocks, &calib, 16, |r| r / 2, 2.0, 0.0);
        for (r, &s) in starts.iter().enumerate() {
            assert!((s - 2.0).abs() < 2e-6, "rank {r} starts at {s}");
        }
        // Ranks on the same node start at the same instant.
        assert_eq!(starts[0], starts[1]);
    }

    #[test]
    fn past_target_fires_immediately() {
        let clocks = ClusterClocks::ideal(2);
        let calib = vec![SyncedClock::PERFECT; 2];
        let starts = harmonize_starts(&clocks, &calib, 2, |r| r, 1.0, 5.0);
        assert!(starts.iter().all(|&s| s == 5.0));
    }

    #[test]
    fn observation_error_matches_calibration_error() {
        let clocks = ClusterClocks::realistic(4, 9);
        let calib = sync_cluster(&clocks, &Hca3Config::default(), 9);
        for n in 0..4 {
            let obs = observe(&clocks, &calib, n, 3.0);
            let err = calib[n].error_at(&clocks.nodes[n], 3.0);
            assert!((obs - 3.0 - err).abs() < 1e-15);
        }
    }

    #[test]
    fn unsynchronized_observation_would_be_off_by_clock_offset() {
        let clocks = ClusterClocks::realistic(4, 1);
        // Pretend we never synchronized (identity calibrations).
        let naive = vec![SyncedClock::PERFECT; 4];
        let worst = (0..4)
            .map(|n| (observe(&clocks, &naive, n, 1.0) - 1.0).abs())
            .fold(0.0f64, f64::max);
        assert!(worst > 10e-6, "expected large error without sync, got {worst:.2e}");
    }
}
