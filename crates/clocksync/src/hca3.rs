//! HCA3-style hierarchical clock synchronization.
//!
//! The estimator follows the structure of HCA3 (Hunold & Carpen-Amarie):
//!
//! * nodes are organized in a binomial hierarchy rooted at the reference
//!   node 0, so synchronization completes in `ceil(log2 n)` rounds;
//! * each parent/child pair runs `exchanges` NTP-style ping-pongs, keeping
//!   the estimate from the **minimum-RTT** exchange (network jitter is
//!   one-sided, so the fastest exchange is the most symmetric one);
//! * two passes separated by a settling window provide a linear *drift*
//!   regression, not just an offset;
//! * child estimates compose with the parent's estimate, so errors grow
//!   with hierarchy depth — logarithmically in the node count.
//!
//! The ping-pongs are *modelled* (timestamps drawn from the clock models
//! plus latency jitter) rather than scheduled through the DES; what matters
//! downstream is the estimator structure and its residual-error statistics,
//! both of which are preserved.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::clock::{ClusterClocks, NodeClock};

/// Tuning knobs of the synchronization procedure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hca3Config {
    /// Ping-pongs per parent/child link per pass.
    pub exchanges: usize,
    /// One-way link latency (seconds) of the sync network.
    pub link_latency: f64,
    /// Relative jitter of each one-way delay (fraction of latency, one-sided).
    pub jitter_frac: f64,
    /// Settling time between the two passes of the drift regression
    /// (seconds). Longer windows estimate drift better.
    pub drift_window: f64,
}

impl Default for Hca3Config {
    fn default() -> Self {
        Hca3Config { exchanges: 20, link_latency: 1.5e-6, jitter_frac: 0.1, drift_window: 1.0 }
    }
}

/// A rank's calibrated view of its node clock: estimated linear map from
/// local readings to global time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyncedClock {
    /// Estimated offset of the local clock at global 0.
    pub est_offset: f64,
    /// Estimated drift of the local clock.
    pub est_drift: f64,
}

impl SyncedClock {
    /// A perfect calibration (used for ideal clocks).
    pub const PERFECT: SyncedClock = SyncedClock { est_offset: 0.0, est_drift: 0.0 };

    /// Estimated global time for a local reading.
    #[inline]
    pub fn global_of(&self, local: f64) -> f64 {
        (local - self.est_offset) / (1.0 + self.est_drift)
    }

    /// Local reading this calibration expects at global time `g` (used to
    /// spin until a harmonized start).
    #[inline]
    pub fn local_of(&self, g: f64) -> f64 {
        g * (1.0 + self.est_drift) + self.est_offset
    }

    /// Signed error of the estimated global clock at true global time `g`,
    /// given the node's true clock: `ĝ(local(g)) − g`.
    pub fn error_at(&self, truth: &NodeClock, g: f64) -> f64 {
        self.global_of(truth.local_of(g)) - g
    }
}

/// Synchronize using a *single-pass, offset-only* estimator (no drift
/// regression) — the HCA/HCA2 baseline. Exists for the ablation comparison:
/// without the drift term, the residual error grows linearly with the time
/// since synchronization, which is why HCA3 regresses drift.
pub fn sync_cluster_offset_only(clocks: &ClusterClocks, cfg: &Hca3Config, seed: u64) -> Vec<SyncedClock> {
    let one_pass = Hca3Config { drift_window: 0.0, ..*cfg };
    let mut est = sync_cluster(clocks, &one_pass, seed);
    for e in &mut est {
        e.est_drift = 0.0;
    }
    est
}

/// Synchronize all node clocks of a cluster against node 0.
///
/// Returns one [`SyncedClock`] per node (node 0 is perfect by construction).
pub fn sync_cluster(clocks: &ClusterClocks, cfg: &Hca3Config, seed: u64) -> Vec<SyncedClock> {
    let n = clocks.len();
    let mut est = vec![SyncedClock::PERFECT; n];
    if n <= 1 {
        return est;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4843_4133); // "HCA3"
    // Binomial hierarchy: child c's parent clears the lowest set bit of c.
    // Rounds proceed parent-before-child, i.e. in increasing popcount order;
    // processing children in numeric order suffices because parent < child.
    for c in 1..n {
        let parent = c & (c - 1);
        // Relative estimate of child vs parent from two passes.
        let (off_rel, drift_rel) = sync_link(&clocks.nodes[parent], &clocks.nodes[c], cfg, &mut rng);
        // Compose with the parent's calibration: the parent's estimated
        // global clock acts as the child's reference.
        let par = est[parent];
        // Child local ≈ (parent local)·(1+drift_rel) + off_rel, and parent
        // local ≈ global·(1+par_drift) + par_offset ⇒ compose linear maps.
        let drift = (1.0 + par.est_drift) * (1.0 + drift_rel) - 1.0;
        let offset = off_rel + par.est_offset * (1.0 + drift_rel);
        est[c] = SyncedClock { est_offset: offset, est_drift: drift };
    }
    est
}

/// Estimate the child clock relative to the parent clock from two min-RTT
/// ping-pong passes separated by `drift_window`.
///
/// Returns `(offset_rel, drift_rel)` such that
/// `child_local ≈ parent_local·(1 + drift_rel) + offset_rel`.
fn sync_link(parent: &NodeClock, child: &NodeClock, cfg: &Hca3Config, rng: &mut ChaCha8Rng) -> (f64, f64) {
    let pass = |t_start: f64, rng: &mut ChaCha8Rng| -> (f64, f64) {
        // Returns (offset estimate at parent-local midpoint, parent-local midpoint).
        let mut best_rtt = f64::INFINITY;
        let mut best = (0.0, 0.0);
        let mut g = t_start;
        for _ in 0..cfg.exchanges {
            let d1 = cfg.link_latency * (1.0 + cfg.jitter_frac * rng.gen::<f64>());
            let d2 = cfg.link_latency * (1.0 + cfg.jitter_frac * rng.gen::<f64>());
            // NTP exchange: parent sends at g, child bounces, parent
            // receives at g + d1 + d2.
            let t1 = parent.local_of(g);
            let t2 = child.local_of(g + d1);
            let t3 = t2; // immediate bounce
            let t4 = parent.local_of(g + d1 + d2);
            let rtt = t4 - t1;
            if rtt < best_rtt {
                best_rtt = rtt;
                // Child-minus-parent offset estimate (NTP formula).
                let theta = ((t2 - t1) + (t3 - t4)) / 2.0;
                best = (theta, (t1 + t4) / 2.0);
            }
            g += d1 + d2 + 10e-6; // small inter-exchange gap
        }
        (best.0, best.1)
    };
    let (o1, m1) = pass(0.0, rng);
    let (o2, m2) = pass(cfg.drift_window, rng);
    let drift_rel = if m2 > m1 { (o2 - o1) / (m2 - m1) } else { 0.0 };
    // Offset at parent-local 0: o1 measured at parent-local m1.
    let offset_rel = o1 - drift_rel * m1;
    (offset_rel, drift_rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residuals(n: usize, seed: u64, cfg: &Hca3Config, at: f64) -> Vec<f64> {
        let clocks = ClusterClocks::realistic(n, seed);
        let est = sync_cluster(&clocks, cfg, seed);
        (0..n).map(|i| est[i].error_at(&clocks.nodes[i], at)).collect()
    }

    #[test]
    fn sub_microsecond_accuracy_like_the_paper_claims() {
        // §II-B: "The global clock's accuracy is less than one microsecond."
        let cfg = Hca3Config::default();
        for seed in [1, 2, 3] {
            for &n in &[4usize, 16, 36] {
                let errs = residuals(n, seed, &cfg, 2.0);
                let worst = errs.iter().fold(0.0f64, |a, e| a.max(e.abs()));
                assert!(worst < 1e-6, "n={n} seed={seed}: worst residual {worst:.2e}");
            }
        }
    }

    #[test]
    fn unsynchronized_clocks_would_be_hopeless() {
        // Without sync, clock disagreement is orders of magnitude above the
        // microbenchmark scale — motivating the whole apparatus.
        let clocks = ClusterClocks::realistic(16, 5);
        assert!(clocks.max_disagreement(0.0) > 50e-6);
    }

    #[test]
    fn drift_regression_keeps_error_bounded_over_time() {
        let cfg = Hca3Config::default();
        let errs_late = residuals(16, 9, &cfg, 60.0);
        let worst = errs_late.iter().fold(0.0f64, |a, e| a.max(e.abs()));
        // One minute after sync, still well under 5 µs thanks to the drift
        // estimate (raw drift alone would accumulate up to 300 µs).
        assert!(worst < 5e-6, "worst residual after 60 s: {worst:.2e}");
    }

    #[test]
    fn more_exchanges_do_not_hurt() {
        let few = Hca3Config { exchanges: 3, ..Default::default() };
        let many = Hca3Config { exchanges: 50, ..Default::default() };
        let worst = |cfg: &Hca3Config| {
            (0..5)
                .map(|s| residuals(16, 100 + s, cfg, 2.0).iter().fold(0.0f64, |a, e| a.max(e.abs())))
                .sum::<f64>()
        };
        assert!(worst(&many) <= worst(&few) * 1.5);
    }

    #[test]
    fn drift_regression_beats_offset_only_over_time() {
        // The ablation HCA3 exists for: offset-only calibration degrades
        // linearly with elapsed time; the drift regression does not.
        let clocks = ClusterClocks::realistic(16, 21);
        let cfg = Hca3Config::default();
        let full = sync_cluster(&clocks, &cfg, 21);
        let naive = sync_cluster_offset_only(&clocks, &cfg, 21);
        let worst = |est: &[SyncedClock], t: f64| {
            (0..16).map(|i| est[i].error_at(&clocks.nodes[i], t).abs()).fold(0.0f64, f64::max)
        };
        // Shortly after sync both are fine; a minute later only HCA3 is.
        assert!(worst(&naive, 60.0) > 10.0 * worst(&full, 60.0),
            "offset-only {:.2e} vs drift-regressed {:.2e}",
            worst(&naive, 60.0), worst(&full, 60.0));
    }

    #[test]
    fn reference_node_is_exact() {
        let clocks = ClusterClocks::realistic(8, 11);
        let est = sync_cluster(&clocks, &Hca3Config::default(), 11);
        assert_eq!(est[0].error_at(&clocks.nodes[0], 5.0), 0.0);
    }

    #[test]
    fn single_node_trivial() {
        let clocks = ClusterClocks::ideal(1);
        let est = sync_cluster(&clocks, &Hca3Config::default(), 0);
        assert_eq!(est.len(), 1);
    }

    #[test]
    fn synced_clock_maps_invert() {
        let sc = SyncedClock { est_offset: 2e-4, est_drift: 3e-6 };
        for g in [0.0, 1.5, 77.0] {
            assert!((sc.global_of(sc.local_of(g)) - g).abs() < 1e-12);
        }
    }
}
