//! # pap-bench — experiment drivers
//!
//! One driver per table/figure of the paper; each `src/bin/figN.rs` binary
//! is a thin wrapper that parses a [`Scale`] and prints the driver's output.
//! Drivers are ordinary library functions so the integration test suite can
//! execute them at reduced scale.
//!
//! Scale defaults are sized for a single-core CI-class machine
//! (256 ranks); pass `--full` for the paper's 32×32 = 1024 ranks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

pub use figures::*;

/// Experiment scale knobs, parsed from CLI args.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// MPI ranks (paper: 1024 = 32 nodes × 32 cores).
    pub ranks: usize,
    /// Repetitions for noisy (real-machine) measurements.
    pub nrep: usize,
    /// Reduced size/pattern grids for smoke runs.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { ranks: 256, nrep: 3, quick: false, seed: 0xCAFE }
    }
}

impl Scale {
    /// Parse `--ranks N`, `--nrep N`, `--seed N`, `--quick`, `--full` from
    /// an argument list (unknown arguments are ignored so binaries can add
    /// their own).
    pub fn from_args(args: &[String]) -> Scale {
        let mut s = Scale::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--ranks" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        s.ranks = v;
                    }
                }
                "--nrep" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        s.nrep = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        s.seed = v;
                    }
                }
                "--quick" => s.quick = true,
                "--full" => {
                    s.ranks = 1024;
                    s.quick = false;
                }
                _ => {}
            }
        }
        s
    }

    /// A tiny scale for integration tests.
    pub fn tiny() -> Scale {
        Scale { ranks: 16, nrep: 2, quick: true, seed: 7 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let s = Scale::from_args(&args(&["--ranks", "64", "--nrep", "5", "--quick", "--seed", "9"]));
        assert_eq!(s.ranks, 64);
        assert_eq!(s.nrep, 5);
        assert!(s.quick);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn full_implies_1024() {
        let s = Scale::from_args(&args(&["--full"]));
        assert_eq!(s.ranks, 1024);
    }

    #[test]
    fn ignores_unknown() {
        let s = Scale::from_args(&args(&["--whatever", "--ranks", "32"]));
        assert_eq!(s.ranks, 32);
    }
}
