//! One driver per table/figure of the paper. Each returns the rendered
//! text; the `src/bin/*` wrappers print it.

use pap_apps::{run_ft, FtConfig};
use pap_arrival::{generate, Shape};
use pap_clocksync::{sync_cluster, ClusterClocks, Hca3Config};
use pap_collectives::registry::{algorithm, experiment_ids, ALGORITHMS};
use pap_collectives::{CollSpec, CollectiveKind};
use pap_core::report::{render_normalized_table, render_robustness_table, render_runtime_table};
use pap_core::{predict_app_runtime, select, BenchMatrix, SelectionPolicy};
use pap_microbench::{measure, sweep, BenchConfig, SkewPolicy};
use pap_sim::{MachineId, Platform};
use pap_tracer::{synced_observer, CollectiveTrace, TracerConfig};

use crate::Scale;

/// Table I: characteristics of the modelled parallel machines.
pub fn table1() -> String {
    let mut out = String::from(
        "Table I — machine presets (analogues of the paper's Table I)\n\
         Machine      Nodes  Cores/Node  Inter-BW[GB/s]  Inter-Lat[us]  Eager[B]  Noise\n",
    );
    for id in MachineId::ALL {
        let p = Platform::preset(id, 1);
        out.push_str(&format!(
            "{:<12} {:>5}  {:>10}  {:>14.1}  {:>13.2}  {:>8}  {:?}\n",
            p.machine.name(),
            p.nodes,
            p.cores_per_node,
            p.inter.bandwidth / 1e9,
            p.inter.latency * 1e6,
            p.eager_threshold,
            p.default_noise,
        ));
    }
    out
}

/// Table II: algorithm IDs, names and SMPI aliases.
pub fn table2() -> String {
    let mut out = String::from("Table II — algorithm IDs and names (Open MPI 4.1.x numbering)\n");
    let mut last_kind = None;
    for a in ALGORITHMS {
        if last_kind != Some(a.kind) {
            out.push_str(&format!("{}\n", a.kind));
            last_kind = Some(a.kind);
        }
        out.push_str(&format!(
            "  {} {} ({}){}{}\n",
            a.id,
            a.name,
            a.abbrev,
            a.smpi_alias.map(|s| format!("  smpi:{s}")).unwrap_or_default(),
            if a.in_paper_experiments { "" } else { "  [not in paper experiments]" },
        ));
    }
    out
}

/// Platform + FT proxy config for one machine at a given scale. Seeds vary
/// by machine so each machine exhibits its own arrival pattern.
fn ft_setup(machine: MachineId, scale: Scale) -> (Platform, FtConfig) {
    let platform = Platform::preset(machine, scale.ranks);
    let mut cfg = FtConfig::class_d_like(scale.ranks);
    cfg.iterations = if scale.quick { 3 } else { 6 };
    cfg.seed = scale.seed ^ (machine.seed_tag() + 1).wrapping_mul(0x9E37_79B9);
    (platform, cfg)
}

/// Fig. 1: average per-process delay across all FT Alltoall calls on the
/// Galileo100 analogue, observed through HCA3-synchronized clocks.
pub fn fig1(scale: Scale) -> String {
    let (platform, cfg) = ft_setup(MachineId::Galileo100, scale);
    let (_, out) = run_ft(&platform, &cfg).expect("ft run");

    // Timestamps are read through calibrated (imperfect) clocks, as the
    // paper's tracing library does.
    let clocks = ClusterClocks::realistic(platform.occupied_nodes(), scale.seed ^ 0xC10C);
    let calib = sync_cluster(&clocks, &Hca3Config::default(), scale.seed);
    let observer = synced_observer(&clocks, &calib, |r| platform.node_of(r));
    let tr = CollectiveTrace::from_outcome(
        &out,
        platform.ranks,
        CollectiveKind::Alltoall.label_kind(),
        &TracerConfig::default(),
        observer,
    );

    let avg = tr.avg_delays();
    let mp = tr.to_measured_pattern("ft_scenario");
    let (shape, sim) = mp.classify();
    let mut s = format!(
        "Fig. 1 — avg process delay across {} MPI_Alltoall calls in FT on {} with {} processes\n\
         max observed skew: {:.1} us; closest artificial shape: {} (cos {:.2})\n\
         rank, avg_delay_us\n",
        tr.len(),
        platform.machine,
        platform.ranks,
        tr.max_observed_skew() * 1e6,
        shape,
        sim,
    );
    for (r, d) in avg.iter().enumerate() {
        s.push_str(&format!("{r}, {:.3}\n", d * 1e6));
    }
    s
}

/// Fig. 2: an example arrival/exit pattern for 8 processes.
pub fn fig2() -> String {
    let p = 8;
    let platform = Platform::simcluster(p);
    let pat = generate(Shape::Random, p, 200e-6, 42);
    let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
    let cfg = BenchConfig::simulation();
    let stats = measure(&platform, &spec, &pat, &cfg).expect("measure");
    let mut s = format!(
        "Fig. 2 — example arrival pattern with {p} processes (random, max skew 200 us)\n\
         rank, arrival_delay_us\n"
    );
    for (r, d) in pat.delays.iter().enumerate() {
        s.push_str(&format!("{r}, {:.1}\n", d * 1e6));
    }
    s.push_str(&format!(
        "total delay d* = {:.1} us, last delay d^ = {:.1} us (d^ <= d*)\n",
        stats.mean_total() * 1e6,
        stats.mean_last() * 1e6
    ));
    s
}

/// Fig. 3: the eight artificial arrival-pattern shapes.
pub fn fig3() -> String {
    let p = 32;
    let mut s = format!("Fig. 3 — artificial process arrival patterns ({p} processes, unit max skew)\n");
    for shape in Shape::ARTIFICIAL {
        let pat = generate(shape, p, 1.0, 1);
        s.push_str(&format!("{:<14}", shape.name()));
        for d in &pat.delays {
            // 0..9 intensity per rank.
            let level = (d * 9.0).round() as u32;
            s.push_str(&level.to_string());
        }
        s.push('\n');
    }
    s.push_str("(each digit: delay of one rank, 0 = arrives first, 9 = max skew)\n");
    s
}

fn fig4_sizes(scale: Scale) -> Vec<u64> {
    if scale.quick {
        vec![8, 1024, 32 * 1024]
    } else {
        vec![2, 8, 128, 1024, 8192, 32 * 1024, 256 * 1024, 1 << 20]
    }
}

/// Fig. 4: simulation study — the best algorithm per (pattern × size) and
/// its d̂ relative to the algorithm a No-delay-based decision logic would
/// pick, on the noise-free SimCluster.
pub fn fig4(kind: CollectiveKind, scale: Scale) -> String {
    let platform = Platform::simcluster(scale.ranks);
    let cfg = BenchConfig::simulation().with_seed(scale.seed);
    // The paper's experiment set where defined; otherwise (e.g. `fig4
    // bcast`, which §III-C mentions as sensitive) all registered IDs.
    let mut algs = experiment_ids(kind);
    if algs.is_empty() {
        algs = pap_collectives::registry::algorithms(kind).iter().map(|a| a.id).collect();
    }
    let sizes = fig4_sizes(scale);
    let shapes = Shape::SUITE;

    let mut s = format!(
        "Fig. 4 ({kind}) — best algorithm under each arrival pattern, {} processes, skew 1.5·t̄ᵃ\n\
         cell: winning algorithm id, and its d̂ relative to the No-delay winner's d̂ under that pattern\n",
        scale.ranks
    );
    s.push_str("legend:");
    for &a in &algs {
        let info = algorithm(kind, a).expect("registered");
        s.push_str(&format!(" A{a}={}", info.smpi_alias.unwrap_or(info.abbrev)));
    }
    s.push('\n');

    // One independent sweep per size, fanned out; results come back in
    // size order so the rendering below is unchanged.
    let matrices: Vec<BenchMatrix> = pap_parallel::par_map(&sizes, |_, &size| {
        let sw = sweep(&platform, kind, &algs, &shapes, size, SkewPolicy::FactorOfAvg(1.5), &[], &cfg)
            .expect("sweep");
        eprintln!("fig4 {kind}: size {size} done");
        BenchMatrix::from_sweep(&sw)
    });

    s.push_str(&format!("{:<14}", "pattern"));
    for &size in &sizes {
        s.push_str(&format!("  {:>12}", human_size(size)));
    }
    s.push('\n');
    for shape in shapes {
        s.push_str(&format!("{:<14}", shape.name()));
        for m in &matrices {
            let nd_winner = m.best_in("no_delay").expect("no_delay row");
            let winner = m.best_in(shape.name()).expect("pattern row");
            let ratio = m.value(shape.name(), winner).unwrap() / m.value(shape.name(), nd_winner).unwrap();
            s.push_str(&format!("  A{winner} x{ratio:>8.2}"));
        }
        s.push('\n');
    }
    s
}

fn fig5_sizes(scale: Scale) -> Vec<u64> {
    if scale.quick {
        vec![8, 1024]
    } else {
        vec![8, 1024, 1 << 20]
    }
}

const FIG5_SHAPES: [Shape; 6] = [
    Shape::NoDelay,
    Shape::Ascending,
    Shape::Descending,
    Shape::Random,
    Shape::LastDelayed,
    Shape::FirstDelayed,
];

/// Fig. 5: measured runtimes on the Hydra analogue, algorithms × patterns,
/// with the within-5 % good set highlighted.
pub fn fig5(scale: Scale) -> String {
    let platform = Platform::hydra(scale.ranks);
    let cfg = BenchConfig::real_machine(scale.nrep).with_seed(scale.seed);
    let mut s = format!(
        "Fig. 5 — impact of arrival patterns on collective runtimes ({} with {} processes)\n",
        platform.machine, platform.ranks
    );
    // The (collective × size) sweeps are independent: fan out and render
    // each worker's table, then stitch in grid order.
    let grid = fig56_grid(scale);
    let tables = pap_parallel::par_map(&grid, |_, &(kind, size)| {
        let algs = experiment_ids(kind);
        let sw = sweep(&platform, kind, &algs, &FIG5_SHAPES, size, SkewPolicy::FactorOfAvg(1.0), &[], &cfg)
            .expect("sweep");
        eprintln!("fig5 {kind}: size {size} done");
        render_runtime_table(&BenchMatrix::from_sweep(&sw), 0.05)
    });
    for t in tables {
        s.push_str(&t);
        s.push('\n');
    }
    s
}

/// The (collective × size) grid shared by Figs. 5 and 6.
fn fig56_grid(scale: Scale) -> Vec<(CollectiveKind, u64)> {
    let mut grid = Vec::new();
    for kind in CollectiveKind::PAPER {
        for &size in &fig5_sizes(scale) {
            grid.push((kind, size));
        }
    }
    grid
}

/// Fig. 6: robustness — each algorithm gets a pattern scaled to its own
/// No-delay runtime; cells show d̂_pattern/d̂_no_delay − 1 with ±25 %
/// classes.
pub fn fig6(scale: Scale) -> String {
    let platform = Platform::hydra(scale.ranks);
    let cfg = BenchConfig::real_machine(scale.nrep).with_seed(scale.seed);
    let mut s = format!(
        "Fig. 6 — robustness of collective algorithms against arrival patterns ({}, {} processes)\n",
        platform.machine, platform.ranks
    );
    let grid = fig56_grid(scale);
    let tables = pap_parallel::par_map(&grid, |_, &(kind, size)| {
        let algs = experiment_ids(kind);
        let sw = sweep(&platform, kind, &algs, &FIG5_SHAPES, size, SkewPolicy::PerAlgorithm, &[], &cfg)
            .expect("sweep");
        eprintln!("fig6 {kind}: size {size} done");
        render_robustness_table(&BenchMatrix::from_sweep(&sw), 0.25).expect("no_delay row present")
    });
    for t in tables {
        s.push_str(&t);
        s.push('\n');
    }
    s
}

/// Per-machine data shared by Figs. 7–9.
pub struct MachineStudy {
    /// Which machine.
    pub machine: MachineId,
    /// Actual FT runtimes per Alltoall algorithm `(alg, seconds)`.
    pub ft_runtimes: Vec<(u8, f64)>,
    /// Critical-path compute time of the FT run (mpisee-style).
    pub ft_compute: f64,
    /// FT Alltoall call count.
    pub ft_calls: usize,
    /// The (algorithms × patterns incl. FT-Scenario) benchmark matrix at
    /// the FT message size.
    pub matrix: BenchMatrix,
    /// Max skew observed while tracing (sizes the artificial patterns).
    pub traced_skew: f64,
}

/// Run the full §V study for one machine: trace FT, extract the
/// FT-Scenario, benchmark all Alltoall algorithms under the pattern suite
/// + FT-Scenario, and measure actual FT runtimes per algorithm.
pub fn machine_study(machine: MachineId, scale: Scale) -> MachineStudy {
    let (platform, base_cfg) = ft_setup(machine, scale);
    let algs = experiment_ids(CollectiveKind::Alltoall);

    // 1. Trace FT (run with the library-default algorithm, pairwise).
    let (trace_rep, trace_out) = run_ft(&platform, &base_cfg).expect("ft trace run");
    let tr = CollectiveTrace::from_outcome(
        &trace_out,
        platform.ranks,
        CollectiveKind::Alltoall.label_kind(),
        &TracerConfig::default(),
        pap_tracer::ideal_observer,
    );
    let mp = tr.to_measured_pattern("ft_scenario");
    let ft_pattern = mp.to_pattern();
    let traced_skew = tr.max_observed_skew();
    eprintln!("{machine}: traced FT ({} calls, max skew {:.1} us)", tr.len(), traced_skew * 1e6);

    // 2. Benchmark matrix at the FT message size: artificial patterns sized
    //    by the traced skew, plus the FT-Scenario itself.
    let cfg = BenchConfig::real_machine(scale.nrep).with_seed(scale.seed ^ machine.seed_tag());
    let sw = sweep(
        &platform,
        CollectiveKind::Alltoall,
        &algs,
        &Shape::SUITE,
        base_cfg.bytes_per_pair,
        SkewPolicy::Fixed(traced_skew),
        &[ft_pattern],
        &cfg,
    )
    .expect("sweep");
    let matrix = BenchMatrix::from_sweep(&sw);
    eprintln!("{machine}: microbenchmark matrix done");

    // 3. Actual FT runtime per algorithm.
    let mut ft_runtimes = Vec::new();
    for &alg in &algs {
        let mut sum = 0.0;
        let runs = scale.nrep.clamp(1, 3);
        for rep in 0..runs {
            let cfg_a = base_cfg.clone().with_alltoall(alg).with_seed(base_cfg.seed + rep as u64);
            sum += run_ft(&platform, &cfg_a).expect("ft run").0.total_runtime;
        }
        ft_runtimes.push((alg, sum / runs as f64));
        eprintln!("{machine}: FT with A{alg} done");
    }

    MachineStudy {
        machine,
        ft_runtimes,
        ft_compute: trace_rep.compute_time,
        ft_calls: base_cfg.iterations,
        matrix,
        traced_skew,
    }
}

fn render_fig7_section(study: &MachineStudy) -> String {
    let mut s = format!("\n{} :\n  alg   FT_runtime[s]   ubench_no_delay[ms]\n", study.machine);
    for &(alg, rt) in &study.ft_runtimes {
        let ub = study.matrix.value("no_delay", alg).expect("cell");
        s.push_str(&format!("  A{alg}   {rt:>12.3}   {:>18.3}\n", ub * 1e3));
    }
    let ft_best = study.ft_runtimes.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
    let ub_best = study.matrix.best_in("no_delay").unwrap();
    s.push_str(&format!(
        "  fastest in FT: A{ft_best}; fastest in No-delay microbenchmark: A{ub_best}{}\n",
        if ft_best == ub_best { " (agree)" } else { " (DISAGREE — the paper's point)" }
    ));
    s
}

fn render_fig8_section(study: &MachineStudy) -> String {
    let mut s = format!(
        "\n{} (artificial patterns sized to traced max skew {:.1} us):\n",
        study.machine,
        study.traced_skew * 1e6
    );
    s.push_str(&render_normalized_table(&study.matrix, &["ft_scenario"]));
    let robust = select(&study.matrix, &SelectionPolicy::RobustAverage { exclude: vec!["ft_scenario".into()] })
        .expect("selection");
    let oracle =
        select(&study.matrix, &SelectionPolicy::BestUnderPattern("ft_scenario".into())).expect("selection");
    let ft_best = study.ft_runtimes.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
    s.push_str(&format!(
        "robust choice: A{robust}; FT-Scenario oracle: A{oracle}; actually fastest in FT: A{ft_best}\n"
    ));
    s
}

/// Fig. 7: FT runtime vs. the No-delay Alltoall micro-benchmark, per
/// algorithm, on the three machines — showing the mismatch.
pub fn fig7(scale: Scale) -> String {
    let mut s = format!(
        "Fig. 7 — FT runtime vs No-delay MPI_Alltoall microbenchmark ({} processes, {} B per pair)\n",
        scale.ranks,
        32 * 1024
    );
    let sections =
        pap_parallel::par_map(&MachineId::REAL, |_, &m| render_fig7_section(&machine_study(m, scale)));
    for sec in sections {
        s.push_str(&sec);
    }
    s
}

/// Fig. 8: normalized Alltoall runtimes under artificial patterns and the
/// traced FT-Scenario, with the per-algorithm `Avg` row.
pub fn fig8(scale: Scale) -> String {
    let mut s = format!(
        "Fig. 8 — normalized Alltoall runtimes with arrival patterns incl. FT-Scenario ({} processes)\n",
        scale.ranks
    );
    let sections =
        pap_parallel::par_map(&MachineId::REAL, |_, &m| render_fig8_section(&machine_study(m, scale)));
    for sec in sections {
        s.push_str(&sec);
    }
    s
}

/// Figs. 7–9 in one pass: the per-machine study (trace + matrix + FT runs)
/// is expensive, so this driver computes it once per machine and renders
/// all three figures.
pub fn figs789(scale: Scale) -> String {
    // The three machine studies (trace + matrix + FT runs) are independent;
    // fan them out, keeping machine order.
    let studies: Vec<MachineStudy> =
        pap_parallel::par_map(&MachineId::REAL, |_, &m| machine_study(m, scale));
    let mut s = format!(
        "Fig. 7 — FT runtime vs No-delay MPI_Alltoall microbenchmark ({} processes, {} B per pair)\n",
        scale.ranks,
        32 * 1024
    );
    for st in &studies {
        s.push_str(&render_fig7_section(st));
    }
    s.push_str(&format!(
        "\nFig. 8 — normalized Alltoall runtimes with arrival patterns incl. FT-Scenario ({} processes)\n",
        scale.ranks
    ));
    for st in &studies {
        s.push_str(&render_fig8_section(st));
    }
    s.push('\n');
    s.push_str(&render_fig9(&studies[0], scale));
    s
}

/// Fig. 9: actual FT runtime vs. projections from the No-delay and the
/// pattern-averaged micro-benchmark times (Hydra).
pub fn fig9(scale: Scale) -> String {
    let study = machine_study(MachineId::Hydra, scale);
    render_fig9(&study, scale)
}

fn render_fig9(study: &MachineStudy, scale: Scale) -> String {
    let mut s = format!(
        "Fig. 9 — actual vs projected FT runtime on {} ({} processes)\n\
         alg   actual[s]   proj_no_delay[s]  err%   proj_avg[s]  err%\n",
        study.machine, scale.ranks
    );
    // Absolute per-pattern average (excluding the held-out FT-Scenario).
    let patterns: Vec<&str> =
        study.matrix.patterns.iter().map(String::as_str).filter(|p| *p != "ft_scenario").collect();
    for &(alg, actual) in &study.ft_runtimes {
        let nd = study.matrix.value("no_delay", alg).expect("cell");
        let avg = patterns.iter().map(|p| study.matrix.value(p, alg).unwrap()).sum::<f64>()
            / patterns.len() as f64;
        let pred = predict_app_runtime(actual, study.ft_compute, study.ft_calls, nd, avg);
        s.push_str(&format!(
            "A{alg}   {:>9.3}   {:>16.3}  {:>4.0}   {:>11.3}  {:>4.0}\n",
            pred.actual,
            pred.predicted_no_delay,
            pred.error_no_delay() * 100.0,
            pred.predicted_avg,
            pred.error_avg() * 100.0,
        ));
    }
    s
}

fn human_size(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1024 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Extension experiment (beyond the paper): Allgather sensitivity to
/// arrival patterns — the collective family the paper's related work
/// (Qian & Afsahi; Proficz) studies. Rendered like Fig. 5.
pub fn ext_allgather(scale: Scale) -> String {
    let platform = Platform::hydra(scale.ranks);
    let cfg = BenchConfig::real_machine(scale.nrep).with_seed(scale.seed);
    let algs: Vec<u8> = pap_collectives::registry::algorithms(CollectiveKind::Allgather)
        .iter()
        .map(|a| a.id)
        .collect();
    let mut s = format!(
        "Extension — MPI_Allgather under arrival patterns ({}, {} processes)\n",
        platform.machine, platform.ranks
    );
    for &size in &fig5_sizes(scale) {
        let sw = sweep(
            &platform,
            CollectiveKind::Allgather,
            &algs,
            &FIG5_SHAPES,
            size,
            SkewPolicy::FactorOfAvg(1.0),
            &[],
            &cfg,
        )
        .expect("sweep");
        let m = BenchMatrix::from_sweep(&sw);
        s.push_str(&render_runtime_table(&m, 0.05));
        let robust = select(&m, &SelectionPolicy::robust()).expect("selection");
        let nd = select(&m, &SelectionPolicy::NoDelayFastest).expect("selection");
        s.push_str(&format!("robust pick: A{robust}; No-delay pick: A{nd}\n\n"));
        eprintln!("ext_allgather: size {size} done");
    }
    s
}


/// Extension experiment: the §III-B skew-factor ablation. The paper
/// generated patterns with skews {0.5, 1.0, 1.5}·t̄ᵃ and reports only the
/// 1.5 factor "as it had the strongest influence"; this driver quantifies
/// that choice — for each factor, how many (pattern × size) cells elect a
/// different algorithm than No-delay, and the median relative gain.
pub fn ext_skew_factor(scale: Scale) -> String {
    let platform = Platform::simcluster(scale.ranks);
    let cfg = BenchConfig::simulation().with_seed(scale.seed);
    let kind = CollectiveKind::Reduce;
    let algs = experiment_ids(kind);
    let sizes: &[u64] = if scale.quick { &[1024] } else { &[8, 1024, 32 * 1024] };
    let mut s = format!(
        "Extension — skew-factor ablation (§III-B), {} on SimCluster, {} processes\n\
         factor  cells_shifted/total  median_gain_of_shifted\n",
        kind, scale.ranks
    );
    for factor in [0.5, 1.0, 1.5] {
        let mut shifted = 0usize;
        let mut total = 0usize;
        let mut gains: Vec<f64> = Vec::new();
        for &size in sizes {
            let sw = sweep(&platform, kind, &algs, &Shape::SUITE, size, SkewPolicy::FactorOfAvg(factor), &[], &cfg)
                .expect("sweep");
            let m = BenchMatrix::from_sweep(&sw);
            let nd = m.best_in("no_delay").expect("no_delay");
            for shape in Shape::ARTIFICIAL {
                total += 1;
                let w = m.best_in(shape.name()).expect("row");
                if w != nd {
                    shifted += 1;
                    gains.push(m.value(shape.name(), nd).unwrap() / m.value(shape.name(), w).unwrap());
                }
            }
        }
        gains.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = if gains.is_empty() { 1.0 } else { gains[gains.len() / 2] };
        s.push_str(&format!("{factor:>6.1}  {shifted:>7}/{total:<11}  {median:>8.2}x\n"));
        eprintln!("ext_skew_factor: factor {factor} done");
    }
    s.push_str("(larger factors shift more cells with larger gains — why the paper reports 1.5)\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("Hydra") && t1.contains("Discoverer"));
        let t2 = table2();
        assert!(t2.contains("Modified Bruck") && t2.contains("In-order Binary"));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(8), "8B");
        assert_eq!(human_size(2048), "2KiB");
        assert_eq!(human_size(1 << 20), "1MiB");
    }

    #[test]
    fn fig2_and_fig3_render() {
        let f2 = fig2();
        assert!(f2.contains("last delay"));
        let f3 = fig3();
        assert!(f3.contains("ascending"));
        assert_eq!(f3.lines().count(), 2 + 8);
    }
}
