//! Regenerates Fig. 2: example arrival pattern with 8 processes.
fn main() {
    print!("{}", pap_bench::fig2());
}
