//! Regenerates Table II (algorithm IDs and names).
fn main() {
    print!("{}", pap_bench::table2());
}
