//! Regenerates Fig. 4 (simulation study). Optional first arg:
//! reduce|allreduce|alltoall (default: all three).
use pap_bench::Scale;
use pap_collectives::CollectiveKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let kinds: Vec<CollectiveKind> = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .collect();
    let kinds = if kinds.is_empty() { CollectiveKind::PAPER.to_vec() } else { kinds };
    for kind in kinds {
        print!("{}", pap_bench::fig4(kind, scale));
        println!();
    }
}
