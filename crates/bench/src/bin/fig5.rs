//! Regenerates Fig. 5 of the paper.
use pap_bench::Scale;
fn main() {
    let scale = Scale::from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    print!("{}", pap_bench::fig5(scale));
}
