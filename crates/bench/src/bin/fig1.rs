//! Regenerates Fig. 1: FT Alltoall arrival-delay profile on Galileo100.
use pap_bench::Scale;
fn main() {
    let scale = Scale::from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    print!("{}", pap_bench::fig1(scale));
}
