//! Regenerates Table I (machine characteristics).
fn main() {
    print!("{}", pap_bench::table1());
}
