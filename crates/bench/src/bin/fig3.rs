//! Regenerates Fig. 3: the eight artificial arrival-pattern shapes.
fn main() {
    print!("{}", pap_bench::fig3());
}
