//! Regenerates Figs. 7, 8, and 9 in one pass (the per-machine study is
//! shared, saving ~3x over running the individual binaries).
use pap_bench::Scale;
fn main() {
    let scale = Scale::from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    print!("{}", pap_bench::figs789(scale));
}
