//! Extension experiment: Allgather arrival-pattern sensitivity study.
use pap_bench::Scale;
fn main() {
    let scale = Scale::from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    print!("{}", pap_bench::ext_allgather(scale));
}
