//! Engine scalability probe: one collective run at p ∈ {1K, 10K, 100K},
//! reporting wall time, event throughput and peak memory. Backs
//! `BENCH_engine_scale.json` and the CI rank-scaling summary table.
//!
//! Usage: `scale_table [max_ranks] [--json]`
//!   `max_ranks` caps the grid (default 102400; CI smoke passes 1024).

use std::time::Instant;

use pap_collectives::{build, CollSpec, CollectiveKind};
use pap_sim::{run_ref, Job, Platform, RankProgram, SimConfig};

/// SimCluster scaled out to `ranks` (presets grow nodes synthetically).
fn scaled_simcluster(ranks: usize) -> Platform {
    Platform::simcluster(ranks)
}

/// Peak resident set size of this process in MiB (Linux VmHWM).
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse::<f64>().ok())
            })
        })
        .map_or(f64::NAN, |kib| kib / 1024.0)
}

struct Row {
    ranks: usize,
    workload: &'static str,
    wall_s: f64,
    events: u64,
    messages: u64,
    events_per_s: f64,
    peak_rss_mib: f64,
}

fn run_cell(platform: &Platform, spec: &CollSpec, workload: &'static str, reps: usize) -> Row {
    let p = platform.ranks;
    let built = build(spec, p).expect("build collective");
    let programs: Vec<RankProgram> = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
    let job = Job::new(programs);
    let cfg = SimConfig::default();
    // Warm-up run (page in allocator arenas), then timed reps.
    let out = run_ref(platform, &job, &cfg).expect("run");
    let start = Instant::now();
    for _ in 0..reps {
        run_ref(platform, &job, &cfg).expect("run");
    }
    let wall_s = start.elapsed().as_secs_f64() / reps as f64;
    Row {
        ranks: p,
        workload,
        wall_s,
        events: out.events,
        messages: out.messages,
        events_per_s: out.events as f64 / wall_s,
        peak_rss_mib: peak_rss_mib(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let max_ranks: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(102_400);

    let mut rows = Vec::new();
    for &p in &[1_024usize, 10_240, 102_400] {
        if p > max_ranks {
            continue;
        }
        let platform = scaled_simcluster(p);
        let reps = if p >= 100_000 { 1 } else { std::env::var("PAP_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3) };
        rows.push(run_cell(
            &platform,
            &CollSpec::new(CollectiveKind::Allreduce, 3, 8 * 1024),
            "allreduce_rdb_8KiB",
            reps,
        ));
        rows.push(run_cell(
            &platform,
            &CollSpec::new(CollectiveKind::Bcast, 5, 1024),
            "bcast_binomial_1KiB",
            reps,
        ));
    }

    if json {
        println!("[");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            println!(
                "  {{\"ranks\": {}, \"workload\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \"messages\": {}, \"events_per_s\": {:.0}, \"peak_rss_mib\": {:.1}}}{}",
                r.ranks, r.workload, r.wall_s, r.events, r.messages, r.events_per_s, r.peak_rss_mib, comma
            );
        }
        println!("]");
    } else {
        println!("| ranks | workload | wall (s) | events | messages | events/s | peak RSS (MiB) |");
        println!("|---|---|---|---|---|---|---|");
        for r in &rows {
            println!(
                "| {} | {} | {:.4} | {} | {} | {:.2e} | {:.1} |",
                r.ranks, r.workload, r.wall_s, r.events, r.messages, r.events_per_s, r.peak_rss_mib
            );
        }
    }
}
