//! Criterion benches of the simulator hot paths: event throughput,
//! point-to-point pipelines, matching under load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pap_sim::{run, Job, Op, Platform, RankProgram, SimConfig};

/// Ping-pong chain: 2 ranks, `n` round trips.
fn ping_pong_job(n: usize, bytes: u64) -> Job {
    let mut a = Vec::with_capacity(2 * n);
    let mut b = Vec::with_capacity(2 * n);
    for i in 0..n as u64 {
        a.push(Op::send(1, 2 * i, bytes, 0));
        a.push(Op::recv(1, 2 * i + 1, 0));
        b.push(Op::recv(0, 2 * i, 0));
        b.push(Op::send(0, 2 * i + 1, bytes, 0));
    }
    Job::new(vec![RankProgram::from_ops(a), RankProgram::from_ops(b)])
}

fn bench_ping_pong(c: &mut Criterion) {
    let platform = Platform::simcluster(2);
    let mut g = c.benchmark_group("engine/ping_pong");
    for &n in &[1_000usize, 10_000] {
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| run(&platform, ping_pong_job(n, 64), &SimConfig::default()).unwrap());
        });
    }
    g.finish();
}

/// Incast: p-1 senders to rank 0 (stresses NIC serialization + matching).
fn incast_job(p: usize, bytes: u64) -> Job {
    let mut programs = vec![RankProgram::new(); p];
    let mut ops0 = Vec::new();
    for s in 1..p {
        ops0.push(Op::irecv(s, s as u64, 0, s - 1));
    }
    ops0.push(Op::waitall((0..p - 1).collect()));
    programs[0] = RankProgram::from_ops(ops0);
    for (s, prog) in programs.iter_mut().enumerate().skip(1) {
        *prog = RankProgram::from_ops(vec![Op::send(0, s as u64, bytes, 0)]);
    }
    Job::new(programs)
}

fn bench_incast(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/incast");
    for &p in &[64usize, 256] {
        let platform = Platform::simcluster(p);
        g.throughput(Throughput::Elements(p as u64 - 1));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bch, &p| {
            bch.iter(|| run(&platform, incast_job(p, 1024), &SimConfig::default()).unwrap());
        });
    }
    g.finish();
}

/// Rendezvous vs eager protocol overhead at the same message count.
fn bench_protocols(c: &mut Criterion) {
    let platform = Platform::simcluster(2);
    let mut g = c.benchmark_group("engine/protocol");
    for (name, bytes) in [("eager", 1024u64), ("rendezvous", 64 * 1024)] {
        g.bench_function(name, |bch| {
            bch.iter(|| run(&platform, ping_pong_job(1_000, bytes), &SimConfig::default()).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ping_pong, bench_incast, bench_protocols);
criterion_main!(benches);
