//! Criterion benches: schedule generation and simulated execution per
//! collective algorithm (one group per Table II family — these are the
//! micro-kernels behind every figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pap_collectives::registry::experiment_ids;
use pap_collectives::{build, CollSpec, CollectiveKind};
use pap_sim::{run, Job, Platform, RankProgram, SimConfig};

fn bench_ids(kind: CollectiveKind) -> Vec<u8> {
    match kind {
        CollectiveKind::Allgather => {
            pap_collectives::registry::algorithms(kind).iter().map(|a| a.id).collect()
        }
        _ => experiment_ids(kind),
    }
}

fn run_collective(platform: &Platform, spec: &CollSpec) {
    let built = build(spec, platform.ranks).unwrap();
    let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
    run(platform, Job::new(programs), &SimConfig::default()).unwrap();
}

const BENCH_KINDS: [CollectiveKind; 4] = [
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Alltoall,
    CollectiveKind::Allgather,
];

fn bench_schedule_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_gen");
    let p = 256;
    for kind in BENCH_KINDS {
        for alg in bench_ids(kind) {
            let spec = CollSpec::new(kind, alg, 32 * 1024);
            g.bench_with_input(
                BenchmarkId::new(kind.name(), format!("A{alg}")),
                &spec,
                |bch, spec| bch.iter(|| build(spec, p).unwrap()),
            );
        }
    }
    g.finish();
}

fn bench_simulated_execution(c: &mut Criterion) {
    let p = 64;
    let platform = Platform::simcluster(p);
    for kind in BENCH_KINDS {
        let mut g = c.benchmark_group(format!("simulate/{}", kind.name()));
        g.sample_size(20);
        for alg in bench_ids(kind) {
            for bytes in [8u64, 32 * 1024] {
                let spec = CollSpec::new(kind, alg, bytes);
                g.bench_with_input(
                    BenchmarkId::new(format!("A{alg}"), bytes),
                    &spec,
                    |bch, spec| bch.iter(|| run_collective(&platform, spec)),
                );
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench_schedule_generation, bench_simulated_execution);
criterion_main!(benches);
