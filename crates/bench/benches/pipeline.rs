//! End-to-end pipeline benches: the full measurement loop (harmonize +
//! pattern + collective + stats) and the selection pipeline — the cost of
//! regenerating one figure cell.

use criterion::{criterion_group, criterion_main, Criterion};
use pap_arrival::{generate, Shape};
use pap_collectives::{CollSpec, CollectiveKind};
use pap_core::{select, BenchMatrix, SelectionPolicy};
use pap_microbench::{measure, sweep, BenchConfig, SkewPolicy};
use pap_sim::Platform;

fn bench_measure_cell(c: &mut Criterion) {
    let platform = Platform::hydra(64);
    let spec = CollSpec::new(CollectiveKind::Alltoall, 3, 1024);
    let pat = generate(Shape::Ascending, 64, 1e-4, 1);
    let cfg = BenchConfig::real_machine(3);
    c.bench_function("pipeline/measure_cell", |b| {
        b.iter(|| measure(&platform, &spec, &pat, &cfg).unwrap());
    });
}

fn bench_selection_pipeline(c: &mut Criterion) {
    let platform = Platform::simcluster(32);
    let cfg = BenchConfig::simulation();
    let shapes = [Shape::NoDelay, Shape::Ascending, Shape::LastDelayed, Shape::Random];
    c.bench_function("pipeline/sweep_and_select", |b| {
        b.iter(|| {
            let sw = sweep(
                &platform,
                CollectiveKind::Reduce,
                &[1, 5, 6],
                &shapes,
                1024,
                SkewPolicy::FactorOfAvg(1.5),
                &[],
                &cfg,
            )
            .unwrap();
            let m = BenchMatrix::from_sweep(&sw);
            select(&m, &SelectionPolicy::robust()).unwrap()
        });
    });
}

criterion_group!(benches, bench_measure_cell, bench_selection_pipeline);
criterion_main!(benches);
