//! End-to-end pipeline benches: the full measurement loop (harmonize +
//! pattern + collective + stats) and the selection pipeline — the cost of
//! regenerating one figure cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pap_arrival::{generate, Shape};
use pap_collectives::{CollSpec, CollectiveKind};
use pap_core::{select, BenchMatrix, SelectionPolicy};
use pap_microbench::{measure, sweep, BenchConfig, SkewPolicy};
use pap_sim::Platform;

fn bench_measure_cell(c: &mut Criterion) {
    let platform = Platform::hydra(64);
    let spec = CollSpec::new(CollectiveKind::Alltoall, 3, 1024);
    let pat = generate(Shape::Ascending, 64, 1e-4, 1);
    let cfg = BenchConfig::real_machine(3);
    c.bench_function("pipeline/measure_cell", |b| {
        b.iter(|| measure(&platform, &spec, &pat, &cfg).unwrap());
    });
}

fn bench_selection_pipeline(c: &mut Criterion) {
    let platform = Platform::simcluster(32);
    let cfg = BenchConfig::simulation();
    let shapes = [Shape::NoDelay, Shape::Ascending, Shape::LastDelayed, Shape::Random];
    c.bench_function("pipeline/sweep_and_select", |b| {
        b.iter(|| {
            let sw = sweep(
                &platform,
                CollectiveKind::Reduce,
                &[1, 5, 6],
                &shapes,
                1024,
                SkewPolicy::FactorOfAvg(1.5),
                &[],
                &cfg,
            )
            .unwrap();
            let m = BenchMatrix::from_sweep(&sw);
            select(&m, &SelectionPolicy::robust()).unwrap()
        });
    });
}

/// The PR's headline number: cells/second of a realistic sweep grid at one
/// worker thread vs all cores (the numbers land in BENCH_sweep.json).
fn bench_sweep_throughput(c: &mut Criterion) {
    let platform = Platform::hydra(32);
    let cfg = BenchConfig::real_machine(2);
    let algs = [1u8, 2, 3, 4];
    let shapes = Shape::SUITE;
    let cells = (algs.len() * shapes.len()) as u64;

    let before = pap_parallel::threads();
    let all = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize];
    if all > 1 {
        counts.push(all);
    }

    let mut g = c.benchmark_group("pipeline/sweep_throughput");
    g.throughput(Throughput::Elements(cells));
    for &threads in &counts {
        pap_parallel::set_threads(threads);
        g.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                sweep(
                    &platform,
                    CollectiveKind::Alltoall,
                    &algs,
                    &shapes,
                    1024,
                    SkewPolicy::FactorOfAvg(1.0),
                    &[],
                    &cfg,
                )
                .unwrap()
            });
        });
    }
    g.finish();
    pap_parallel::set_threads(before);
}

criterion_group!(benches, bench_measure_cell, bench_selection_pipeline, bench_sweep_throughput);
criterion_main!(benches);
