//! Observability overhead: what `pap-obs` instrumentation costs.
//!
//! Three questions, one bench each (the numbers land in BENCH_obs.json):
//!
//! * `obs/span_disabled` — the cost of a span call site when tracing is off.
//!   This is the price every instrumented hot path pays unconditionally, and
//!   the design target is "one relaxed atomic load": it must stay in the
//!   low single-digit nanoseconds.
//! * `obs/span_enabled` — the cost of an actually recorded span (two clock
//!   reads + a ring-buffer push), the price paid only under `--metrics` or
//!   `papctl profile`.
//! * `obs/sweep_throughput` — the end-to-end guardrail: the exact
//!   `pipeline/sweep_throughput` workload (hydra(32), Alltoall algs
//!   [1,2,3,4] × `Shape::SUITE`, real_machine(2)) with instrumentation
//!   disabled vs enabled. Disabled must stay within 2% of the
//!   BENCH_sweep.json numbers recorded before pap-obs existed.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pap_arrival::Shape;
use pap_collectives::CollectiveKind;
use pap_microbench::{sweep, BenchConfig, SkewPolicy};
use pap_sim::Platform;

fn bench_span_call_site(c: &mut Criterion) {
    pap_obs::set_enabled(false);
    c.bench_function("obs/span_disabled", |b| {
        b.iter(|| black_box(pap_obs::span("bench", "noop")));
    });

    pap_obs::set_enabled(true);
    c.bench_function("obs/span_enabled", |b| {
        b.iter(|| black_box(pap_obs::span("bench", "noop")));
    });
    pap_obs::set_enabled(false);
    // The enabled bench filled the thread's ring; leave it empty for
    // whatever runs next in this process.
    let _ = pap_obs::drain_spans();
}

/// The pipeline/sweep_throughput workload, instrumentation off vs on.
fn bench_sweep_with_and_without_obs(c: &mut Criterion) {
    let platform = Platform::hydra(32);
    let cfg = BenchConfig::real_machine(2);
    let algs = [1u8, 2, 3, 4];
    let shapes = Shape::SUITE;
    let cells = (algs.len() * shapes.len()) as u64;

    let mut g = c.benchmark_group("obs/sweep_throughput");
    g.throughput(Throughput::Elements(cells));
    for enabled in [false, true] {
        pap_obs::set_enabled(enabled);
        let label = if enabled { "enabled" } else { "disabled" };
        g.bench_function(BenchmarkId::new("spans", label), |b| {
            b.iter(|| {
                sweep(
                    &platform,
                    CollectiveKind::Alltoall,
                    &algs,
                    &shapes,
                    1024,
                    SkewPolicy::FactorOfAvg(1.0),
                    &[],
                    &cfg,
                )
                .unwrap()
            });
        });
        let _ = pap_obs::drain_spans();
    }
    g.finish();
    pap_obs::set_enabled(false);
}

criterion_group!(benches, bench_span_call_site, bench_sweep_with_and_without_obs);
criterion_main!(benches);
