//! Ablation benches for the design choices DESIGN.md calls out:
//! eager/rendezvous threshold, NIC serialization, noise model, and segment
//! size. These measure *simulated collective time* (the model output), not
//! wall-clock — Criterion's statistics quantify the run-to-run stability of
//! each configuration's execution cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pap_collectives::{build, CollSpec, CollectiveKind};
use pap_sim::{run, Job, NoiseModel, Platform, RankProgram, SimConfig};

fn simulate(platform: &Platform, spec: &CollSpec, cfg: &SimConfig) -> f64 {
    let built = build(spec, platform.ranks).unwrap();
    let programs = built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
    run(platform, Job::new(programs), cfg).unwrap().makespan()
}

/// Ablation 1: eager threshold flips the Alltoall protocol regime.
fn bench_eager_threshold(c: &mut Criterion) {
    let p = 64;
    let mut g = c.benchmark_group("ablation/eager_threshold");
    g.sample_size(15);
    for &thresh in &[1024u64, 16 * 1024, 256 * 1024] {
        let mut platform = Platform::simcluster(p);
        platform.eager_threshold = thresh;
        let spec = CollSpec::new(CollectiveKind::Alltoall, 2, 32 * 1024);
        g.bench_with_input(BenchmarkId::from_parameter(thresh), &thresh, |bch, _| {
            bch.iter(|| simulate(&platform, &spec, &SimConfig::default()));
        });
    }
    g.finish();
}

/// Ablation 2: NIC serialization on/off — the contention model that
/// separates linear from pairwise Alltoall.
fn bench_nic_serialization(c: &mut Criterion) {
    let p = 64;
    let mut g = c.benchmark_group("ablation/nic_serialization");
    g.sample_size(15);
    for on in [true, false] {
        let mut platform = Platform::simcluster(p);
        platform.nic_serialization = on;
        let spec = CollSpec::new(CollectiveKind::Alltoall, 1, 8 * 1024);
        g.bench_with_input(BenchmarkId::from_parameter(on), &on, |bch, _| {
            bch.iter(|| simulate(&platform, &spec, &SimConfig::default()));
        });
    }
    g.finish();
}

/// Ablation 3: noise models (none / gaussian / heavy-tail).
fn bench_noise_models(c: &mut Criterion) {
    let p = 64;
    let platform = Platform::simcluster(p);
    let spec = CollSpec::new(CollectiveKind::Reduce, 5, 32 * 1024);
    let mut g = c.benchmark_group("ablation/noise");
    g.sample_size(20);
    for (name, noise) in [
        ("none", NoiseModel::None),
        ("gaussian", NoiseModel::gaussian(0.02)),
        ("heavy_tail", NoiseModel::heavy_tail(0.02, 5.0, 1e-3)),
    ] {
        let cfg = SimConfig { noise, ..SimConfig::default() };
        g.bench_function(name, |bch| bch.iter(|| simulate(&platform, &spec, &cfg)));
    }
    g.finish();
}

/// Ablation 4: segment size of segmented algorithms (pipeline reduce).
fn bench_segment_size(c: &mut Criterion) {
    let p = 64;
    let platform = Platform::simcluster(p);
    let mut g = c.benchmark_group("ablation/segment_size");
    g.sample_size(15);
    for &seg in &[1024u64, 8192, 65536] {
        let spec = CollSpec::new(CollectiveKind::Reduce, 3, 256 * 1024).with_seg_bytes(seg);
        g.bench_with_input(BenchmarkId::from_parameter(seg), &seg, |bch, _| {
            bch.iter(|| simulate(&platform, &spec, &SimConfig::default()));
        });
    }
    g.finish();
}

/// Ablation 5: HCA3 drift regression vs offset-only sync — estimator cost
/// and (printed once) residual accuracy at t = 60 s.
fn bench_clock_sync(c: &mut Criterion) {
    use pap_clocksync::{sync_cluster, sync_cluster_offset_only, ClusterClocks, Hca3Config};
    let clocks = ClusterClocks::realistic(36, 7);
    let cfg = Hca3Config::default();
    let mut g = c.benchmark_group("ablation/clock_sync");
    g.bench_function("hca3_drift_regressed", |b| b.iter(|| sync_cluster(&clocks, &cfg, 7)));
    g.bench_function("offset_only", |b| b.iter(|| sync_cluster_offset_only(&clocks, &cfg, 7)));
    g.finish();
}

/// Ablation 6: static binomial vs arrival-aware adaptive reduce under a
/// known ascending pattern (simulated d̂ is the model output; Criterion
/// measures the cost of building + simulating each).
fn bench_adaptive_reduce(c: &mut Criterion) {
    use pap_collectives::build_arrival_aware_reduce;
    use pap_sim::{Job, Op, RankProgram};
    let p = 64;
    let platform = Platform::simcluster(p);
    let delays: Vec<f64> = (0..p).map(|r| 1e-3 * r as f64 / (p - 1) as f64).collect();
    let spec_static = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
    let run_with = |built: pap_collectives::Built| {
        let programs = built
            .rank_ops
            .into_iter()
            .enumerate()
            .map(|(r, ops)| {
                let mut prog = RankProgram::new();
                prog.push_anon(vec![Op::delay(delays[r])]);
                prog.push_anon(ops);
                prog
            })
            .collect();
        run(&platform, Job::new(programs), &SimConfig::default()).unwrap().makespan()
    };
    let mut g = c.benchmark_group("ablation/adaptive_reduce");
    g.bench_function("static_binomial", |b| {
        b.iter(|| run_with(build(&spec_static, p).unwrap()))
    });
    g.bench_function("skew_ladder", |b| {
        b.iter(|| run_with(build_arrival_aware_reduce(&spec_static, p, &delays).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_eager_threshold,
    bench_nic_serialization,
    bench_noise_models,
    bench_segment_size,
    bench_clock_sync,
    bench_adaptive_reduce
);
criterion_main!(benches);
