//! A small stamp-based LRU map for the L1 answer cache.

use std::collections::HashMap;
use std::hash::Hash;

/// Least-recently-used map with a fixed capacity.
///
/// Each entry carries a monotonically increasing access stamp; on insert at
/// capacity the minimum-stamp entry is evicted. `get` refreshes the stamp.
/// A capacity of `0` disables the cache entirely (every `get` misses, every
/// `insert` is dropped).
///
/// Lookup is `O(1)`, insert-at-capacity is `O(n)` for the eviction scan —
/// fine for the hundreds-of-entries answer cache this backs, and it keeps
/// the structure to one `HashMap` with no unsafe pointer juggling.
pub struct Lru<K, V> {
    capacity: usize,
    clock: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Lru { capacity, clock: 0, map: HashMap::new() }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|slot| {
            slot.0 = clock;
            &slot.1
        })
    }

    /// Insert (or replace) `key`, evicting the least-recently-used entry if
    /// the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.clock, value));
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Remove entries for which `keep` returns false.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        self.map.retain(|k, (_, v)| keep(k, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh "a": "b" is now LRU
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn replacing_existing_key_does_not_evict() {
        let mut c = Lru::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c = Lru::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn retain_filters_entries() {
        let mut c = Lru::new(8);
        for i in 0..6 {
            c.insert(i, i * 10);
        }
        c.retain(|k, _| k % 2 == 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&20));
    }
}
