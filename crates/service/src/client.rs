//! Reference client for the `papd` wire protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    decode_reply, encode_frame, CalibrateAnswer, CalibrateRequest, ErrorReply, QueryAnswer,
    QueryRequest, ReplicaDump, Reply, ReplyEnvelope, Request, RequestEnvelope, StatsReport,
    PROTO_VERSION,
};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone stream: {e}"))?);
        Ok(Client { writer: stream, reader, next_id: 1 })
    }

    /// Send one request frame without reading a reply; returns its `id`.
    /// Pair with [`Client::recv`] to pipeline.
    pub fn send(&mut self, req: Request) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        let env = RequestEnvelope { v: PROTO_VERSION, id, req };
        self.writer
            .write_all(encode_frame(&env).as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        Ok(id)
    }

    /// Send a raw pre-encoded line (for protocol tests; the line should end
    /// with `'\n'`).
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        self.writer.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))
    }

    /// Read the next reply frame.
    pub fn recv(&mut self) -> Result<ReplyEnvelope, String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("connection closed by server".to_string());
        }
        decode_reply(line.trim_end())
    }

    /// One request/reply round trip; checks the echoed `id`.
    pub fn call(&mut self, req: Request) -> Result<Reply, String> {
        let id = self.send(req)?;
        let env = self.recv()?;
        if env.id != id {
            return Err(format!("reply id {} does not match request id {id}", env.id));
        }
        Ok(env.reply)
    }

    /// Ask which algorithm to use; error replies become `Err`.
    pub fn query(&mut self, q: QueryRequest) -> Result<QueryAnswer, String> {
        match self.call(Request::Query(q))? {
            Reply::Answer(a) => Ok(a),
            Reply::Error(e) => Err(format!("{:?}: {}", e.code, e.message)),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Pipelined batch: all queries are written before any reply is read.
    /// Results come back in request order, one slot per query — a rejected
    /// query puts its typed [`ErrorReply`] in its own slot without
    /// poisoning the rest of the batch. Only transport-level failures
    /// (connection loss, garbled framing, id mismatch) fail the whole call.
    pub fn query_batch(
        &mut self,
        queries: Vec<QueryRequest>,
    ) -> Result<Vec<Result<QueryAnswer, ErrorReply>>, String> {
        let ids: Vec<u64> =
            queries.into_iter().map(|q| self.send(Request::Query(q))).collect::<Result<_, _>>()?;
        let mut results = Vec::with_capacity(ids.len());
        for id in ids {
            let env = self.recv()?;
            if env.id != id {
                return Err(format!("reply id {} does not match request id {id}", env.id));
            }
            match env.reply {
                Reply::Answer(a) => results.push(Ok(a)),
                Reply::Error(e) => results.push(Err(e)),
                other => return Err(format!("unexpected reply {other:?}")),
            }
        }
        Ok(results)
    }

    /// Onboard a machine from a measured probe: the server fits, registers
    /// `custom:<name>`, and publishes a model-backed L2 grid at `ranks`.
    pub fn calibrate(
        &mut self,
        name: &str,
        ranks: usize,
        probe: pap_calibrate::Probe,
    ) -> Result<CalibrateAnswer, String> {
        let req = CalibrateRequest { name: name.to_string(), ranks, probe };
        match self.call(Request::Calibrate(req))? {
            Reply::Calibrated(a) => Ok(a),
            Reply::Error(e) => Err(format!("{:?}: {}", e.code, e.message)),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Pull one page of the server's L2 evidence (warm replication).
    pub fn replicate(&mut self, offset: usize, limit: usize) -> Result<ReplicaDump, String> {
        match self.call(Request::Replicate { offset, limit })? {
            Reply::Replica(d) => Ok(d),
            Reply::Error(e) => Err(format!("{:?}: {}", e.code, e.message)),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Fetch the server's observability counters.
    pub fn stats(&mut self) -> Result<StatsReport, String> {
        match self.call(Request::Stats)? {
            Reply::Stats(r) => Ok(r),
            Reply::Error(e) => Err(format!("{:?}: {}", e.code, e.message)),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Fetch the generic metrics snapshot (server registry + process-global
    /// library metrics).
    pub fn metrics(&mut self) -> Result<pap_obs::MetricsSnapshot, String> {
        match self.call(Request::Metrics)? {
            Reply::Metrics(m) => Ok(m),
            Reply::Error(e) => Err(format!("{:?}: {}", e.code, e.message)),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.call(Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Ask the daemon to shut down gracefully; resolves on its `Bye`.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.call(Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }
}
