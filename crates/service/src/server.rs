//! `papd`: the selection daemon.
//!
//! A std-only TCP server: newline-delimited JSON frames
//! ([`crate::proto`]), thread-per-connection on a bounded
//! [`pap_parallel::Pool`], a second bounded pool for background sim
//! refinements, and graceful shutdown that drains in-flight work.
//!
//! Connection workers run with `pap-parallel`'s worker marker set, so any
//! nested `par_map` fan-out inside an inline cold-cell sweep stays
//! sequential — total parallelism is bounded by the two pool sizes no
//! matter how many clients pile on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pap_core::{tune_machine, TunePlan};
use pap_microbench::{Backend, BenchConfig};
use pap_parallel::Pool;
use pap_sim::{MachineId, Platform};

use crate::proto::{
    decode_request, encode_frame, error_reply, ErrorCode, Reply, ReplyEnvelope, Request,
    MAX_FRAME_BYTES, PROTO_VERSION,
};
use crate::snapshot::Snapshot;
use crate::stats::Stats;
use crate::store::{DefaultPolicy, TierStore};

/// How to start the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; `"127.0.0.1:0"` picks an ephemeral loopback port.
    pub addr: String,
    /// Warm-restart snapshot to load into L2. When set, no startup tuning
    /// sweep runs.
    pub snapshot: Option<PathBuf>,
    /// Machine preset to pre-tune at startup (ignored with a snapshot).
    pub machine: String,
    /// Rank count to pre-tune at startup.
    pub ranks: usize,
    /// Backend for startup tuning and inline cold-cell computation.
    pub backend: Backend,
    /// Connection pool workers (`0` = auto: at least 4).
    pub threads: usize,
    /// Background refinement workers (`0` disables L3 refinement).
    pub refine_threads: usize,
    /// L1 answer-cache capacity (`0` disables L1).
    pub l1_capacity: usize,
    /// Policy for queries without arrival samples.
    pub default_policy: DefaultPolicy,
    /// Per-connection idle timeout: a connection with no complete frame for
    /// this long is closed.
    pub read_timeout: Duration,
    /// Whether to run the startup tuning sweep when no snapshot is given.
    pub tune_at_startup: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot: None,
            machine: "simcluster".to_string(),
            ranks: 16,
            backend: Backend::Model,
            threads: 0,
            refine_threads: 1,
            l1_capacity: 1024,
            default_policy: DefaultPolicy::Robust,
            read_timeout: Duration::from_secs(30),
            tune_at_startup: true,
        }
    }
}

/// Poll interval for idle connections and shutdown checks.
const POLL: Duration = Duration::from_millis(100);

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: std::thread::JoinHandle<()>,
    refine_pool: Option<Arc<Pool>>,
    stats: Arc<Stats>,
    store: Arc<TierStore>,
}

impl Server {
    /// Bind, seed the L2 store (snapshot or startup tuning), and start
    /// accepting connections.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let stats = Arc::new(Stats::new());
        let refine_enabled = cfg.refine_threads > 0;
        let store = Arc::new(TierStore::new(
            Arc::clone(&stats),
            cfg.l1_capacity,
            cfg.default_policy,
            cfg.backend,
            refine_enabled,
        ));

        if let Some(path) = &cfg.snapshot {
            let snap = Snapshot::load(path)?;
            store.ingest_snapshot(&snap);
            stats.snapshot_loaded.store(true, Ordering::Relaxed);
        } else if cfg.tune_at_startup {
            let machine_id: MachineId = cfg.machine.parse()?;
            let platform = Platform::preset(machine_id, cfg.ranks);
            let bench = BenchConfig::simulation().with_backend(cfg.backend);
            let (_, records) = tune_machine(&platform, &TunePlan::default(), &bench)?;
            store.ingest_records(machine_id.name(), &records, &cfg.backend.to_string());
            stats.tuned_at_startup.store(true, Ordering::Relaxed);
        }

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get()).max(4)
        } else {
            cfg.threads
        };
        let refine_pool =
            refine_enabled.then(|| Arc::new(Pool::new(cfg.refine_threads, 4 * cfg.refine_threads)));

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let store = Arc::clone(&store);
            let refine_pool = refine_pool.clone();
            let read_timeout = cfg.read_timeout;
            std::thread::spawn(move || {
                let conn_pool = Pool::new(threads, 2 * threads + 16);
                for incoming in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match incoming {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    stats.connection();
                    let ctx = ConnCtx {
                        shutdown: Arc::clone(&shutdown),
                        stats: Arc::clone(&stats),
                        store: Arc::clone(&store),
                        refine_pool: refine_pool.clone(),
                        read_timeout,
                    };
                    if !conn_pool.submit(move || handle_connection(stream, ctx)) {
                        break;
                    }
                }
                // Drain: every live connection observes the shutdown flag
                // within one poll interval and finishes its buffered frames.
                conn_pool.join();
            })
        };

        Ok(Server { addr, shutdown, acceptor, refine_pool, stats, store })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's stats block.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The server's tier store.
    pub fn store(&self) -> &Arc<TierStore> {
        &self.store
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from outside (equivalent to a `Shutdown` frame).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is blocked in accept().
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until shutdown is requested (by [`Server::stop`] or a client
    /// `Shutdown` frame), then drain: the acceptor joins its connection
    /// pool, and in-flight refinements finish while queued ones are
    /// dropped.
    pub fn join(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        // Nudge the acceptor in case shutdown came from a connection
        // handler while accept() was blocked.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // After the conn pool joined no handler holds a refine-pool clone,
        // so the unwrap succeeds; if it somehow does not, the workers are
        // left parked and die with the process.
        if let Some(pool) = self.refine_pool {
            if let Ok(pool) = Arc::try_unwrap(pool) {
                let dropped = pool.abort();
                for _ in 0..dropped {
                    self.stats.refine_dropped();
                }
            }
        }
    }
}

/// Everything a connection handler needs.
struct ConnCtx {
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
    store: Arc<TierStore>,
    refine_pool: Option<Arc<Pool>>,
    read_timeout: Duration,
}

/// Serve one connection until EOF, error, idle timeout, or shutdown.
fn handle_connection(mut stream: TcpStream, ctx: ConnCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    loop {
        // Serve every complete frame already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            last_activity = Instant::now();
            ctx.stats.frame();
            let reply = serve_frame(&line[..line.len() - 1], &ctx);
            let bye = matches!(reply.reply, Reply::Bye);
            if stream.write_all(encode_frame(&reply).as_bytes()).is_err() {
                return;
            }
            if bye {
                return;
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if buf.len() > MAX_FRAME_BYTES {
            // No newline within the frame budget: reply and give up on the
            // connection (there is no way to find the next frame boundary).
            let reply = error_reply(
                0,
                ErrorCode::BadFrame,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
            );
            ctx.stats.endpoint_error();
            let _ = stream.write_all(encode_frame(&reply).as_bytes());
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() > ctx.read_timeout {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Decode and serve one frame; always yields a reply, never panics out.
fn serve_frame(line: &[u8], ctx: &ConnCtx) -> ReplyEnvelope {
    let start = Instant::now();
    let reply = catch_unwind(AssertUnwindSafe(|| serve_frame_inner(line, ctx))).unwrap_or_else(|_| {
        ctx.stats.endpoint_error();
        error_reply(0, ErrorCode::Internal, "internal error while serving request")
    });
    ctx.stats.record_latency(start.elapsed());
    reply
}

fn serve_frame_inner(line: &[u8], ctx: &ConnCtx) -> ReplyEnvelope {
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            ctx.stats.endpoint_error();
            return error_reply(0, ErrorCode::BadFrame, "frame is not valid UTF-8");
        }
    };
    let env = match decode_request(text.trim_end_matches('\r')) {
        Ok(env) => env,
        Err(e) => {
            ctx.stats.endpoint_error();
            return error_reply(e.id, e.code, e.message);
        }
    };
    let id = env.id;
    match env.req {
        Request::Query(q) => {
            ctx.stats.endpoint_query();
            match ctx.store.resolve(&q) {
                Ok((answer, ticket)) => {
                    if let Some(key) = ticket {
                        let submitted = ctx.refine_pool.as_ref().is_some_and(|pool| {
                            let store = Arc::clone(&ctx.store);
                            let k = key.clone();
                            pool.submit(move || store.refine(&k))
                        });
                        if !submitted {
                            ctx.store.cancel_refine(&key);
                        }
                    }
                    ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Answer(answer) }
                }
                Err(msg) => {
                    ctx.stats.endpoint_error();
                    error_reply(id, ErrorCode::BadRequest, msg)
                }
            }
        }
        Request::Stats => {
            ctx.stats.endpoint_stats();
            ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Stats(ctx.stats.report()) }
        }
        Request::Metrics => {
            // Counted as a stats-endpoint hit: the legacy StatsReport shape
            // has no dedicated field, and adding one would break its pinned
            // wire layout.
            ctx.stats.endpoint_stats();
            ReplyEnvelope {
                v: PROTO_VERSION,
                id,
                reply: Reply::Metrics(ctx.stats.metrics_snapshot()),
            }
        }
        Request::Ping => {
            ctx.stats.endpoint_ping();
            ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Pong }
        }
        Request::Shutdown => {
            ctx.stats.endpoint_shutdown();
            ctx.shutdown.store(true, Ordering::SeqCst);
            ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Bye }
        }
    }
}
