//! `papd`: the selection daemon.
//!
//! A std-only TCP server: newline-delimited JSON frames
//! ([`crate::proto`]), thread-per-connection on a bounded
//! [`pap_parallel::Pool`], a second bounded pool for background sim
//! refinements, and graceful shutdown that drains in-flight work.
//!
//! Connection workers run with `pap-parallel`'s worker marker set, so any
//! nested `par_map` fan-out inside an inline cold-cell sweep stays
//! sequential — total parallelism is bounded by the two pool sizes no
//! matter how many clients pile on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pap_core::{tune_machine, TunePlan};
use pap_microbench::{Backend, BenchConfig};
use pap_parallel::Pool;
use pap_sim::{MachineId, Platform};

use crate::proto::{
    decode_request, encode_frame, error_reply, ErrorCode, Reply, ReplicaDump, ReplyEnvelope,
    Request, MAX_FRAME_BYTES, PROTO_VERSION,
};
use crate::snapshot::Snapshot;
use crate::stats::Stats;
use crate::store::{DefaultPolicy, TierStore};

/// How to start the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; `"127.0.0.1:0"` picks an ephemeral loopback port.
    pub addr: String,
    /// Warm-restart snapshot to load into L2. When set, no startup tuning
    /// sweep runs.
    pub snapshot: Option<PathBuf>,
    /// Machine preset to pre-tune at startup (ignored with a snapshot).
    pub machine: String,
    /// Rank count to pre-tune at startup.
    pub ranks: usize,
    /// Backend for startup tuning and inline cold-cell computation.
    pub backend: Backend,
    /// Connection pool workers (`0` = auto: at least 4).
    pub threads: usize,
    /// Background refinement workers (`0` disables L3 refinement).
    pub refine_threads: usize,
    /// L1 answer-cache capacity (`0` disables L1).
    pub l1_capacity: usize,
    /// Policy for queries without arrival samples.
    pub default_policy: DefaultPolicy,
    /// Per-connection idle timeout: a connection with no complete frame for
    /// this long is closed.
    pub read_timeout: Duration,
    /// Whether to run the startup tuning sweep when no snapshot is given.
    pub tune_at_startup: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            snapshot: None,
            machine: "simcluster".to_string(),
            ranks: 16,
            backend: Backend::Model,
            threads: 0,
            refine_threads: 1,
            l1_capacity: 1024,
            default_policy: DefaultPolicy::Robust,
            read_timeout: Duration::from_secs(30),
            tune_at_startup: true,
        }
    }
}

/// Poll interval for idle connections and shutdown checks.
pub(crate) const POLL: Duration = Duration::from_millis(100);

/// Largest [`Request::Replicate`] page the server will return: 16 cells
/// per frame keeps a page (matrix plus fault evidence per cell) well under
/// [`MAX_FRAME_BYTES`].
pub const REPLICA_PAGE_MAX: usize = 16;

/// Build and seed the stats + store pair a daemon serves from, per the
/// config's snapshot/tuning directives. Shared by the threaded server here
/// and the event-driven fleet node, so both frontends boot identically.
pub fn build_store(cfg: &ServeConfig) -> Result<(Arc<Stats>, Arc<TierStore>), String> {
    let stats = Arc::new(Stats::new());
    let store = Arc::new(TierStore::new(
        Arc::clone(&stats),
        cfg.l1_capacity,
        cfg.default_policy,
        cfg.backend,
        cfg.refine_threads > 0,
    ));
    if let Some(path) = &cfg.snapshot {
        let snap = Snapshot::load(path)?;
        store.ingest_snapshot(&snap);
        stats.snapshot_loaded.store(true, Ordering::Relaxed);
    } else if cfg.tune_at_startup {
        let machine_id: MachineId = cfg.machine.parse()?;
        let platform = Platform::preset(machine_id, cfg.ranks);
        let bench = BenchConfig::simulation().with_backend(cfg.backend);
        let (_, records) = tune_machine(&platform, &TunePlan::default(), &bench)?;
        store.ingest_records(machine_id.name(), &records, &cfg.backend.to_string());
        stats.tuned_at_startup.store(true, Ordering::Relaxed);
    }
    Ok((stats, store))
}

/// The transport-independent request engine: decodes one frame, serves it,
/// and yields the reply. Both frontends — the thread-per-connection
/// acceptor here and the epoll event loop in `pap-fleet` — feed complete
/// frames to one `Dispatcher`, so protocol semantics (error taxonomy,
/// stats accounting, refinement scheduling, panic isolation) live in
/// exactly one place.
pub struct Dispatcher {
    shutdown: Arc<AtomicBool>,
    stats: Arc<Stats>,
    store: Arc<TierStore>,
    refine_pool: Option<Arc<Pool>>,
}

impl Dispatcher {
    /// Assemble a dispatcher over a seeded store.
    pub fn new(
        shutdown: Arc<AtomicBool>,
        stats: Arc<Stats>,
        store: Arc<TierStore>,
        refine_pool: Option<Arc<Pool>>,
    ) -> Dispatcher {
        Dispatcher { shutdown, stats, store, refine_pool }
    }

    /// The stats block requests are accounted into.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The store requests resolve against.
    pub fn store(&self) -> &Arc<TierStore> {
        &self.store
    }

    /// Whether shutdown has been requested (in-band or out).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Count and build the reply for an oversized frame (no newline within
    /// [`MAX_FRAME_BYTES`]); the connection must close after sending it —
    /// there is no way to find the next frame boundary.
    pub fn oversized_frame_reply(&self) -> ReplyEnvelope {
        self.stats.endpoint_error();
        error_reply(0, ErrorCode::BadFrame, format!("frame exceeds {MAX_FRAME_BYTES} bytes"))
    }

    /// Decode and serve one frame (without its trailing newline); always
    /// yields a reply, never panics out. Counts the frame and records
    /// handling latency.
    pub fn serve_frame(&self, line: &[u8]) -> ReplyEnvelope {
        self.stats.frame();
        let start = Instant::now();
        let reply =
            catch_unwind(AssertUnwindSafe(|| self.serve_frame_inner(line))).unwrap_or_else(|_| {
                self.stats.endpoint_error();
                error_reply(0, ErrorCode::Internal, "internal error while serving request")
            });
        self.stats.record_latency(start.elapsed());
        reply
    }

    fn serve_frame_inner(&self, line: &[u8]) -> ReplyEnvelope {
        let text = match std::str::from_utf8(line) {
            Ok(t) => t,
            Err(_) => {
                self.stats.endpoint_error();
                return error_reply(0, ErrorCode::BadFrame, "frame is not valid UTF-8");
            }
        };
        let env = match decode_request(text.trim_end_matches('\r')) {
            Ok(env) => env,
            Err(e) => {
                self.stats.endpoint_error();
                return error_reply(e.id, e.code, e.message);
            }
        };
        let id = env.id;
        match env.req {
            Request::Query(q) => {
                self.stats.endpoint_query();
                match self.store.resolve(&q) {
                    Ok((answer, ticket)) => {
                        if let Some(key) = ticket {
                            let submitted = self.refine_pool.as_ref().is_some_and(|pool| {
                                let store = Arc::clone(&self.store);
                                let k = key.clone();
                                pool.submit(move || store.refine(&k))
                            });
                            if !submitted {
                                self.store.cancel_refine(&key);
                            }
                        }
                        ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Answer(answer) }
                    }
                    Err(msg) => {
                        self.stats.endpoint_error();
                        error_reply(id, ErrorCode::BadRequest, msg)
                    }
                }
            }
            Request::Stats => {
                self.stats.endpoint_stats();
                ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Stats(self.stats.report()) }
            }
            Request::Metrics => {
                // Counted as a stats-endpoint hit: the legacy StatsReport
                // shape has no dedicated field, and adding one would break
                // its pinned wire layout.
                self.stats.endpoint_stats();
                ReplyEnvelope {
                    v: PROTO_VERSION,
                    id,
                    reply: Reply::Metrics(self.stats.metrics_snapshot()),
                }
            }
            Request::Ping => {
                self.stats.endpoint_ping();
                ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Pong }
            }
            Request::Replicate { offset, limit } => {
                // Also a stats-endpoint hit (pinned report shape, see above).
                self.stats.endpoint_stats();
                let (total, cells) = self.store.export_cells(offset, limit.clamp(1, REPLICA_PAGE_MAX));
                ReplyEnvelope {
                    v: PROTO_VERSION,
                    id,
                    reply: Reply::Replica(ReplicaDump { total, offset, cells }),
                }
            }
            Request::Calibrate(c) => {
                self.stats.endpoint_calibrate();
                match self.store.calibrate(&c) {
                    Ok((answer, tickets)) => {
                        // Same ownership contract as the query path: the
                        // store scheduled the tickets, the dispatcher's pool
                        // runs them (or cancels when there is no pool).
                        for key in tickets {
                            let submitted = self.refine_pool.as_ref().is_some_and(|pool| {
                                let store = Arc::clone(&self.store);
                                let k = key.clone();
                                pool.submit(move || store.refine(&k))
                            });
                            if !submitted {
                                self.store.cancel_refine(&key);
                            }
                        }
                        ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Calibrated(answer) }
                    }
                    Err(msg) => {
                        self.stats.endpoint_error();
                        error_reply(id, ErrorCode::BadRequest, msg)
                    }
                }
            }
            Request::Shutdown => {
                self.stats.endpoint_shutdown();
                self.shutdown.store(true, Ordering::SeqCst);
                ReplyEnvelope { v: PROTO_VERSION, id, reply: Reply::Bye }
            }
        }
    }
}

/// A cloneable out-of-band shutdown trigger for a running [`Server`]
/// (signal watchers, fleet supervisors). Requesting shutdown is exactly
/// equivalent to an in-band `Shutdown` frame: the acceptor drains its
/// connection pool and in-flight requests complete.
#[derive(Clone)]
pub struct ShutdownHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request a graceful drain and wake the acceptor.
    pub fn request(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has already been requested.
    pub fn is_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Wire SIGTERM/SIGINT to a server's graceful drain: installs the
/// process-wide flag handler ([`pap_sysio::install_shutdown_flag`]) and
/// spawns a watcher thread that requests shutdown once a signal lands. The
/// watcher exits as soon as the server starts shutting down for any
/// reason, so it never outlives the drain.
pub fn install_signal_shutdown(server: &Server) -> Result<(), String> {
    pap_sysio::install_shutdown_flag().map_err(|e| format!("install signal handler: {e}"))?;
    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if pap_sysio::shutdown_requested() {
            handle.request();
            return;
        }
        if handle.is_requested() {
            return;
        }
        std::thread::sleep(POLL);
    });
    Ok(())
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: std::thread::JoinHandle<()>,
    refine_pool: Option<Arc<Pool>>,
    dispatcher: Arc<Dispatcher>,
    stats: Arc<Stats>,
    store: Arc<TierStore>,
}

impl Server {
    /// Bind, seed the L2 store (snapshot or startup tuning), and start
    /// accepting connections.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let (stats, store) = build_store(&cfg)?;
        let refine_enabled = cfg.refine_threads > 0;

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get()).max(4)
        } else {
            cfg.threads
        };
        let refine_pool =
            refine_enabled.then(|| Arc::new(Pool::new(cfg.refine_threads, 4 * cfg.refine_threads)));
        let dispatcher = Arc::new(Dispatcher::new(
            Arc::clone(&shutdown),
            Arc::clone(&stats),
            Arc::clone(&store),
            refine_pool.clone(),
        ));

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let dispatcher = Arc::clone(&dispatcher);
            let read_timeout = cfg.read_timeout;
            std::thread::spawn(move || {
                let conn_pool = Pool::new(threads, 2 * threads + 16);
                for incoming in listener.incoming() {
                    // A stream `incoming` already accepted is a commitment:
                    // submit it even when this very wake-up is the shutdown,
                    // or its pipelined requests die as a connection reset.
                    if let Ok(stream) = incoming {
                        stats.connection();
                        let dispatcher = Arc::clone(&dispatcher);
                        if !conn_pool
                            .submit(move || handle_connection(stream, &dispatcher, read_timeout))
                        {
                            break;
                        }
                    }
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                // Connections established before the shutdown landed may
                // still sit in the kernel's accept backlog; hand them to the
                // pool too, so their already-written requests drain instead
                // of being reset when the listener drops.
                if listener.set_nonblocking(true).is_ok() {
                    while let Ok((stream, _)) = listener.accept() {
                        stats.connection();
                        let dispatcher = Arc::clone(&dispatcher);
                        if !conn_pool
                            .submit(move || handle_connection(stream, &dispatcher, read_timeout))
                        {
                            break;
                        }
                    }
                }
                // Drain: every live connection observes the shutdown flag
                // within one poll interval and finishes its buffered frames.
                conn_pool.join();
            })
        };

        Ok(Server { addr, shutdown, acceptor, refine_pool, dispatcher, stats, store })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's stats block.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The server's tier store.
    pub fn store(&self) -> &Arc<TierStore> {
        &self.store
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A cloneable out-of-band shutdown trigger for this server.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { shutdown: Arc::clone(&self.shutdown), addr: self.addr }
    }

    /// Request shutdown from outside (equivalent to a `Shutdown` frame).
    pub fn stop(&self) {
        self.shutdown_handle().request();
    }

    /// Block until shutdown is requested (by [`Server::stop`] or a client
    /// `Shutdown` frame), then drain: the acceptor joins its connection
    /// pool, and in-flight refinements finish while queued ones are
    /// dropped.
    pub fn join(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        // Nudge the acceptor in case shutdown came from a connection
        // handler while accept() was blocked.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // After the conn pool joined no handler holds a dispatcher (and
        // hence refine-pool) clone; drop ours so the unwrap succeeds. If it
        // somehow does not, the workers are left parked and die with the
        // process.
        drop(self.dispatcher);
        if let Some(pool) = self.refine_pool {
            if let Ok(pool) = Arc::try_unwrap(pool) {
                let dropped = pool.abort();
                for _ in 0..dropped {
                    self.stats.refine_dropped();
                }
            }
        }
    }
}

/// Serve one connection until EOF, error, idle timeout, or shutdown.
fn handle_connection(mut stream: TcpStream, dispatcher: &Dispatcher, read_timeout: Duration) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    let mut draining = false;
    loop {
        // Serve every complete frame already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            last_activity = Instant::now();
            let reply = dispatcher.serve_frame(&line[..line.len() - 1]);
            let bye = matches!(reply.reply, Reply::Bye);
            if stream.write_all(encode_frame(&reply).as_bytes()).is_err() {
                return;
            }
            if bye {
                return;
            }
        }
        if dispatcher.shutdown_requested() {
            if draining {
                return;
            }
            // Final drain: requests already written to the socket when the
            // shutdown landed still complete. Pull whatever the kernel has
            // buffered right now, loop once more to serve it, then close;
            // only bytes arriving after this pass are refused.
            draining = true;
            let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(_) => break,
                }
            }
            continue;
        }
        if buf.len() > MAX_FRAME_BYTES {
            let _ = stream.write_all(encode_frame(&dispatcher.oversized_frame_reply()).as_bytes());
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() > read_timeout {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
