//! `papd` — the online selection daemon, standalone.
//!
//! Thin wrapper over [`pap_service::Server`]; `papctl serve` exposes the
//! same daemon with the toolkit's richer flag set.
//!
//! ```text
//! papd [--addr A] [--snapshot F] [--backend {sim,model}] [--threads N]
//!      [--machine M] [--ranks N] [--l1 N] [--refine-threads N] [--no-tune]
//! ```

use std::io::Write;
use std::process::ExitCode;

use pap_service::{ServeConfig, Server};

fn run(raw: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("--{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("addr")?.to_string(),
            "--snapshot" => cfg.snapshot = Some(value("snapshot")?.into()),
            "--backend" => cfg.backend = value("backend")?.parse()?,
            "--threads" => {
                cfg.threads =
                    value("threads")?.parse().map_err(|_| "--threads must be a number")?;
            }
            "--machine" => cfg.machine = value("machine")?.to_string(),
            "--ranks" => {
                cfg.ranks = value("ranks")?.parse().map_err(|_| "--ranks must be a number")?;
            }
            "--l1" => {
                cfg.l1_capacity = value("l1")?.parse().map_err(|_| "--l1 must be a number")?;
            }
            "--refine-threads" => {
                cfg.refine_threads = value("refine-threads")?
                    .parse()
                    .map_err(|_| "--refine-threads must be a number")?;
            }
            "--policy" => cfg.default_policy = value("policy")?.parse()?,
            "--no-tune" => cfg.tune_at_startup = false,
            "--help" | "-h" => {
                println!(
                    "usage: papd [--addr A] [--snapshot F] [--backend {{sim,model}}] \
                     [--threads N] [--machine M] [--ranks N] [--policy P] [--l1 N] \
                     [--refine-threads N] [--no-tune]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let server = Server::start(cfg)?;
    println!("papd listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    let stats = std::sync::Arc::clone(server.stats());
    server.join();
    eprint!("papd: shut down\n{}", stats.report().render_table());
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("papd: {e}");
            ExitCode::FAILURE
        }
    }
}
