//! # pap-service — the online selection daemon (`papd`)
//!
//! Offline, this repository reproduces the paper's pipeline: benchmark a
//! `(algorithm × arrival pattern)` grid, apply a selection policy, persist
//! a tuning table. This crate closes the loop *online*: a daemon that an
//! MPI library (or a job scheduler) can ask, per collective invocation,
//! *"which algorithm should I run, given how my processes have been
//! arriving?"* — the deployment story for arrival-pattern-aware selection.
//!
//! * [`proto`] — the versioned newline-delimited-JSON wire protocol.
//! * [`server`] — `papd` itself: bounded thread pools, tiered resolution,
//!   graceful shutdown, observability counters.
//! * [`store`] — the tier logic: **L1** (LRU of resolved answers, guarded
//!   by evidence generations) → **L2** (precomputed benchmark matrices,
//!   exact then nearest-size) → **L3** (inline model computation plus
//!   background simulator refinement that upgrades cells in place).
//! * [`snapshot`] — the warm-restart format shared with `papctl tune
//!   --out`: decisions *and* their evidence matrices, so a restarted
//!   daemon re-applies any policy without re-tuning.
//! * [`client`] — the reference protocol client used by `papctl query`,
//!   the tests, and the loopback benchmark.
//!
//! Queries carrying per-rank arrival samples are classified against the
//! paper's Fig. 3 shapes ([`pap_arrival::classify_delays`]) and answered
//! with the best algorithm *under that pattern*; queries without samples
//! get the robust-average pick (the paper's headline policy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use client::Client;
pub use proto::{
    decode_reply, decode_request, encode_frame, CalibrateAnswer, CalibrateRequest, ErrorCode,
    ErrorReply, QueryAnswer, QueryRequest, ReplicaCell, ReplicaDump, Reply, ReplyEnvelope, Request,
    RequestEnvelope, StatsReport, Tier, MAX_FRAME_BYTES, PROTO_VERSION,
};
pub use server::{
    build_store, install_signal_shutdown, Dispatcher, ServeConfig, Server, ShutdownHandle,
    REPLICA_PAGE_MAX,
};
pub use snapshot::{Snapshot, SnapshotCell, SNAPSHOT_FORMAT};
pub use store::{measure_fault_matrix, CellKey, DefaultPolicy, TierStore};
