//! `papd` observability, published through the `pap-obs` metrics registry.
//!
//! Each [`Stats`] owns a private [`pap_obs::Registry`] (tests run several
//! servers in one process, so the counters cannot be process-global) and
//! caches one handle per metric; recording stays a single relaxed atomic
//! op per event, exactly as the previous hand-rolled atomics were. The same
//! registry feeds two wire shapes:
//!
//! * [`Stats::report`] — the legacy [`StatsReport`], byte-identical to the
//!   pre-`pap-obs` output (the e2e suite pins it),
//! * [`Stats::metrics_snapshot`] — the generic metrics snapshot served by
//!   the `Metrics` endpoint, with the process-global registry (simulator,
//!   pool, harness) appended.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pap_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};

use crate::proto::{EndpointCounters, LatencyBucket, StatsReport, TierCounters};

/// Upper bounds (µs) of the fixed latency histogram buckets; the implicit
/// last bucket (`u64::MAX`) catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 12] =
    [1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 5_000, 50_000];

/// Upper bounds (basis points, 1 bp = 0.01%) of the calibration
/// fit-quality histogram: the median relative residual of each accepted
/// fit. The guideline gate rejects fits above 1500 bp, so the overflow
/// bucket stays empty unless the gate loosens.
pub const FIT_RESIDUAL_BOUNDS_BP: [u64; 8] = [10, 25, 50, 100, 250, 500, 1_000, 1_500];

/// Per-server metric handles; every recording is an independent relaxed
/// atomic, so request handlers on different pool workers never contend on a
/// lock to record.
pub struct Stats {
    started: Instant,
    registry: Registry,
    connections: Counter,
    frames: Counter,
    query: Counter,
    stats: Counter,
    ping: Counter,
    shutdown: Counter,
    calibrate: Counter,
    calibrations_accepted: Counter,
    calibrations_rejected: Counter,
    calibration_residual_bp: Histogram,
    error: Counter,
    l1_hits: Counter,
    l2_exact: Counter,
    l2_near: Counter,
    miss: Counter,
    refines_scheduled: Counter,
    refines_applied: Counter,
    refines_dropped: Counter,
    latency: Histogram,
    /// Current L1 entry count, maintained by the store (`.set(n)`).
    pub l1_entries: Gauge,
    /// Current L2 cell count, maintained by the store (`.set(n)`).
    pub l2_cells: Gauge,
    /// Whether the L2 store was seeded from a snapshot file.
    pub snapshot_loaded: AtomicBool,
    /// Whether a tuning sweep ran at startup.
    pub tuned_at_startup: AtomicBool,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! bump {
    ($($fn_name:ident => $field:ident),* $(,)?) => {$(
        #[doc = concat!("Increment the `", stringify!($field), "` counter.")]
        pub fn $fn_name(&self) {
            self.$field.inc();
        }
    )*};
}

impl Stats {
    /// Fresh metric block; uptime starts now.
    pub fn new() -> Self {
        let registry = Registry::new();
        Stats {
            started: Instant::now(),
            connections: registry.counter("papd.connections"),
            frames: registry.counter("papd.frames"),
            query: registry.counter("papd.endpoint.query"),
            stats: registry.counter("papd.endpoint.stats"),
            ping: registry.counter("papd.endpoint.ping"),
            shutdown: registry.counter("papd.endpoint.shutdown"),
            calibrate: registry.counter("papd.endpoint.calibrate"),
            calibrations_accepted: registry.counter("papd.calibration.accepted"),
            calibrations_rejected: registry.counter("papd.calibration.rejected"),
            calibration_residual_bp: registry
                .histogram("papd.calibration.fit_residual_bp", &FIT_RESIDUAL_BOUNDS_BP),
            error: registry.counter("papd.endpoint.error"),
            l1_hits: registry.counter("papd.tier.l1_hits"),
            l2_exact: registry.counter("papd.tier.l2_exact"),
            l2_near: registry.counter("papd.tier.l2_near"),
            miss: registry.counter("papd.tier.miss"),
            refines_scheduled: registry.counter("papd.refines.scheduled"),
            refines_applied: registry.counter("papd.refines.applied"),
            refines_dropped: registry.counter("papd.refines.dropped"),
            latency: registry.histogram("papd.request_latency_us", &LATENCY_BOUNDS_US),
            l1_entries: registry.gauge("papd.l1_entries"),
            l2_cells: registry.gauge("papd.l2_cells"),
            snapshot_loaded: AtomicBool::new(false),
            tuned_at_startup: AtomicBool::new(false),
            registry,
        }
    }

    bump! {
        connection => connections,
        frame => frames,
        endpoint_query => query,
        endpoint_stats => stats,
        endpoint_ping => ping,
        endpoint_shutdown => shutdown,
        endpoint_calibrate => calibrate,
        endpoint_error => error,
        calibration_rejected => calibrations_rejected,
        l1_hit => l1_hits,
        l2_exact_hit => l2_exact,
        l2_near_hit => l2_near,
        tier_miss => miss,
        refine_scheduled => refines_scheduled,
        refine_applied => refines_applied,
        refine_dropped => refines_dropped,
    }

    /// Record one request's handling latency in the fixed-bucket histogram.
    pub fn record_latency(&self, elapsed: Duration) {
        self.latency.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Count an accepted calibration and record its fit quality (the
    /// median relative residual, in basis points).
    pub fn calibration_accepted(&self, median_rel_residual: f64) {
        self.calibrations_accepted.inc();
        let bp = (median_rel_residual.max(0.0) * 10_000.0).round();
        self.calibration_residual_bp.record(bp.min(u64::MAX as f64) as u64);
    }

    /// This server's registry (the `Metrics` endpoint snapshots it).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Generic metrics snapshot: this server's registry plus the
    /// process-global one (simulator / pool / harness metrics).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.extend(pap_obs::global().snapshot());
        snap
    }

    /// Snapshot every counter into a wire-serializable report.
    pub fn report(&self) -> StatsReport {
        let mut latency: Vec<LatencyBucket> = LATENCY_BOUNDS_US
            .iter()
            .map(|&le_us| LatencyBucket {
                le_us,
                count: self.latency.bucket_count(le_us).expect("bound registered"),
            })
            .collect();
        latency.push(LatencyBucket {
            le_us: u64::MAX,
            count: self.latency.bucket_count(u64::MAX).expect("overflow bucket exists"),
        });
        StatsReport {
            endpoints: EndpointCounters {
                query: self.query.get(),
                stats: self.stats.get(),
                ping: self.ping.get(),
                shutdown: self.shutdown.get(),
                calibrate: self.calibrate.get(),
                error: self.error.get(),
            },
            tiers: TierCounters {
                l1_hits: self.l1_hits.get(),
                l2_exact: self.l2_exact.get(),
                l2_near: self.l2_near.get(),
                miss: self.miss.get(),
                refines_scheduled: self.refines_scheduled.get(),
                refines_applied: self.refines_applied.get(),
                refines_dropped: self.refines_dropped.get(),
            },
            connections: self.connections.get(),
            frames: self.frames.get(),
            l2_cells: self.l2_cells.get().max(0) as usize,
            l1_entries: self.l1_entries.get().max(0) as usize,
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            tuned_at_startup: self.tuned_at_startup.load(Ordering::Relaxed),
            uptime_s: self.started.elapsed().as_secs_f64(),
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_report() {
        let s = Stats::new();
        s.connection();
        s.frame();
        s.frame();
        s.endpoint_query();
        s.l1_hit();
        s.refine_scheduled();
        let r = s.report();
        assert_eq!(r.connections, 1);
        assert_eq!(r.frames, 2);
        assert_eq!(r.endpoints.query, 1);
        assert_eq!(r.tiers.l1_hits, 1);
        assert_eq!(r.tiers.refines_scheduled, 1);
        assert!(r.uptime_s >= 0.0);
    }

    #[test]
    fn latency_histogram_buckets_by_bound() {
        let s = Stats::new();
        s.record_latency(Duration::from_micros(0)); // <= 1
        s.record_latency(Duration::from_micros(1)); // <= 1
        s.record_latency(Duration::from_micros(7)); // <= 10
        s.record_latency(Duration::from_secs(10)); // overflow
        let r = s.report();
        assert_eq!(r.latency.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(r.latency[0].count, 2);
        let le10 = r.latency.iter().find(|b| b.le_us == 10).unwrap();
        assert_eq!(le10.count, 1);
        assert_eq!(r.latency.last().unwrap().le_us, u64::MAX);
        assert_eq!(r.latency.last().unwrap().count, 1);
    }

    #[test]
    fn calibration_counters_and_fit_histogram_record() {
        let s = Stats::new();
        s.endpoint_calibrate();
        s.calibration_accepted(0.004); // 40 bp -> <= 50 bucket
        s.calibration_rejected();
        assert_eq!(s.report().endpoints.calibrate, 1);
        let snap = s.metrics_snapshot();
        let counter =
            |name: &str| snap.counters.iter().find(|c| c.name == name).map(|c| c.value);
        assert_eq!(counter("papd.calibration.accepted"), Some(1));
        assert_eq!(counter("papd.calibration.rejected"), Some(1));
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "papd.calibration.fit_residual_bp")
            .expect("fit-quality histogram registered");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn servers_have_independent_registries() {
        let a = Stats::new();
        let b = Stats::new();
        a.connection();
        assert_eq!(a.report().connections, 1);
        assert_eq!(b.report().connections, 0, "stats must be per-server, not process-global");
    }

    #[test]
    fn metrics_snapshot_includes_own_and_global_metrics() {
        let s = Stats::new();
        s.endpoint_query();
        s.l2_cells.set(13);
        // Touch a global metric so the merged snapshot provably spans both.
        pap_obs::global().counter("papd.test.global_marker").inc();
        let snap = s.metrics_snapshot();
        let counter =
            |name: &str| snap.counters.iter().find(|c| c.name == name).map(|c| c.value);
        assert_eq!(counter("papd.endpoint.query"), Some(1));
        assert!(counter("papd.test.global_marker").unwrap_or(0) >= 1);
        let gauge = snap.gauges.iter().find(|g| g.name == "papd.l2_cells").unwrap();
        assert_eq!(gauge.value, 13);
        assert!(snap.histograms.iter().any(|h| h.name == "papd.request_latency_us"));
    }
}
