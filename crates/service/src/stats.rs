//! Lock-free observability counters for `papd`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::proto::{EndpointCounters, LatencyBucket, StatsReport, TierCounters};

/// Upper bounds (µs) of the fixed latency histogram buckets; the implicit
/// last bucket (`u64::MAX`) catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 12] =
    [1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 5_000, 50_000];

/// Shared counter block; every field is an independent atomic, so request
/// handlers on different pool workers never contend on a lock to record.
pub struct Stats {
    started: Instant,
    connections: AtomicU64,
    frames: AtomicU64,
    query: AtomicU64,
    stats: AtomicU64,
    ping: AtomicU64,
    shutdown: AtomicU64,
    error: AtomicU64,
    l1_hits: AtomicU64,
    l2_exact: AtomicU64,
    l2_near: AtomicU64,
    miss: AtomicU64,
    refines_scheduled: AtomicU64,
    refines_applied: AtomicU64,
    refines_dropped: AtomicU64,
    latency: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    /// Current L1 entry count, maintained by the store.
    pub l1_entries: AtomicUsize,
    /// Current L2 cell count, maintained by the store.
    pub l2_cells: AtomicUsize,
    /// Whether the L2 store was seeded from a snapshot file.
    pub snapshot_loaded: std::sync::atomic::AtomicBool,
    /// Whether a tuning sweep ran at startup.
    pub tuned_at_startup: std::sync::atomic::AtomicBool,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! bump {
    ($($fn_name:ident => $field:ident),* $(,)?) => {$(
        #[doc = concat!("Increment the `", stringify!($field), "` counter.")]
        pub fn $fn_name(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl Stats {
    /// Fresh counter block; uptime starts now.
    pub fn new() -> Self {
        Stats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            query: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            ping: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
            error: AtomicU64::new(0),
            l1_hits: AtomicU64::new(0),
            l2_exact: AtomicU64::new(0),
            l2_near: AtomicU64::new(0),
            miss: AtomicU64::new(0),
            refines_scheduled: AtomicU64::new(0),
            refines_applied: AtomicU64::new(0),
            refines_dropped: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            l1_entries: AtomicUsize::new(0),
            l2_cells: AtomicUsize::new(0),
            snapshot_loaded: std::sync::atomic::AtomicBool::new(false),
            tuned_at_startup: std::sync::atomic::AtomicBool::new(false),
        }
    }

    bump! {
        connection => connections,
        frame => frames,
        endpoint_query => query,
        endpoint_stats => stats,
        endpoint_ping => ping,
        endpoint_shutdown => shutdown,
        endpoint_error => error,
        l1_hit => l1_hits,
        l2_exact_hit => l2_exact,
        l2_near_hit => l2_near,
        tier_miss => miss,
        refine_scheduled => refines_scheduled,
        refine_applied => refines_applied,
        refine_dropped => refines_dropped,
    }

    /// Record one request's handling latency in the fixed-bucket histogram.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every counter into a wire-serializable report.
    pub fn report(&self) -> StatsReport {
        let mut latency: Vec<LatencyBucket> = LATENCY_BOUNDS_US
            .iter()
            .enumerate()
            .map(|(i, &le_us)| LatencyBucket { le_us, count: self.latency[i].load(Ordering::Relaxed) })
            .collect();
        latency.push(LatencyBucket {
            le_us: u64::MAX,
            count: self.latency[LATENCY_BOUNDS_US.len()].load(Ordering::Relaxed),
        });
        StatsReport {
            endpoints: EndpointCounters {
                query: self.query.load(Ordering::Relaxed),
                stats: self.stats.load(Ordering::Relaxed),
                ping: self.ping.load(Ordering::Relaxed),
                shutdown: self.shutdown.load(Ordering::Relaxed),
                error: self.error.load(Ordering::Relaxed),
            },
            tiers: TierCounters {
                l1_hits: self.l1_hits.load(Ordering::Relaxed),
                l2_exact: self.l2_exact.load(Ordering::Relaxed),
                l2_near: self.l2_near.load(Ordering::Relaxed),
                miss: self.miss.load(Ordering::Relaxed),
                refines_scheduled: self.refines_scheduled.load(Ordering::Relaxed),
                refines_applied: self.refines_applied.load(Ordering::Relaxed),
                refines_dropped: self.refines_dropped.load(Ordering::Relaxed),
            },
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            l2_cells: self.l2_cells.load(Ordering::Relaxed),
            l1_entries: self.l1_entries.load(Ordering::Relaxed),
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            tuned_at_startup: self.tuned_at_startup.load(Ordering::Relaxed),
            uptime_s: self.started.elapsed().as_secs_f64(),
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_report() {
        let s = Stats::new();
        s.connection();
        s.frame();
        s.frame();
        s.endpoint_query();
        s.l1_hit();
        s.refine_scheduled();
        let r = s.report();
        assert_eq!(r.connections, 1);
        assert_eq!(r.frames, 2);
        assert_eq!(r.endpoints.query, 1);
        assert_eq!(r.tiers.l1_hits, 1);
        assert_eq!(r.tiers.refines_scheduled, 1);
        assert!(r.uptime_s >= 0.0);
    }

    #[test]
    fn latency_histogram_buckets_by_bound() {
        let s = Stats::new();
        s.record_latency(Duration::from_micros(0)); // <= 1
        s.record_latency(Duration::from_micros(1)); // <= 1
        s.record_latency(Duration::from_micros(7)); // <= 10
        s.record_latency(Duration::from_secs(10)); // overflow
        let r = s.report();
        assert_eq!(r.latency.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(r.latency[0].count, 2);
        let le10 = r.latency.iter().find(|b| b.le_us == 10).unwrap();
        assert_eq!(le10.count, 1);
        assert_eq!(r.latency.last().unwrap().le_us, u64::MAX);
        assert_eq!(r.latency.last().unwrap().count, 1);
    }
}
