//! The tiered evidence store behind `papd`.
//!
//! * **L1** — an LRU of fully resolved `(cell, policy) → algorithm`
//!   answers. Entries carry the generation of the evidence cell they were
//!   derived from and are discarded when a background refinement bumps it.
//! * **L2** — precomputed `(machine, collective, ranks, bytes)` evidence
//!   cells (full [`BenchMatrix`]es), seeded from a startup tuning sweep or a
//!   warm-restart snapshot. Misses on exact message size fall back to the
//!   nearest cell in log-space, mirroring [`pap_core::TuningTable::lookup`].
//! * **L3** — on-demand refinement: a cold cell is computed inline with the
//!   cheap analytical backend (the query is answered immediately) and, when
//!   enabled, a background worker re-measures it with the event-driven
//!   simulator and *upgrades* the cell. Upgrades bump the cell generation,
//!   which invalidates derived L1 entries; a refinement that observes a
//!   generation change while it ran is dropped, never applied stale.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, RwLock};

use pap_arrival::{classify_delays, Shape};
use pap_calibrate::fit_probe;
use pap_collectives::registry::experiment_ids;
use pap_collectives::CollectiveKind;
use pap_core::{
    select, select_with_faults, tune_machine, BenchMatrix, FaultMatrix, SelectionPolicy, TunePlan,
    TuneRecord,
};
use pap_microbench::{
    fault_sweep, no_delay_runtime, standard_grid, sweep, Backend, BenchConfig, SkewPolicy,
};
use pap_sim::{register_custom_platform, MachineId, Platform};

use crate::cache::Lru;
use crate::proto::{CalibrateAnswer, CalibrateRequest, QueryAnswer, QueryRequest, ReplicaCell, Tier};
use crate::snapshot::Snapshot;
use crate::stats::Stats;

/// Identity of one L2 evidence cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Canonical machine name.
    pub machine: String,
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Rank count.
    pub ranks: usize,
    /// Message size (bytes).
    pub bytes: u64,
}

/// One L2 evidence cell.
#[derive(Debug, Clone)]
pub struct CellEvidence {
    /// The benchmark matrix (algorithms × arrival patterns).
    pub matrix: BenchMatrix,
    /// The status-quo (no-delay-fastest) pick, kept for reporting.
    pub status_quo: u8,
    /// Degraded-mode evidence (algorithms × fault scenarios), measured
    /// lazily the first time a fault-robust query hits the cell. Always
    /// sim-backed (the analytical model has no fault model).
    pub faults: Option<FaultMatrix>,
    /// Backend that produced the matrix (`"model"` or `"sim"`).
    pub backend: String,
    /// Bumped on every refinement upgrade; L1 entries derived from an older
    /// generation are stale.
    pub generation: u64,
}

/// L1 key: the evidence cell plus the policy applied to it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct L1Key {
    cell: CellKey,
    policy: String,
}

/// L1 value: a resolved answer and the evidence it came from.
#[derive(Debug, Clone)]
struct L1Entry {
    alg: u8,
    exact: bool,
    evidence: CellKey,
    backend: String,
    generation: u64,
}

/// How `papd` selects when a query carries no arrival samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefaultPolicy {
    /// The paper's robust-average policy (the daemon's default).
    Robust,
    /// The status quo: fastest under `no_delay`.
    NoDelayFastest,
    /// Degraded-mode routing: prefer algorithms whose worst-case
    /// degradation across the standard fault grid stays within the bound
    /// (fault evidence is measured lazily, sim-backed, per cell).
    FaultRobust {
        /// Worst-case degradation bound (`1.0` = at most 2× slower under
        /// any fault scenario).
        max_degradation: f64,
    },
}

impl std::str::FromStr for DefaultPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(bound) = s.strip_prefix("fault_robust:") {
            let max_degradation: f64 = bound
                .parse()
                .map_err(|_| format!("bad fault_robust bound '{bound}' (want a number)"))?;
            if !max_degradation.is_finite() || max_degradation < 0.0 {
                return Err(format!("fault_robust bound must be finite and >= 0, got {bound}"));
            }
            return Ok(DefaultPolicy::FaultRobust { max_degradation });
        }
        match s.to_ascii_lowercase().as_str() {
            "robust" => Ok(DefaultPolicy::Robust),
            "no_delay" | "no_delay_fastest" | "status_quo" => Ok(DefaultPolicy::NoDelayFastest),
            "fault_robust" => Ok(DefaultPolicy::FaultRobust { max_degradation: 1.0 }),
            other => Err(format!(
                "unknown policy '{other}' (expected robust|no_delay_fastest|fault_robust[:BOUND])"
            )),
        }
    }
}

/// The tiered store. Shared (via `Arc`) between connection handlers and
/// background refinement workers.
pub struct TierStore {
    l2: RwLock<HashMap<CellKey, CellEvidence>>,
    l1: Mutex<Lru<L1Key, L1Entry>>,
    refining: Mutex<HashSet<CellKey>>,
    stats: Arc<Stats>,
    default_policy: DefaultPolicy,
    /// Backend for inline cold-cell computation.
    compute_backend: Backend,
    /// Whether background sim refinement is enabled.
    refine_enabled: bool,
    shapes: Vec<Shape>,
    skew: SkewPolicy,
}

impl TierStore {
    /// Create an empty store.
    pub fn new(
        stats: Arc<Stats>,
        l1_capacity: usize,
        default_policy: DefaultPolicy,
        compute_backend: Backend,
        refine_enabled: bool,
    ) -> Self {
        TierStore {
            l2: RwLock::new(HashMap::new()),
            l1: Mutex::new(Lru::new(l1_capacity)),
            refining: Mutex::new(HashSet::new()),
            stats,
            default_policy,
            compute_backend,
            refine_enabled,
            shapes: Shape::SUITE.to_vec(),
            skew: SkewPolicy::FactorOfAvg(1.0),
        }
    }

    /// The stats block this store reports into.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// Seed L2 from a tuning run's records.
    pub fn ingest_records(&self, machine: &str, records: &[TuneRecord], backend: &str) {
        let mut l2 = self.l2.write().expect("l2 lock");
        for rec in records {
            let key = CellKey {
                machine: machine.to_string(),
                kind: rec.entry.kind,
                ranks: rec.entry.ranks,
                bytes: rec.entry.bytes,
            };
            l2.insert(
                key,
                CellEvidence {
                    matrix: rec.matrix.clone(),
                    status_quo: rec.status_quo,
                    faults: None,
                    backend: backend.to_string(),
                    generation: 0,
                },
            );
        }
        self.stats.l2_cells.set(l2.len() as i64);
    }

    /// Seed L2 from a warm-restart snapshot. Cells carrying fault evidence
    /// (`papctl tune --faults`) seed it too, so a `--policy fault_robust`
    /// daemon answers straight from L2 with no lazy fault-grid re-measure.
    pub fn ingest_snapshot(&self, snap: &Snapshot) {
        let mut l2 = self.l2.write().expect("l2 lock");
        for cell in &snap.cells {
            let key = CellKey {
                machine: snap.machine.clone(),
                kind: cell.entry.kind,
                ranks: cell.entry.ranks,
                bytes: cell.entry.bytes,
            };
            l2.insert(
                key,
                CellEvidence {
                    matrix: cell.matrix.clone(),
                    status_quo: cell.status_quo,
                    faults: cell.faults.clone(),
                    backend: snap.backend.clone(),
                    generation: 0,
                },
            );
        }
        self.stats.l2_cells.set(l2.len() as i64);
    }

    /// Number of L2 cells currently held.
    pub fn l2_len(&self) -> usize {
        self.l2.read().expect("l2 lock").len()
    }

    /// Export one page of L2 cells for warm replication, in a stable sort
    /// order (machine, collective, ranks, bytes) so a client paging
    /// `offset = 0, n, 2n, …` over an unchanging store sees every cell
    /// exactly once. Returns `(total, page)`.
    pub fn export_cells(&self, offset: usize, limit: usize) -> (usize, Vec<ReplicaCell>) {
        let l2 = self.l2.read().expect("l2 lock");
        let mut keys: Vec<&CellKey> = l2.keys().collect();
        keys.sort_by(|a, b| {
            (&a.machine, a.kind.to_string(), a.ranks, a.bytes)
                .cmp(&(&b.machine, b.kind.to_string(), b.ranks, b.bytes))
        });
        let page = keys
            .into_iter()
            .skip(offset)
            .take(limit)
            .map(|k| {
                let c = &l2[k];
                ReplicaCell {
                    machine: k.machine.clone(),
                    collective: k.kind,
                    ranks: k.ranks,
                    bytes: k.bytes,
                    status_quo: c.status_quo,
                    matrix: c.matrix.clone(),
                    faults: c.faults.clone(),
                    backend: c.backend.clone(),
                    generation: c.generation,
                }
            })
            .collect();
        (l2.len(), page)
    }

    /// Ingest a page of replicated cells (the receiving side of
    /// [`TierStore::export_cells`]). Validation mirrors snapshot loading:
    /// the status-quo pick must exist in its matrix, and fault evidence
    /// must match the cell and the current fault-grid version — serving
    /// from a donor with a different sweep definition would silently mix
    /// incomparable evidence. Returns the number of cells ingested.
    pub fn ingest_replica(&self, cells: &[ReplicaCell]) -> Result<usize, String> {
        for (i, cell) in cells.iter().enumerate() {
            if !cell.matrix.algs.contains(&cell.status_quo) {
                return Err(format!(
                    "replica cell {i}: status-quo alg {} absent from its evidence matrix",
                    cell.status_quo
                ));
            }
            if let Some(fm) = &cell.faults {
                if fm.grid_version != pap_microbench::FAULT_GRID_VERSION {
                    return Err(format!(
                        "replica cell {i}: fault grid v{} does not match current v{}",
                        fm.grid_version,
                        pap_microbench::FAULT_GRID_VERSION
                    ));
                }
                if fm.kind != cell.collective || fm.bytes != cell.bytes {
                    return Err(format!(
                        "replica cell {i}: fault evidence is for {} @ {} B, cell is {} @ {} B",
                        fm.kind, fm.bytes, cell.collective, cell.bytes
                    ));
                }
            }
        }
        let mut l2 = self.l2.write().expect("l2 lock");
        for cell in cells {
            let key = CellKey {
                machine: cell.machine.clone(),
                kind: cell.collective,
                ranks: cell.ranks,
                bytes: cell.bytes,
            };
            l2.insert(
                key,
                CellEvidence {
                    matrix: cell.matrix.clone(),
                    status_quo: cell.status_quo,
                    faults: cell.faults.clone(),
                    backend: cell.backend.clone(),
                    generation: cell.generation,
                },
            );
        }
        self.stats.l2_cells.set(l2.len() as i64);
        Ok(cells.len())
    }

    /// Onboard an unseen machine from a measured probe: fit the platform
    /// parameters inline, register the machine as `custom:<name>`, run a
    /// tuning sweep over the standard grid with the cheap compute backend,
    /// and publish the result as L2 evidence so the very next query is an
    /// L2 hit.
    ///
    /// Returns the answer plus the refinement tickets for the published
    /// cells (the caller owns the worker pool — same contract as
    /// [`TierStore::resolve`]). A probe the guideline gate rejects is a
    /// client error and registers nothing.
    pub fn calibrate(
        &self,
        req: &CalibrateRequest,
    ) -> Result<(CalibrateAnswer, Vec<CellKey>), String> {
        // Validate the name before paying for the fit.
        MachineId::custom(&req.name)?;
        if req.ranks < 2 {
            return Err(format!("need at least 2 ranks to pre-tune, got {}", req.ranks));
        }
        let fit = fit_probe(&req.probe).map_err(|e| {
            self.stats.calibration_rejected();
            format!("calibration rejected: {e}")
        })?;
        let machine = register_custom_platform(&req.name, fit.spec.clone())?;
        let platform = Platform::try_preset(machine, req.ranks)?;
        let bench = BenchConfig::simulation().with_backend(self.compute_backend);
        let (_, records) = tune_machine(&platform, &TunePlan::default(), &bench)?;
        self.ingest_records(machine.name(), &records, &self.compute_backend.to_string());
        self.stats.calibration_accepted(fit.median_rel_residual);

        let mut tickets = Vec::new();
        if self.refine_enabled && self.compute_backend != Backend::Sim {
            let mut refining = self.refining.lock().expect("refining lock");
            for rec in &records {
                let key = CellKey {
                    machine: machine.name().to_string(),
                    kind: rec.entry.kind,
                    ranks: rec.entry.ranks,
                    bytes: rec.entry.bytes,
                };
                if refining.insert(key.clone()) {
                    self.stats.refine_scheduled();
                    tickets.push(key);
                }
            }
        }
        let answer = CalibrateAnswer {
            machine: machine.name().to_string(),
            fit,
            l2_cells: records.len(),
            refine_scheduled: tickets.len(),
        };
        Ok((answer, tickets))
    }

    /// Resolve one query through the tiers.
    ///
    /// Returns the answer plus, when a background sim refinement should be
    /// scheduled for the evidence cell, that cell's key (the caller owns the
    /// worker pool). Errors are client errors (`BadRequest`).
    pub fn resolve(&self, q: &QueryRequest) -> Result<(QueryAnswer, Option<CellKey>), String> {
        let machine_id: MachineId = q.machine.parse()?;
        let machine = machine_id.name().to_string();
        if q.ranks < 2 {
            return Err(format!("need at least 2 ranks, got {}", q.ranks));
        }
        let capacity = {
            let probe = Platform::try_preset(machine_id, 1)?;
            probe.nodes * probe.cores_per_node
        };
        if q.ranks > capacity {
            return Err(format!("{} ranks exceed capacity {capacity} of {machine}", q.ranks));
        }

        // Classify the arrival samples (if any) into a pattern and policy.
        let (policy, pattern, similarity) = match &q.arrivals {
            None => {
                let policy = match self.default_policy {
                    DefaultPolicy::Robust => SelectionPolicy::robust(),
                    DefaultPolicy::NoDelayFastest => SelectionPolicy::NoDelayFastest,
                    DefaultPolicy::FaultRobust { max_degradation } => {
                        SelectionPolicy::FaultRobust { max_degradation }
                    }
                };
                (policy, Shape::NoDelay.name().to_string(), 1.0)
            }
            Some(samples) => {
                if samples.len() != q.ranks {
                    return Err(format!(
                        "arrivals has {} samples but query names {} ranks",
                        samples.len(),
                        q.ranks
                    ));
                }
                if samples.iter().any(|s| !s.is_finite()) {
                    return Err("arrivals contain non-finite values".to_string());
                }
                let (shape, sim) = classify_delays(samples);
                let name = shape.name().to_string();
                let policy = if shape == Shape::NoDelay {
                    // Synchronized arrivals are exactly the status quo's
                    // assumption; answer with the no-delay winner.
                    SelectionPolicy::NoDelayFastest
                } else {
                    SelectionPolicy::BestUnderPattern(name.clone())
                };
                (policy, name, sim)
            }
        };
        let policy_label = policy_label(&policy);
        let key = CellKey { machine: machine.clone(), kind: q.collective, ranks: q.ranks, bytes: q.bytes };

        let answer = |alg: u8, tier: Tier, exact: bool, evidence: &CellKey, backend: &str, generation: u64, refine: bool| QueryAnswer {
            machine: machine.clone(),
            collective: q.collective,
            ranks: q.ranks,
            bytes: q.bytes,
            alg,
            policy: policy_label.clone(),
            pattern: pattern.clone(),
            similarity,
            tier,
            exact,
            evidence_bytes: evidence.bytes,
            backend: backend.to_string(),
            generation,
            refine_scheduled: refine,
        };

        // L1: a resolved answer for this (cell, policy), still-current
        // generation.
        let l1_key = L1Key { cell: key.clone(), policy: policy_label.clone() };
        if let Some(hit) = self.l1_lookup(&l1_key) {
            self.stats.l1_hit();
            return Ok((
                answer(hit.alg, Tier::L1, hit.exact, &hit.evidence, &hit.backend, hit.generation, false),
                None,
            ));
        }

        // L2: precomputed evidence, exact then nearest-size.
        if let Some((evidence_key, mut cell, exact)) = self.l2_lookup(&key) {
            let alg = self.select_in_cell(machine_id, &evidence_key, &mut cell, &policy)?;
            if exact {
                self.stats.l2_exact_hit();
            } else {
                self.stats.l2_near_hit();
            }
            let refine = self.should_refine(&evidence_key, &cell);
            self.l1_insert(
                l1_key,
                L1Entry {
                    alg,
                    exact,
                    evidence: evidence_key.clone(),
                    backend: cell.backend.clone(),
                    generation: cell.generation,
                },
            );
            let tier = if exact { Tier::L2 } else { Tier::L2Near };
            return Ok((
                answer(alg, tier, exact, &evidence_key, &cell.backend, cell.generation, refine),
                refine.then_some(evidence_key),
            ));
        }

        // Miss: compute the cell inline with the cheap backend, publish it
        // as L2 evidence, and (optionally) hand the caller a refinement
        // ticket so the simulator can upgrade it in the background.
        self.stats.tier_miss();
        let backend = self.compute_backend;
        let matrix = self.compute_matrix(machine_id, &key, backend)?;
        // Fault-robust routing needs degraded-mode evidence on top of the
        // pattern matrix; measure it up front so the published cell carries
        // both.
        let faults = if matches!(policy, SelectionPolicy::FaultRobust { .. }) {
            Some(self.compute_fault_matrix(machine_id, &key)?)
        } else {
            None
        };
        let alg = select_with_faults(&matrix, faults.as_ref(), &policy)?;
        let status_quo = select(&matrix, &SelectionPolicy::NoDelayFastest)?;
        let generation = 0;
        {
            let mut l2 = self.l2.write().expect("l2 lock");
            // A racing query may have published the cell meanwhile; keep the
            // existing one (same inputs → same matrix for the deterministic
            // backends, so either is correct).
            l2.entry(key.clone()).or_insert(CellEvidence {
                matrix,
                status_quo,
                faults,
                backend: backend.to_string(),
                generation,
            });
            self.stats.l2_cells.set(l2.len() as i64);
        }
        let refine = self.refine_enabled
            && backend != Backend::Sim
            && self.refining.lock().expect("refining lock").insert(key.clone());
        if refine {
            self.stats.refine_scheduled();
        }
        self.l1_insert(
            L1Key { cell: key.clone(), policy: policy_label.clone() },
            L1Entry {
                alg,
                exact: true,
                evidence: key.clone(),
                backend: backend.to_string(),
                generation,
            },
        );
        Ok((
            answer(alg, Tier::Computed, true, &key, &backend.to_string(), generation, refine),
            refine.then_some(key),
        ))
    }

    /// Re-measure `key` with the simulator and upgrade the cell if it is
    /// still the generation the refinement started from. Called from a
    /// background worker; never panics on missing cells.
    pub fn refine(&self, key: &CellKey) {
        let started_from = match self.l2.read().expect("l2 lock").get(key) {
            Some(cell) => cell.generation,
            None => {
                self.refining.lock().expect("refining lock").remove(key);
                self.stats.refine_dropped();
                return;
            }
        };
        let machine_id: MachineId = match key.machine.parse() {
            Ok(id) => id,
            Err(_) => {
                self.refining.lock().expect("refining lock").remove(key);
                self.stats.refine_dropped();
                return;
            }
        };
        let result = self.compute_matrix(machine_id, key, Backend::Sim);
        let mut refining = self.refining.lock().expect("refining lock");
        refining.remove(key);
        drop(refining);
        match result {
            Ok(matrix) => {
                let status_quo = match select(&matrix, &SelectionPolicy::NoDelayFastest) {
                    Ok(a) => a,
                    Err(_) => {
                        self.stats.refine_dropped();
                        return;
                    }
                };
                let mut l2 = self.l2.write().expect("l2 lock");
                match l2.get_mut(key) {
                    // Only upgrade the generation the refinement observed:
                    // if someone else already upgraded the cell, this result
                    // is stale.
                    Some(cell) if cell.generation == started_from => {
                        cell.matrix = matrix;
                        cell.status_quo = status_quo;
                        cell.backend = Backend::Sim.to_string();
                        cell.generation += 1;
                        drop(l2);
                        self.invalidate_l1(key);
                        self.stats.refine_applied();
                    }
                    _ => self.stats.refine_dropped(),
                }
            }
            Err(_) => self.stats.refine_dropped(),
        }
    }

    /// Abandon a scheduled refinement (e.g. the worker pool rejected it).
    pub fn cancel_refine(&self, key: &CellKey) {
        self.refining.lock().expect("refining lock").remove(key);
        self.stats.refine_dropped();
    }

    /// Drop L1 entries derived from `key` (their generation is now stale).
    fn invalidate_l1(&self, key: &CellKey) {
        let mut l1 = self.l1.lock().expect("l1 lock");
        l1.retain(|_, entry| entry.evidence != *key);
        self.stats.l1_entries.set(l1.len() as i64);
    }

    fn l1_lookup(&self, key: &L1Key) -> Option<L1Entry> {
        let entry = self.l1.lock().expect("l1 lock").get(key).cloned()?;
        // Generation check against the live cell; stale entries miss (and
        // are overwritten by the fresh resolution that follows).
        let l2 = self.l2.read().expect("l2 lock");
        match l2.get(&entry.evidence) {
            Some(cell) if cell.generation == entry.generation => Some(entry),
            _ => None,
        }
    }

    fn l1_insert(&self, key: L1Key, entry: L1Entry) {
        let mut l1 = self.l1.lock().expect("l1 lock");
        l1.insert(key, entry);
        self.stats.l1_entries.set(l1.len() as i64);
    }

    /// Exact L2 lookup, then nearest message size in log-space among cells
    /// with the same machine, collective, and rank count.
    fn l2_lookup(&self, key: &CellKey) -> Option<(CellKey, CellEvidence, bool)> {
        let l2 = self.l2.read().expect("l2 lock");
        if let Some(cell) = l2.get(key) {
            return Some((key.clone(), cell.clone(), true));
        }
        let dist = |bytes: u64| ((bytes.max(1) as f64).ln() - (key.bytes.max(1) as f64).ln()).abs();
        l2.iter()
            .filter(|(k, _)| k.machine == key.machine && k.kind == key.kind && k.ranks == key.ranks)
            .min_by(|a, b| dist(a.0.bytes).partial_cmp(&dist(b.0.bytes)).expect("finite distances"))
            .map(|(k, cell)| (k.clone(), cell.clone(), false))
    }

    /// Whether a hit on this cell should schedule a sim refinement.
    fn should_refine(&self, key: &CellKey, cell: &CellEvidence) -> bool {
        if !self.refine_enabled || cell.backend == "sim" {
            return false;
        }
        let scheduled = self.refining.lock().expect("refining lock").insert(key.clone());
        if scheduled {
            self.stats.refine_scheduled();
        }
        scheduled
    }

    /// Fault-aware selection inside one evidence cell: the
    /// [`SelectionPolicy::FaultRobust`] policy needs degraded-mode
    /// evidence, which is measured lazily (sim-backed) the first time a
    /// fault-robust query hits the cell and published back into L2 so
    /// later queries reuse it. Fault evidence does not bump the cell
    /// generation — pattern-derived answers are untouched by it.
    fn select_in_cell(
        &self,
        machine_id: MachineId,
        key: &CellKey,
        cell: &mut CellEvidence,
        policy: &SelectionPolicy,
    ) -> Result<u8, String> {
        if matches!(policy, SelectionPolicy::FaultRobust { .. }) && cell.faults.is_none() {
            let fm = self.compute_fault_matrix(machine_id, key)?;
            let mut l2 = self.l2.write().expect("l2 lock");
            if let Some(live) = l2.get_mut(key) {
                if live.generation == cell.generation && live.faults.is_none() {
                    live.faults = Some(fm.clone());
                }
            }
            cell.faults = Some(fm);
        }
        select_with_faults(&cell.matrix, cell.faults.as_ref(), policy)
    }

    /// Measure the standard fault grid for one cell.
    fn compute_fault_matrix(
        &self,
        machine_id: MachineId,
        key: &CellKey,
    ) -> Result<FaultMatrix, String> {
        measure_fault_matrix(machine_id, key.kind, key.ranks, key.bytes)
    }

    /// Run the full algorithm × pattern sweep for one cell.
    fn compute_matrix(
        &self,
        machine_id: MachineId,
        key: &CellKey,
        backend: Backend,
    ) -> Result<BenchMatrix, String> {
        let platform = Platform::try_preset(machine_id, key.ranks)?;
        let algs = experiment_ids(key.kind);
        let cfg = BenchConfig::simulation().with_backend(backend);
        let sw = sweep(&platform, key.kind, &algs, &self.shapes, key.bytes, self.skew, &[], &cfg)
            .map_err(|e| format!("{} @ {} B: {e}", key.kind, key.bytes))?;
        Ok(BenchMatrix::from_sweep(&sw))
    }
}

/// Measure the standard fault grid for one `(machine, collective, ranks,
/// bytes)` cell. Always sim-backed: the analytical model has no fault
/// model. Shared by the store's lazy fault-evidence path and
/// `papctl tune --faults` (which persists the result into the snapshot).
pub fn measure_fault_matrix(
    machine_id: MachineId,
    kind: CollectiveKind,
    ranks: usize,
    bytes: u64,
) -> Result<FaultMatrix, String> {
    let platform = Platform::try_preset(machine_id, ranks)?;
    let algs = experiment_ids(kind);
    let cfg = BenchConfig::simulation();
    let t = no_delay_runtime(&platform, kind, algs[0], bytes, &cfg, 0)
        .map_err(|e| format!("fault grid {kind} @ {bytes} B: {e}"))?;
    let scenarios = standard_grid(ranks, t);
    let sw = fault_sweep(&platform, kind, &algs, bytes, &scenarios, &cfg)
        .map_err(|e| format!("fault grid {kind} @ {bytes} B: {e}"))?;
    Ok(FaultMatrix::from_fault_sweep(&sw))
}

/// Stable wire label of a selection policy.
pub fn policy_label(policy: &SelectionPolicy) -> String {
    match policy {
        SelectionPolicy::NoDelayFastest => "no_delay_fastest".to_string(),
        SelectionPolicy::RobustAverage { .. } => "robust".to_string(),
        SelectionPolicy::BestUnderPattern(p) => format!("best_under:{p}"),
        SelectionPolicy::FaultRobust { max_degradation } => {
            format!("fault_robust:{max_degradation}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_arrival::generate;
    use pap_core::{tune_machine, TunePlan};

    fn store(l1: usize, refine: bool) -> TierStore {
        TierStore::new(Arc::new(Stats::new()), l1, DefaultPolicy::Robust, Backend::Model, refine)
    }

    fn seeded_store(l1: usize, refine: bool, sizes: &[u64]) -> TierStore {
        let s = store(l1, refine);
        let platform = Platform::simcluster(8);
        let plan = TunePlan {
            kinds: vec![CollectiveKind::Reduce],
            sizes: sizes.to_vec(),
            ..TunePlan::default()
        };
        let cfg = BenchConfig::simulation().with_backend(Backend::Model);
        let (_, records) = tune_machine(&platform, &plan, &cfg).unwrap();
        s.ingest_records("SimCluster", &records, "model");
        s
    }

    fn query(bytes: u64, arrivals: Option<Vec<f64>>) -> QueryRequest {
        QueryRequest {
            machine: "simcluster".into(),
            collective: CollectiveKind::Reduce,
            bytes,
            ranks: 8,
            arrivals,
        }
    }

    #[test]
    fn tier_progression_l2_then_l1() {
        let s = seeded_store(32, false, &[1024]);
        let (a1, t1) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(a1.tier, Tier::L2);
        assert!(a1.exact);
        assert!(t1.is_none(), "refinement disabled");
        let (a2, _) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(a2.tier, Tier::L1);
        assert_eq!(a2.alg, a1.alg);
        assert_eq!(s.stats().report().tiers.l1_hits, 1);
        assert_eq!(s.stats().report().tiers.l2_exact, 1);
    }

    #[test]
    fn near_lookup_uses_log_distance() {
        let s = seeded_store(0, false, &[8, 32 * 1024]);
        let (a, _) = s.resolve(&query(16 * 1024, None)).unwrap();
        assert_eq!(a.tier, Tier::L2Near);
        assert!(!a.exact);
        assert_eq!(a.evidence_bytes, 32 * 1024);
    }

    #[test]
    fn cold_cell_is_computed_and_published() {
        let s = store(8, false);
        let (a, _) = s.resolve(&query(4096, None)).unwrap();
        assert_eq!(a.tier, Tier::Computed);
        assert_eq!(s.l2_len(), 1);
        // Second identical query is an L1 hit now.
        let (b, _) = s.resolve(&query(4096, None)).unwrap();
        assert_eq!(b.tier, Tier::L1);
        assert_eq!(b.alg, a.alg);
    }

    #[test]
    fn arrival_samples_select_per_pattern() {
        let s = seeded_store(32, false, &[1024]);
        // Skewed samples classify to a shape; policy becomes best_under.
        let proto = generate(Shape::LastDelayed, 8, 1e-3, 0);
        let (a, _) = s.resolve(&query(1024, Some(proto.delays.clone()))).unwrap();
        assert_eq!(a.pattern, "last_delayed");
        assert!(a.policy.starts_with("best_under:"));
        assert!(a.similarity > 0.99);
        // Flat samples mean "synchronized": status-quo winner.
        let (b, _) = s.resolve(&query(1024, Some(vec![0.0; 8]))).unwrap();
        assert_eq!(b.policy, "no_delay_fastest");
        assert_eq!(b.pattern, "no_delay");
    }

    #[test]
    fn refinement_upgrades_generation_and_invalidates_l1() {
        let s = seeded_store(32, true, &[1024]);
        let (a, ticket) = s.resolve(&query(1024, None)).unwrap();
        assert!(a.refine_scheduled);
        let key = ticket.expect("model-backed cell should schedule refinement");
        s.refine(&key);
        let report = s.stats().report();
        assert_eq!(report.tiers.refines_applied, 1);
        // The L1 entry from generation 0 is stale: next query re-selects
        // from the upgraded sim evidence at generation 1.
        let (b, t2) = s.resolve(&query(1024, None)).unwrap();
        assert_ne!(b.tier, Tier::L1);
        assert_eq!(b.generation, 1);
        assert_eq!(b.backend, "sim");
        assert!(t2.is_none(), "sim-backed cells do not re-refine");
    }

    #[test]
    fn duplicate_refinement_is_not_scheduled() {
        let s = seeded_store(0, true, &[1024]);
        let (_, t1) = s.resolve(&query(1024, None)).unwrap();
        assert!(t1.is_some());
        let (a2, t2) = s.resolve(&query(1024, None)).unwrap();
        assert!(t2.is_none(), "already in flight");
        assert!(!a2.refine_scheduled);
        assert_eq!(s.stats().report().tiers.refines_scheduled, 1);
    }

    fn fault_store(l1: usize) -> TierStore {
        TierStore::new(
            Arc::new(Stats::new()),
            l1,
            DefaultPolicy::FaultRobust { max_degradation: 1.0 },
            Backend::Model,
            false,
        )
    }

    #[test]
    fn default_policy_parses_fault_robust() {
        assert_eq!(
            "fault_robust".parse::<DefaultPolicy>().unwrap(),
            DefaultPolicy::FaultRobust { max_degradation: 1.0 }
        );
        assert_eq!(
            "fault_robust:0.5".parse::<DefaultPolicy>().unwrap(),
            DefaultPolicy::FaultRobust { max_degradation: 0.5 }
        );
        assert!("fault_robust:nope".parse::<DefaultPolicy>().is_err());
        assert!("fault_robust:-1".parse::<DefaultPolicy>().is_err());
    }

    #[test]
    fn fault_robust_routing_computes_cold_cells_with_fault_evidence() {
        let s = fault_store(32);
        let (a, _) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(a.tier, Tier::Computed);
        assert_eq!(a.policy, "fault_robust:1");
        // The published cell carries the fault grid: the next query resolves
        // from L1 without re-measuring.
        let (b, _) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(b.tier, Tier::L1);
        assert_eq!(b.alg, a.alg);
    }

    #[test]
    fn fault_robust_routing_adds_lazy_evidence_to_seeded_cells() {
        let s = fault_store(32);
        let platform = Platform::simcluster(8);
        let plan = TunePlan {
            kinds: vec![CollectiveKind::Reduce],
            sizes: vec![1024],
            ..TunePlan::default()
        };
        let cfg = BenchConfig::simulation().with_backend(Backend::Model);
        let (_, records) = tune_machine(&platform, &plan, &cfg).unwrap();
        s.ingest_records("SimCluster", &records, "model");
        // Seeded cells have no fault evidence; the first fault-robust query
        // measures it lazily and still answers from L2.
        let (a, _) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(a.tier, Tier::L2);
        assert!(a.policy.starts_with("fault_robust"));
        let (b, _) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(b.tier, Tier::L1, "fault evidence is cached on the cell");
        assert_eq!(b.alg, a.alg);
        // Queries carrying arrival samples keep their per-pattern policy:
        // the fault grid only backs pattern-less routing.
        let proto = generate(Shape::LastDelayed, 8, 1e-3, 0);
        let (c, _) = s.resolve(&query(1024, Some(proto.delays.clone()))).unwrap();
        assert!(c.policy.starts_with("best_under:"));
    }

    #[test]
    fn snapshot_fault_evidence_serves_without_remeasurement() {
        use crate::snapshot::Snapshot;
        use pap_microbench::FAULT_GRID_VERSION;

        let platform = Platform::simcluster(8);
        let plan = TunePlan {
            kinds: vec![CollectiveKind::Reduce],
            sizes: vec![1024],
            ..TunePlan::default()
        };
        let cfg = BenchConfig::simulation().with_backend(Backend::Model);
        let (_, records) = tune_machine(&platform, &plan, &cfg).unwrap();
        let mut snap = Snapshot::from_records("SimCluster", 8, "model", &records);
        // Doctored-but-valid fault evidence: a scenario set the fault-grid
        // measurement would never produce, picking alg 2. If the store
        // re-measured on query, both the answer and the stored evidence
        // would differ.
        snap.cells[0].faults = Some(FaultMatrix {
            kind: snap.cells[0].entry.kind,
            bytes: snap.cells[0].entry.bytes,
            algs: vec![1, 2],
            scenarios: vec!["clean".into(), "doctored".into()],
            values: vec![vec![Some(1.0), Some(1.5)], vec![None, Some(1.6)]],
            statically_decided: Vec::new(),
            grid_version: FAULT_GRID_VERSION,
        });
        let snap = Snapshot::from_json(&snap.to_json()).unwrap();

        let s = fault_store(32);
        s.ingest_snapshot(&snap);
        let (a, _) = s.resolve(&query(1024, None)).unwrap();
        assert_eq!(a.tier, Tier::L2);
        assert_eq!(a.alg, 2, "the answer must come from the snapshot's fault evidence");
        let key = CellKey {
            machine: "SimCluster".into(),
            kind: CollectiveKind::Reduce,
            ranks: 8,
            bytes: 1024,
        };
        let l2 = s.l2.read().unwrap();
        let fm = l2.get(&key).unwrap().faults.as_ref().expect("evidence survives ingest");
        assert_eq!(fm.scenarios, vec!["clean", "doctored"], "no fault re-measurement happened");
    }

    #[test]
    fn replica_pages_rebuild_an_identical_store() {
        let donor = seeded_store(0, false, &[8, 1024, 32 * 1024]);
        let (total, _) = donor.export_cells(0, 0);
        assert_eq!(total, donor.l2_len());

        // Drain page by page (page size 2 over 3 cells exercises a partial
        // last page) into a cold replica.
        let replica = store(0, false);
        let mut offset = 0;
        loop {
            let (total, page) = donor.export_cells(offset, 2);
            if page.is_empty() {
                assert!(offset >= total);
                break;
            }
            replica.ingest_replica(&page).unwrap();
            offset += page.len();
        }
        assert_eq!(replica.l2_len(), donor.l2_len());

        // The replica answers the same way the donor does, straight from L2.
        let (a, _) = donor.resolve(&query(1024, None)).unwrap();
        let (b, _) = replica.resolve(&query(1024, None)).unwrap();
        assert_eq!(b.tier, Tier::L2);
        assert_eq!((b.alg, b.generation, &b.backend), (a.alg, a.generation, &a.backend));

        // Export order is stable: two drains see the same pages.
        assert_eq!(donor.export_cells(0, 10).1, replica.export_cells(0, 10).1);
    }

    #[test]
    fn replica_validation_rejects_crossed_fault_evidence() {
        use pap_microbench::FAULT_GRID_VERSION;
        let donor = seeded_store(0, false, &[1024]);
        let (_, mut page) = donor.export_cells(0, 10);
        page[0].faults = Some(FaultMatrix {
            kind: page[0].collective,
            bytes: page[0].bytes + 1, // crossed: evidence for a different size
            algs: vec![1, 2],
            scenarios: vec!["clean".into()],
            values: vec![vec![Some(1.0), Some(1.5)]],
            statically_decided: Vec::new(),
            grid_version: FAULT_GRID_VERSION,
        });
        let replica = store(0, false);
        let err = replica.ingest_replica(&page).unwrap_err();
        assert!(err.contains("fault evidence"), "{err}");
        assert_eq!(replica.l2_len(), 0, "nothing ingested on validation failure");

        // Stale grid versions are rejected too.
        page[0].faults.as_mut().unwrap().bytes -= 1;
        page[0].faults.as_mut().unwrap().grid_version = FAULT_GRID_VERSION - 1;
        assert!(replica.ingest_replica(&page).unwrap_err().contains("fault grid"));

        // And a status-quo pick outside the matrix.
        page[0].faults = None;
        page[0].status_quo = 99;
        assert!(replica.ingest_replica(&page).unwrap_err().contains("status-quo"));
    }

    #[test]
    fn calibrate_onboards_a_custom_machine() {
        use pap_calibrate::{synthesize_probe, ProbeConfig};
        let s = store(32, true);
        let cfg = ProbeConfig { reps: 1, noise: false, clock_sync: false, ..Default::default() };
        let probe = synthesize_probe(MachineId::Hydra, "store-onboard", &cfg).unwrap();
        let req = CalibrateRequest { name: "store-onboard".into(), ranks: 8, probe };
        let (a, tickets) = s.calibrate(&req).unwrap();
        assert_eq!(a.machine, "custom:store-onboard");
        assert!(a.l2_cells > 0);
        assert_eq!(a.refine_scheduled, tickets.len());
        assert_eq!(s.l2_len(), a.l2_cells);
        assert!(a.fit.median_rel_residual < 0.01, "noise-free fit should be tight");
        // A cold store now answers for the fitted machine straight from L2.
        let q = QueryRequest { machine: "custom:store-onboard".into(), ..query(1024, None) };
        let (ans, _) = s.resolve(&q).unwrap();
        assert_eq!(ans.tier, Tier::L2);
        assert_eq!(ans.machine, "custom:store-onboard");
        // Draining one ticket upgrades its cell to sim evidence.
        s.refine(&tickets[0]);
        assert_eq!(s.stats().report().tiers.refines_applied, 1);
    }

    #[test]
    fn rejected_probe_registers_nothing() {
        use pap_calibrate::{synthesize_probe, ProbeConfig};
        let s = store(8, false);
        let cfg = ProbeConfig { reps: 1, noise: false, clock_sync: false, ..Default::default() };
        let mut probe = synthesize_probe(MachineId::Hydra, "store-reject", &cfg).unwrap();
        for obs in &mut probe.ladder {
            for t in &mut obs.reps {
                *t = 1e-3; // flat times: zero bandwidth signal
            }
        }
        let req = CalibrateRequest { name: "store-reject".into(), ranks: 8, probe };
        let err = s.calibrate(&req).unwrap_err();
        assert!(err.contains("calibration rejected"), "{err}");
        assert_eq!(s.l2_len(), 0);
        // The name parses (interned) but the machine has no calibration, so
        // queries for it stay client errors.
        let q = QueryRequest { machine: "custom:store-reject".into(), ..query(1024, None) };
        assert!(s.resolve(&q).unwrap_err().contains("no registered calibration"));
    }

    #[test]
    fn invalid_queries_are_client_errors() {
        let s = store(8, false);
        assert!(s.resolve(&query(8, Some(vec![0.0; 3]))).unwrap_err().contains("samples"));
        assert!(s
            .resolve(&QueryRequest { machine: "nope".into(), ..query(8, None) })
            .is_err());
        assert!(s
            .resolve(&QueryRequest { ranks: 1_000_000, ..query(8, None) })
            .unwrap_err()
            .contains("capacity"));
        assert!(s
            .resolve(&QueryRequest { ranks: 1, ..query(8, None) })
            .unwrap_err()
            .contains("at least 2"));
        assert!(s
            .resolve(&query(8, Some(vec![f64::NAN; 8])))
            .unwrap_err()
            .contains("non-finite"));
    }
}
