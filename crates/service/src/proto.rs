//! The `papd` wire protocol: newline-delimited JSON frames over TCP.
//!
//! Every frame is one line: a JSON object terminated by `'\n'`, at most
//! [`MAX_FRAME_BYTES`] long. Requests are [`RequestEnvelope`]s, replies
//! [`ReplyEnvelope`]s; the server answers frames of one connection in
//! arrival order, so clients may pipeline any number of requests before
//! reading replies and match them up by `id` (the server echoes it
//! verbatim).
//!
//! Versioning: both envelopes carry `v` ([`PROTO_VERSION`]). The server
//! rejects other versions with a [`ErrorCode::VersionMismatch`] error reply
//! instead of guessing at field semantics. Unknown *extra* fields in
//! requests are ignored (forward compatibility); unknown request variants
//! and missing fields are [`ErrorCode::BadRequest`]. A frame that is not
//! valid JSON at all — including a truncated one — is
//! [`ErrorCode::BadFrame`]. None of these conditions terminates the
//! connection or the worker: the server replies and keeps reading.

use pap_core::{BenchMatrix, FaultMatrix};
use serde::{Deserialize, Serialize};

use pap_collectives::CollectiveKind;

/// Current protocol version carried in every envelope.
pub const PROTO_VERSION: u32 = 1;

/// Hard upper bound on one frame (request or reply line), in bytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version ([`PROTO_VERSION`]).
    pub v: u32,
    /// Client-chosen correlation ID, echoed in the reply.
    pub id: u64,
    /// The request body.
    pub req: Request,
}

/// The request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Ask which algorithm to use for a collective invocation.
    Query(QueryRequest),
    /// Fetch the server's observability counters.
    Stats,
    /// Fetch the generic metrics snapshot (the server's `pap-obs` registry
    /// plus process-global library metrics). Richer and more extensible
    /// than [`Request::Stats`], which is kept for compatibility.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Pull a page of this server's L2 evidence cells (warm replication: a
    /// booting fleet shard drains a peer page by page and starts hot).
    Replicate {
        /// Index of the first cell to return, in the server's stable export
        /// order.
        offset: usize,
        /// Maximum cells in the reply (the server clamps to keep the frame
        /// under [`MAX_FRAME_BYTES`]).
        limit: usize,
    },
    /// Onboard an unseen machine from a measured probe: the server fits
    /// platform parameters inline (`pap-calibrate`), registers the machine
    /// as a `custom:<name>` preset, publishes a model-backed L2 grid for
    /// it, and schedules background sim refinement of those cells.
    Calibrate(CalibrateRequest),
    /// Ask the server to shut down gracefully (drain in-flight work).
    Shutdown,
}

/// An online calibration request: a measured probe plus the name the
/// fitted machine should be served under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrateRequest {
    /// Name to register the fitted machine under (served as
    /// `custom:<name>`; lowercase letters, digits, `.`, `_`, `-`).
    pub name: String,
    /// Rank count to pre-tune the published L2 grid at.
    pub ranks: usize,
    /// The measured probe (its own `format` field versions the payload
    /// independently of [`PROTO_VERSION`]).
    pub probe: pap_calibrate::Probe,
}

/// The answer to a [`Request::Calibrate`]: the accepted fit and what the
/// server published from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrateAnswer {
    /// Canonical machine name queries should use (`custom:<name>`).
    pub machine: String,
    /// The accepted fit: parameters plus residual diagnostics.
    pub fit: pap_calibrate::FitReport,
    /// L2 evidence cells published for the new machine.
    pub l2_cells: usize,
    /// Background sim refinements scheduled over those cells.
    pub refine_scheduled: usize,
}

/// An algorithm-selection query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Machine preset name (`simcluster`, `hydra`, `galileo100`,
    /// `discoverer`; case-insensitive, aliases accepted).
    pub machine: String,
    /// Collective kind (e.g. `"Alltoall"`; the serialized
    /// [`CollectiveKind`]).
    pub collective: CollectiveKind,
    /// Message size in bytes (collective byte convention).
    pub bytes: u64,
    /// Number of MPI ranks.
    pub ranks: usize,
    /// Optional per-rank arrival samples, one entry per rank: delays or raw
    /// arrival timestamps in seconds (absolute offset and scale are
    /// irrelevant — only the imbalance profile is classified). `null` means
    /// "arrival pattern unknown": the server answers with its default
    /// policy.
    pub arrivals: Option<Vec<f64>>,
}

/// One reply frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyEnvelope {
    /// Protocol version ([`PROTO_VERSION`]).
    pub v: u32,
    /// The `id` of the request this answers (0 when the request was too
    /// malformed to carry one).
    pub id: u64,
    /// The reply body.
    pub reply: Reply,
}

/// The reply body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Answer to a [`Request::Query`].
    Answer(QueryAnswer),
    /// Answer to a [`Request::Stats`].
    Stats(StatsReport),
    /// Answer to a [`Request::Metrics`].
    Metrics(pap_obs::MetricsSnapshot),
    /// Answer to a [`Request::Ping`].
    Pong,
    /// Answer to a [`Request::Replicate`]: one page of L2 evidence.
    Replica(ReplicaDump),
    /// Answer to a [`Request::Calibrate`].
    Calibrated(CalibrateAnswer),
    /// Acknowledgement of a [`Request::Shutdown`]; the server drains and
    /// exits after sending it.
    Bye,
    /// The request could not be served.
    Error(ErrorReply),
}

/// Which tier of the store resolved a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// In-memory LRU of fully resolved answers.
    L1,
    /// Precomputed tuning evidence, exact (machine, collective, ranks,
    /// bytes) match.
    L2,
    /// Precomputed tuning evidence, nearest message size in log-space (no
    /// exact entry existed).
    L2Near,
    /// No precomputed evidence: the answer was computed on demand from the
    /// analytical model backend (and sim refinement may have been
    /// scheduled).
    Computed,
}

impl Tier {
    /// Stable lower-case label (used in stats and logs).
    pub fn label(self) -> &'static str {
        match self {
            Tier::L1 => "l1",
            Tier::L2 => "l2",
            Tier::L2Near => "l2_near",
            Tier::Computed => "computed",
        }
    }

    /// Human wording for interactive output (`papctl query`): what serving
    /// from this tier actually meant.
    pub fn describe(self) -> &'static str {
        match self {
            Tier::L1 => "L1 answer cache",
            Tier::L2 => "L2 evidence, exact size",
            Tier::L2Near => "L2 evidence, nearest size",
            Tier::Computed => "computed inline",
        }
    }
}

/// The answer to a selection query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// Canonical machine name the decision is for.
    pub machine: String,
    /// Collective kind.
    pub collective: CollectiveKind,
    /// Rank count.
    pub ranks: usize,
    /// Requested message size (bytes).
    pub bytes: u64,
    /// The selected algorithm ID (Table II numbering).
    pub alg: u8,
    /// Human-readable policy that produced the choice (e.g. `"robust"` or
    /// `"best_under:last_delayed"`).
    pub policy: String,
    /// The arrival pattern the query was classified to (`"no_delay"` when
    /// no samples were given and the default policy ignores patterns).
    pub pattern: String,
    /// Cosine similarity of the classification in `[-1, 1]` (1.0 when no
    /// samples were given).
    pub similarity: f64,
    /// Which tier resolved the answer.
    pub tier: Tier,
    /// Whether the evidence matched the requested message size exactly
    /// (false for [`Tier::L2Near`]).
    pub exact: bool,
    /// Message size of the evidence cell actually used.
    pub evidence_bytes: u64,
    /// Backend that produced the evidence (`"model"` or `"sim"`).
    pub backend: String,
    /// Evidence generation; bumped when an L3 sim refinement upgrades the
    /// cell.
    pub generation: u64,
    /// Whether this query scheduled a background sim refinement.
    pub refine_scheduled: bool,
}

/// Machine-readable error reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Error classes of [`ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame was not a JSON object with `v` and `id` (includes
    /// truncated JSON and oversized frames).
    BadFrame,
    /// The envelope's `v` differs from the server's [`PROTO_VERSION`].
    VersionMismatch,
    /// The envelope parsed but the request body did not (unknown variant,
    /// missing field, bad enum value) or failed validation.
    BadRequest,
    /// The server failed internally while answering.
    Internal,
}

/// Serialize a frame: one compact JSON line terminated by `'\n'`.
pub fn encode_frame<T: Serialize>(value: &T) -> String {
    let mut line = serde_json::to_string(value).expect("wire types are serializable");
    line.push('\n');
    line
}

/// Envelope prefix used to salvage `v`/`id` from requests whose body does
/// not parse (so the error reply can still carry the right correlation ID).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RawEnvelope {
    v: u32,
    id: u64,
}

/// Decode failure: the error reply the server should send instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// Correlation ID to echo (0 if unknown).
    pub id: u64,
    /// Error class.
    pub code: ErrorCode,
    /// Detail message.
    pub message: String,
}

/// Decode one request line (without the trailing newline).
///
/// Stage 1 parses only `{v, id}`: failure is [`ErrorCode::BadFrame`] with
/// `id = 0`. Stage 2 checks the version ([`ErrorCode::VersionMismatch`]),
/// then parses the full envelope ([`ErrorCode::BadRequest`] on failure) —
/// both with the salvaged `id`.
pub fn decode_request(line: &str) -> Result<RequestEnvelope, DecodeError> {
    let raw: RawEnvelope = serde_json::from_str(line).map_err(|e| DecodeError {
        id: 0,
        code: ErrorCode::BadFrame,
        message: format!("malformed frame: {e}"),
    })?;
    if raw.v != PROTO_VERSION {
        return Err(DecodeError {
            id: raw.id,
            code: ErrorCode::VersionMismatch,
            message: format!("protocol version {} not supported (server speaks {PROTO_VERSION})", raw.v),
        });
    }
    serde_json::from_str(line).map_err(|e| DecodeError {
        id: raw.id,
        code: ErrorCode::BadRequest,
        message: format!("bad request body: {e}"),
    })
}

/// Decode one reply line (client side).
pub fn decode_reply(line: &str) -> Result<ReplyEnvelope, String> {
    let env: ReplyEnvelope =
        serde_json::from_str(line).map_err(|e| format!("malformed reply frame: {e}"))?;
    if env.v != PROTO_VERSION {
        return Err(format!("server speaks protocol version {}, client speaks {PROTO_VERSION}", env.v));
    }
    Ok(env)
}

/// Convenience constructor for an error reply envelope.
pub fn error_reply(id: u64, code: ErrorCode, message: impl Into<String>) -> ReplyEnvelope {
    ReplyEnvelope {
        v: PROTO_VERSION,
        id,
        reply: Reply::Error(ErrorReply { code, message: message.into() }),
    }
}

/// One L2 evidence cell in a [`ReplicaDump`] page: the cell's identity plus
/// everything a replica needs to serve it verbatim — benchmark matrix,
/// optional fault evidence, producing backend, and generation (so L1
/// entries derived from a replicated cell stay comparable to the donor's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaCell {
    /// Canonical machine name the evidence is for.
    pub machine: String,
    /// Collective kind.
    pub collective: CollectiveKind,
    /// Rank count.
    pub ranks: usize,
    /// Message size in bytes.
    pub bytes: u64,
    /// The machine's status-quo (fixed production default) algorithm ID.
    pub status_quo: u8,
    /// The `(pattern × algorithm)` evidence grid.
    pub matrix: BenchMatrix,
    /// Degraded-mode evidence, when the donor had any for this cell.
    #[serde(default)]
    pub faults: Option<FaultMatrix>,
    /// Backend that produced the evidence (`"model"` or `"sim"`).
    pub backend: String,
    /// Donor's evidence generation for the cell.
    pub generation: u64,
}

/// One page of a server's L2 store ([`Reply::Replica`]). Pages are stable
/// under a fixed store: the export order is sorted by cell key, so a client
/// paging `offset = 0, n, 2n, …` sees every cell exactly once as long as
/// the donor's store does not change mid-drain (late inserts may be missed
/// until the next drain — warm replication is best-effort, not a log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaDump {
    /// Total cells in the donor's L2 store at reply time.
    pub total: usize,
    /// Offset this page starts at (echoed from the request).
    pub offset: usize,
    /// The cells, in stable export order.
    pub cells: Vec<ReplicaCell>,
}

/// Latency histogram bucket of a [`StatsReport`] (cumulative-style upper
/// bounds, fixed at server start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBucket {
    /// Inclusive upper bound of the bucket in microseconds;
    /// `u64::MAX` marks the overflow bucket.
    pub le_us: u64,
    /// Number of requests whose handling latency fell in this bucket.
    pub count: u64,
}

/// Per-endpoint request counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EndpointCounters {
    /// `Query` requests served (including error replies to them).
    pub query: u64,
    /// `Stats` requests served.
    pub stats: u64,
    /// `Ping` requests served.
    pub ping: u64,
    /// `Shutdown` requests served.
    pub shutdown: u64,
    /// `Calibrate` requests served. Defaults on deserialize so reports
    /// from pre-calibration servers still load.
    #[serde(default)]
    pub calibrate: u64,
    /// Error replies sent (any endpoint, including undecodable frames).
    pub error: u64,
}

/// Per-tier cache counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TierCounters {
    /// Queries answered from the L1 LRU.
    pub l1_hits: u64,
    /// Queries answered from an exact L2 cell.
    pub l2_exact: u64,
    /// Queries answered from the nearest-size L2 cell.
    pub l2_near: u64,
    /// Queries with no usable precomputed evidence (computed on demand).
    pub miss: u64,
    /// Background sim refinements scheduled.
    pub refines_scheduled: u64,
    /// Refinements that completed and upgraded a cell.
    pub refines_applied: u64,
    /// Refinements dropped (shutdown, stale generation, or failure).
    pub refines_dropped: u64,
}

/// The server's observability snapshot (`Stats` endpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Per-endpoint request counters.
    pub endpoints: EndpointCounters,
    /// Per-tier cache counters.
    pub tiers: TierCounters,
    /// Connections accepted since start.
    pub connections: u64,
    /// Request frames read since start.
    pub frames: u64,
    /// Number of L2 evidence cells currently held.
    pub l2_cells: usize,
    /// Number of resolved answers currently in the L1 LRU.
    pub l1_entries: usize,
    /// Whether the L2 store was loaded from a snapshot file.
    pub snapshot_loaded: bool,
    /// Whether the server ran a tuning sweep at startup.
    pub tuned_at_startup: bool,
    /// Server uptime in seconds.
    pub uptime_s: f64,
    /// Fixed-bucket request-handling latency histogram.
    pub latency: Vec<LatencyBucket>,
}

impl StatsReport {
    /// Render the report as the aligned text table `papctl query --stats`
    /// and the CI smoke job print.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "papd stats (uptime {:.1}s, {} connections, {} frames)\n",
            self.uptime_s, self.connections, self.frames
        ));
        out.push_str(&format!(
            "endpoints:  query {:>8}  stats {:>6}  ping {:>6}  calibrate {:>3}  shutdown {:>3}  errors {:>6}\n",
            self.endpoints.query,
            self.endpoints.stats,
            self.endpoints.ping,
            self.endpoints.calibrate,
            self.endpoints.shutdown,
            self.endpoints.error
        ));
        out.push_str(&format!(
            "tiers:      l1 {:>8}  l2 {:>8}  l2_near {:>6}  miss {:>6}\n",
            self.tiers.l1_hits, self.tiers.l2_exact, self.tiers.l2_near, self.tiers.miss
        ));
        out.push_str(&format!(
            "refine:     scheduled {:>4}  applied {:>4}  dropped {:>4}\n",
            self.tiers.refines_scheduled, self.tiers.refines_applied, self.tiers.refines_dropped
        ));
        out.push_str(&format!(
            "store:      l2 cells {:>5}  l1 entries {:>5}  snapshot_loaded {}  tuned_at_startup {}\n",
            self.l2_cells, self.l1_entries, self.snapshot_loaded, self.tuned_at_startup
        ));
        out.push_str("latency:    ");
        let total: u64 = self.latency.iter().map(|b| b.count).sum();
        if total == 0 {
            out.push_str("(no requests)\n");
        } else {
            out.push_str(&format!(
                "p50 {}  p99 {}  |  ",
                self.latency_quantile_label(0.50),
                self.latency_quantile_label(0.99)
            ));
            let mut parts = Vec::new();
            for b in &self.latency {
                if b.count == 0 {
                    continue;
                }
                let label = if b.le_us == u64::MAX {
                    "inf".to_string()
                } else {
                    format!("{}us", b.le_us)
                };
                parts.push(format!("<={label}: {}", b.count));
            }
            out.push_str(&parts.join("  "));
            out.push('\n');
        }
        out
    }

    /// Upper-bound label of the bucket holding the `q`-quantile request
    /// (`"<=100us"`, `"<=inf"`). Histograms only bound quantiles from
    /// above, so the label reports the bucket edge, not an interpolated
    /// value. Returns `"n/a"` when the histogram is empty.
    pub fn latency_quantile_label(&self, q: f64) -> String {
        let total: u64 = self.latency.iter().map(|b| b.count).sum();
        if total == 0 {
            return "n/a".to_string();
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for b in &self.latency {
            cum += b.count;
            if cum >= target {
                return if b.le_us == u64::MAX {
                    "<=inf".to_string()
                } else {
                    format!("<={}us", b.le_us)
                };
            }
        }
        "<=inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let env = RequestEnvelope {
            v: PROTO_VERSION,
            id: 42,
            req: Request::Query(QueryRequest {
                machine: "simcluster".into(),
                collective: CollectiveKind::Alltoall,
                bytes: 32768,
                ranks: 16,
                arrivals: Some(vec![0.0, 1e-4, 2e-4]),
            }),
        };
        let line = encode_frame(&env);
        assert!(line.ends_with('\n'));
        let back = decode_request(line.trim_end()).unwrap();
        assert_eq!(back, env);
        // Unit-variant requests too.
        for req in [Request::Stats, Request::Metrics, Request::Ping, Request::Shutdown] {
            let env = RequestEnvelope { v: PROTO_VERSION, id: 7, req: req.clone() };
            assert_eq!(decode_request(encode_frame(&env).trim_end()).unwrap().req, req);
        }
        // The replication request carries its paging window.
        let req = Request::Replicate { offset: 32, limit: 16 };
        let env = RequestEnvelope { v: PROTO_VERSION, id: 8, req: req.clone() };
        assert_eq!(decode_request(encode_frame(&env).trim_end()).unwrap().req, req);
    }

    #[test]
    fn calibrate_frames_round_trip() {
        let probe = pap_calibrate::synthesize_probe(
            pap_sim::MachineId::SimCluster,
            "wiretest",
            &pap_calibrate::ProbeConfig { reps: 1, noise: false, ..Default::default() },
        )
        .unwrap();
        let req = Request::Calibrate(CalibrateRequest {
            name: "wiretest".into(),
            ranks: 16,
            probe,
        });
        let env = RequestEnvelope { v: PROTO_VERSION, id: 21, req: req.clone() };
        assert_eq!(decode_request(encode_frame(&env).trim_end()).unwrap().req, req);
    }

    #[test]
    fn old_stats_reports_load_without_the_calibrate_counter() {
        // A report serialized before the Calibrate endpoint existed has no
        // `calibrate` field; it must still deserialize (as 0).
        let json = "{\"query\":5,\"stats\":1,\"ping\":2,\"shutdown\":0,\"error\":3}";
        let c: EndpointCounters = serde_json::from_str(json).unwrap();
        assert_eq!((c.query, c.calibrate, c.error), (5, 0, 3));
    }

    #[test]
    fn metrics_reply_round_trips() {
        let reg = pap_obs::Registry::new();
        reg.counter("x").add(3);
        reg.histogram("h_us", &[10, 100]).record(42);
        let env = ReplyEnvelope {
            v: PROTO_VERSION,
            id: 11,
            reply: Reply::Metrics(reg.snapshot()),
        };
        let back = decode_reply(encode_frame(&env).trim_end()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn bad_frames_classify_correctly() {
        // Not JSON at all → BadFrame, id unknown.
        let e = decode_request("not json").unwrap_err();
        assert_eq!((e.id, e.code), (0, ErrorCode::BadFrame));
        // Truncated JSON → BadFrame.
        let e = decode_request("{\"v\":1,\"id\":3,\"req\":{\"Qu").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadFrame);
        // Version mismatch detected before body parsing, id salvaged.
        let e = decode_request("{\"v\":99,\"id\":5,\"req\":\"Nonsense\"}").unwrap_err();
        assert_eq!((e.id, e.code), (5, ErrorCode::VersionMismatch));
        // Unknown request variant → BadRequest with salvaged id.
        let e = decode_request("{\"v\":1,\"id\":6,\"req\":\"Nonsense\"}").unwrap_err();
        assert_eq!((e.id, e.code), (6, ErrorCode::BadRequest));
        // Bad enum value inside the body → BadRequest.
        let e = decode_request(
            "{\"v\":1,\"id\":8,\"req\":{\"Query\":{\"machine\":\"simcluster\",\
             \"collective\":\"Quicksort\",\"bytes\":8,\"ranks\":4,\"arrivals\":null}}}",
        )
        .unwrap_err();
        assert_eq!((e.id, e.code), (8, ErrorCode::BadRequest));
    }

    #[test]
    fn extra_fields_are_forward_compatible() {
        // A newer client may add fields; the server must ignore them.
        let line = "{\"v\":1,\"id\":9,\"future\":true,\"req\":\"Ping\"}";
        assert_eq!(decode_request(line).unwrap().req, Request::Ping);
    }

    #[test]
    fn reply_frames_round_trip() {
        let env = error_reply(3, ErrorCode::BadRequest, "nope");
        let back = decode_reply(encode_frame(&env).trim_end()).unwrap();
        assert_eq!(back, env);
        assert!(decode_reply("{\"v\":2,\"id\":0,\"reply\":\"Pong\"}").is_err());
    }

    #[test]
    fn stats_table_renders() {
        let mut report = StatsReport {
            endpoints: EndpointCounters { query: 10, ..Default::default() },
            tiers: TierCounters { l1_hits: 7, l2_exact: 3, ..Default::default() },
            connections: 2,
            frames: 12,
            l2_cells: 9,
            l1_entries: 3,
            snapshot_loaded: true,
            tuned_at_startup: false,
            uptime_s: 1.5,
            latency: vec![LatencyBucket { le_us: 100, count: 10 }, LatencyBucket { le_us: u64::MAX, count: 0 }],
        };
        let t = report.render_table();
        assert!(t.contains("l1        7"));
        assert!(t.contains("<=100us: 10"));
        report.latency.clear();
        assert!(report.render_table().contains("(no requests)"));
    }

    #[test]
    fn latency_summary_quantiles_are_bucket_edges() {
        // 90 requests <=10us, 9 more <=100us, 1 overflow: p50 falls in the
        // first bucket, p99 exactly closes the second (90 + 9 = 99), and
        // the full distribution tops out in the overflow bucket.
        let report = StatsReport {
            endpoints: EndpointCounters::default(),
            tiers: TierCounters::default(),
            connections: 1,
            frames: 100,
            l2_cells: 0,
            l1_entries: 0,
            snapshot_loaded: false,
            tuned_at_startup: false,
            uptime_s: 2.0,
            latency: vec![
                LatencyBucket { le_us: 10, count: 90 },
                LatencyBucket { le_us: 100, count: 9 },
                LatencyBucket { le_us: u64::MAX, count: 1 },
            ],
        };
        assert_eq!(report.latency_quantile_label(0.50), "<=10us");
        assert_eq!(report.latency_quantile_label(0.99), "<=100us");
        assert_eq!(report.latency_quantile_label(1.0), "<=inf");
        // Golden line: summary columns first, then the bucket breakdown.
        let t = report.render_table();
        assert!(
            t.contains("latency:    p50 <=10us  p99 <=100us  |  <=10us: 90  <=100us: 9  <=inf: 1"),
            "latency line changed:\n{t}"
        );
        let empty = StatsReport { latency: vec![], ..report };
        assert_eq!(empty.latency_quantile_label(0.5), "n/a");
    }
}
