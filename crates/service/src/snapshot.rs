//! Warm-restart snapshots: the tuning-table-with-evidence file format
//! shared by `papctl tune --out` (writer) and `papd --snapshot` (reader).
//!
//! A snapshot retains the full [`BenchMatrix`] per cell, not just the final
//! decision, so a restarted daemon can re-apply *any* selection policy —
//! including per-pattern `best_under:<shape>` picks for queries that carry
//! arrival samples — without re-running the tuning sweep.

use pap_core::{BenchMatrix, FaultMatrix, TuneRecord, TuningEntry, TuningTable};
use pap_microbench::FAULT_GRID_VERSION;
use serde::{Deserialize, Serialize};

/// Current snapshot file format version.
pub const SNAPSHOT_FORMAT: u32 = 1;

/// One tuned cell: the decision plus the evidence it was made from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotCell {
    /// The robust-policy decision for this cell.
    pub entry: TuningEntry,
    /// What the status-quo (no-delay-fastest) policy would have picked.
    pub status_quo: u8,
    /// The benchmark matrix backing the decision.
    pub matrix: BenchMatrix,
    /// Degraded-mode evidence (`papctl tune --faults`): lets a restarted
    /// `papd --policy fault_robust` answer without re-measuring the fault
    /// grid. Absent in snapshots written without `--faults`.
    #[serde(default)]
    pub faults: Option<FaultMatrix>,
}

/// A persisted tuning run: everything `papd` needs for an L2 warm start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// File format version ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Canonical machine name the cells were tuned on.
    pub machine: String,
    /// Rank count the cells were tuned at.
    pub ranks: usize,
    /// Backend that produced the evidence (`"model"` or `"sim"`).
    pub backend: String,
    /// All tuned cells.
    pub cells: Vec<SnapshotCell>,
}

impl Snapshot {
    /// Build a snapshot from a tuning run's per-cell evidence.
    pub fn from_records(machine: &str, ranks: usize, backend: &str, records: &[TuneRecord]) -> Self {
        Snapshot {
            format: SNAPSHOT_FORMAT,
            machine: machine.to_string(),
            ranks,
            backend: backend.to_string(),
            cells: records
                .iter()
                .map(|r| SnapshotCell {
                    entry: r.entry.clone(),
                    status_quo: r.status_quo,
                    matrix: r.matrix.clone(),
                    faults: None,
                })
                .collect(),
        }
    }

    /// The decisions as a plain [`TuningTable`] (what `papctl tune` prints).
    pub fn table(&self) -> TuningTable {
        let mut t = TuningTable::new();
        for cell in &self.cells {
            t.insert(cell.entry.clone());
        }
        t
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshots are serializable")
    }

    /// Parse and validate a snapshot.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let snap: Snapshot = serde_json::from_str(s).map_err(|e| format!("bad snapshot: {e}"))?;
        if snap.format != SNAPSHOT_FORMAT {
            return Err(format!(
                "snapshot format {} not supported (expected {SNAPSHOT_FORMAT})",
                snap.format
            ));
        }
        for (i, cell) in snap.cells.iter().enumerate() {
            if !cell.matrix.algs.contains(&cell.entry.alg) {
                return Err(format!(
                    "snapshot cell {i}: decided alg {} absent from its evidence matrix",
                    cell.entry.alg
                ));
            }
            if let Some(fm) = &cell.faults {
                // Fault grids from a different sweep definition measure
                // different scenarios; serving from them would silently mix
                // incomparable evidence. Reject instead of re-measuring so
                // the operator knows the snapshot is stale.
                if fm.grid_version != FAULT_GRID_VERSION {
                    return Err(format!(
                        "snapshot cell {i}: fault grid v{} does not match current v{FAULT_GRID_VERSION}; \
                         re-run `papctl tune --faults --out`",
                        fm.grid_version
                    ));
                }
                if fm.kind != cell.entry.kind || fm.bytes != cell.entry.bytes {
                    return Err(format!(
                        "snapshot cell {i}: fault evidence is for {} @ {} B, cell is {} @ {} B",
                        fm.kind, fm.bytes, cell.entry.kind, cell.entry.bytes
                    ));
                }
            }
        }
        Ok(snap)
    }

    /// Write the snapshot to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Read and validate a snapshot from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_core::{tune_machine, TunePlan};
    use pap_microbench::BenchConfig;
    use pap_sim::Platform;

    fn tiny_records() -> Vec<TuneRecord> {
        let platform = Platform::simcluster(8);
        let plan = TunePlan {
            kinds: vec![pap_collectives::CollectiveKind::Reduce],
            sizes: vec![64, 4096],
            ..TunePlan::default()
        };
        tune_machine(&platform, &plan, &BenchConfig::simulation()).unwrap().1
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let records = tiny_records();
        let snap = Snapshot::from_records("SimCluster", 8, "model", &records);
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.cells.len(), 2);
        assert_eq!(back.table().len(), 2);
    }

    #[test]
    fn file_round_trip() {
        let records = tiny_records();
        let snap = Snapshot::from_records("SimCluster", 8, "model", &records);
        let dir = std::env::temp_dir().join("pap_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        std::fs::remove_file(&path).ok();
    }

    /// A synthetic-but-valid fault grid for the first tiny cell: alg 2 is
    /// the only one that survives the (made-up) scenario.
    fn doctored_faults(cell: &SnapshotCell) -> FaultMatrix {
        FaultMatrix {
            kind: cell.entry.kind,
            bytes: cell.entry.bytes,
            algs: vec![1, 2],
            scenarios: vec!["clean".into(), "doctored".into()],
            values: vec![vec![Some(1.0), Some(1.5)], vec![None, Some(1.6)]],
            statically_decided: Vec::new(),
            grid_version: FAULT_GRID_VERSION,
        }
    }

    #[test]
    fn fault_evidence_round_trips_and_versions_are_enforced() {
        let records = tiny_records();
        let mut snap = Snapshot::from_records("SimCluster", 8, "model", &records);
        snap.cells[0].faults = Some(doctored_faults(&snap.cells[0]));
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.cells[0].faults.as_ref().unwrap().scenarios[1], "doctored");
        assert!(back.cells[1].faults.is_none());

        // A fault grid from an older sweep definition is rejected outright.
        let mut stale = snap.clone();
        stale.cells[0].faults.as_mut().unwrap().grid_version = FAULT_GRID_VERSION - 1;
        let err = Snapshot::from_json(&stale.to_json()).unwrap_err();
        assert!(err.contains("fault grid"), "{err}");
        assert!(err.contains(&format!("v{FAULT_GRID_VERSION}")), "{err}");

        // Fault evidence must describe the cell it is attached to.
        let mut crossed = snap.clone();
        crossed.cells[0].faults.as_mut().unwrap().bytes += 1;
        assert!(Snapshot::from_json(&crossed.to_json()).unwrap_err().contains("fault evidence"));
    }

    #[test]
    fn pre_fault_snapshots_still_load() {
        // Snapshots written before fault evidence existed have no `faults`
        // key at all; they must keep loading (with lazy re-measurement).
        let records = tiny_records();
        let snap = Snapshot::from_records("SimCluster", 8, "model", &records);
        let legacy = snap.to_json().replace(",\n      \"faults\": null", "");
        assert_ne!(legacy, snap.to_json(), "the faults key should have been stripped");
        let back = Snapshot::from_json(&legacy).unwrap();
        assert!(back.cells.iter().all(|c| c.faults.is_none()));
    }

    #[test]
    fn rejects_wrong_format_and_inconsistent_cells() {
        let records = tiny_records();
        let mut snap = Snapshot::from_records("SimCluster", 8, "model", &records);
        snap.format = 99;
        assert!(Snapshot::from_json(&snap.to_json()).unwrap_err().contains("format 99"));
        snap.format = SNAPSHOT_FORMAT;
        snap.cells[0].entry.alg = 250;
        assert!(Snapshot::from_json(&snap.to_json()).unwrap_err().contains("absent"));
        assert!(Snapshot::from_json("{\"truncated\":").is_err());
    }
}
