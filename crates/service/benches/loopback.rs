//! Loopback query throughput of `papd` (numbers land in
//! BENCH_service.json): pipelined batches over one TCP connection against
//! three cache regimes — warm L1, L2-only (L1 disabled), and cold cells
//! (every query misses and is computed inline from the model backend).

use std::cell::Cell;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pap_collectives::CollectiveKind;
use pap_service::{Client, QueryRequest, ServeConfig, Server};

const BATCH: u64 = 64;

fn query(bytes: u64) -> QueryRequest {
    QueryRequest {
        machine: "simcluster".into(),
        collective: CollectiveKind::Reduce,
        bytes,
        ranks: 16,
        arrivals: None,
    }
}

fn start(l1_capacity: usize, tune_at_startup: bool) -> (Server, Client) {
    let cfg = ServeConfig {
        l1_capacity,
        tune_at_startup,
        refine_threads: 0, // keep the workload deterministic
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("server start");
    let client = Client::connect(server.local_addr()).expect("client connect");
    (server, client)
}

fn bench_warm_l1(c: &mut Criterion) {
    let (server, mut client) = start(1024, true);
    client.query(query(1024)).expect("warmup"); // L2 hit, populates L1
    let mut g = c.benchmark_group("service/loopback");
    g.throughput(Throughput::Elements(BATCH));
    g.bench_function("warm_l1", |b| {
        b.iter(|| {
            let qs: Vec<QueryRequest> = (0..BATCH).map(|_| query(1024)).collect();
            client.query_batch(qs).expect("batch")
        });
    });
    g.finish();
    server.stop();
    server.join();
}

fn bench_l2_only(c: &mut Criterion) {
    let (server, mut client) = start(0, true);
    let mut g = c.benchmark_group("service/loopback");
    g.throughput(Throughput::Elements(BATCH));
    g.bench_function("l2_only", |b| {
        b.iter(|| {
            let qs: Vec<QueryRequest> = (0..BATCH).map(|_| query(1024)).collect();
            client.query_batch(qs).expect("batch")
        });
    });
    g.finish();
    server.stop();
    server.join();
}

fn bench_cold(c: &mut Criterion) {
    let (server, mut client) = start(0, false);
    // Every query targets a never-seen (collective, ranks) cell — same-kind
    // same-ranks queries would fall back to the nearest tuned size — so
    // every query misses all tiers and pays the full inline model sweep
    // (algorithms × patterns).
    const KINDS: [CollectiveKind; 8] = [
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Alltoall,
        CollectiveKind::Allgather,
        CollectiveKind::Bcast,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
        CollectiveKind::Barrier,
    ];
    let next = Cell::new(0usize);
    let mut g = c.benchmark_group("service/loopback");
    g.throughput(Throughput::Elements(1));
    g.bench_function("cold_miss", |b| {
        b.iter(|| {
            let i = next.get();
            next.set(i + 1);
            let q = QueryRequest {
                ranks: 2 + (i % 512),
                collective: KINDS[(i / 512) % KINDS.len()],
                ..query(4096)
            };
            client.query(q).expect("query")
        });
    });
    g.finish();
    server.stop();
    server.join();
}

criterion_group!(benches, bench_warm_l1, bench_l2_only, bench_cold);
criterion_main!(benches);
