//! Wire-protocol property tests: serde round-trips for every frame type
//! and classification of malformed input (truncated frames, unknown
//! fields/variants, bad enum values) — the server must reply with a typed
//! error, so the decoder must never panic and must salvage what it can.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use pap_collectives::CollectiveKind;
use pap_service::proto::{
    decode_reply, decode_request, encode_frame, EndpointCounters, ErrorCode, ErrorReply,
    LatencyBucket, QueryAnswer, QueryRequest, Reply, ReplyEnvelope, Request, RequestEnvelope,
    StatsReport, Tier, TierCounters, PROTO_VERSION,
};

fn any_kind() -> BoxedStrategy<CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::Reduce),
        Just(CollectiveKind::Allreduce),
        Just(CollectiveKind::Alltoall),
        Just(CollectiveKind::Allgather),
        Just(CollectiveKind::Bcast),
        Just(CollectiveKind::Gather),
        Just(CollectiveKind::Scatter),
        Just(CollectiveKind::Barrier),
    ]
    .boxed()
}

fn any_machine() -> BoxedStrategy<String> {
    prop_oneof![
        Just("simcluster".to_string()),
        Just("Hydra".to_string()),
        Just("galileo100".to_string()),
        Just("not-a-machine".to_string()),
        Just(String::new()),
    ]
    .boxed()
}

fn any_arrivals() -> BoxedStrategy<Option<Vec<f64>>> {
    (any::<bool>(), vec(0.0f64..2e-3, 0..24))
        .prop_map(|(some, v)| some.then_some(v))
        .boxed()
}

fn any_query() -> BoxedStrategy<QueryRequest> {
    (any_machine(), any_kind(), 0u64..(1 << 22), 0usize..4096, any_arrivals())
        .prop_map(|(machine, collective, bytes, ranks, arrivals)| QueryRequest {
            machine,
            collective,
            bytes,
            ranks,
            arrivals,
        })
        .boxed()
}

fn any_request() -> BoxedStrategy<Request> {
    prop_oneof![
        any_query().prop_map(Request::Query),
        Just(Request::Stats),
        Just(Request::Ping),
        Just(Request::Shutdown),
    ]
    .boxed()
}

fn any_tier() -> BoxedStrategy<Tier> {
    prop_oneof![Just(Tier::L1), Just(Tier::L2), Just(Tier::L2Near), Just(Tier::Computed)].boxed()
}

fn any_error_code() -> BoxedStrategy<ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadFrame),
        Just(ErrorCode::VersionMismatch),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Internal),
    ]
    .boxed()
}

fn any_answer() -> BoxedStrategy<QueryAnswer> {
    (
        (any_machine(), any_kind(), 2usize..2048, 0u64..(1 << 22)),
        (any::<u8>(), any_tier(), any::<bool>(), any::<u64>(), any::<bool>()),
        -1.0f64..1.0,
    )
        .prop_map(|((machine, collective, ranks, bytes), (alg, tier, exact, generation, refine_scheduled), similarity)| {
            QueryAnswer {
                machine,
                collective,
                ranks,
                bytes,
                alg,
                policy: "best_under:last_delayed".to_string(),
                pattern: "last_delayed".to_string(),
                similarity,
                tier,
                exact,
                evidence_bytes: bytes.max(1),
                backend: "model".to_string(),
                generation,
                refine_scheduled,
            }
        })
        .boxed()
}

fn any_stats() -> BoxedStrategy<StatsReport> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (0usize..100_000, 0usize..100_000, any::<bool>(), any::<bool>(), 0.0f64..1e7),
        vec((1u64..1_000_000, any::<u64>()), 0..16),
    )
        .prop_map(|((query, stats, ping, shutdown, error), (l1, l2, near, miss), (l2_cells, l1_entries, snapshot_loaded, tuned_at_startup, uptime_s), buckets)| {
            StatsReport {
                endpoints: EndpointCounters { query, stats, ping, shutdown, calibrate: ping ^ 1, error },
                tiers: TierCounters {
                    l1_hits: l1,
                    l2_exact: l2,
                    l2_near: near,
                    miss,
                    refines_scheduled: 0,
                    refines_applied: 0,
                    refines_dropped: 0,
                },
                connections: query.wrapping_add(stats),
                frames: query,
                l2_cells,
                l1_entries,
                snapshot_loaded,
                tuned_at_startup,
                uptime_s,
                latency: buckets
                    .into_iter()
                    .map(|(le_us, count)| LatencyBucket { le_us, count })
                    .collect(),
            }
        })
        .boxed()
}

fn any_reply() -> BoxedStrategy<Reply> {
    prop_oneof![
        any_answer().prop_map(Reply::Answer),
        any_stats().prop_map(Reply::Stats),
        Just(Reply::Pong),
        Just(Reply::Bye),
        (any_error_code(), Just("some detail".to_string()))
            .prop_map(|(code, message)| Reply::Error(ErrorReply { code, message })),
    ]
    .boxed()
}

proptest! {
    /// Every well-formed request survives encode → decode bit-exactly.
    #[test]
    fn request_frames_round_trip(id in any::<u64>(), req in any_request()) {
        let env = RequestEnvelope { v: PROTO_VERSION, id, req };
        let line = encode_frame(&env);
        prop_assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
        prop_assert_eq!(decode_request(line.trim_end()).unwrap(), env);
    }

    /// Every well-formed reply survives encode → decode bit-exactly.
    #[test]
    fn reply_frames_round_trip(id in any::<u64>(), reply in any_reply()) {
        let env = ReplyEnvelope { v: PROTO_VERSION, id, reply };
        let back = decode_reply(encode_frame(&env).trim_end()).unwrap();
        prop_assert_eq!(back, env);
    }

    /// Any strict prefix of a valid frame is rejected as `BadFrame` —
    /// truncation can never silently decode to something else.
    #[test]
    fn truncated_frames_are_bad_frames(id in any::<u64>(), req in any_request(), frac in 0.0f64..1.0) {
        let env = RequestEnvelope { v: PROTO_VERSION, id, req };
        let line = encode_frame(&env);
        let body = line.trim_end();
        let cut = 1 + (frac * (body.len() - 2) as f64) as usize; // 1..len-1
        let err = decode_request(&body[..cut]).unwrap_err();
        prop_assert_eq!(err.code, ErrorCode::BadFrame);
        prop_assert_eq!(err.id, 0);
    }

    /// Unknown *extra* fields anywhere in the envelope are ignored
    /// (forward compatibility with newer clients).
    #[test]
    fn unknown_fields_are_ignored(id in any::<u64>(), req in any_request()) {
        let env = RequestEnvelope { v: PROTO_VERSION, id, req };
        let line = encode_frame(&env);
        let with_extra = line.replacen('{', "{\"x_future_field\":[1,2,{\"deep\":true}],", 1);
        prop_assert_eq!(decode_request(with_extra.trim_end()).unwrap(), env);
    }

    /// A wrong protocol version is detected before body parsing and the
    /// correlation id is salvaged for the error reply.
    #[test]
    fn version_mismatch_salvages_id(id in any::<u64>(), v in 2u32..1000) {
        let line = format!("{{\"v\":{v},\"id\":{id},\"req\":\"Ping\"}}");
        let err = decode_request(&line).unwrap_err();
        prop_assert_eq!(err.code, ErrorCode::VersionMismatch);
        prop_assert_eq!(err.id, id);
    }

    /// Unknown request variants and bad enum values inside an otherwise
    /// valid envelope are `BadRequest` with the salvaged id.
    #[test]
    fn bad_bodies_are_bad_requests(id in any::<u64>()) {
        let unknown_variant = format!("{{\"v\":1,\"id\":{id},\"req\":\"Reboot\"}}");
        let err = decode_request(&unknown_variant).unwrap_err();
        prop_assert_eq!((err.id, err.code), (id, ErrorCode::BadRequest));

        let bad_enum = format!(
            "{{\"v\":1,\"id\":{id},\"req\":{{\"Query\":{{\"machine\":\"simcluster\",\
             \"collective\":\"Sort\",\"bytes\":8,\"ranks\":4,\"arrivals\":null}}}}}}"
        );
        let err = decode_request(&bad_enum).unwrap_err();
        prop_assert_eq!((err.id, err.code), (id, ErrorCode::BadRequest));

        let missing_field = format!(
            "{{\"v\":1,\"id\":{id},\"req\":{{\"Query\":{{\"machine\":\"simcluster\",\
             \"collective\":\"Reduce\",\"ranks\":4,\"arrivals\":null}}}}}}"
        );
        let err = decode_request(&missing_field).unwrap_err();
        prop_assert_eq!((err.id, err.code), (id, ErrorCode::BadRequest));
    }

    /// The decoder is total: arbitrary ASCII garbage yields a typed error
    /// (or a valid envelope), never a panic.
    #[test]
    fn decoder_never_panics(bytes in vec(32u8..127, 0..160)) {
        let s: String = bytes.into_iter().map(char::from).collect();
        let _ = decode_request(&s);
        let _ = decode_reply(&s);
    }
}
