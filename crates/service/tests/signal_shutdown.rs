//! SIGTERM-driven graceful shutdown, end to end over a loopback socket.
//!
//! This lives in its own test binary on purpose: `raise_signal` signals the
//! whole process, so it must not share a process with unrelated tests. The
//! single test below proves the contract `papctl serve` relies on — a
//! delivered SIGTERM reuses the same drain path as a `Shutdown` frame, and
//! queries already in flight complete instead of being torn down.

use std::time::{Duration, Instant};

use pap_collectives::CollectiveKind;
use pap_service::proto::Reply;
use pap_service::{install_signal_shutdown, Client, QueryRequest, Request, ServeConfig, Server, Tier};
use pap_sysio::{raise_signal, SIGTERM};

fn query(ranks: usize) -> Request {
    Request::Query(QueryRequest {
        machine: "simcluster".into(),
        collective: CollectiveKind::Reduce,
        bytes: 1024,
        ranks,
        arrivals: None,
    })
}

#[test]
fn sigterm_drains_in_flight_queries() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        tune_at_startup: true,
        refine_threads: 0,
        ..ServeConfig::default()
    })
    .expect("server start");
    install_signal_shutdown(&server).expect("signal handler");
    let addr = server.local_addr();

    // Pipeline queries on several connections, replies deliberately unread:
    // these frames are in flight — written to the kernel, not yet answered —
    // when the signal lands.
    let mut clients: Vec<Client> = (0..4)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")))
        .collect();
    let mut pending = Vec::new();
    for (i, c) in clients.iter_mut().enumerate() {
        for _ in 0..3 {
            pending.push((i, c.send(query(16)).expect("send")));
        }
    }

    raise_signal(SIGTERM).expect("raise SIGTERM");

    // The drain path answers every one of them before closing.
    let mut iter = pending.into_iter();
    for (i, c) in clients.iter_mut().enumerate() {
        for _ in 0..3 {
            let (conn, id) = iter.next().expect("one pending per send");
            assert_eq!(conn, i);
            let env = c.recv().unwrap_or_else(|e| panic!("in-flight reply #{i} lost: {e}"));
            assert_eq!(env.id, id);
            match env.reply {
                Reply::Answer(a) => assert!(
                    matches!(a.tier, Tier::L1 | Tier::L2),
                    "tuned cell answers from cache while draining, not {:?}",
                    a.tier
                ),
                other => panic!("in-flight query #{i} got {other:?}"),
            }
        }
    }
    drop(clients);

    // The signal alone — no Shutdown frame — must bring the daemon down.
    server.join();

    // And once down, the port stops accepting.
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => break,
            Ok(_) if Instant::now() > deadline => panic!("daemon still accepting after SIGTERM"),
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
