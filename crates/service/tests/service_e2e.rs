//! End-to-end tests for `papd` over real loopback TCP: arrival-pattern-aware
//! selection consistent with the offline `select()`, warm restart from a
//! snapshot, the error surface of the wire protocol, pipelining, background
//! refinement, and graceful shutdown.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pap_arrival::{classify_delays, generate, Shape};
use pap_collectives::CollectiveKind;
use pap_core::selection::{select, SelectionPolicy};
use pap_core::tuner::{tune_machine, TunePlan};
use pap_microbench::BenchConfig;
use pap_service::{
    decode_request, Client, ErrorCode, QueryRequest, Reply, Request, ServeConfig, Server, Snapshot,
    Tier, PROTO_VERSION,
};
use pap_sim::Platform;

/// A server over the default model-backed startup tuning (simcluster, 16
/// ranks) with background refinement disabled unless asked for.
fn start(f: impl FnOnce(&mut ServeConfig)) -> (Server, Client) {
    let mut cfg = ServeConfig { refine_threads: 0, ..ServeConfig::default() };
    f(&mut cfg);
    let server = Server::start(cfg).expect("server start");
    let client = Client::connect(server.local_addr()).expect("client connect");
    (server, client)
}

fn stop(server: Server, client: &mut Client) {
    client.shutdown().expect("shutdown handshake");
    server.join();
}

fn query(bytes: u64) -> QueryRequest {
    QueryRequest {
        machine: "simcluster".into(),
        collective: CollectiveKind::Reduce,
        bytes,
        ranks: 16,
        arrivals: None,
    }
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pap-service-e2e-{}-{name}", std::process::id()));
    p
}

/// Acceptance: a query carrying skewed arrival samples returns a different
/// algorithm than the same query without samples, and **both** answers match
/// what the offline `select()` produces on the same evidence.
#[test]
fn arrival_aware_selection_matches_offline_select() {
    // Offline ground truth: the exact tuning the server performs at startup.
    let platform = Platform::simcluster(16);
    let (_, records) =
        tune_machine(&platform, &TunePlan::default(), &BenchConfig::simulation()).unwrap();

    // Find a cell where some artificial pattern's oracle pick differs from
    // the robust pick, and whose generated sample classifies back to that
    // very shape (so the server will route to the same oracle policy).
    let mut found = None;
    'outer: for rec in &records {
        let robust = select(&rec.matrix, &SelectionPolicy::robust()).unwrap();
        for shape in Shape::ARTIFICIAL {
            let oracle =
                select(&rec.matrix, &SelectionPolicy::BestUnderPattern(shape.name().into()))
                    .unwrap();
            let sample = generate(shape, 16, 1e-3, 0).delays;
            let (classified, _) = classify_delays(&sample);
            if oracle != robust && classified == shape {
                found = Some((rec, shape, sample, robust, oracle));
                break 'outer;
            }
        }
    }
    let (rec, shape, sample, robust, oracle) =
        found.expect("no cell shows a pattern-dependent optimum — selection has no signal");

    let (server, mut client) = start(|_| {});
    let base = QueryRequest {
        machine: "simcluster".into(),
        collective: rec.entry.kind,
        bytes: rec.entry.bytes,
        ranks: 16,
        arrivals: None,
    };

    // Without samples the daemon applies the default (robust) policy.
    let plain = client.query(base.clone()).expect("plain query");
    assert_eq!(plain.alg, robust, "daemon robust pick diverges from offline select()");
    assert_eq!(plain.pattern, "no_delay");
    assert!(plain.exact);

    // With skewed samples it classifies the pattern and applies the oracle.
    let skewed = client
        .query(QueryRequest { arrivals: Some(sample), ..base })
        .expect("skewed query");
    assert_eq!(skewed.alg, oracle, "daemon oracle pick diverges from offline select()");
    assert_eq!(skewed.pattern, shape.name());
    assert!(skewed.similarity > 0.9, "self-generated sample should classify cleanly");
    assert_ne!(
        plain.alg, skewed.alg,
        "arrival samples must change the selected algorithm on this cell"
    );
    stop(server, &mut client);
}

/// Acceptance: restarting with `--snapshot` serves the first query from L2
/// with no startup tuning rebuild, verified through the stats endpoint.
#[test]
fn warm_restart_from_snapshot_serves_l2_without_retuning() {
    let path = scratch("warm-restart.json");

    // "First run": tune offline and persist the snapshot (the same code path
    // `papctl tune --out` uses), then the daemon is gone.
    let platform = Platform::simcluster(16);
    let (_, records) =
        tune_machine(&platform, &TunePlan::default(), &BenchConfig::simulation()).unwrap();
    let snap = Snapshot::from_records("SimCluster", 16, "model", &records);
    snap.save(&path).expect("save snapshot");

    // Warm restart: the snapshot replaces startup tuning entirely.
    let (server, mut client) = start(|cfg| {
        cfg.snapshot = Some(path.clone());
        cfg.tune_at_startup = true; // must be ignored when a snapshot loads
    });

    let stats = client.stats().expect("stats");
    assert!(stats.snapshot_loaded, "snapshot should be the evidence source");
    assert!(!stats.tuned_at_startup, "no tuning rebuild may happen on warm restart");
    assert_eq!(stats.l2_cells, snap.cells.len());

    // First query: an exact L2 hit, never a miss/inline compute.
    let first = client.query(query(1024)).expect("first query");
    assert_eq!(first.tier, Tier::L2);
    assert!(first.exact);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.tiers.l2_exact, 1);
    assert_eq!(stats.tiers.miss, 0);

    // Second identical query: promoted to L1.
    let second = client.query(query(1024)).expect("second query");
    assert_eq!(second.tier, Tier::L1);
    assert_eq!(second.alg, first.alg);

    stop(server, &mut client);
    let _ = std::fs::remove_file(&path);
}

/// Malformed frames get typed error replies — and the connection survives
/// every one of them.
#[test]
fn malformed_frames_get_error_replies_without_killing_the_connection() {
    let (server, mut client) = start(|cfg| cfg.tune_at_startup = false);

    // Non-JSON garbage: BadFrame, id unsalvageable → 0.
    client.send_raw("this is not json\n").unwrap();
    let env = client.recv().unwrap();
    assert_eq!(env.id, 0);
    match env.reply {
        Reply::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }

    // Wrong protocol version: the id is salvaged for correlation.
    client.send_raw("{\"v\":99,\"id\":7,\"req\":\"Ping\"}\n").unwrap();
    let env = client.recv().unwrap();
    assert_eq!(env.id, 7);
    match env.reply {
        Reply::Error(e) => assert_eq!(e.code, ErrorCode::VersionMismatch),
        other => panic!("expected VersionMismatch error, got {other:?}"),
    }

    // Unknown request variant: BadRequest.
    client.send_raw("{\"v\":1,\"id\":8,\"req\":\"Reboot\"}\n").unwrap();
    let env = client.recv().unwrap();
    assert_eq!(env.id, 8);
    match env.reply {
        Reply::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }

    // Semantically invalid queries are BadRequest too, not a worker panic.
    for bad in [
        QueryRequest { machine: "atlantis".into(), ..query(64) },
        QueryRequest { ranks: 1, ..query(64) },
        QueryRequest { ranks: 1 << 20, ..query(64) },
        QueryRequest { arrivals: Some(vec![0.0; 3]), ..query(64) }, // len != ranks
        QueryRequest { arrivals: Some(vec![f64::NAN; 16]), ..query(64) },
    ] {
        let err = client.query(bad).unwrap_err();
        assert!(err.contains("BadRequest"), "unexpected error: {err}");
    }

    // After all that abuse the very same connection still serves requests.
    client.ping().expect("connection must survive malformed frames");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.endpoints.error, 8);

    stop(server, &mut client);
}

/// An oversized frame (no newline within the limit) is rejected with a
/// BadFrame reply and the connection is closed.
#[test]
fn oversized_frames_are_rejected_then_closed() {
    let (server, mut client) = start(|cfg| cfg.tune_at_startup = false);
    let big = "a".repeat(pap_service::MAX_FRAME_BYTES + 1024);
    // The server may slam the door mid-write; that's fine.
    let _ = client.send_raw(&big);
    match client.recv() {
        Ok(env) => {
            match env.reply {
                Reply::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
                other => panic!("expected BadFrame error, got {other:?}"),
            }
            // Nothing more comes after the error: the connection is closed.
            assert!(client.recv().is_err());
        }
        // Acceptable: the write raced the close and the reply was lost.
        Err(e) => assert!(e.contains("closed") || e.contains("recv"), "unexpected: {e}"),
    }

    let mut fresh = Client::connect(server.local_addr()).expect("reconnect");
    fresh.ping().expect("server must survive an oversized frame");
    stop(server, &mut fresh);
}

/// Pipelined requests are answered in order with echoed ids.
#[test]
fn pipelining_answers_in_request_order() {
    let (server, mut client) = start(|_| {});
    let sizes: Vec<u64> = vec![8, 1024, 32 * 1024, 1 << 20, 8, 1024];
    let answers = client
        .query_batch(sizes.iter().map(|&b| query(b)).collect())
        .expect("pipelined batch");
    assert_eq!(answers.len(), sizes.len());
    for (a, &b) in answers.iter().zip(&sizes) {
        let a = a.as_ref().expect("all queries in this batch are valid");
        assert_eq!(a.bytes, b, "answers must come back in request order");
    }
    // Mixed pipelining (query/ping/stats interleaved) keeps id order too.
    let ids =
        vec![
            client.send(Request::Ping).unwrap(),
            client.send(Request::Query(query(64))).unwrap(),
            client.send(Request::Stats).unwrap(),
        ];
    for id in ids {
        assert_eq!(client.recv().unwrap().id, id);
    }
    stop(server, &mut client);
}

/// One rejected query in a pipelined batch lands in its own error slot;
/// the queries around it still get answers.
#[test]
fn batch_isolates_per_query_errors() {
    let (server, mut client) = start(|_| {});
    let bad = QueryRequest { ranks: 1, ..query(64) }; // below the 2-rank minimum
    let results = client
        .query_batch(vec![query(8), bad, query(1024)])
        .expect("transport is healthy; only the middle query is rejected");
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap().bytes, 8);
    let err = results[1].as_ref().unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("at least 2"), "{}", err.message);
    assert_eq!(results[2].as_ref().unwrap().bytes, 1024);
    stop(server, &mut client);
}

/// A cold cell is computed inline (tier `computed`), then refined in the
/// background by the sim backend: the cache upgrades in place, the
/// generation bumps, and stats record the full lifecycle.
#[test]
fn background_refinement_upgrades_the_cache() {
    let (server, mut client) = start(|cfg| {
        cfg.tune_at_startup = false;
        cfg.refine_threads = 1;
    });

    // Small message on few ranks so the sim sweep is quick.
    let q = QueryRequest { bytes: 8, ranks: 4, ..query(8) };
    let cold = client.query(q.clone()).expect("cold query");
    assert_eq!(cold.tier, Tier::Computed);
    assert_eq!(cold.backend, "model");
    assert_eq!(cold.generation, 0);
    assert!(cold.refine_scheduled, "a model-backed miss must schedule refinement");

    // Wait for the background sim sweep to land.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = client.stats().expect("stats");
        if stats.tiers.refines_applied == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "refinement never landed");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The same query now serves sim-backed evidence from L2 (the L1 entry
    // was invalidated by the upgrade), at the bumped generation.
    let warm = client.query(q).expect("warm query");
    assert_eq!(warm.backend, "sim");
    assert_eq!(warm.generation, 1);
    assert_eq!(warm.tier, Tier::L2);
    assert!(!warm.refine_scheduled, "sim-backed evidence must not re-refine");

    stop(server, &mut client);
}

/// Nearest-size fallback: a query between tuned sizes is answered from the
/// closest tuned cell (log-scale) and marked inexact.
#[test]
fn near_lookup_serves_closest_tuned_size() {
    let (server, mut client) = start(|_| {});
    let near = client.query(query(1500)).expect("near query"); // between 1 KiB and 32 KiB
    assert_eq!(near.tier, Tier::L2Near);
    assert!(!near.exact);
    assert_eq!(near.evidence_bytes, 1024);
    // Refinement is disabled in this fixture, so no ticket may be claimed.
    assert!(!near.refine_scheduled, "no refinement may be promised with refine_threads=0");
    stop(server, &mut client);
}

/// Graceful shutdown: the Shutdown frame gets a Bye, in-flight work drains,
/// `join()` returns, and the port stops accepting.
#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let (server, mut client) = start(|cfg| cfg.tune_at_startup = false);
    let addr = server.local_addr();
    let mut second = Client::connect(addr).expect("second client");
    second.ping().expect("second connection alive");

    client.shutdown().expect("bye handshake");
    server.join();

    // The listener is gone: a fresh connection must fail (or be dropped
    // without ever serving a frame).
    let mut refused = false;
    match Client::connect(addr) {
        Err(_) => refused = true,
        Ok(mut c) => {
            if c.ping().is_err() {
                refused = true;
            }
        }
    }
    assert!(refused, "daemon kept serving after graceful shutdown");
}

/// The crate-root re-exports stay wired to the protocol version the client
/// speaks (guards the public API surface).
#[test]
fn public_api_surface_is_consistent() {
    let line = format!("{{\"v\":{PROTO_VERSION},\"id\":3,\"req\":\"Ping\"}}");
    let env = decode_request(&line).expect("root re-export decodes current version");
    assert_eq!((env.v, env.id), (PROTO_VERSION, 3));
    assert!(matches!(env.req, Request::Ping));
}
