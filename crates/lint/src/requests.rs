//! Request-lifecycle check: a per-rank linear scan mirroring the engine's
//! request table (`Free → Pending → freed by WaitAll`).

use std::collections::HashMap;

use pap_sim::Op;

use crate::diag::{DiagClass, Diagnostic, OpLoc, Severity};
use crate::FlatProgram;

pub(crate) fn check(flat: &[FlatProgram<'_>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for prog in flat {
        // req → loc of the posting op.
        let mut pending: HashMap<usize, OpLoc> = HashMap::new();
        for f in &prog.ops {
            match f.op {
                Op::Isend { req, .. } | Op::Irecv { req, .. } => {
                    if let Some(prev) = pending.insert(*req, f.loc) {
                        diags.push(Diagnostic {
                            class: DiagClass::RequestReuse,
                            severity: Severity::Error,
                            loc: f.loc,
                            message: format!(
                                "request {req} re-posted while the operation from {prev} \
                                 is still outstanding (the engine rejects this at runtime)"
                            ),
                            related: vec![prev],
                        });
                    }
                }
                Op::WaitAll { reqs } => {
                    let mut seen = Vec::new();
                    for &req in reqs {
                        if seen.contains(&req) {
                            continue; // duplicate ID in one WaitAll is idempotent
                        }
                        seen.push(req);
                        if pending.remove(&req).is_none() {
                            diags.push(Diagnostic {
                                class: DiagClass::WaitNeverPosted,
                                severity: Severity::Error,
                                loc: f.loc,
                                message: format!(
                                    "WaitAll waits on request {req}, which no prior \
                                     Isend/Irecv posted (the engine reports it as never \
                                     started, or hangs if the table is sized past it)"
                                ),
                                related: vec![],
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        let mut leftovers: Vec<(usize, OpLoc)> = pending.into_iter().collect();
        leftovers.sort_by_key(|&(req, loc)| (loc, req));
        for (req, loc) in leftovers {
            diags.push(Diagnostic {
                class: DiagClass::RequestNeverWaited,
                severity: Severity::Warning,
                loc,
                message: format!(
                    "request {req} is posted but never completed by a WaitAll; \
                     its completion (and any received data) is unobservable"
                ),
                related: vec![],
            });
        }
    }
    diags
}
