//! Static message matching: the timing-free mirror of the engine's FIFO
//! `(src, dst, tag)` channels.
//!
//! The engine matches the k-th send posted on a channel with the k-th
//! receive posted on it, *regardless of interleaving* (both sides are FIFO
//! deques). Posting order per rank is program order, so the pairing is fully
//! determined statically: pair the k-th send in the sender's program with
//! the k-th receive in the receiver's program, per channel.

use std::collections::HashMap;

use pap_sim::program::{CommDir, Tag};
use pap_sim::Op;

use crate::diag::{DiagClass, Diagnostic, OpLoc, Severity};
use crate::{FlatOp, FlatProgram};

/// The statically matched counterpart of a send or receive.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Counterpart {
    /// Peer rank.
    pub rank: usize,
    /// Flat op index of the counterpart in the peer's program.
    pub flat: usize,
}

/// Matching result: per rank, flat-op-index → counterpart.
#[derive(Debug, Default)]
pub(crate) struct Matching {
    /// For send ops: the matched receive, if any.
    pub send_match: Vec<HashMap<usize, Counterpart>>,
    /// For receive ops: the matched send, if any.
    pub recv_match: Vec<HashMap<usize, Counterpart>>,
}

struct ChannelSide {
    /// (flat index in the owner's program, loc, bytes) — bytes 0 for recvs.
    entries: Vec<(usize, OpLoc, u64)>,
}

/// Run the matching pass: build the static pairing and report self-sends,
/// out-of-range peers, unmatched messages, tag conflicts, and matched-pair
/// size disagreement.
pub(crate) fn check(flat: &[FlatProgram<'_>], ranks: usize) -> (Matching, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut matching = Matching {
        send_match: vec![HashMap::new(); ranks],
        recv_match: vec![HashMap::new(); ranks],
    };
    // channel (src, dst, tag) → (sends, recvs), insertion-ordered for
    // deterministic reports.
    let mut channels: HashMap<(usize, usize, Tag), (ChannelSide, ChannelSide)> = HashMap::new();
    let mut channel_order: Vec<(usize, usize, Tag)> = Vec::new();

    for (rank, prog) in flat.iter().enumerate() {
        for (i, f) in prog.ops.iter().enumerate() {
            let Some(m) = f.op.comm_meta() else { continue };
            if m.peer == rank {
                diags.push(Diagnostic {
                    class: DiagClass::SelfMessage,
                    severity: Severity::Error,
                    loc: f.loc,
                    message: format!("rank {rank} addresses itself (tag {})", m.tag),
                    related: vec![],
                });
                continue;
            }
            if m.peer >= ranks {
                diags.push(Diagnostic {
                    class: DiagClass::PeerOutOfRange,
                    severity: Severity::Error,
                    loc: f.loc,
                    message: format!("peer {} out of range for {ranks} ranks", m.peer),
                    related: vec![],
                });
                continue;
            }
            let key = match m.dir {
                CommDir::Send => (rank, m.peer, m.tag),
                CommDir::Recv => (m.peer, rank, m.tag),
            };
            let (sends, recvs) = channels.entry(key).or_insert_with(|| {
                channel_order.push(key);
                (ChannelSide { entries: Vec::new() }, ChannelSide { entries: Vec::new() })
            });
            match m.dir {
                CommDir::Send => sends.entries.push((i, f.loc, m.bytes.unwrap_or(0))),
                CommDir::Recv => recvs.entries.push((i, f.loc, 0)),
            }
        }
    }

    for key @ (src, dst, tag) in channel_order {
        let (sends, recvs) = &channels[&key];
        let n = sends.entries.len().min(recvs.entries.len());
        for k in 0..n {
            let (si, _, _) = sends.entries[k];
            let (ri, _, _) = recvs.entries[k];
            matching.send_match[src].insert(si, Counterpart { rank: dst, flat: ri });
            matching.recv_match[dst].insert(ri, Counterpart { rank: src, flat: si });
        }
        for &(_, loc, _) in &sends.entries[n..] {
            diags.push(Diagnostic {
                class: DiagClass::UnmatchedSend,
                severity: Severity::Error,
                loc,
                message: format!(
                    "send {src}->{dst} tag {tag}: {} send(s) but only {} receive(s) on the channel",
                    sends.entries.len(),
                    recvs.entries.len()
                ),
                related: vec![],
            });
        }
        for &(_, loc, _) in &recvs.entries[n..] {
            diags.push(Diagnostic {
                class: DiagClass::UnmatchedRecv,
                severity: Severity::Error,
                loc,
                message: format!(
                    "receive {src}->{dst} tag {tag}: {} receive(s) but only {} send(s) on the channel",
                    recvs.entries.len(),
                    sends.entries.len()
                ),
                related: vec![],
            });
        }
        // Tag-conflict lint: ≥ 2 messages on one channel means two can be
        // outstanding concurrently (an eager send stays buffered until its
        // receive is posted). FIFO order keeps the pairing well-defined
        // here, so identical sizes are a warning (verify the reuse is
        // intentional); differing sizes are an error — on any transport
        // without total per-channel ordering the pairing is ambiguous.
        if sends.entries.len() >= 2 {
            let sizes: Vec<u64> = sends.entries.iter().map(|&(_, _, b)| b).collect();
            let uniform = sizes.windows(2).all(|w| w[0] == w[1]);
            diags.push(Diagnostic {
                class: DiagClass::TagConflict,
                severity: if uniform { Severity::Warning } else { Severity::Error },
                loc: sends.entries[1].1,
                message: format!(
                    "{} messages share channel {src}->{dst} tag {tag} ({}); \
                     FIFO-ordered reuse — sizes {:?}",
                    sends.entries.len(),
                    if uniform { "uniform sizes" } else { "DIFFERING sizes" },
                    sizes,
                ),
                related: vec![sends.entries[0].1],
            });
        }
        // Size disagreement between matched pairs: a receive does not carry
        // a byte count in this ISA, so compare the sender's size with the
        // first `ReduceLocal` that consumes the received slot (the only
        // size-declaring reader).
        for k in 0..n {
            let (_, _, bytes) = sends.entries[k];
            let (ri, rloc, _) = recvs.entries[k];
            if let Some(d) = reduce_size_disagreement(&flat[dst].ops, ri, bytes, rloc) {
                diags.push(d);
            }
        }
    }
    (matching, diags)
}

/// Scan forward from the receive at flat index `ri` for the first op that
/// consumes the received slot; if it is a `ReduceLocal` declaring a
/// different byte count than the send carried, report a size mismatch.
fn reduce_size_disagreement(
    ops: &[FlatOp<'_>],
    ri: usize,
    sent_bytes: u64,
    recv_loc: OpLoc,
) -> Option<Diagnostic> {
    let slot = ops[ri].op.comm_meta()?.slot;
    for f in &ops[ri + 1..] {
        if let Op::ReduceLocal { from, bytes, .. } = f.op {
            if *from == slot {
                if *bytes != sent_bytes {
                    return Some(Diagnostic {
                        class: DiagClass::SizeMismatch,
                        severity: Severity::Error,
                        loc: f.loc,
                        message: format!(
                            "ReduceLocal consumes {bytes} B from slot {slot} but the matched \
                             send delivered {sent_bytes} B"
                        ),
                        related: vec![recv_loc],
                    });
                }
                return None;
            }
        }
        // Any other read consumes the value without declaring a size; any
        // full overwrite replaces it — either way the comparison window ends.
        if f.op.slots_read().contains(&slot) || f.op.slots_written().contains(&slot) {
            return None;
        }
    }
    None
}
