//! # pap-lint — static schedule verifier for collective programs
//!
//! A zero-execution analyzer over [`pap_sim::Job`]: it abstract-interprets
//! every rank's op sequence against a *timing-free* channel model — the same
//! FIFO `(src, dst, tag)` matching and eager/rendezvous protocol split the
//! engine implements, minus the clock — and reports defects with
//! `(rank, segment, op)` coordinates and a severity. Because no timing is
//! involved, one pass covers *every* interleaving the engine could produce,
//! which is exactly the guarantee dynamic verification (`pap-collectives`'s
//! post-run dataflow check) cannot give.
//!
//! ## Checks
//!
//! 1. **Message matching** — unmatched `Send`/`Recv`/`Isend`/`Irecv`,
//!    self-sends, out-of-range peers, and byte-size disagreement between
//!    matched pairs ([`DiagClass::UnmatchedSend`], …).
//! 2. **Deadlock** — wait-for-graph cycles among blocking ops under the
//!    actual protocol split ([`DiagClass::Deadlock`]), plus the distinct
//!    [`DiagClass::ProtocolFragility`] class: schedules that only complete
//!    because eager sends don't block, i.e. that hang the moment `bytes`
//!    crosses the eager threshold.
//! 3. **Tag conflicts** — the FIFO-channel invariant documented on
//!    [`pap_sim::program::Tag`] ([`DiagClass::TagConflict`]).
//! 4. **Request lifecycle** — `ReqId` reuse while outstanding, `WaitAll` on
//!    never-posted requests, posted-but-never-waited requests.
//! 5. **Slot dataflow** — use-before-init, send-from-cleared-slot, dead
//!    stores, and accesses racing a pending `Irecv` delivery.
//!
//! ## Fault reachability and repair
//!
//! The same fixpoint answers *"who starves if rank `R` dies after `k`
//! ops?"* ([`crash_cone`], [`blast_radius`], [`cone_profile`] in
//! [`faults`]) — exactly the engine's starved-rank set for an entry
//! crash, differentially pinned on the whole registry. Where the crashed
//! rank's dependence structure allows, [`repair`] rewrites the schedule to
//! route around the dead rank; [`certified_repair`] accepts a rewrite only
//! if it re-lints clean across all diagnostic classes *and* leaves an
//! empty residual cone.
//!
//! ## Surfaces
//!
//! * [`lint_job`] — lint one job;
//! * [`sweep`] — lint every registered algorithm across rank counts, roots
//!   and eager-straddling sizes (`papctl lint`);
//! * [`sweep_faults`] — registry-wide crash cones, blast radii and
//!   certified victim repairs (`papctl lint --faults`);
//! * [`certified_repair`] — one repair, certified (`papctl repair`);
//! * `BenchConfig::lint` in `pap-microbench` — opt-in pre-run check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channels;
mod dataflow;
pub mod diag;
mod exec;
pub mod faults;
pub mod repair;
mod requests;
pub mod sweep;

use pap_sim::{Job, Op, Platform};

pub use diag::{DiagClass, Diagnostic, LintReport, OpLoc, Severity};
pub use faults::{
    blast_radius, cone_profile, crash_cone, sweep_faults, BlastRadius, CrashCone, CrashPoint,
    FaultAlgRow, FaultCaseRow, FaultSweepConfig, FaultSweepSummary, RepairVerdict, StarvedOp,
};
pub use repair::{certified_repair, repair_job, RepairError, RepairOutcome};
pub use sweep::{sweep_registry, SweepConfig, SweepSummary};

/// Linter configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Eager threshold in bytes: sends with `bytes <= eager_threshold`
    /// complete without a matching receive (mirrors
    /// `Platform::eager_threshold`).
    pub eager_threshold: u64,
    /// Also run the all-rendezvous pass that detects
    /// [`DiagClass::ProtocolFragility`].
    pub check_fragility: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        // 16 KiB: the simcluster/hydra eager threshold.
        LintConfig { eager_threshold: 16 * 1024, check_fragility: true }
    }
}

impl LintConfig {
    /// Configuration matching a platform's protocol split.
    pub fn for_platform(platform: &Platform) -> Self {
        LintConfig { eager_threshold: platform.eager_threshold, ..Default::default() }
    }
}

/// One op with its coordinates, in a flattened per-rank sequence.
#[derive(Clone, Copy)]
pub(crate) struct FlatOp<'a> {
    pub loc: OpLoc,
    pub op: &'a Op,
}

/// A rank program flattened to one op sequence (segments concatenated).
pub(crate) struct FlatProgram<'a> {
    pub ops: Vec<FlatOp<'a>>,
}

pub(crate) fn flatten(job: &Job) -> Vec<FlatProgram<'_>> {
    job.programs
        .iter()
        .enumerate()
        .map(|(rank, prog)| {
            let mut ops = Vec::with_capacity(prog.op_count());
            for (seg, segment) in prog.segments.iter().enumerate() {
                for (op_idx, op) in segment.ops.iter().enumerate() {
                    ops.push(FlatOp { loc: OpLoc { rank, seg, op: op_idx }, op });
                }
            }
            FlatProgram { ops }
        })
        .collect()
}

/// Lint one job: run every check and collect the findings into a report
/// sorted by location then class.
pub fn lint_job(job: &Job, cfg: &LintConfig) -> LintReport {
    let flat = flatten(job);
    let ranks = flat.len();
    let ops = flat.iter().map(|f| f.ops.len()).sum();

    let (matching, mut diagnostics) = channels::check(&flat, ranks);
    diagnostics.extend(requests::check(&flat));
    diagnostics.extend(dataflow::check(&flat));
    diagnostics.extend(exec::check(&flat, &matching, cfg));

    diagnostics.sort_by(|a, b| (a.loc, a.class, &a.message).cmp(&(b.loc, b.class, &b.message)));
    diagnostics.dedup();
    LintReport { diagnostics, ranks, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_sim::RankProgram;

    #[test]
    fn empty_job_is_clean() {
        let report = lint_job(&Job::new(vec![]), &LintConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.diagnostics, vec![]);
    }

    #[test]
    fn trivial_exchange_is_clean() {
        // rank 0 sends tag 1 / recvs tag 2; rank 1 mirrors.
        let mut p0 = RankProgram::new();
        p0.push_anon(vec![
            Op::InitSlot { slot: 0, value: pap_sim::Value::empty() },
            Op::isend(1, 1, 8, 0, 0),
            Op::irecv(1, 2, 1, 1),
            Op::waitall(vec![0, 1]),
        ]);
        let mut p1 = RankProgram::new();
        p1.push_anon(vec![
            Op::InitSlot { slot: 0, value: pap_sim::Value::empty() },
            Op::isend(0, 2, 8, 0, 0),
            Op::irecv(0, 1, 1, 1),
            Op::waitall(vec![0, 1]),
        ]);
        let report = lint_job(&Job::new(vec![p0, p1]), &LintConfig::default());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.warnings(), 0, "{}", report.render());
        assert_eq!(report.ranks, 2);
        assert_eq!(report.ops, 8);
    }
}
