//! Slot-dataflow check: per-rank abstract interpretation of the slot table.
//!
//! Tracks each slot through `Uninit → Init / Cleared / PendingRecv` and
//! reports:
//!
//! * **use-before-init** — a value-consuming read (send source, `ReduceLocal`
//!   source, `CopySlot` source) of a slot nothing defined. Accumulation
//!   *targets* (`into` of `ReduceLocal`/`MergeMove`/`OverwriteMove`) are
//!   exempt: the engine folds into an implicit empty value, and every
//!   reduction/gather builder relies on that.
//! * **send-from-cleared-slot** — a send sourcing a slot after `ClearSlot`.
//! * **dead stores** — a program-authored write (`InitSlot`, `CopySlot`)
//!   fully overwritten before any read. Message deliveries are exempt:
//!   zero-payload synchronization receives legitimately discard data.
//! * **pending-recv hazards** — touching a slot between an `Irecv` posting
//!   into it and the completing `WaitAll`: the delivery races the access
//!   (the engine writes the payload at event-delivery time).

use std::collections::HashMap;

use pap_sim::Op;

use crate::diag::{DiagClass, Diagnostic, OpLoc, Severity};
use crate::FlatProgram;

#[derive(Clone, Copy, PartialEq)]
enum SlotState {
    Uninit,
    Init,
    Cleared,
    /// An undelivered `Irecv` targets the slot (req, posting loc).
    Pending(usize, OpLoc),
}

/// A program-authored write not yet read (for dead-store detection).
struct LiveStore {
    loc: OpLoc,
    authored: bool, // InitSlot / CopySlot-into (flag) vs delivery/clear (don't)
}

pub(crate) fn check(flat: &[FlatProgram<'_>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for prog in flat {
        let mut state: HashMap<usize, SlotState> = HashMap::new();
        let mut live: HashMap<usize, LiveStore> = HashMap::new();
        // Irecv req → slot, to resolve deliveries at the completing WaitAll.
        let mut recv_req_slot: HashMap<usize, usize> = HashMap::new();

        let get = |state: &HashMap<usize, SlotState>, s: usize| {
            *state.get(&s).unwrap_or(&SlotState::Uninit)
        };

        for f in &prog.ops {
            // A read of a pending slot races the delivery.
            let hazard_check = |slot: usize,
                                    state: &mut HashMap<usize, SlotState>,
                                    diags: &mut Vec<Diagnostic>| {
                if let SlotState::Pending(req, posted) = get(state, slot) {
                    diags.push(Diagnostic {
                        class: DiagClass::PendingRecvHazard,
                        severity: Severity::Warning,
                        loc: f.loc,
                        message: format!(
                            "slot {slot} is accessed while the Irecv posted at {posted} \
                             (request {req}) is still undelivered; the delivery races \
                             this access"
                        ),
                        related: vec![posted],
                    });
                    // Recover: treat as initialized to keep later findings precise.
                    state.insert(slot, SlotState::Init);
                }
            };

            // Value-consuming reads.
            for slot in f.op.slots_read() {
                hazard_check(slot, &mut state, &mut diags);
                if let Some(ls) = live.get_mut(&slot) {
                    ls.authored = false; // value observed: store is live
                }
                let consuming = matches!(
                    f.op,
                    Op::Send { .. } | Op::Isend { .. } | Op::ReduceLocal { .. } | Op::CopySlot { .. }
                );
                // `slots_read` lists accumulation targets too; only the
                // *source* slot of a consuming op must be defined.
                let is_source = match f.op {
                    Op::Send { slot: s, .. } | Op::Isend { slot: s, .. } => slot == *s,
                    Op::ReduceLocal { from, .. } | Op::CopySlot { from, .. } => slot == *from,
                    _ => false,
                };
                if consuming && is_source {
                    match get(&state, slot) {
                        SlotState::Uninit => diags.push(Diagnostic {
                            class: DiagClass::UseBeforeInit,
                            severity: Severity::Error,
                            loc: f.loc,
                            message: format!(
                                "slot {slot} is consumed before anything initialized it"
                            ),
                            related: vec![],
                        }),
                        SlotState::Cleared => {
                            if matches!(f.op, Op::Send { .. } | Op::Isend { .. }) {
                                diags.push(Diagnostic {
                                    class: DiagClass::SendFromClearedSlot,
                                    severity: Severity::Error,
                                    loc: f.loc,
                                    message: format!(
                                        "send sources slot {slot} after it was cleared"
                                    ),
                                    related: vec![],
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }

            // Writes and state transitions.
            match f.op {
                Op::InitSlot { slot, .. } => {
                    hazard_check(*slot, &mut state, &mut diags);
                    record_write(&mut live, &mut diags, *slot, f.loc, true);
                    state.insert(*slot, SlotState::Init);
                }
                Op::CopySlot { into, .. } => {
                    hazard_check(*into, &mut state, &mut diags);
                    record_write(&mut live, &mut diags, *into, f.loc, true);
                    state.insert(*into, SlotState::Init);
                }
                Op::ClearSlot { slot } => {
                    hazard_check(*slot, &mut state, &mut diags);
                    record_write(&mut live, &mut diags, *slot, f.loc, false);
                    state.insert(*slot, SlotState::Cleared);
                }
                Op::Recv { slot, .. } => {
                    hazard_check(*slot, &mut state, &mut diags);
                    record_write(&mut live, &mut diags, *slot, f.loc, false);
                    state.insert(*slot, SlotState::Init);
                }
                Op::Irecv { slot, req, .. } => {
                    hazard_check(*slot, &mut state, &mut diags);
                    recv_req_slot.insert(*req, *slot);
                    state.insert(*slot, SlotState::Pending(*req, f.loc));
                }
                Op::WaitAll { reqs } => {
                    for req in reqs {
                        if let Some(slot) = recv_req_slot.remove(req) {
                            if let SlotState::Pending(p_req, posted) = get(&state, slot) {
                                if p_req == *req {
                                    // Delivery lands here.
                                    record_write(&mut live, &mut diags, slot, posted, false);
                                    state.insert(slot, SlotState::Init);
                                }
                            }
                        }
                    }
                }
                // Accumulating / pruning ops leave the target initialized.
                Op::ReduceLocal { into, .. }
                | Op::MergeMove { into, .. }
                | Op::OverwriteMove { into, .. } => {
                    state.insert(*into, SlotState::Init);
                }
                _ => {}
            }
        }
    }
    diags
}

/// Register a full write to `slot`; flag the previous write when it was a
/// program-authored value that nothing read.
fn record_write(
    live: &mut HashMap<usize, LiveStore>,
    diags: &mut Vec<Diagnostic>,
    slot: usize,
    loc: OpLoc,
    authored: bool,
) {
    if let Some(prev) = live.insert(slot, LiveStore { loc, authored }) {
        if prev.authored {
            diags.push(Diagnostic {
                class: DiagClass::DeadStore,
                severity: Severity::Warning,
                loc: prev.loc,
                message: format!(
                    "value written to slot {slot} is overwritten at {loc} before any read"
                ),
                related: vec![loc],
            });
        }
    }
}
