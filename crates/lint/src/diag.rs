//! Diagnostic types: classes, severities, locations, and the report.

use serde::{Deserialize, Serialize};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but not known to break a run (e.g. a dead store).
    Warning,
    /// The schedule is wrong: it can hang, mis-match, or read garbage.
    Error,
}

/// The kind of defect a [`Diagnostic`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DiagClass {
    /// A send or receive names its own rank as the peer.
    SelfMessage,
    /// A send or receive names a peer outside `0..ranks`.
    PeerOutOfRange,
    /// A send whose `(src, dst, tag)` channel has no matching receive.
    UnmatchedSend,
    /// A receive whose `(src, dst, tag)` channel has no matching send.
    UnmatchedRecv,
    /// A matched pair disagrees about the payload size (the receiver's
    /// `ReduceLocal` consumes a different byte count than the send carried).
    SizeMismatch,
    /// A wait-for cycle among blocking ops under the actual eager/rendezvous
    /// protocol split: the schedule hangs at runtime.
    Deadlock,
    /// The schedule only completes because eager sends do not block: forcing
    /// every send through rendezvous produces a wait-for cycle, so the
    /// schedule hangs the moment its sizes cross the eager threshold.
    ProtocolFragility,
    /// Two messages concurrently outstanding on one `(src, dst, tag)`
    /// channel (see the `Tag` invariant in `pap_sim::program`).
    TagConflict,
    /// A request ID re-posted while its previous operation is outstanding.
    RequestReuse,
    /// A `WaitAll` lists a request that no prior `Isend`/`Irecv` posted.
    WaitNeverPosted,
    /// A posted request that no `WaitAll` ever completes.
    RequestNeverWaited,
    /// A slot's content is consumed before anything defined it.
    UseBeforeInit,
    /// A send sources a slot that was explicitly cleared.
    SendFromClearedSlot,
    /// A program-authored slot value overwritten before any read.
    DeadStore,
    /// A slot with an undelivered `Irecv` targeting it is touched before the
    /// completing `WaitAll`: the delivery races the program's access.
    PendingRecvHazard,
}

impl DiagClass {
    /// Stable lower-snake name (JSON output, fixtures).
    pub fn name(self) -> &'static str {
        match self {
            DiagClass::SelfMessage => "self_message",
            DiagClass::PeerOutOfRange => "peer_out_of_range",
            DiagClass::UnmatchedSend => "unmatched_send",
            DiagClass::UnmatchedRecv => "unmatched_recv",
            DiagClass::SizeMismatch => "size_mismatch",
            DiagClass::Deadlock => "deadlock",
            DiagClass::ProtocolFragility => "protocol_fragility",
            DiagClass::TagConflict => "tag_conflict",
            DiagClass::RequestReuse => "request_reuse",
            DiagClass::WaitNeverPosted => "wait_never_posted",
            DiagClass::RequestNeverWaited => "request_never_waited",
            DiagClass::UseBeforeInit => "use_before_init",
            DiagClass::SendFromClearedSlot => "send_from_cleared_slot",
            DiagClass::DeadStore => "dead_store",
            DiagClass::PendingRecvHazard => "pending_recv_hazard",
        }
    }
}

impl std::fmt::Display for DiagClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Coordinates of one op: `(rank, segment, op-within-segment)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpLoc {
    /// The rank whose program contains the op.
    pub rank: usize,
    /// Segment index within the rank program.
    pub seg: usize,
    /// Op index within the segment.
    pub op: usize,
}

impl std::fmt::Display for OpLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} seg {} op {}", self.rank, self.seg, self.op)
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// What kind of defect.
    pub class: DiagClass,
    /// How bad it is.
    pub severity: Severity,
    /// The primary op the finding anchors to.
    pub loc: OpLoc,
    /// Human-readable description.
    pub message: String,
    /// Other ops involved (the matching peer, the cycle members, the
    /// shadowed write, …).
    pub related: Vec<OpLoc>,
}

/// The result of linting one [`pap_sim::Job`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// All findings, sorted by location then class.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of ranks analyzed.
    pub ranks: usize,
    /// Number of ops analyzed.
    pub ops: usize,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True when no error-severity finding exists (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Findings of one class.
    pub fn of_class(&self, class: DiagClass) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.class == class)
    }

    /// Whether at least one finding of `class` exists.
    pub fn has(&self, class: DiagClass) -> bool {
        self.of_class(class).next().is_some()
    }

    /// Multi-line human rendering (one line per finding).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let sev = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            out.push_str(&format!("{sev}[{}] {}: {}\n", d.class, d.loc, d.message));
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s) over {} ops on {} ranks\n",
            self.errors(),
            self.warnings(),
            self.ops,
            self.ranks
        ));
        out
    }
}
