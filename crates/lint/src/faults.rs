//! Fault-reachability: static crash cones and per-schedule blast radius.
//!
//! For a fail-stop crash of rank `R` after `k` completed ops, the **crash
//! cone** is the transitive set of surviving ranks (and the ops they block
//! at) that can never finish — computed by re-running the abstract channel
//! fixpoint of [`crate::exec`] with `R` frozen at `k`, with no simulation.
//!
//! The correspondence with the engine is exact, not heuristic:
//!
//! * a crashed rank's completed ops stand — messages it sent are in flight
//!   and still deliver (the engine only drops deliveries *addressed to* a
//!   dead rank), receives it completed consumed their counterpart;
//! * the op it died attempting never entered the channels: a send dies
//!   during its send overhead (the message never left), a receive dies
//!   while posting ("nothing was matched or consumed");
//! * eager sends *to* the dead rank still complete (the sender never
//!   blocks; the delivery is dropped on the floor), while rendezvous sends
//!   starve unless the dead rank completed the matching receive first.
//!
//! Because the fixpoint is monotone in every rank's position, the cone of
//! `(R, k)` is *the* unique outcome under every interleaving, and cones
//! shrink (weakly) as `k` grows: crashing earlier starves weakly more. The
//! per-schedule summary ([`blast_radius`]) therefore keys on the entry
//! cones (`k = 0` — the rank dies before contributing anything), which is
//! also exactly what a timed crash at or before the harmonized arrival
//! instant produces in the engine: channel-visible work costs strictly
//! positive time, so nothing escapes.

use pap_sim::Job;
use serde::{Deserialize, Serialize};

use crate::diag::OpLoc;
use crate::exec::{self, CrashPlan};
use crate::{channels, flatten, LintConfig};

/// A static fail-stop point: the rank completed exactly its first `op`
/// flattened ops, then died attempting the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPoint {
    /// The crashed rank.
    pub rank: usize,
    /// Completed-op count (flattened program order). `0` = died on entry,
    /// before contributing anything to any channel.
    pub op: usize,
}

impl CrashPoint {
    /// A crash on entry: the rank dies before executing anything.
    pub fn on_entry(rank: usize) -> Self {
        CrashPoint { rank, op: 0 }
    }
}

/// A surviving rank starved by a crash, and the op it blocks at forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StarvedOp {
    /// The starved survivor.
    pub rank: usize,
    /// Coordinates of the op it can never complete.
    pub loc: OpLoc,
}

/// The crash cone of one (set of) fail-stop point(s): every surviving rank
/// that blocks forever, with the op it blocks at. Sorted by rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashCone {
    /// The crash points the cone was computed for.
    pub crashes: Vec<CrashPoint>,
    /// Starved survivors (crashed ranks are dead by design, not starved).
    pub starved: Vec<StarvedOp>,
}

impl CrashCone {
    /// No survivor starves: the schedule completes without the dead ranks.
    pub fn is_empty(&self) -> bool {
        self.starved.is_empty()
    }

    /// The starved ranks, sorted ascending.
    pub fn starved_ranks(&self) -> Vec<usize> {
        self.starved.iter().map(|s| s.rank).collect()
    }
}

/// Compute the crash cone of one or more simultaneous fail-stop points.
///
/// # Panics
///
/// Panics when a crash names a rank outside the job or lists the same rank
/// twice; `op` is clamped to the rank's program length.
pub fn crash_cone(job: &Job, cfg: &LintConfig, crashes: &[CrashPoint]) -> CrashCone {
    let flat = flatten(job);
    let (matching, _) = channels::check(&flat, flat.len());
    cone_with(&flat, &matching, cfg, crashes)
}

/// [`crash_cone`] over pre-computed flatten/matching state (one pass of the
/// matching pass serves every cone of the same job).
fn cone_with(
    flat: &[crate::FlatProgram<'_>],
    matching: &channels::Matching,
    cfg: &LintConfig,
    crashes: &[CrashPoint],
) -> CrashCone {
    let ranks = flat.len();
    let mut limits: Vec<Option<usize>> = vec![None; ranks];
    for c in crashes {
        assert!(c.rank < ranks, "crash rank {} out of range (ranks {})", c.rank, ranks);
        assert!(limits[c.rank].is_none(), "rank {} crashes twice", c.rank);
        limits[c.rank] = Some(c.op.min(flat[c.rank].ops.len()));
    }
    let plan = CrashPlan { limits };
    let out = exec::execute(flat, matching, Some(cfg.eager_threshold), Some(&plan));
    let mut starved: Vec<StarvedOp> = out
        .stalled
        .iter()
        .enumerate()
        .filter_map(|(r, s)| {
            s.as_ref().map(|(at, _)| StarvedOp { rank: r, loc: flat[r].ops[*at].loc })
        })
        .collect();
    starved.sort_by_key(|s| s.rank);
    CrashCone { crashes: crashes.to_vec(), starved }
}

/// Per-schedule blast radius: the entry cone (`k = 0`) of every rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlastRadius {
    /// Rank count of the job.
    pub ranks: usize,
    /// `entry_starved[r]` = survivors starved when rank `r` dies on entry.
    pub entry_starved: Vec<usize>,
    /// Ranks whose entry crash starves at least one survivor.
    pub critical: Vec<usize>,
    /// Largest entry cone.
    pub max_starved: usize,
    /// Mean entry-cone size across ranks.
    pub mean_starved: f64,
}

/// Compute the entry cone of every rank (one fixpoint per rank).
pub fn blast_radius(job: &Job, cfg: &LintConfig) -> BlastRadius {
    let flat = flatten(job);
    let ranks = flat.len();
    let (matching, _) = channels::check(&flat, ranks);
    let entry_starved: Vec<usize> = (0..ranks)
        .map(|r| cone_with(&flat, &matching, cfg, &[CrashPoint::on_entry(r)]).starved.len())
        .collect();
    let critical: Vec<usize> =
        (0..ranks).filter(|&r| entry_starved[r] > 0).collect();
    let max_starved = entry_starved.iter().copied().max().unwrap_or(0);
    let mean_starved = if ranks == 0 {
        0.0
    } else {
        entry_starved.iter().sum::<usize>() as f64 / ranks as f64
    };
    BlastRadius { ranks, entry_starved, critical, max_starved, mean_starved }
}

/// The cone of rank `rank` at every *distinct* crash position: `k = 0` and
/// after each of its communication ops. Local ops never change channel
/// state, so cones only move at comm boundaries — intermediate `k` values
/// have identical cones and are skipped.
pub fn cone_profile(job: &Job, cfg: &LintConfig, rank: usize) -> Vec<CrashCone> {
    let flat = flatten(job);
    let ranks = flat.len();
    assert!(rank < ranks, "rank {rank} out of range (ranks {ranks})");
    let (matching, _) = channels::check(&flat, ranks);
    let mut ks = vec![0usize];
    for (i, f) in flat[rank].ops.iter().enumerate() {
        if f.op.comm_meta().is_some() {
            ks.push(i + 1);
        }
    }
    ks.dedup();
    ks.iter()
        .map(|&k| cone_with(&flat, &matching, cfg, &[CrashPoint { rank, op: k }]))
        .collect()
}

/// Configuration of the registry-wide fault sweep (`papctl lint --faults`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepConfig {
    /// Rank counts to cover (power-of-two and non-power-of-two).
    pub ranks: Vec<usize>,
    /// Message sizes in bytes (should straddle the eager threshold).
    pub sizes: Vec<u64>,
    /// Eager threshold for the reachability fixpoint.
    pub eager_threshold: u64,
    /// Segment size for segmented algorithms.
    pub seg_bytes: u64,
    /// Also attempt a certified repair of each case's worst crash.
    pub repair: bool,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        FaultSweepConfig {
            ranks: vec![8, 12, 32],
            // One eager size, one rendezvous size: the protocol split flips
            // which sends block, which changes the cones.
            sizes: vec![1024, 128 * 1024],
            eager_threshold: 16 * 1024,
            seg_bytes: pap_collectives::DEFAULT_SEG_BYTES,
            repair: true,
        }
    }
}

/// The repair verdict of one sweep case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairVerdict {
    /// The rewrite passed certification.
    Certified,
    /// No mechanical rewrite exists for the topology.
    Unsupported(String),
    /// A rewrite was produced but failed re-verification — a repair bug.
    CertFailed(String),
    /// Repair was not attempted (`FaultSweepConfig::repair` off).
    Skipped,
}

/// One (algorithm, ranks, size) case of the fault sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCaseRow {
    /// Collective name.
    pub collective: String,
    /// Algorithm ID.
    pub alg: u8,
    /// Rank count.
    pub ranks: usize,
    /// Root used to build the schedule.
    pub root: usize,
    /// Message size in bytes.
    pub bytes: u64,
    /// `entry_starved[r]`: survivors starved when rank `r` dies on entry.
    pub entry_starved: Vec<usize>,
    /// Ranks whose entry crash starves at least one survivor.
    pub critical: Vec<usize>,
    /// The crash victim chosen for repair: the non-root rank with the
    /// largest entry cone.
    pub victim: usize,
    /// The victim's entry-cone starved ranks.
    pub victim_starved: Vec<usize>,
    /// The certified-repair verdict for the victim crash.
    pub repair: RepairVerdict,
}

/// Per-algorithm aggregate of the fault sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultAlgRow {
    /// Collective name.
    pub collective: String,
    /// Algorithm ID.
    pub alg: u8,
    /// Algorithm name (Table II).
    pub name: String,
    /// Cases analyzed.
    pub cases: usize,
    /// Largest entry cone over all cases and crash ranks.
    pub max_starved: usize,
    /// Mean entry-cone size over all cases and crash ranks.
    pub mean_starved: f64,
    /// Mean fraction of ranks whose entry crash starves someone.
    pub critical_frac: f64,
    /// Cases whose victim repair certified.
    pub repaired: usize,
    /// Cases with no mechanical rewrite.
    pub unsupported: usize,
    /// Cases whose rewrite failed certification (repair bugs).
    pub cert_failed: usize,
}

/// The fault-sweep document (`papctl lint --faults --json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepSummary {
    /// Rank counts covered.
    pub ranks: Vec<usize>,
    /// Sizes covered.
    pub sizes: Vec<u64>,
    /// Eager threshold used.
    pub eager_threshold: u64,
    /// Total cases analyzed.
    pub cases: usize,
    /// Victim repairs that certified.
    pub repaired: usize,
    /// Cases with no mechanical rewrite.
    pub unsupported: usize,
    /// Rewrites that failed certification (must be zero).
    pub cert_failed: usize,
    /// Per-algorithm aggregates, registry order.
    pub algorithms: Vec<FaultAlgRow>,
    /// Every case, with its blast-radius data.
    pub case_rows: Vec<FaultCaseRow>,
}

impl FaultSweepSummary {
    /// Every produced rewrite passed certification.
    pub fn is_clean(&self) -> bool {
        self.cert_failed == 0
    }

    /// Fixed-width blast-radius table (the `papctl lint --faults` output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>3}  {:<18} {:>5} {:>8} {:>9} {:>6} {:>8} {:>6} {:>9}  status\n",
            "collective", "alg", "name", "cases", "max-cone", "mean-cone", "crit%", "repaired", "unsup", "certfail"
        ));
        for row in &self.algorithms {
            out.push_str(&format!(
                "{:<14} {:>3}  {:<18} {:>5} {:>8} {:>9.2} {:>5.0}% {:>8} {:>6} {:>9}  {}\n",
                row.collective,
                row.alg,
                row.name,
                row.cases,
                row.max_starved,
                row.mean_starved,
                row.critical_frac * 100.0,
                row.repaired,
                row.unsupported,
                row.cert_failed,
                if row.cert_failed > 0 { "FAIL" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>3}  {:<18} {:>5} {:>8} {:>9} {:>6} {:>8} {:>6} {:>9}  {}\n",
            "TOTAL",
            "",
            "",
            self.cases,
            "",
            "",
            "",
            self.repaired,
            self.unsupported,
            self.cert_failed,
            if self.cert_failed > 0 { "FAIL" } else { "ok" }
        ));
        out
    }
}

/// Run the fault sweep: compute the blast radius of every registered
/// algorithm across `cfg.ranks` and `cfg.sizes` (root 0 — cones are
/// isomorphic under root relabeling), then attempt a certified repair of
/// each case's worst non-root crash. Cases fan out over the `pap-parallel`
/// worker pool; the result is deterministic and order-independent.
pub fn sweep_faults(cfg: &FaultSweepConfig) -> FaultSweepSummary {
    use pap_collectives::registry::{algorithm, algorithms};
    use pap_collectives::{build, CollSpec};
    use pap_sim::RankProgram;

    struct Case {
        kind: pap_collectives::registry::CollectiveKind,
        alg: u8,
        p: usize,
        bytes: u64,
    }
    let mut cases = Vec::new();
    for kind in crate::sweep::KINDS {
        for a in algorithms(kind) {
            for &p in &cfg.ranks {
                for &bytes in &cfg.sizes {
                    cases.push(Case { kind, alg: a.id, p, bytes });
                }
            }
        }
    }

    let lint_cfg = LintConfig { eager_threshold: cfg.eager_threshold, check_fragility: true };
    let rows: Vec<FaultCaseRow> = pap_parallel::par_map(&cases, |_, case| {
        let root = 0usize;
        let spec = CollSpec::new(case.kind, case.alg, case.bytes)
            .with_root(root)
            .with_seg_bytes(cfg.seg_bytes);
        let built = build(&spec, case.p).expect("registry build");
        let job = Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect());
        let blast = blast_radius(&job, &lint_cfg);
        // Worst non-root crash: the root's death voids the collective's
        // semantics, so repair targets a non-root rank (ties → lowest).
        let victim = (0..case.p)
            .filter(|&r| !crate::sweep::uses_root(case.kind) || r != root)
            .max_by_key(|&r| (blast.entry_starved[r], usize::MAX - r))
            .unwrap_or(0);
        let victim_starved =
            crash_cone(&job, &lint_cfg, &[CrashPoint::on_entry(victim)]).starved_ranks();
        let repair = if cfg.repair {
            match crate::repair::certified_repair(&job, &lint_cfg, victim) {
                Ok(_) => RepairVerdict::Certified,
                Err(e @ crate::repair::RepairError::Unsupported { .. }) => {
                    RepairVerdict::Unsupported(e.to_string())
                }
                Err(e) => RepairVerdict::CertFailed(e.to_string()),
            }
        } else {
            RepairVerdict::Skipped
        };
        FaultCaseRow {
            collective: case.kind.name().to_string(),
            alg: case.alg,
            ranks: case.p,
            root,
            bytes: case.bytes,
            entry_starved: blast.entry_starved,
            critical: blast.critical,
            victim,
            victim_starved,
            repair,
        }
    });

    let mut algo_rows: Vec<FaultAlgRow> = Vec::new();
    let (mut repaired, mut unsupported, mut cert_failed) = (0usize, 0usize, 0usize);
    for row in &rows {
        match &row.repair {
            RepairVerdict::Certified => repaired += 1,
            RepairVerdict::Unsupported(_) => unsupported += 1,
            RepairVerdict::CertFailed(_) => cert_failed += 1,
            RepairVerdict::Skipped => {}
        }
        let key = (row.collective.clone(), row.alg);
        let entry = match algo_rows.iter_mut().find(|r| (r.collective.clone(), r.alg) == key) {
            Some(r) => r,
            None => {
                algo_rows.push(FaultAlgRow {
                    collective: key.0,
                    alg: row.alg,
                    name: algorithm(
                        crate::sweep::KINDS
                            .iter()
                            .copied()
                            .find(|k| k.name() == row.collective)
                            .expect("known kind"),
                        row.alg,
                    )
                    .map(|a| a.name.to_string())
                    .unwrap_or_default(),
                    cases: 0,
                    max_starved: 0,
                    mean_starved: 0.0,
                    critical_frac: 0.0,
                    repaired: 0,
                    unsupported: 0,
                    cert_failed: 0,
                });
                algo_rows.last_mut().expect("just pushed")
            }
        };
        entry.cases += 1;
        let case_max = row.entry_starved.iter().copied().max().unwrap_or(0);
        entry.max_starved = entry.max_starved.max(case_max);
        // Accumulate sums; normalized to means after the loop.
        entry.mean_starved +=
            row.entry_starved.iter().sum::<usize>() as f64 / row.entry_starved.len() as f64;
        entry.critical_frac += row.critical.len() as f64 / row.ranks as f64;
        match &row.repair {
            RepairVerdict::Certified => entry.repaired += 1,
            RepairVerdict::Unsupported(_) => entry.unsupported += 1,
            RepairVerdict::CertFailed(_) => entry.cert_failed += 1,
            RepairVerdict::Skipped => {}
        }
    }
    for r in &mut algo_rows {
        r.mean_starved /= r.cases as f64;
        r.critical_frac /= r.cases as f64;
    }

    FaultSweepSummary {
        ranks: cfg.ranks.clone(),
        sizes: cfg.sizes.clone(),
        eager_threshold: cfg.eager_threshold,
        cases: rows.len(),
        repaired,
        unsupported,
        cert_failed,
        algorithms: algo_rows,
        case_rows: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_collectives::{build, CollSpec, CollectiveKind};
    use pap_sim::{Job, Op, RankProgram};

    fn registry_job(kind: CollectiveKind, alg: u8, p: usize, bytes: u64) -> Job {
        let built = build(&CollSpec::new(kind, alg, bytes), p).unwrap();
        Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect())
    }

    fn job_of(ops: Vec<Vec<Op>>) -> Job {
        Job::new(ops.into_iter().map(RankProgram::from_ops).collect())
    }

    #[test]
    fn pair_cone_rendezvous_recv_starves() {
        // 0 sends (rendezvous) to 1; killing 1 on entry starves 0's send,
        // killing 0 on entry starves 1's recv.
        let big = 64 * 1024;
        let job = job_of(vec![vec![Op::send(1, 7, big, 0)], vec![Op::recv(0, 7, 0)]]);
        let cfg = LintConfig::default();
        let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(1)]);
        assert_eq!(cone.starved_ranks(), vec![0]);
        let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(0)]);
        assert_eq!(cone.starved_ranks(), vec![1]);
    }

    #[test]
    fn eager_send_to_dead_rank_completes() {
        // An eager send to a dead rank is dropped on the floor — the sender
        // finishes; only a *receive* from the dead rank starves.
        let job = job_of(vec![vec![Op::send(1, 7, 8, 0)], vec![Op::recv(0, 7, 0)]]);
        let cfg = LintConfig::default();
        let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(1)]);
        assert!(cone.is_empty(), "eager sender must not starve: {:?}", cone.starved);
    }

    #[test]
    fn completed_prefix_still_delivers() {
        // Rank 0 sends then dies: with the send in the completed prefix
        // (k = 1) the survivor's receive completes; at k = 0 it starves.
        let job = job_of(vec![vec![Op::send(1, 7, 8, 0)], vec![Op::recv(0, 7, 0)]]);
        let cfg = LintConfig::default();
        assert!(crash_cone(&job, &cfg, &[CrashPoint { rank: 0, op: 1 }]).is_empty());
        assert_eq!(
            crash_cone(&job, &cfg, &[CrashPoint::on_entry(0)]).starved_ranks(),
            vec![1]
        );
    }

    #[test]
    fn transitive_cone_through_a_chain() {
        // 0 → 1 → 2 relay (rendezvous): killing 0 starves 1 at its recv and
        // 2 transitively.
        let big = 64 * 1024;
        let job = job_of(vec![
            vec![Op::send(1, 1, big, 0)],
            vec![Op::recv(0, 1, 0), Op::send(2, 2, big, 0)],
            vec![Op::recv(1, 2, 0)],
        ]);
        let cfg = LintConfig::default();
        let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(0)]);
        assert_eq!(cone.starved_ranks(), vec![1, 2]);
        // The starved op of rank 1 is its recv (flat 0), not the send.
        assert_eq!(cone.starved[0].loc.op, 0);
    }

    #[test]
    fn binomial_reduce_leaf_crash_starves_ancestor_chain() {
        // 8-rank binomial reduce to root 0: killing leaf 7 starves its
        // parent's recv and every ancestor up to the root.
        let job = registry_job(CollectiveKind::Reduce, 5, 8, 1024);
        let cfg = LintConfig::default();
        let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(7)]);
        assert!(!cone.is_empty(), "reduce needs every contribution");
        assert!(
            cone.starved_ranks().contains(&0),
            "the root transitively starves: {:?}",
            cone.starved_ranks()
        );
    }

    #[test]
    fn cones_shrink_as_crash_moves_later() {
        let job = registry_job(CollectiveKind::Reduce, 5, 8, 1024);
        let cfg = LintConfig::default();
        let profile = cone_profile(&job, &cfg, 7);
        assert!(profile.len() >= 2, "leaf has at least entry + post-send cones");
        for w in profile.windows(2) {
            assert!(
                w[1].starved.len() <= w[0].starved.len(),
                "cones must shrink as the crash moves later: {:?}",
                profile.iter().map(|c| c.starved.len()).collect::<Vec<_>>()
            );
        }
        // Once the leaf's send completed, nobody starves.
        assert!(profile.last().unwrap().is_empty());
    }

    #[test]
    fn blast_radius_flags_critical_ranks() {
        let job = registry_job(CollectiveKind::Reduce, 5, 8, 1024);
        let cfg = LintConfig::default();
        let blast = blast_radius(&job, &cfg);
        assert_eq!(blast.ranks, 8);
        assert_eq!(blast.entry_starved.len(), 8);
        assert!(blast.max_starved > 0);
        assert!(!blast.critical.is_empty(), "a reduce has critical ranks");
        assert!(blast.mean_starved > 0.0);
    }

    #[test]
    fn multi_crash_cone_unions_and_more() {
        let job = registry_job(CollectiveKind::Reduce, 5, 8, 1024);
        let cfg = LintConfig::default();
        let single = crash_cone(&job, &cfg, &[CrashPoint::on_entry(7)]);
        let double =
            crash_cone(&job, &cfg, &[CrashPoint::on_entry(7), CrashPoint::on_entry(5)]);
        // Crashed ranks never count as starved.
        assert!(!double.starved_ranks().contains(&5));
        assert!(!double.starved_ranks().contains(&7));
        for r in single.starved_ranks() {
            if r != 5 {
                assert!(
                    double.starved_ranks().contains(&r),
                    "killing more ranks cannot un-starve {r}"
                );
            }
        }
    }
}
