//! Timing-free abstract execution: deadlock and protocol-fragility
//! detection.
//!
//! Each rank is advanced as far as its blocking ops allow, using the static
//! pairing from the matching pass as the channel model:
//!
//! * an **eager send** (`bytes <= eager_threshold`) completes at posting;
//! * a **rendezvous send** completes once its matched receive is posted;
//! * a **receive** completes once its matched send is posted;
//! * a **`WaitAll`** completes once every listed request's counterpart
//!   condition holds.
//!
//! "Posted" is position-based: a blocking op is posted when control reaches
//! it (the engine enqueues the message/receive *before* suspending the
//! rank), a non-blocking op once control has passed it. Completion is
//! monotone in the vector of rank positions, so the least fixpoint — reached
//! with a simple wake-list worklist in `O(total ops)` — is *the* unique
//! outcome of the schedule under every interleaving.
//!
//! Two passes run: the actual protocol split (stuck cycle ⇒
//! [`DiagClass::Deadlock`]) and, when the first completes, an
//! all-rendezvous pass (stuck cycle ⇒ [`DiagClass::ProtocolFragility`]:
//! the schedule relies on eager buffering and hangs as soon as its sizes
//! cross the threshold). Ranks stuck only because a message is unmatched
//! are attributed to the matching diagnostics, not double-reported here.

use std::collections::HashMap;

use pap_sim::program::{CommDir, CommMeta};
use pap_sim::Op;

use crate::channels::Matching;
use crate::diag::{DiagClass, Diagnostic, OpLoc, Severity};
use crate::{FlatProgram, LintConfig};

/// `Some(threshold)`: the platform's split. `None`: every send rendezvous.
type Protocol = Option<u64>;

fn is_eager(bytes: u64, proto: Protocol) -> bool {
    proto.is_some_and(|th| bytes <= th)
}

/// Why a rank cannot advance past its current op.
pub(crate) enum Stall {
    /// Waiting for the peer rank to reach flat index `flat`
    /// (`strict`: must move *past* it, for non-blocking counterparts).
    On { rank: usize, flat: usize, strict: bool },
    /// The op (or one of the waited requests) has no matched counterpart.
    Unmatched,
}

pub(crate) struct ExecOutcome {
    /// Per rank: `None` if the rank finished, else the flat index it
    /// stalled at together with the reason.
    pub stalled: Vec<Option<(usize, Stall)>>,
}

/// Fail-stop assumptions for a crash-cone run: per rank, `Some(k)` means the
/// rank completed exactly its first `k` flattened ops and then died.
///
/// Mirrors the engine's crash semantics for a rank halting *while
/// attempting* op `k`: nothing of op `k` escapes. A send never injects its
/// message (the sender dies during the send overhead), a receive never
/// enters the matching queue (posting charges `recv_overhead` and "died
/// posting the receive: nothing was matched or consumed"), so a crashed
/// rank's op at `k` is never "posted" — unlike a live rank parked on a
/// blocking op. Ops below `k` completed normally: messages they sent are in
/// flight (survivor receives still complete — the engine only drops
/// deliveries *addressed to* the dead rank), receives they posted consumed
/// their counterpart.
pub(crate) struct CrashPlan {
    /// `limits[r] = Some(k)`: rank `r` fail-stops having completed `[0, k)`.
    pub limits: Vec<Option<usize>>,
}

/// Run both protocol passes and emit deadlock / fragility diagnostics.
pub(crate) fn check(
    flat: &[FlatProgram<'_>],
    matching: &Matching,
    cfg: &LintConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let actual = execute(flat, matching, Some(cfg.eager_threshold), None);
    if let Some(d) = cycle_diagnostic(flat, &actual, DiagClass::Deadlock, cfg.eager_threshold) {
        diags.push(d);
        return diags; // A real deadlock subsumes the fragility question.
    }
    let completed = actual.stalled.iter().all(Option::is_none);
    if completed && cfg.check_fragility {
        let rdv = execute(flat, matching, None, None);
        if let Some(d) = cycle_diagnostic(flat, &rdv, DiagClass::ProtocolFragility, cfg.eager_threshold) {
            diags.push(d);
        }
    }
    diags
}

/// Advance every rank to the least fixpoint under `proto`.
///
/// With a [`CrashPlan`], crashed ranks are frozen at their completed-op
/// count and never advance; they are reported as *not* stalled (dead by
/// design, not starved) — survivors transitively blocked on them surface
/// in `stalled` as the crash cone.
pub(crate) fn execute(
    flat: &[FlatProgram<'_>],
    matching: &Matching,
    proto: Protocol,
    crash: Option<&CrashPlan>,
) -> ExecOutcome {
    let ranks = flat.len();
    let crashed_limit =
        |r: usize| -> Option<usize> { crash.and_then(|c| c.limits.get(r).copied().flatten()) };
    let mut pos = vec![0usize; ranks];
    // Posted-but-unwaited requests: req → flat index of the posting op.
    let mut pending: Vec<HashMap<usize, usize>> = vec![HashMap::new(); ranks];
    // waiters[r] = ranks to re-try once pos[r] satisfies (flat, strict).
    let mut waiters: Vec<Vec<(usize, bool, usize)>> = vec![Vec::new(); ranks];
    let mut stalled: Vec<Option<(usize, Stall)>> = (0..ranks).map(|_| None).collect();
    let mut queue: Vec<usize> = Vec::with_capacity(ranks);
    let mut queued = vec![false; ranks];
    for r in 0..ranks {
        match crashed_limit(r) {
            // The completed prefix is a premise of the crash point, not
            // something to re-derive: pin the position and never run the
            // rank.
            Some(k) => pos[r] = k.min(flat[r].ops.len()),
            None => {
                queued[r] = true;
                queue.push(r);
            }
        }
    }

    while let Some(r) = queue.pop() {
        queued[r] = false;
        loop {
            let Some(f) = flat[r].ops.get(pos[r]) else {
                stalled[r] = None;
                break;
            };
            match try_complete(f.op, r, pos[r], &pos, &pending[r], matching, proto, flat, crash) {
                Ok(freed) => {
                    for req in freed {
                        pending[r].remove(&req);
                    }
                    if let Some(m) = f.op.comm_meta() {
                        if let Some(req) = m.req {
                            pending[r].insert(req, pos[r]);
                        }
                    }
                    pos[r] += 1;
                    wake(&mut waiters, &mut queue, &mut queued, &pos, r);
                }
                Err(stall) => {
                    if let Stall::On { rank, flat: need, strict } = stall {
                        waiters[rank].push((need, strict, r));
                    }
                    stalled[r] = Some((pos[r], stall));
                    // Arriving at a blocking op posts it: peers waiting for
                    // pos[r] == current (non-strict) may now proceed.
                    wake(&mut waiters, &mut queue, &mut queued, &pos, r);
                    break;
                }
            }
        }
        if pos[r] >= flat[r].ops.len() {
            stalled[r] = None;
        }
    }
    ExecOutcome { stalled }
}

fn wake(
    waiters: &mut [Vec<(usize, bool, usize)>],
    queue: &mut Vec<usize>,
    queued: &mut [bool],
    pos: &[usize],
    r: usize,
) {
    let mut i = 0;
    while i < waiters[r].len() {
        let (need, strict, who) = waiters[r][i];
        let ready = if strict { pos[r] > need } else { pos[r] >= need };
        if ready {
            waiters[r].swap_remove(i);
            if !queued[who] {
                queued[who] = true;
                queue.push(who);
            }
        } else {
            i += 1;
        }
    }
}

/// Is the counterpart of `m` (at `c_rank`/`c_flat`) posted, given positions?
fn counterpart_posted(
    flat: &[FlatProgram<'_>],
    pos: &[usize],
    c_rank: usize,
    c_flat: usize,
    crash: Option<&CrashPlan>,
) -> Result<(), Stall> {
    // Blocking counterparts post on arrival (pos == flat); non-blocking
    // ones once executed (pos > flat).
    let strict = !flat[c_rank].ops[c_flat].op.is_blocking();
    let ready = match crash.and_then(|c| c.limits.get(c_rank).copied().flatten()) {
        // A crashed counterpart only counts if it *completed* before death:
        // the op it died attempting never entered the channels (no message
        // injected, no receive posted), so the usual "blocking ops post on
        // arrival" rule does not apply at the crash position.
        Some(k) => c_flat < k,
        None => {
            if strict {
                pos[c_rank] > c_flat
            } else {
                pos[c_rank] >= c_flat
            }
        }
    };
    if ready {
        Ok(())
    } else {
        Err(Stall::On { rank: c_rank, flat: c_flat, strict })
    }
}

/// Can the op at `(r, i)` complete now? On success returns the requests it
/// frees (for `WaitAll`).
#[allow(clippy::too_many_arguments)]
fn try_complete(
    op: &Op,
    r: usize,
    i: usize,
    pos: &[usize],
    pending: &HashMap<usize, usize>,
    matching: &Matching,
    proto: Protocol,
    flat: &[FlatProgram<'_>],
    crash: Option<&CrashPlan>,
) -> Result<Vec<usize>, Stall> {
    match op {
        Op::Send { bytes, .. } => {
            if is_eager(*bytes, proto) {
                return Ok(vec![]);
            }
            match matching.send_match[r].get(&i) {
                None => Err(Stall::Unmatched),
                Some(c) => counterpart_posted(flat, pos, c.rank, c.flat, crash).map(|()| vec![]),
            }
        }
        Op::Recv { .. } => match matching.recv_match[r].get(&i) {
            None => Err(Stall::Unmatched),
            Some(c) => counterpart_posted(flat, pos, c.rank, c.flat, crash).map(|()| vec![]),
        },
        Op::WaitAll { reqs } => {
            for &req in reqs {
                // Never-posted requests are reported by the request-lifecycle
                // pass; treating them as satisfied avoids cascading stalls.
                let Some(&j) = pending.get(&req) else { continue };
                let m: CommMeta = flat[r].ops[j].op.comm_meta().expect("pending req posted by comm op");
                match m.dir {
                    CommDir::Send => {
                        if is_eager(m.bytes.unwrap_or(0), proto) {
                            continue;
                        }
                        match matching.send_match[r].get(&j) {
                            None => return Err(Stall::Unmatched),
                            Some(c) => counterpart_posted(flat, pos, c.rank, c.flat, crash)?,
                        }
                    }
                    CommDir::Recv => match matching.recv_match[r].get(&j) {
                        None => return Err(Stall::Unmatched),
                        Some(c) => counterpart_posted(flat, pos, c.rank, c.flat, crash)?,
                    },
                }
            }
            Ok(reqs.clone())
        }
        // Isend/Irecv post and continue; local ops never wait on a peer.
        _ => Ok(vec![]),
    }
}

/// Extract a wait-for cycle among the stalled ranks and render it as one
/// diagnostic. Ranks stalled on an unmatched message (or transitively only
/// on such ranks) are the matching pass's findings, not a cycle.
fn cycle_diagnostic(
    flat: &[FlatProgram<'_>],
    outcome: &ExecOutcome,
    class: DiagClass,
    eager_threshold: u64,
) -> Option<Diagnostic> {
    let ranks = outcome.stalled.len();
    // wait-for edge r → peer, for matched stalls only.
    let mut edge: Vec<Option<usize>> = vec![None; ranks];
    for (r, s) in outcome.stalled.iter().enumerate() {
        if let Some((_, Stall::On { rank, .. })) = s {
            edge[r] = Some(*rank);
        }
    }
    // Follow edges from each stalled rank; a rank revisited within one walk
    // is on a cycle.
    let mut color = vec![0u8; ranks]; // 0 unvisited, 1 on current walk, 2 done
    for start in 0..ranks {
        if edge[start].is_none() || color[start] != 0 {
            continue;
        }
        let mut walk = Vec::new();
        let mut cur = start;
        while color[cur] == 0 {
            color[cur] = 1;
            walk.push(cur);
            match edge[cur] {
                Some(next) => cur = next,
                None => break,
            }
        }
        if color[cur] == 1 {
            // `cur` starts the cycle.
            let cycle: Vec<usize> = {
                let k = walk.iter().position(|&x| x == cur).unwrap();
                walk[k..].to_vec()
            };
            let locs: Vec<OpLoc> = cycle
                .iter()
                .map(|&r| flat[r].ops[outcome.stalled[r].as_ref().unwrap().0].loc)
                .collect();
            let chain = cycle
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(" -> ");
            let message = match class {
                DiagClass::ProtocolFragility => format!(
                    "completes only through eager buffering: with every send rendezvous, \
                     ranks {chain} -> {} form a wait-for cycle — the schedule hangs once \
                     message sizes exceed the eager threshold ({eager_threshold} B)",
                    cycle[0]
                ),
                _ => format!(
                    "wait-for cycle: ranks {chain} -> {} block on each other under the \
                     eager/rendezvous split (threshold {eager_threshold} B)",
                    cycle[0]
                ),
            };
            return Some(Diagnostic {
                class,
                severity: Severity::Error,
                loc: locs[0],
                message,
                related: locs[1..].to_vec(),
            });
        }
        for &r in &walk {
            color[r] = 2;
        }
        color[cur] = 2;
    }
    None
}
