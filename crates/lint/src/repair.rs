//! Certified schedule repair: rewrite a [`Job`] so the survivors of a
//! fail-stop crash complete without the dead rank.
//!
//! The repair is *structural*, driven by a slot-taint dependence analysis of
//! the crashed rank's program. Every communication op of the crashed rank
//! `R` is a node; an edge connects an inbound receive to an outbound send
//! whose payload (transitively, through local slot ops) contains the
//! received data. Connected components classify into the shapes trees and
//! dissemination topologies produce, each with a mechanical rewrite:
//!
//! * **drop-in** — a receive whose data feeds no outbound send (a sink, e.g.
//!   a dissemination-barrier token): the live sender's matching send is
//!   dropped.
//! * **drop-out** — a send fed by no inbound receive (`R`'s own data, e.g. a
//!   reduce leaf's contribution): the live receiver's matching receive is
//!   dropped, along with the ops that consumed the now-absent value.
//! * **fan-out** — one inbound receive feeding one or more outbound sends
//!   (broadcast/scatter interiors): the live sender is *promoted* — its send
//!   to `R` is replaced with clones of `R`'s forwarding sends (same
//!   destinations, byte counts and block filters, sourced from the
//!   promoted rank's own buffer — block filters use global coordinates, so
//!   they extract the same blocks from the superset the parent holds).
//! * **fan-in** — inbound receives feeding one outbound send
//!   (reduce/gather interiors): every live sender is redirected to `R`'s
//!   consumer, which grows one receive-and-fold sequence per extra source
//!   (clones of its original fold ops).
//!
//! Anything else — components weaving several inbounds into several
//! outbounds, as in recursive-doubling interiors — is refused as
//! [`RepairError::Unsupported`] rather than repaired wrongly.
//!
//! Dropping an op cascades: a dropped receive kills the value its slot
//! carried, so later ops reading that slot are dropped too, and a dropped
//! *send* among them recursively drops its counterpart receive on the next
//! rank. Dropped non-blocking ops are scrubbed from `WaitAll` lists. All new
//! channels use fresh tags (no FIFO interference with surviving traffic),
//! fresh requests, and fresh slots.
//!
//! The crashed rank's data contribution is *lost* by construction — repair
//! preserves survivor liveness, not the collective's full semantics (for a
//! reduction, the result simply misses the dead rank's term; if the crashed
//! rank is the root, the result's owner is gone and the repair degrades to
//! cancelling the survivors' participation).
//!
//! **Certification** ([`certified_repair`]) is external to the rewrite: the
//! repaired job is re-linted from scratch against all 15 diagnostic classes
//! and its crash cone recomputed; a repair is only accepted if the re-lint
//! finds no error and the cone is empty.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use pap_sim::program::{CommDir, ReqId, Slot, Tag};
use pap_sim::{Job, Op, RankProgram, Segment};

use crate::channels;
use crate::faults::{crash_cone, CrashPoint};
use crate::{flatten, lint_job, LintConfig, LintReport};

/// Why a repair was not produced (or not accepted).
#[derive(Debug)]
pub enum RepairError {
    /// The crashed rank is outside the job.
    BadRank {
        /// The requested rank.
        rank: usize,
        /// The job's rank count.
        ranks: usize,
    },
    /// The input job already has error-severity lint findings; repair
    /// requires a well-formed schedule to rewrite.
    UncleanInput {
        /// Error-severity finding count.
        errors: usize,
    },
    /// The crashed rank's dependence structure has no mechanical rewrite
    /// (e.g. a component weaving several inbound receives into several
    /// outbound sends, as recursive-doubling interiors do).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// The rewrite was produced but failed re-verification.
    CertificationFailed {
        /// The re-lint report of the rejected repair.
        report: Box<LintReport>,
        /// Survivors still starved by the crash after the rewrite.
        residual_cone: Vec<usize>,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::BadRank { rank, ranks } => {
                write!(f, "crashed rank {rank} out of range for {ranks} ranks")
            }
            RepairError::UncleanInput { errors } => {
                write!(f, "input schedule has {errors} lint error(s); repair needs a clean job")
            }
            RepairError::Unsupported { reason } => write!(f, "unsupported topology: {reason}"),
            RepairError::CertificationFailed { report, residual_cone } => write!(
                f,
                "repair failed certification: {} error(s), residual cone {:?}",
                report.errors(),
                residual_cone
            ),
        }
    }
}

impl std::error::Error for RepairError {}

/// A produced repair, with rewrite statistics.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The rewritten job (the crashed rank's program is empty).
    pub job: Job,
    /// The rank routed around.
    pub crashed: usize,
    /// Ops removed from survivor programs (crashed-rank ops not counted).
    pub dropped: usize,
    /// Survivor ops rewritten in place (redirected peers/tags).
    pub rewired: usize,
    /// New ops inserted into survivor programs.
    pub inserted: usize,
    /// Human-readable rewrite notes (one per component).
    pub notes: Vec<String>,
}

/// The dependence component shapes (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    DropIn,
    DropOut,
    FanOut,
    FanIn,
    /// Multi-segment pipelined tree: slot-level taint fuses every segment
    /// of a segmented chain/pipeline/binomial forward into one component,
    /// but each segment still has tree shape — all inbound receives pair
    /// with sends from ONE source rank, and each outbound send forwards a
    /// `(bytes, filter)` segment the source also sent.
    PipedFanOut,
}

/// Mutable per-rank edit state over the flattened program.
struct Edit {
    /// `ops[i] = None`: dropped. Rewrites replace the op in place.
    ops: Vec<Option<Op>>,
    /// Ops inserted *after* flat index `i`.
    inserts: BTreeMap<usize, Vec<Op>>,
    /// Fresh requests posted by inserted/replacement `Isend`s; completed by
    /// a trailing `WaitAll` appended to the program.
    tail_reqs: Vec<ReqId>,
    next_req: ReqId,
    next_slot: Slot,
}

impl Edit {
    fn fresh_req(&mut self) -> ReqId {
        let r = self.next_req;
        self.next_req += 1;
        self.tail_reqs.push(r);
        r
    }

    fn fresh_slot(&mut self) -> Slot {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// Remove `req` from the first surviving `WaitAll` after `from_idx`
    /// that lists it — the wait that would have completed the dropped
    /// posting. Request IDs are legitimately re-posted after their wait
    /// (dissemination rounds do), so only that one wait is touched.
    fn scrub_req(&mut self, from_idx: usize, req: ReqId) {
        for j in from_idx + 1..self.ops.len() {
            if let Some(Op::WaitAll { reqs }) = self.ops[j].as_mut() {
                if let Some(pos) = reqs.iter().position(|&q| q == req) {
                    reqs.remove(pos);
                    return;
                }
            }
        }
    }
}

/// Rewrite `job` so every rank except `crashed` completes without it; the
/// crashed rank's program is emptied. No certification — see
/// [`certified_repair`] for the accepted-only variant.
pub fn repair_job(job: &Job, cfg: &LintConfig, crashed: usize) -> Result<RepairOutcome, RepairError> {
    let ranks = job.ranks();
    if crashed >= ranks {
        return Err(RepairError::BadRank { rank: crashed, ranks });
    }
    let input = lint_job(job, cfg);
    if !input.is_clean() {
        return Err(RepairError::UncleanInput { errors: input.errors() });
    }

    let flat = flatten(job);
    let (matching, _) = channels::check(&flat, ranks);

    // --- dependence analysis of the crashed rank's program ---------------
    // inbound/outbound comm ops of `crashed`, and for each outbound the set
    // of inbound flat indices whose data taints its payload slot.
    let mut inbound: Vec<usize> = Vec::new();
    let mut outbound: Vec<usize> = Vec::new();
    let mut deps: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    {
        let mut taint: HashMap<Slot, BTreeSet<usize>> = HashMap::new();
        for (i, f) in flat[crashed].ops.iter().enumerate() {
            if let Some(m) = f.op.comm_meta() {
                match m.dir {
                    CommDir::Recv => {
                        inbound.push(i);
                        taint.insert(m.slot, BTreeSet::from([i]));
                    }
                    CommDir::Send => {
                        outbound.push(i);
                        deps.insert(i, taint.get(&m.slot).cloned().unwrap_or_default());
                    }
                }
                continue;
            }
            match f.op {
                Op::InitSlot { slot, .. } | Op::ClearSlot { slot } => {
                    taint.remove(slot);
                }
                Op::CopySlot { from, into } => {
                    let t = taint.get(from).cloned().unwrap_or_default();
                    taint.insert(*into, t);
                }
                // Read-modify-write merges: the target accumulates taint.
                Op::ReduceLocal { from, into, .. }
                | Op::MergeMove { from, into }
                | Op::OverwriteMove { from, into } => {
                    let t = taint.get(from).cloned().unwrap_or_default();
                    taint.entry(*into).or_default().extend(t);
                }
                _ => {}
            }
        }
    }

    // Connected components over inbound ∪ outbound with edges deps[o] ∋ i.
    let components = connected_components(&inbound, &outbound, &deps);

    // --- edit state ------------------------------------------------------
    let mut edits: Vec<Edit> = flat
        .iter()
        .enumerate()
        .map(|(r, fp)| Edit {
            ops: fp.ops.iter().map(|f| Some(f.op.clone())).collect(),
            inserts: BTreeMap::new(),
            tail_reqs: Vec::new(),
            next_req: job.reqs_needed(r),
            next_slot: job.slots_needed(r),
        })
        .collect();
    let mut next_tag: Tag = fresh_tag_base(&flat);
    let mut notes = Vec::new();
    let mut stats = (0usize, 0usize, 0usize); // dropped, rewired, inserted

    // Worklist of (rank, flat idx) survivor ops to drop with cascading.
    let mut drops: Vec<(usize, usize)> = Vec::new();

    for comp in &components {
        let n_in = comp.inbound.len();
        let n_out = comp.outbound.len();
        let weave = || RepairError::Unsupported {
            reason: format!(
                "rank {crashed} weaves {n_in} inbound receives into {n_out} outbound \
                 sends in one dependence component (no tree/dissemination rewrite)"
            ),
        };
        let shape = match (n_in, n_out) {
            (_, 0) => Shape::DropIn,
            (0, _) => Shape::DropOut,
            (1, _) => Shape::FanOut,
            (_, 1) => Shape::FanIn,
            _ => Shape::PipedFanOut,
        };
        match shape {
            Shape::DropIn => {
                // Sinks: drop each live sender's matching send.
                for &i in &comp.inbound {
                    let cp = matching.recv_match[crashed][&i];
                    drops.push((cp.rank, cp.flat));
                    notes.push(format!("drop-in: rank {} no longer sends to {crashed}", cp.rank));
                }
            }
            Shape::DropOut => {
                // R's own data: drop each live receiver's matching receive
                // (and, by cascade, whatever consumed it).
                for &o in &comp.outbound {
                    let cp = matching.send_match[crashed][&o];
                    drops.push((cp.rank, cp.flat));
                    notes.push(format!(
                        "drop-out: rank {} forgoes {crashed}'s contribution",
                        cp.rank
                    ));
                }
            }
            Shape::FanOut => {
                let i = comp.inbound[0];
                let src = matching.recv_match[crashed][&i];
                let src_slot = flat[src.rank].ops[src.flat]
                    .op
                    .comm_meta()
                    .expect("matched send is a comm op")
                    .slot;
                let mut clones: Vec<Op> = Vec::new();
                for &o in &comp.outbound {
                    let dst = matching.send_match[crashed][&o];
                    if dst.rank == src.rank {
                        // The forward would return to the promoted rank
                        // itself: its copy of the data is already in place —
                        // drop its receive instead of self-sending.
                        drops.push((dst.rank, dst.flat));
                        notes.push(format!(
                            "fan-out: rank {} already holds the data it relayed via {crashed}",
                            dst.rank
                        ));
                        continue;
                    }
                    let tag = next_tag;
                    next_tag += 1;
                    let clone = match flat[crashed].ops[o].op {
                        Op::Send { to, bytes, filter, .. } => {
                            Op::Send { to: *to, tag, bytes: *bytes, slot: src_slot, filter: *filter }
                        }
                        Op::Isend { to, bytes, filter, .. } => Op::Isend {
                            to: *to,
                            tag,
                            bytes: *bytes,
                            slot: src_slot,
                            filter: *filter,
                            req: edits[src.rank].fresh_req(),
                        },
                        _ => unreachable!("outbound is a send"),
                    };
                    clones.push(clone);
                    rewire_recv(&mut edits[dst.rank], dst.flat, src.rank, tag);
                    stats.1 += 1;
                }
                notes.push(format!(
                    "fan-out: rank {} promoted to forward for {crashed} ({} clone(s))",
                    src.rank,
                    clones.len()
                ));
                replace_send(&mut edits[src.rank], src.flat, clones, &mut stats);
            }
            Shape::PipedFanOut => {
                let sends = |rank: usize, idx: usize| match flat[rank].ops[idx].op {
                    Op::Send { bytes, slot, filter, .. }
                    | Op::Isend { bytes, slot, filter, .. } => (*bytes, *slot, *filter),
                    ref other => unreachable!("matched send is a send: {other:?}"),
                };
                let sources: Vec<_> =
                    comp.inbound.iter().map(|&i| matching.recv_match[crashed][&i]).collect();
                let src_rank = sources[0].rank;
                if sources.iter().any(|cp| cp.rank != src_rank) {
                    return Err(weave());
                }
                // Each segment is identified by the (bytes, filter) of the
                // source's send: the global block coordinates pin which data
                // travels, so an equal key means the source holds exactly
                // the blocks the crashed rank would have forwarded. Keys
                // must be unambiguous — the slot contents change over the
                // pipeline, so a duplicate key cannot be paired safely.
                let keys: Vec<_> = sources
                    .iter()
                    .map(|cp| {
                        let (bytes, _, filter) = sends(src_rank, cp.flat);
                        (bytes, filter)
                    })
                    .collect();
                if keys.iter().any(|k| keys.iter().filter(|k2| *k2 == k).count() > 1) {
                    return Err(weave());
                }
                let mut clones_for: Vec<Vec<Op>> = vec![Vec::new(); sources.len()];
                for &o in &comp.outbound {
                    let dst = matching.send_match[crashed][&o];
                    if dst.rank == src_rank {
                        // The forward would return to the promoted rank:
                        // its copy is already in place.
                        drops.push((dst.rank, dst.flat));
                        continue;
                    }
                    let (bytes_o, _, filter_o) = sends(crashed, o);
                    let Some(seg) = keys.iter().position(|&k| k == (bytes_o, filter_o)) else {
                        return Err(weave());
                    };
                    let (_, src_slot, _) = sends(src_rank, sources[seg].flat);
                    let tag = next_tag;
                    next_tag += 1;
                    let clone = match flat[crashed].ops[o].op {
                        Op::Send { to, bytes, filter, .. } => {
                            Op::Send { to: *to, tag, bytes: *bytes, slot: src_slot, filter: *filter }
                        }
                        Op::Isend { to, bytes, filter, .. } => Op::Isend {
                            to: *to,
                            tag,
                            bytes: *bytes,
                            slot: src_slot,
                            filter: *filter,
                            req: edits[src_rank].fresh_req(),
                        },
                        _ => unreachable!("outbound is a send"),
                    };
                    clones_for[seg].push(clone);
                    rewire_recv(&mut edits[dst.rank], dst.flat, src_rank, tag);
                    stats.1 += 1;
                }
                let forwards: usize = clones_for.iter().map(Vec::len).sum();
                // Replace each source→crashed send in place with that
                // segment's forwards: the clones sit exactly where the
                // source had the segment's data ready, preserving the
                // pipeline's data-dependence order.
                for (seg, clones) in clones_for.into_iter().enumerate() {
                    replace_send(&mut edits[src_rank], sources[seg].flat, clones, &mut stats);
                }
                notes.push(format!(
                    "piped fan-out: rank {src_rank} promoted to forward {} segment(s) for \
                     {crashed} ({forwards} clone(s))",
                    sources.len()
                ));
            }
            Shape::FanIn => {
                let o = comp.outbound[0];
                let dst = matching.send_match[crashed][&o];
                let recv_slot = flat[dst.rank].ops[dst.flat]
                    .op
                    .comm_meta()
                    .expect("matched receive is a comm op")
                    .slot;
                // The fold ops on the consumer that digest the received
                // value — cloned once per extra source.
                let folds = fold_ops(&flat[dst.rank], dst.flat, recv_slot)?;
                let insert_at = folds.last().copied().unwrap_or(dst.flat);
                let mut first = true;
                for &i in &comp.inbound {
                    let src = matching.recv_match[crashed][&i];
                    if src.rank == dst.rank {
                        // The consumer contributed via R itself: its own
                        // term is already in its accumulator — drop the
                        // send, nothing to re-receive.
                        drops.push((src.rank, src.flat));
                        notes.push(format!(
                            "fan-in: rank {} already holds its own contribution",
                            src.rank
                        ));
                        continue;
                    }
                    let bytes = flat[src.rank].ops[src.flat]
                        .op
                        .comm_meta()
                        .expect("matched send is a comm op")
                        .bytes
                        .expect("sends declare bytes");
                    let tag = next_tag;
                    next_tag += 1;
                    rewire_send(&mut edits[src.rank], src.flat, dst.rank, tag);
                    stats.1 += 1;
                    if first {
                        first = false;
                        rewire_recv(&mut edits[dst.rank], dst.flat, src.rank, tag);
                        stats.1 += 1;
                        // Keep the declared fold size honest for the new
                        // payload (the dead rank's aggregate may have been
                        // larger than one source's term).
                        fix_fold_bytes(&mut edits[dst.rank], &folds, recv_slot, bytes);
                    } else {
                        let slot = edits[dst.rank].fresh_slot();
                        let mut seq = vec![Op::Recv { from: src.rank, tag, slot }];
                        for &fi in &folds {
                            seq.push(clone_fold(
                                edits[dst.rank].ops[fi].as_ref().expect("fold not dropped"),
                                recv_slot,
                                slot,
                                bytes,
                            ));
                        }
                        stats.2 += seq.len();
                        edits[dst.rank].inserts.entry(insert_at).or_default().extend(seq);
                    }
                }
                notes.push(format!(
                    "fan-in: rank {} now receives {} source(s) directly (was via {crashed})",
                    dst.rank,
                    comp.inbound.len()
                ));
            }
        }
    }

    // --- cascading drops --------------------------------------------------
    while let Some((r, i)) = drops.pop() {
        debug_assert_ne!(r, crashed);
        let Some(op) = edits[r].ops[i].take() else { continue };
        stats.0 += 1;
        if let Some(m) = op.comm_meta() {
            if let Some(req) = m.req {
                edits[r].scrub_req(i, req);
            }
            match m.dir {
                // A dropped send orphans its counterpart receive.
                CommDir::Send => {
                    if let Some(cp) = matching.send_match[r].get(&i) {
                        if cp.rank != crashed {
                            drops.push((cp.rank, cp.flat));
                        }
                    }
                    continue;
                }
                // A dropped receive kills the value its slot carried: walk
                // forward, dropping readers of dead slots until a pure
                // overwrite revives them.
                CommDir::Recv => {
                    let mut dead: HashSet<Slot> = HashSet::from([m.slot]);
                    for j in i + 1..edits[r].ops.len() {
                        let Some(o) = edits[r].ops[j].as_ref() else { continue };
                        let reads = o.slots_read();
                        let writes = o.slots_written();
                        if reads.iter().any(|s| dead.contains(s)) {
                            let is_send = matches!(o.comm_meta(), Some(m) if m.dir == CommDir::Send);
                            let req = o.comm_meta().and_then(|m| m.req);
                            // Pure overwrite targets of the dropped op die
                            // with it; read-modify-write targets keep their
                            // prior value.
                            for w in &writes {
                                if !reads.contains(w) {
                                    dead.insert(*w);
                                }
                            }
                            edits[r].ops[j] = None;
                            stats.0 += 1;
                            if let Some(req) = req {
                                edits[r].scrub_req(j, req);
                            }
                            if is_send {
                                if let Some(cp) = matching.send_match[r].get(&j) {
                                    if cp.rank != crashed {
                                        drops.push((cp.rank, cp.flat));
                                    }
                                }
                            }
                        } else {
                            for w in &writes {
                                if !reads.contains(w) {
                                    dead.remove(w);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // --- reassembly -------------------------------------------------------
    let mut programs: Vec<RankProgram> = Vec::with_capacity(ranks);
    for (r, prog) in job.programs.iter().enumerate() {
        if r == crashed {
            programs.push(RankProgram::new());
            continue;
        }
        let edit = &edits[r];
        let mut out = RankProgram::new();
        let mut idx = 0usize;
        for seg in &prog.segments {
            let mut ops: Vec<Op> = Vec::with_capacity(seg.ops.len());
            for _ in &seg.ops {
                if let Some(op) = edit.ops[idx].clone() {
                    ops.push(op);
                }
                if let Some(ins) = edit.inserts.get(&idx) {
                    ops.extend(ins.iter().cloned());
                }
                idx += 1;
            }
            out.segments.push(Segment { label: seg.label, ops });
        }
        if !edit.tail_reqs.is_empty() {
            out.push_anon(vec![Op::waitall(edit.tail_reqs.clone())]);
        }
        programs.push(out);
    }

    Ok(RepairOutcome {
        job: Job::new(programs),
        crashed,
        dropped: stats.0,
        rewired: stats.1,
        inserted: stats.2,
        notes,
    })
}

/// [`repair_job`], accepted only if the rewrite passes re-verification: the
/// repaired job must lint with zero errors across all 15 diagnostic classes
/// *and* have an empty crash cone for the repaired fault.
pub fn certified_repair(
    job: &Job,
    cfg: &LintConfig,
    crashed: usize,
) -> Result<RepairOutcome, RepairError> {
    let out = repair_job(job, cfg, crashed)?;
    let report = lint_job(&out.job, cfg);
    let cone = crash_cone(&out.job, cfg, &[CrashPoint::on_entry(crashed)]);
    if !report.is_clean() || !cone.is_empty() {
        return Err(RepairError::CertificationFailed {
            report: Box::new(report),
            residual_cone: cone.starved_ranks(),
        });
    }
    Ok(out)
}

/// One dependence component of the crashed rank's comm ops.
struct Component {
    inbound: Vec<usize>,
    outbound: Vec<usize>,
}

fn connected_components(
    inbound: &[usize],
    outbound: &[usize],
    deps: &BTreeMap<usize, BTreeSet<usize>>,
) -> Vec<Component> {
    // Union-find keyed by flat index.
    let mut parent: BTreeMap<usize, usize> =
        inbound.iter().chain(outbound.iter()).map(|&i| (i, i)).collect();
    fn find(parent: &mut BTreeMap<usize, usize>, i: usize) -> usize {
        let p = parent[&i];
        if p == i {
            return i;
        }
        let root = find(parent, p);
        parent.insert(i, root);
        root
    }
    for (&o, ins) in deps {
        for &i in ins {
            let (a, b) = (find(&mut parent, o), find(&mut parent, i));
            if a != b {
                parent.insert(a, b);
            }
        }
    }
    let mut groups: BTreeMap<usize, Component> = BTreeMap::new();
    for &i in inbound {
        let root = find(&mut parent, i);
        groups.entry(root).or_insert_with(|| Component { inbound: vec![], outbound: vec![] }).inbound.push(i);
    }
    for &o in outbound {
        let root = find(&mut parent, o);
        groups.entry(root).or_insert_with(|| Component { inbound: vec![], outbound: vec![] }).outbound.push(o);
    }
    groups.into_values().collect()
}

/// Largest tag in the job plus one: the base for fresh repair channels.
fn fresh_tag_base(flat: &[crate::FlatProgram<'_>]) -> Tag {
    flat.iter()
        .flat_map(|fp| fp.ops.iter())
        .filter_map(|f| f.op.comm_meta().map(|m| m.tag))
        .max()
        .map_or(0, |t| t + 1)
}

/// Redirect a receive in place to a new source and tag (kind, slot and
/// request are preserved).
fn rewire_recv(edit: &mut Edit, idx: usize, new_from: usize, new_tag: Tag) {
    match edit.ops[idx].as_mut() {
        Some(Op::Recv { from, tag, .. }) | Some(Op::Irecv { from, tag, .. }) => {
            *from = new_from;
            *tag = new_tag;
        }
        other => unreachable!("rewire_recv on non-receive {other:?}"),
    }
}

/// Redirect a send in place to a new destination and tag.
fn rewire_send(edit: &mut Edit, idx: usize, new_to: usize, new_tag: Tag) {
    match edit.ops[idx].as_mut() {
        Some(Op::Send { to, tag, .. }) | Some(Op::Isend { to, tag, .. }) => {
            *to = new_to;
            *tag = new_tag;
        }
        other => unreachable!("rewire_send on non-send {other:?}"),
    }
}

/// Replace a send op with a clone sequence (first clone in place, the rest
/// inserted after it). The original request, if any, is scrubbed — clones
/// carry their own fresh requests.
fn replace_send(edit: &mut Edit, idx: usize, clones: Vec<Op>, stats: &mut (usize, usize, usize)) {
    if let Some(m) = edit.ops[idx].as_ref().and_then(Op::comm_meta) {
        if let Some(req) = m.req {
            edit.scrub_req(idx, req);
        }
    }
    let mut it = clones.into_iter();
    match it.next() {
        Some(first) => {
            edit.ops[idx] = Some(first);
            stats.1 += 1;
        }
        None => {
            edit.ops[idx] = None;
            stats.0 += 1;
        }
    }
    let rest: Vec<Op> = it.collect();
    stats.2 += rest.len();
    if !rest.is_empty() {
        edit.inserts.entry(idx).or_default().extend(rest);
    }
}

/// The local fold ops on a consumer that digest the value received at
/// `recv_idx` into `recv_slot` — the window ends at the first pure
/// overwrite of the slot. A *communication* op consuming the slot means the
/// consumer forwards the dead rank's aggregate onward; growing that pattern
/// per extra source would duplicate messages, so it is unsupported.
fn fold_ops(
    prog: &crate::FlatProgram<'_>,
    recv_idx: usize,
    recv_slot: Slot,
) -> Result<Vec<usize>, RepairError> {
    let mut folds = Vec::new();
    for (j, f) in prog.ops.iter().enumerate().skip(recv_idx + 1) {
        let reads = f.op.slots_read();
        let writes = f.op.slots_written();
        if reads.contains(&recv_slot) {
            if f.op.comm_meta().is_some() {
                return Err(RepairError::Unsupported {
                    reason: format!(
                        "fan-in consumer rank {} forwards the received value (flat op {j}); \
                         duplicating the forward per source is not a sound rewrite",
                        f.loc.rank
                    ),
                });
            }
            match f.op {
                Op::ReduceLocal { .. } | Op::MergeMove { .. } | Op::OverwriteMove { .. } => {
                    folds.push(j);
                }
                other => {
                    return Err(RepairError::Unsupported {
                        reason: format!(
                            "fan-in consumer rank {} digests the received value with {other:?}; \
                             only fold ops (ReduceLocal/MergeMove/OverwriteMove) can be cloned \
                             per source",
                            f.loc.rank
                        ),
                    });
                }
            }
        } else if writes.contains(&recv_slot) {
            break; // pure overwrite: the window ends.
        }
    }
    Ok(folds)
}

/// Clone one fold op, re-pointing its source slot at `new_slot` and (for
/// `ReduceLocal`) re-declaring the folded byte count as the new source's.
fn clone_fold(op: &Op, old_slot: Slot, new_slot: Slot, bytes: u64) -> Op {
    match op {
        Op::ReduceLocal { from, into, .. } if *from == old_slot => {
            Op::ReduceLocal { from: new_slot, into: *into, bytes }
        }
        Op::MergeMove { from, into } if *from == old_slot => {
            Op::MergeMove { from: new_slot, into: *into }
        }
        Op::OverwriteMove { from, into } if *from == old_slot => {
            Op::OverwriteMove { from: new_slot, into: *into }
        }
        other => unreachable!("clone_fold on non-fold {other:?}"),
    }
}

/// Align the declared byte count of `ReduceLocal` folds consuming
/// `recv_slot` with the redirected first source's payload size (the lint's
/// size-mismatch check compares the two).
fn fix_fold_bytes(edit: &mut Edit, folds: &[usize], recv_slot: Slot, new_bytes: u64) {
    for &fi in folds {
        if let Some(Op::ReduceLocal { from, bytes, .. }) = edit.ops[fi].as_mut() {
            if *from == recv_slot {
                *bytes = new_bytes;
            }
        }
    }
}
