//! Registry sweep: lint every registered algorithm across rank counts,
//! roots, and eager-threshold-straddling sizes (the `papctl lint` backend).

use pap_collectives::registry::{algorithms, CollectiveKind};
use pap_collectives::{build, CollSpec, DEFAULT_SEG_BYTES};
use pap_sim::{Job, RankProgram};
use serde::{Deserialize, Serialize};

use crate::{lint_job, LintConfig};

/// All kinds, in registry order.
pub(crate) const KINDS: [CollectiveKind; 8] = [
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Alltoall,
    CollectiveKind::Bcast,
    CollectiveKind::Barrier,
    CollectiveKind::Allgather,
    CollectiveKind::Gather,
    CollectiveKind::Scatter,
];

/// Whether the builders of a kind consume `spec.root` (rooted collectives,
/// plus Allreduce whose reduce+bcast composition routes through the root).
pub(crate) fn uses_root(kind: CollectiveKind) -> bool {
    !matches!(kind, CollectiveKind::Alltoall | CollectiveKind::Allgather | CollectiveKind::Barrier)
}

/// Sweep configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Rank counts to cover (power-of-two and non-power-of-two).
    pub ranks: Vec<usize>,
    /// Message sizes in bytes; must straddle the eager threshold.
    pub sizes: Vec<u64>,
    /// Eager threshold for the deadlock/fragility analysis.
    pub eager_threshold: u64,
    /// Segment size for segmented algorithms.
    pub seg_bytes: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ranks: vec![8, 12, 32],
            // 512 B / 16 KiB sit at-or-below the default eager threshold,
            // 16 KiB + 1 / 128 KiB force rendezvous (and multi-segment
            // pipelines at the default 8 KiB segment size).
            sizes: vec![512, 16 * 1024, 16 * 1024 + 1, 128 * 1024],
            eager_threshold: 16 * 1024,
            seg_bytes: DEFAULT_SEG_BYTES,
        }
    }
}

/// One non-clean case of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseFinding {
    /// Collective name (`MPI_Reduce`, …).
    pub collective: String,
    /// Algorithm ID.
    pub alg: u8,
    /// Rank count.
    pub ranks: usize,
    /// Root rank of the case.
    pub root: usize,
    /// Message size.
    pub bytes: u64,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Rendered diagnostics (one line per finding).
    pub diagnostics: Vec<String>,
}

/// Per-algorithm aggregate row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgRow {
    /// Collective name.
    pub collective: String,
    /// Algorithm ID.
    pub alg: u8,
    /// Algorithm name (Table II).
    pub name: String,
    /// Cases linted.
    pub cases: usize,
    /// Total error-severity findings across the cases.
    pub errors: usize,
    /// Total warning-severity findings.
    pub warnings: usize,
}

/// Aggregated sweep result (the `papctl lint --json` document and the
/// `results/lint_registry.json` fixture).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Rank counts covered.
    pub ranks: Vec<usize>,
    /// Sizes covered.
    pub sizes: Vec<u64>,
    /// Eager threshold used.
    pub eager_threshold: u64,
    /// Total cases linted.
    pub cases: usize,
    /// Cases with no finding at all.
    pub clean_cases: usize,
    /// Total error-severity findings.
    pub errors: usize,
    /// Total warning-severity findings.
    pub warnings: usize,
    /// Per-algorithm aggregates, registry order.
    pub algorithms: Vec<AlgRow>,
    /// Every non-clean case, with rendered diagnostics.
    pub findings: Vec<CaseFinding>,
}

impl SweepSummary {
    /// No error-severity finding anywhere.
    pub fn is_clean(&self) -> bool {
        self.errors == 0
    }

    /// Fixed-width pass/fail table (the `papctl lint` human output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>3}  {:<18} {:>6} {:>7} {:>9}  status\n",
            "collective", "alg", "name", "cases", "errors", "warnings"
        ));
        for row in &self.algorithms {
            out.push_str(&format!(
                "{:<14} {:>3}  {:<18} {:>6} {:>7} {:>9}  {}\n",
                row.collective,
                row.alg,
                row.name,
                row.cases,
                row.errors,
                row.warnings,
                if row.errors > 0 { "FAIL" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>3}  {:<18} {:>6} {:>7} {:>9}  {}\n",
            "TOTAL",
            "",
            "",
            self.cases,
            self.errors,
            self.warnings,
            if self.errors > 0 { "FAIL" } else { "ok" }
        ));
        out
    }
}

#[derive(Clone, Copy)]
struct Case {
    kind: CollectiveKind,
    alg: u8,
    p: usize,
    root: usize,
    bytes: u64,
}

/// Lint the full registry: every algorithm × `cfg.ranks` × all roots (for
/// root-consuming collectives) × `cfg.sizes`. Cases fan out over the
/// `pap-parallel` worker pool; the result is deterministic and
/// order-independent.
pub fn sweep_registry(cfg: &SweepConfig) -> SweepSummary {
    let mut cases = Vec::new();
    for kind in KINDS {
        for a in algorithms(kind) {
            for &p in &cfg.ranks {
                let roots: Vec<usize> = if uses_root(kind) { (0..p).collect() } else { vec![0] };
                for root in roots {
                    for &bytes in &cfg.sizes {
                        cases.push(Case { kind, alg: a.id, p, root, bytes });
                    }
                }
            }
        }
    }

    let lint_cfg =
        LintConfig { eager_threshold: cfg.eager_threshold, check_fragility: true };
    let seg_bytes = cfg.seg_bytes;
    let results: Vec<(usize, usize, Vec<String>)> = pap_parallel::par_map(&cases, |_, case| {
        let spec = CollSpec::new(case.kind, case.alg, case.bytes)
            .with_root(case.root)
            .with_seg_bytes(seg_bytes);
        match build(&spec, case.p) {
            Ok(built) => {
                let programs: Vec<RankProgram> =
                    built.rank_ops.into_iter().map(RankProgram::from_ops).collect();
                let report = lint_job(&Job::new(programs), &lint_cfg);
                let lines = report
                    .diagnostics
                    .iter()
                    .map(|d| {
                        let sev = match d.severity {
                            crate::Severity::Error => "error",
                            crate::Severity::Warning => "warning",
                        };
                        format!("{sev}[{}] {}: {}", d.class, d.loc, d.message)
                    })
                    .collect();
                (report.errors(), report.warnings(), lines)
            }
            Err(e) => (1, 0, vec![format!("error[build] {e}")]),
        }
    });

    let mut algo_rows: Vec<AlgRow> = Vec::new();
    let mut findings = Vec::new();
    let (mut errors, mut warnings, mut clean) = (0usize, 0usize, 0usize);
    for (case, (errs, warns, lines)) in cases.iter().zip(&results) {
        errors += errs;
        warnings += warns;
        if lines.is_empty() {
            clean += 1;
        } else {
            findings.push(CaseFinding {
                collective: case.kind.name().to_string(),
                alg: case.alg,
                ranks: case.p,
                root: case.root,
                bytes: case.bytes,
                errors: *errs,
                warnings: *warns,
                diagnostics: lines.clone(),
            });
        }
        let key = (case.kind.name().to_string(), case.alg);
        match algo_rows.iter_mut().find(|r| (r.collective.clone(), r.alg) == key) {
            Some(row) => {
                row.cases += 1;
                row.errors += errs;
                row.warnings += warns;
            }
            None => algo_rows.push(AlgRow {
                collective: key.0,
                alg: case.alg,
                name: pap_collectives::registry::algorithm(case.kind, case.alg)
                    .map(|a| a.name.to_string())
                    .unwrap_or_default(),
                cases: 1,
                errors: *errs,
                warnings: *warns,
            }),
        }
    }

    SweepSummary {
        ranks: cfg.ranks.clone(),
        sizes: cfg.sizes.clone(),
        eager_threshold: cfg.eager_threshold,
        cases: cases.len(),
        clean_cases: clean,
        errors,
        warnings,
        algorithms: algo_rows,
        findings,
    }
}
