//! Mutation-based self-test: corrupt a *clean* schedule and assert the
//! linter reports the corresponding diagnostic class. This is the linter's
//! own correctness proof — every diagnostic class is demonstrated to fire on
//! a schedule that differs from a verified-clean one by exactly one
//! corruption.
//!
//! Two layers:
//!
//! * **property tests** over the real algorithm registry: drop a random
//!   receive, retag a random send, or swap a `WaitAll` request on an
//!   arbitrary `(kind, alg, p, root, bytes)` schedule;
//! * **deterministic pair programs** for the classes whose trigger needs a
//!   precise shape (deadlock, protocol fragility, tag conflict, size
//!   mismatch, request reuse, slot-state classes) — each starts from a clean
//!   baseline and applies one corruption.

use pap_collectives::registry::algorithms;
use pap_collectives::{build, CollSpec, CollectiveKind};
use pap_lint::{lint_job, DiagClass, LintConfig};
use pap_sim::{Job, Op, RankProgram, Value};
use proptest::prelude::*;

const EAGER: u64 = 16 * 1024;

fn cfg() -> LintConfig {
    LintConfig { eager_threshold: EAGER, check_fragility: true }
}

fn job_of(programs: Vec<Vec<Op>>) -> Job {
    Job::new(
        programs
            .into_iter()
            .map(|ops| {
                let mut p = RankProgram::new();
                p.push_anon(ops);
                p
            })
            .collect(),
    )
}

/// Build a registry schedule as a mutable op matrix; `None` if the
/// combination is unbuildable (e.g. algorithm's p constraint).
fn registry_ops(
    kind: CollectiveKind,
    alg: u8,
    p: usize,
    root: usize,
    bytes: u64,
) -> Option<Vec<Vec<Op>>> {
    let spec = CollSpec::new(kind, alg, bytes).with_root(root);
    build(&spec, p).ok().map(|b| b.rank_ops)
}

const KINDS: [CollectiveKind; 8] = [
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Alltoall,
    CollectiveKind::Bcast,
    CollectiveKind::Barrier,
    CollectiveKind::Allgather,
    CollectiveKind::Gather,
    CollectiveKind::Scatter,
];

fn case_strategy() -> impl Strategy<Value = (CollectiveKind, usize, usize, usize, u64, usize)> {
    (
        0usize..KINDS.len(),
        any::<usize>(),
        4usize..=16,
        any::<usize>(),
        prop_oneof![Just(64u64), Just(EAGER + 4096)],
        any::<usize>(),
    )
        .prop_map(|(k, a, p, r, bytes, pick)| (KINDS[k], a, p, r % p, bytes, pick))
}

/// All `(rank, seg, op)` coordinates in `ops` whose op satisfies `f`.
fn coords(ops: &[Vec<Op>], f: impl Fn(&Op) -> bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (r, rank_ops) in ops.iter().enumerate() {
        for (i, op) in rank_ops.iter().enumerate() {
            if f(op) {
                out.push((r, i));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Dropping any receive from any clean registry schedule leaves its
    /// matched send unmatched.
    #[test]
    fn dropping_a_recv_reports_unmatched_send(
        case in case_strategy()
    ) {
        let (kind, alg_pick, p, root, bytes, pick) = case;
        let algs = algorithms(kind);
        let alg = algs[alg_pick % algs.len()].id;
        let Some(mut ops) = registry_ops(kind, alg, p, root, bytes) else {
            return;
        };
        prop_assert!(lint_job(&job_of(ops.clone()), &cfg()).is_clean());
        let recvs = coords(&ops, |o| matches!(o, Op::Recv { .. } | Op::Irecv { .. }));
        if recvs.is_empty() {
            return; // p == 1 style degenerate schedules
        }
        let (r, i) = recvs[pick % recvs.len()];
        ops[r].remove(i);
        let report = lint_job(&job_of(ops), &cfg());
        prop_assert!(
            report.has(DiagClass::UnmatchedSend),
            "dropping recv at rank {r} op {i} must orphan its send:\n{}",
            report.render()
        );
    }

    /// Retagging any send onto a fresh tag orphans both channel ends.
    #[test]
    fn retagging_a_send_reports_both_unmatched_ends(
        case in case_strategy()
    ) {
        let (kind, alg_pick, p, root, bytes, pick) = case;
        let algs = algorithms(kind);
        let alg = algs[alg_pick % algs.len()].id;
        let Some(mut ops) = registry_ops(kind, alg, p, root, bytes) else {
            return;
        };
        prop_assert!(lint_job(&job_of(ops.clone()), &cfg()).is_clean());
        let sends = coords(&ops, |o| matches!(o, Op::Send { .. } | Op::Isend { .. }));
        if sends.is_empty() {
            return;
        }
        let (r, i) = sends[pick % sends.len()];
        match &mut ops[r][i] {
            Op::Send { tag, .. } | Op::Isend { tag, .. } => *tag = u64::MAX - 1,
            _ => unreachable!(),
        }
        let report = lint_job(&job_of(ops), &cfg());
        prop_assert!(
            report.has(DiagClass::UnmatchedSend) && report.has(DiagClass::UnmatchedRecv),
            "retagging send at rank {r} op {i} must orphan both channels:\n{}",
            report.render()
        );
    }

    /// Swapping a `WaitAll` request for a never-posted ID is reported.
    #[test]
    fn swapping_a_waitall_req_reports_never_posted(
        case in case_strategy()
    ) {
        let (kind, alg_pick, p, root, bytes, pick) = case;
        let algs = algorithms(kind);
        let alg = algs[alg_pick % algs.len()].id;
        let Some(mut ops) = registry_ops(kind, alg, p, root, bytes) else {
            return;
        };
        prop_assert!(lint_job(&job_of(ops.clone()), &cfg()).is_clean());
        let waits = coords(&ops, |o| matches!(o, Op::WaitAll { reqs } if !reqs.is_empty()));
        if waits.is_empty() {
            return; // blocking-only schedule
        }
        let (r, i) = waits[pick % waits.len()];
        if let Op::WaitAll { reqs } = &mut ops[r][i] {
            let j = pick % reqs.len();
            reqs[j] = 999_999;
        }
        let report = lint_job(&job_of(ops), &cfg());
        prop_assert!(
            report.has(DiagClass::WaitNeverPosted),
            "WaitAll at rank {r} op {i} waits a never-posted req:\n{}",
            report.render()
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic corruptions: one clean baseline, one mutation, one class.
// ---------------------------------------------------------------------------

/// Clean two-rank rendezvous exchange: 0 sends then receives; 1 receives
/// then sends (no cycle at any size).
fn clean_exchange(bytes: u64) -> Vec<Vec<Op>> {
    vec![
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::send(1, 1, bytes, 0),
            Op::recv(1, 2, 1),
        ],
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::recv(0, 1, 1),
            Op::send(0, 2, bytes, 0),
        ],
    ]
}

/// The head-to-head corruption: rank 1's receive moved after its send.
fn head_to_head(bytes: u64) -> Vec<Vec<Op>> {
    let mut ops = clean_exchange(bytes);
    ops[1].swap(1, 2);
    ops
}

#[test]
fn reordered_exchange_above_threshold_is_a_deadlock() {
    assert!(lint_job(&job_of(clean_exchange(EAGER + 1)), &cfg()).is_clean());
    let report = lint_job(&job_of(head_to_head(EAGER + 1)), &cfg());
    assert!(report.has(DiagClass::Deadlock), "{}", report.render());
    assert!(!report.is_clean());
}

#[test]
fn reordered_exchange_below_threshold_is_protocol_fragile() {
    assert!(lint_job(&job_of(clean_exchange(64)), &cfg()).is_clean());
    let report = lint_job(&job_of(head_to_head(64)), &cfg());
    // Completes today (eager sends don't block) — flagged as fragile, not
    // deadlocked: it hangs the moment `bytes` crosses the threshold.
    assert!(report.has(DiagClass::ProtocolFragility), "{}", report.render());
    assert!(!report.has(DiagClass::Deadlock), "{}", report.render());
}

#[test]
fn retagging_onto_a_live_channel_is_a_tag_conflict() {
    // Clean: two messages 0 -> 1 on distinct tags.
    let clean = vec![
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::isend(1, 1, 8, 0, 0),
            Op::isend(1, 2, 8, 0, 1),
            Op::waitall(vec![0, 1]),
        ],
        vec![
            Op::irecv(0, 1, 1, 0),
            Op::irecv(0, 2, 2, 1),
            Op::waitall(vec![0, 1]),
        ],
    ];
    assert!(lint_job(&job_of(clean.clone()), &cfg()).is_clean());

    // Corruption: both messages forced onto tag 1. Same sizes → warning.
    let mut uniform = clean.clone();
    uniform[0][2] = Op::isend(1, 1, 8, 0, 1);
    uniform[1][1] = Op::irecv(0, 1, 2, 1);
    let report = lint_job(&job_of(uniform), &cfg());
    assert!(report.has(DiagClass::TagConflict), "{}", report.render());
    assert!(report.is_clean(), "uniform-size FIFO reuse is a warning: {}", report.render());

    // Differing sizes → error (ambiguous pairing off FIFO transports).
    let mut skewed = clean;
    skewed[0][2] = Op::isend(1, 1, 16, 0, 1);
    skewed[1][1] = Op::irecv(0, 1, 2, 1);
    let report = lint_job(&job_of(skewed), &cfg());
    assert!(
        report.of_class(DiagClass::TagConflict).any(|d| d.severity == pap_lint::Severity::Error),
        "{}",
        report.render()
    );
}

#[test]
fn reposting_a_live_request_is_request_reuse() {
    let clean = vec![
        vec![
            Op::irecv(1, 1, 1, 0),
            Op::irecv(1, 2, 2, 1),
            Op::waitall(vec![0, 1]),
        ],
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::send(0, 1, 8, 0),
            Op::send(0, 2, 8, 0),
        ],
    ];
    assert!(lint_job(&job_of(clean.clone()), &cfg()).is_clean());
    let mut corrupted = clean;
    corrupted[0][1] = Op::irecv(1, 2, 2, 0); // re-posts req 0 while live
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::RequestReuse), "{}", report.render());
}

#[test]
fn dropping_an_init_is_use_before_init() {
    let clean = clean_exchange(64);
    let mut corrupted = clean.clone();
    corrupted[0].remove(0); // rank 0 now sends from an uninitialized slot
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::UseBeforeInit), "{}", report.render());
    assert!(lint_job(&job_of(clean), &cfg()).is_clean());
}

#[test]
fn clearing_before_the_send_is_send_from_cleared_slot() {
    let mut corrupted = clean_exchange(64);
    corrupted[0].insert(1, Op::ClearSlot { slot: 0 });
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::SendFromClearedSlot), "{}", report.render());
}

#[test]
fn double_init_is_a_dead_store() {
    let mut corrupted = clean_exchange(64);
    corrupted[0].insert(1, Op::InitSlot { slot: 0, value: Value::empty() });
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::DeadStore), "{}", report.render());
    assert!(report.is_clean(), "a dead store alone is a warning: {}", report.render());
}

#[test]
fn self_send_and_bad_peer_are_reported() {
    let mut corrupted = clean_exchange(64);
    match &mut corrupted[0][1] {
        Op::Send { to, .. } => *to = 0, // self
        _ => unreachable!(),
    }
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::SelfMessage), "{}", report.render());

    let mut corrupted = clean_exchange(64);
    match &mut corrupted[0][1] {
        Op::Send { to, .. } => *to = 7, // only 2 ranks exist
        _ => unreachable!(),
    }
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::PeerOutOfRange), "{}", report.render());
}

#[test]
fn reduce_size_disagreement_is_a_size_mismatch() {
    let clean = vec![
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::send(1, 1, 32, 0),
        ],
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::recv(0, 1, 1),
            Op::ReduceLocal { from: 1, into: 0, bytes: 32 },
        ],
    ];
    assert!(lint_job(&job_of(clean.clone()), &cfg()).is_clean());
    let mut corrupted = clean;
    corrupted[1][2] = Op::ReduceLocal { from: 1, into: 0, bytes: 64 };
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::SizeMismatch), "{}", report.render());
}

#[test]
fn touching_a_pending_irecv_slot_is_a_hazard() {
    let clean = vec![
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::irecv(1, 1, 1, 0),
            Op::waitall(vec![0]),
            Op::send(1, 2, 8, 1),
        ],
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::send(0, 1, 8, 0),
            Op::recv(0, 2, 1),
        ],
    ];
    assert!(lint_job(&job_of(clean.clone()), &cfg()).is_clean());
    let mut corrupted = clean;
    corrupted[0].swap(2, 3); // send now reads slot 1 before the WaitAll
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::PendingRecvHazard), "{}", report.render());
}

#[test]
fn unwaited_request_is_reported() {
    let mut corrupted = vec![
        vec![
            Op::irecv(1, 1, 1, 0),
            Op::waitall(vec![0]),
        ],
        vec![
            Op::InitSlot { slot: 0, value: Value::empty() },
            Op::send(0, 1, 8, 0),
        ],
    ];
    corrupted[0].pop(); // drop the WaitAll: the request is never completed
    let report = lint_job(&job_of(corrupted), &cfg());
    assert!(report.has(DiagClass::RequestNeverWaited), "{}", report.render());
}
