//! Certified schedule repair: tree/dissemination rewrites must certify
//! (all 15 lint classes, empty residual cone) and complete in the engine
//! under the repaired crash — and corrupted repairs must be *caught* by the
//! same re-lint that certifies the honest ones.

use pap_collectives::{build, CollSpec, CollectiveKind};
use pap_lint::{
    certified_repair, crash_cone, lint_job, repair_job, sweep_faults, CrashPoint,
    FaultSweepConfig, LintConfig, RepairError, RepairVerdict,
};
use pap_sim::{run_ref, FaultSpec, Job, Op, Platform, RankProgram, SimConfig, SimError};

const RDV: u64 = 128 * 1024; // past the 16 KiB eager threshold
const EAGER: u64 = 1024;

fn registry_job(kind: CollectiveKind, alg: u8, p: usize, bytes: u64) -> Job {
    let built = build(&CollSpec::new(kind, alg, bytes), p).unwrap();
    Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect())
}

/// Run `job` under an entry crash of `rank`; return the starved survivor
/// set (empty when the run completes).
fn sim_starved(job: &Job, p: usize, rank: usize) -> Vec<usize> {
    let platform = Platform::simcluster(p);
    let cfg = SimConfig { faults: FaultSpec::none().with_crash(rank, 0.0), ..SimConfig::default() };
    match run_ref(&platform, job, &cfg) {
        Ok(_) => vec![],
        Err(SimError::Deadlock { blocked, .. }) => {
            let mut ranks: Vec<usize> = blocked.iter().map(|(r, _)| *r).collect();
            ranks.sort_unstable();
            ranks
        }
        Err(e) => panic!("unexpected sim error: {e}"),
    }
}

#[test]
fn binomial_reduce_leaf_repair_certifies_and_completes() {
    let (p, victim) = (8, 7);
    let job = registry_job(CollectiveKind::Reduce, 5, p, RDV);
    // The un-repaired schedule starves survivors under the crash…
    assert!(!sim_starved(&job, p, victim).is_empty(), "leaf crash must starve the reduce");
    // …the certified repair starves nobody.
    let cfg = LintConfig::default();
    let out = certified_repair(&job, &cfg, victim).unwrap();
    assert!(out.job.programs[victim].op_count() == 0, "crashed rank program is emptied");
    assert!(out.dropped > 0, "the parent must forgo the dead leaf's contribution");
    assert_eq!(sim_starved(&out.job, p, victim), vec![], "repair completes under the crash");
}

#[test]
fn binomial_reduce_interior_repair_redirects_children() {
    // Rank 4 in an 8-rank binomial reduce to root 0 has children and a
    // parent: the fan-in rewrite sends the children directly to the parent.
    let (p, victim) = (8, 4);
    let job = registry_job(CollectiveKind::Reduce, 5, p, RDV);
    let cfg = LintConfig::default();
    let cone = crash_cone(&job, &cfg, &[CrashPoint::on_entry(victim)]);
    assert!(cone.starved_ranks().contains(&0), "interior crash reaches the root");
    let out = certified_repair(&job, &cfg, victim).unwrap();
    assert!(out.rewired > 0, "children redirect to the promoted consumer");
    assert_eq!(sim_starved(&out.job, p, victim), vec![]);
}

#[test]
fn binomial_bcast_interior_repair_promotes_parent() {
    let (p, victim) = (8, 4); // rank 4: interior (children 5, 6) under root 0
    // One 128 KiB segment: rendezvous sends, so the subtree really starves.
    let built =
        build(&CollSpec::new(CollectiveKind::Bcast, 5, RDV).with_seg_bytes(RDV), p).unwrap();
    let job = Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect());
    let cfg = LintConfig::default();
    assert!(
        !crash_cone(&job, &cfg, &[CrashPoint::on_entry(victim)]).is_empty(),
        "interior bcast crash starves the subtree at rendezvous sizes"
    );
    let out = certified_repair(&job, &cfg, victim).unwrap();
    assert!(out.rewired > 0, "subtree receives rewired to the promoted parent");
    assert_eq!(sim_starved(&out.job, p, victim), vec![]);
}

#[test]
fn scatter_and_gather_binomial_repairs_certify() {
    for (kind, name) in
        [(CollectiveKind::Scatter, "scatter"), (CollectiveKind::Gather, "gather")]
    {
        let p = 8;
        let job = registry_job(kind, 2, p, RDV);
        let cfg = LintConfig::default();
        // Pick the worst non-root victim.
        let blast = pap_lint::blast_radius(&job, &cfg);
        let victim =
            (1..p).max_by_key(|&r| (blast.entry_starved[r], usize::MAX - r)).unwrap();
        let out = certified_repair(&job, &cfg, victim)
            .unwrap_or_else(|e| panic!("{name} repair failed: {e}"));
        assert_eq!(sim_starved(&out.job, p, victim), vec![], "{name} repair completes");
    }
}

#[test]
fn dissemination_barrier_repair_drops_tokens() {
    let (p, victim) = (8, 3);
    let job = registry_job(CollectiveKind::Barrier, 1, p, 0);
    let cfg = LintConfig::default();
    let out = certified_repair(&job, &cfg, victim).unwrap();
    // Tokens are locally-sourced sinks: pure drops, no rewiring needed.
    assert!(out.dropped > 0);
    assert_eq!(sim_starved(&out.job, p, victim), vec![]);
}

#[test]
fn recursive_doubling_interior_is_refused_not_mangled() {
    // Allreduce recursive doubling weaves every round's receive into every
    // later send: there is no tree rewrite, and repair must say so instead
    // of producing a broken schedule.
    let p = 8;
    let job = registry_job(CollectiveKind::Allreduce, 3, p, RDV);
    let cfg = LintConfig::default();
    match repair_job(&job, &cfg, 3) {
        Err(RepairError::Unsupported { .. }) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn repair_rejects_bad_rank_and_unclean_input() {
    let cfg = LintConfig::default();
    let job = registry_job(CollectiveKind::Reduce, 5, 8, EAGER);
    assert!(matches!(repair_job(&job, &cfg, 8), Err(RepairError::BadRank { .. })));
    // A job with a dangling send is not a valid repair substrate.
    let bad = Job::new(vec![
        RankProgram::from_ops(vec![Op::send(1, 0, 8, 0)]),
        RankProgram::from_ops(vec![]),
    ]);
    assert!(matches!(repair_job(&bad, &cfg, 1), Err(RepairError::UncleanInput { .. })));
}

// --- mutation self-tests: corrupted repairs must fail the certifying lint ---

/// Apply the honest repair, then corrupt it and check the re-lint (the
/// certification gate) rejects the corruption.
fn corrupted_repair_is_caught(corrupt: impl FnOnce(&mut Vec<RankProgram>, usize)) {
    let (p, victim) = (8, 4);
    let job = registry_job(CollectiveKind::Reduce, 5, p, RDV);
    let cfg = LintConfig::default();
    let out = certified_repair(&job, &cfg, victim).unwrap();
    let mut programs = out.job.programs.clone();
    corrupt(&mut programs, victim);
    let corrupted = Job::new(programs);
    let report = lint_job(&corrupted, &cfg);
    let cone = crash_cone(&corrupted, &cfg, &[CrashPoint::on_entry(victim)]);
    assert!(
        !report.is_clean() || !cone.is_empty(),
        "corrupted repair slipped through certification:\n{}",
        report.render()
    );
}

#[test]
fn mutation_dangling_send_into_the_cone_is_caught() {
    // Re-add a send targeting the crashed rank: nobody receives it.
    corrupted_repair_is_caught(|programs, victim| {
        programs[0].push_anon(vec![Op::send(victim, 999, 64, 0)]);
    });
}

#[test]
fn mutation_wrong_promoted_parent_is_caught() {
    // Retarget a receive at the wrong source rank: the channel pairing
    // breaks (unmatched send + unmatched receive).
    corrupted_repair_is_caught(|programs, victim| {
        let p = programs.len();
        'outer: for (r, prog) in programs.iter_mut().enumerate() {
            for seg in &mut prog.segments {
                for op in &mut seg.ops {
                    if let Op::Recv { from, .. } | Op::Irecv { from, .. } = op {
                        // A live rank that is neither the receiver (no
                        // self-message), the victim, nor the true source.
                        let wrong = (0..p)
                            .find(|&w| w != r && w != victim && w != *from)
                            .expect("8 ranks leave a wrong choice");
                        *from = wrong;
                        break 'outer;
                    }
                }
            }
        }
    });
}

#[test]
fn mutation_reintroduced_crashed_rank_dependency_is_caught() {
    // Give a survivor back its dependence on the dead rank: a receive from
    // the crashed (now empty) program can never be satisfied.
    corrupted_repair_is_caught(|programs, victim| {
        programs[2].push_anon(vec![Op::recv(victim, 998, 1)]);
    });
}

// --- registry-wide sweep -----------------------------------------------

#[test]
fn fault_sweep_certifies_every_produced_repair() {
    // Smaller grid than the papctl default: test-tier runtime.
    let cfg = FaultSweepConfig {
        ranks: vec![8, 12],
        sizes: vec![EAGER, RDV],
        ..FaultSweepConfig::default()
    };
    let summary = sweep_faults(&cfg);
    assert!(summary.cases > 0);
    assert_eq!(
        summary.cert_failed,
        0,
        "repairs failed certification:\n{}",
        summary.render_table()
    );
    assert!(summary.repaired > 0, "tree topologies must repair:\n{}", summary.render_table());
    // Every tree/chain/dissemination family the rewrite rules target must
    // repair on every case; exchange topologies whose every rank weaves
    // (recursive doubling, Bruck, allgather-linear's shared gather slot)
    // may refuse.
    for row in &summary.algorithms {
        let must_repair = matches!(
            (row.collective.as_str(), row.name.as_str()),
            (_, "Binomial")
                | (_, "Dissemination")
                | (_, "Chain")
                | (_, "Pipeline")
                | ("MPI_Bcast", "Binary")
                | ("MPI_Allgather", "Ring")
                | ("MPI_Reduce" | "MPI_Allreduce" | "MPI_Alltoall", "Linear")
                | ("MPI_Bcast" | "MPI_Gather" | "MPI_Scatter", "Linear")
        );
        if must_repair {
            assert_eq!(
                row.repaired, row.cases,
                "{} {} should repair every case:\n{}",
                row.collective,
                row.name,
                summary.render_table()
            );
        }
    }
    // And each certified sweep repair must also complete in the engine.
    let mut checked = 0usize;
    for row in summary.case_rows.iter().filter(|r| r.repair == RepairVerdict::Certified) {
        if row.ranks != 8 || row.bytes != RDV {
            continue; // spot-check one grid slice; the lint gate covered all
        }
        let kind = kind_by_name(&row.collective);
        let job = registry_job(kind, row.alg, row.ranks, row.bytes);
        let out = certified_repair(&job, &LintConfig::default(), row.victim).unwrap();
        assert_eq!(
            sim_starved(&out.job, row.ranks, row.victim),
            vec![],
            "{} alg {} repair deadlocks in the engine",
            row.collective,
            row.alg
        );
        checked += 1;
    }
    assert!(checked > 0, "spot-check slice must be non-empty");
}

fn kind_by_name(name: &str) -> CollectiveKind {
    [
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Alltoall,
        CollectiveKind::Bcast,
        CollectiveKind::Barrier,
        CollectiveKind::Allgather,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
    ]
    .into_iter()
    .find(|k| k.name() == name)
    .unwrap_or_else(|| panic!("unknown collective {name}"))
}
