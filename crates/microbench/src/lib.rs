//! # pap-microbench — pattern-injecting micro-benchmark harness
//!
//! Reimplementation of the measurement methodology of the paper (Listing 1,
//! §III-B, §IV): for each repetition,
//!
//! 1. synchronize processes in *time* (`MPIX_Harmonize`): agree on a global
//!    start instant; on machines with drifting clocks each rank starts with
//!    its residual HCA3 calibration error,
//! 2. wait the rank's **arrival-pattern delay**,
//! 3. run the collective and record each rank's arrival/exit,
//! 4. report the **last delay** `d̂ = max(eᵢ) − max(aᵢ)` and the total delay
//!    `d* = max(eᵢ) − min(aᵢ)`.
//!
//! The harness also implements the paper's two skew-calibration rules:
//!
//! * **§III-B** — run all algorithms under `NoDelay`, average their
//!   runtimes (`t̄ᵃ`), and generate patterns with max skew
//!   `{0.5, 1.0, 1.5}·t̄ᵃ` ([`calibrate_avg_runtime`]).
//! * **§IV-C (robustness)** — give each algorithm a pattern scaled to *its
//!   own* `NoDelay` runtime `tᵢ` ([`SkewPolicy::PerAlgorithm`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod faultgrid;
pub mod harness;
pub mod predictor;
pub mod profile;
pub mod stats;
pub mod sweep;

pub use adaptive::{measure_adaptive, relative_ci, AdaptiveStats, StopRule};
pub use faultgrid::{
    fault_sweep, standard_grid, FaultCell, FaultScenario, FaultSweepResult, FAULT_GRID_VERSION,
};
pub use harness::{measure, Backend, BenchConfig, BenchError, Measurement, START_TARGET};
pub use predictor::{predictor_for, ModelPredictor, Predictor, SimPredictor};
pub use profile::{profile, profile_with_faults, Profile};
pub use stats::RunStats;
pub use sweep::{calibrate_avg_runtime, no_delay_runtime, sweep, SkewPolicy, SweepCell, SweepResult};
