//! Adaptive repetition control, after ReproMPI's central idea (Hunold &
//! Carpen-Amarie, TPDS'16): fixed repetition counts either waste time or
//! under-sample noisy cells, so repeat until the measurement is
//! statistically stable — here, until the relative half-width of the
//! mean-of-`d̂` confidence interval drops below a target (or a repetition
//! cap is hit).

use pap_arrival::ArrivalPattern;
use pap_collectives::{CollSpec, TAG_SPAN};
use pap_sim::Platform;
use serde::{Deserialize, Serialize};

use crate::harness::{measure, BenchConfig, BenchError};
use crate::stats::RunStats;

/// Stopping rule for adaptive measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StopRule {
    /// Minimum repetitions before the rule is evaluated.
    pub min_reps: usize,
    /// Hard cap on repetitions.
    pub max_reps: usize,
    /// Target relative confidence-interval half-width of the mean `d̂`
    /// (e.g. `0.05` = ±5 %).
    pub rel_ci: f64,
}

impl Default for StopRule {
    fn default() -> Self {
        StopRule { min_reps: 5, max_reps: 50, rel_ci: 0.05 }
    }
}

/// Result of an adaptive measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveStats {
    /// All repetitions taken.
    pub stats: RunStats,
    /// Whether the CI target was met (false = stopped at `max_reps`).
    pub converged: bool,
    /// Relative CI half-width at the stopping point.
    pub rel_ci: f64,
}

/// Student-t 97.5 % quantiles for small sample sizes (df = 1..30), then the
/// normal approximation. Indexing: `T975[df - 1]`.
const T975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t975(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T975[df - 1]
    } else {
        1.96
    }
}

/// Relative 95 % CI half-width of the mean of `xs`.
pub fn relative_ci(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return f64::INFINITY;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if mean == 0.0 {
        return f64::INFINITY;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let half = t975(n - 1) * (var / n as f64).sqrt();
    half / mean
}

/// Measure with adaptive repetitions: batches of `cfg.nrep` until the stop
/// rule is satisfied. In a noise-free configuration the first batch already
/// has zero variance, so this degenerates to `min_reps` repetitions.
pub fn measure_adaptive(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
    cfg: &BenchConfig,
    rule: &StopRule,
) -> Result<AdaptiveStats, BenchError> {
    assert!(rule.min_reps >= 2, "need at least 2 reps for a CI");
    assert!(rule.max_reps >= rule.min_reps);
    let mut reps = Vec::new();
    let mut round = 0u64;
    while reps.len() < rule.max_reps {
        let batch = if reps.is_empty() {
            rule.min_reps
        } else {
            (reps.len()).min(rule.max_reps - reps.len()) // double, capped
        };
        let batch_cfg = BenchConfig {
            nrep: batch,
            seed: cfg.seed.wrapping_add(round.wrapping_mul(0x9E37)),
            ..cfg.clone()
        };
        let spec_round = spec.clone().with_tag_base(spec.tag_base + round * 1024 * TAG_SPAN);
        let st = measure(platform, &spec_round, pattern, &batch_cfg)?;
        reps.extend(st.reps);
        round += 1;
        let lasts: Vec<f64> = reps.iter().map(|m| m.last_delay).collect();
        let ci = relative_ci(&lasts);
        if reps.len() >= rule.min_reps && ci <= rule.rel_ci {
            return Ok(AdaptiveStats { stats: RunStats::new(reps), converged: true, rel_ci: ci });
        }
    }
    let lasts: Vec<f64> = reps.iter().map(|m| m.last_delay).collect();
    let ci = relative_ci(&lasts);
    Ok(AdaptiveStats { stats: RunStats::new(reps), converged: ci <= rule.rel_ci, rel_ci: ci })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_arrival::{generate, Shape};
    use pap_collectives::CollectiveKind;
    use pap_sim::NoiseModel;

    #[test]
    fn t_quantiles_decrease_to_normal() {
        assert!(t975(1) > t975(2));
        assert!(t975(30) > t975(31));
        assert_eq!(t975(100), 1.96);
        assert_eq!(t975(0), f64::INFINITY);
    }

    #[test]
    fn relative_ci_basics() {
        assert_eq!(relative_ci(&[1.0]), f64::INFINITY);
        assert_eq!(relative_ci(&[1.0, 1.0, 1.0]), 0.0);
        let wide = relative_ci(&[1.0, 2.0]);
        let narrow = relative_ci(&[1.0, 1.01]);
        assert!(wide > narrow);
    }

    #[test]
    fn noise_free_converges_at_min_reps() {
        let p = 8;
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pat = generate(Shape::NoDelay, p, 0.0, 0);
        let cfg = BenchConfig::simulation();
        let rule = StopRule::default();
        let out = measure_adaptive(&platform, &spec, &pat, &cfg, &rule).unwrap();
        assert!(out.converged);
        assert_eq!(out.stats.len(), rule.min_reps);
        assert_eq!(out.rel_ci, 0.0);
    }

    #[test]
    fn noisy_measurement_takes_more_reps_than_quiet() {
        let p = 8;
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pat = generate(Shape::NoDelay, p, 0.0, 0);
        let rule = StopRule { min_reps: 3, max_reps: 60, rel_ci: 0.02 };
        let quiet = BenchConfig {
            noise: Some(NoiseModel::gaussian(0.005)),
            ..BenchConfig::simulation()
        };
        let noisy = BenchConfig {
            noise: Some(NoiseModel::gaussian(0.20)),
            ..BenchConfig::simulation()
        };
        let a = measure_adaptive(&platform, &spec, &pat, &quiet, &rule).unwrap();
        let b = measure_adaptive(&platform, &spec, &pat, &noisy, &rule).unwrap();
        assert!(
            b.stats.len() >= a.stats.len(),
            "noisier cell should need at least as many reps ({} vs {})",
            b.stats.len(),
            a.stats.len()
        );
    }

    #[test]
    fn cap_is_respected_and_reported() {
        let p = 8;
        let platform = Platform::hydra(p);
        let spec = CollSpec::new(CollectiveKind::Alltoall, 3, 1024);
        let pat = generate(Shape::Random, p, 1e-4, 0);
        // Impossible target: must stop at the cap and report non-convergence.
        let rule = StopRule { min_reps: 2, max_reps: 6, rel_ci: 1e-12 };
        let cfg = BenchConfig::real_machine(2);
        let out = measure_adaptive(&platform, &spec, &pat, &cfg, &rule).unwrap();
        assert_eq!(out.stats.len(), 6);
        assert!(!out.converged);
        assert!(out.rel_ci > 1e-12);
    }
}
