//! The [`Predictor`] trait: a uniform interface over the two cost backends
//! (the `pap-sim` event-driven simulator and the `pap-model` analytical
//! models), so selection layers can be written backend-agnostically.
//!
//! [`measure`](crate::measure) already dispatches on
//! [`BenchConfig::backend`]; the trait exists for call sites that want to
//! hold a backend as a value (e.g. differential harnesses comparing both).

use pap_arrival::ArrivalPattern;
use pap_collectives::CollSpec;
use pap_sim::Platform;

use crate::{measure, Backend, BenchConfig, BenchError, RunStats};

/// A cost backend: predicts the arrival-aware runtime statistics of one
/// (platform, collective, pattern) cell.
pub trait Predictor {
    /// Stable backend name (matches the `--backend` CLI values).
    fn name(&self) -> &'static str;

    /// Predict the cell's runtime statistics.
    fn predict(
        &self,
        platform: &Platform,
        spec: &CollSpec,
        pattern: &ArrivalPattern,
    ) -> Result<RunStats, BenchError>;
}

/// The event-driven simulator backend, wrapping a [`BenchConfig`].
pub struct SimPredictor(pub BenchConfig);

impl Predictor for SimPredictor {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn predict(
        &self,
        platform: &Platform,
        spec: &CollSpec,
        pattern: &ArrivalPattern,
    ) -> Result<RunStats, BenchError> {
        let cfg = self.0.clone().with_backend(Backend::Sim);
        measure(platform, spec, pattern, &cfg)
    }
}

/// The closed-form analytical backend (`pap-model`).
pub struct ModelPredictor(pub BenchConfig);

impl Predictor for ModelPredictor {
    fn name(&self) -> &'static str {
        "model"
    }

    fn predict(
        &self,
        platform: &Platform,
        spec: &CollSpec,
        pattern: &ArrivalPattern,
    ) -> Result<RunStats, BenchError> {
        let cfg = self.0.clone().with_backend(Backend::Model);
        measure(platform, spec, pattern, &cfg)
    }
}

/// Instantiate the predictor for a backend tag.
pub fn predictor_for(backend: Backend, cfg: &BenchConfig) -> Box<dyn Predictor> {
    match backend {
        Backend::Sim => Box::new(SimPredictor(cfg.clone())),
        Backend::Model => Box::new(ModelPredictor(cfg.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_arrival::{generate, Shape};
    use pap_collectives::CollectiveKind;

    #[test]
    fn both_predictors_agree_on_rough_magnitude() {
        let platform = Platform::simcluster(16);
        let spec = CollSpec::new(CollectiveKind::Allreduce, 3, 4096);
        let pattern = generate(Shape::Ascending, 16, 1e-4, 7);
        let cfg = BenchConfig::simulation();
        let sim = SimPredictor(cfg.clone()).predict(&platform, &spec, &pattern).unwrap();
        let model = ModelPredictor(cfg).predict(&platform, &spec, &pattern).unwrap();
        assert!(sim.mean_last() > 0.0 && model.mean_last() > 0.0);
        let ratio = model.mean_last() / sim.mean_last();
        assert!(
            (0.5..2.0).contains(&ratio),
            "model/sim d̂ ratio {ratio} out of range (sim {}, model {})",
            sim.mean_last(),
            model.mean_last()
        );
    }

    #[test]
    fn predictor_for_round_trips_names() {
        let cfg = BenchConfig::simulation();
        assert_eq!(predictor_for(Backend::Sim, &cfg).name(), "sim");
        assert_eq!(predictor_for(Backend::Model, &cfg).name(), "model");
        assert_eq!("model".parse::<Backend>().unwrap(), Backend::Model);
        assert!("quantum".parse::<Backend>().is_err());
    }
}
