//! The per-cell measurement loop (Listing 1 of the paper).

use pap_arrival::ArrivalPattern;
use pap_clocksync::{harmonize_starts, sync_cluster, ClusterClocks, Hca3Config};
use pap_collectives::{build, BuildError, CollSpec};
use pap_sim::{
    run_ref, FaultSpec, Job, Label, NoiseModel, Op, Platform, RankProgram, SimConfig, SimError,
};
use serde::{Deserialize, Serialize};

/// Which prediction backend resolves a measurement cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// The discrete-event simulator (`pap-sim`) — the reference backend.
    #[default]
    Sim,
    /// The closed-form analytical models (`pap-model`) — orders of magnitude
    /// cheaper per cell, cross-validated against the simulator by the
    /// differential test suite.
    Model,
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sim" | "simulator" => Ok(Backend::Sim),
            "model" | "analytical" => Ok(Backend::Model),
            other => Err(format!("unknown backend '{other}' (expected sim|model)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Sim => "sim",
            Backend::Model => "model",
        })
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Measured repetitions.
    pub nrep: usize,
    /// Base RNG seed (noise and clock generation derive from it).
    pub seed: u64,
    /// Noise model for the runs. `None` (field) uses the platform default.
    pub noise: Option<NoiseModel>,
    /// Model drifting clocks + HCA3 + harmonize. When false (the simulation
    /// setting of §III-A), ranks share the perfect global clock and start
    /// exactly on target.
    pub clock_sync: bool,
    /// HCA3 parameters (when `clock_sync`).
    pub hca3: Hca3Config,
    /// Prediction backend: event-driven simulator or analytical model.
    pub backend: Backend,
    /// Opt-in pre-run static check: lint the built job with `pap-lint`
    /// (matched against the platform's eager threshold) before the first
    /// simulator run and fail the cell on any error-severity finding.
    pub lint: bool,
    /// Runtime faults injected into every repetition (crashes, stalls, link
    /// slowdown windows, noise storms). Fault timestamps are absolute
    /// simulated time; the measured collective starts at [`START_TARGET`]
    /// plus the pattern delay, so scenario builders should offset windows
    /// accordingly. Requires the [`Backend::Sim`] backend.
    pub faults: FaultSpec,
}

/// The harmonized start instant of every measurement (seconds of simulated
/// time): ranks sleep until here, then serve their arrival-pattern delay.
/// Fault scenarios use this to place windows relative to the collective.
pub const START_TARGET: f64 = 1e-3;

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            nrep: 3,
            seed: 0xBE7C,
            noise: None,
            clock_sync: false,
            hca3: Hca3Config::default(),
            backend: Backend::Sim,
            lint: false,
            faults: FaultSpec::none(),
        }
    }
}

impl BenchConfig {
    /// The noise-free, perfectly-clocked simulation configuration of §III
    /// (one repetition suffices: runs are exactly reproducible).
    pub fn simulation() -> Self {
        BenchConfig { nrep: 1, noise: Some(NoiseModel::None), clock_sync: false, ..Default::default() }
    }

    /// A "real machine" configuration: platform-default noise, drifting
    /// clocks, HCA3 + harmonize, several repetitions.
    pub fn real_machine(nrep: usize) -> Self {
        BenchConfig { nrep, noise: None, clock_sync: true, ..Default::default() }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the prediction backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable the pre-run static lint (see [`BenchConfig::lint`]).
    pub fn with_lint(mut self) -> Self {
        self.lint = true;
        self
    }

    /// Inject a fault spec into every repetition (see [`BenchConfig::faults`]).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

/// One repetition's metrics, from observed (calibrated-clock) timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Last delay `d̂ = max(eᵢ) − max(aᵢ)` (Eq. 2).
    pub last_delay: f64,
    /// Total delay `d* = max(eᵢ) − min(aᵢ)` (Eq. 1).
    pub total_delay: f64,
}

/// Errors of the harness.
#[derive(Debug)]
pub enum BenchError {
    /// The collective schedule could not be built.
    Build(BuildError),
    /// The simulation failed (deadlock or invalid program).
    Sim(SimError),
    /// The analytical model backend rejected the cell.
    Model(pap_model::ModelError),
    /// Pattern length does not match the platform rank count.
    PatternMismatch {
        /// Number of delays in the arrival pattern.
        pattern: usize,
        /// Number of ranks on the platform.
        ranks: usize,
    },
    /// The pre-run static check found error-severity defects
    /// (`BenchConfig::lint`); the rendered report is attached.
    Lint(String),
    /// Fault injection was requested with the analytical model backend,
    /// which has no representation of runtime faults.
    FaultsNeedSim,
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Build(e) => write!(f, "build: {e}"),
            BenchError::Sim(e) => write!(f, "sim: {e}"),
            BenchError::Model(e) => write!(f, "model: {e}"),
            BenchError::PatternMismatch { pattern, ranks } => {
                write!(f, "pattern has {pattern} delays but platform has {ranks} ranks")
            }
            BenchError::Lint(report) => write!(f, "pre-run lint failed:\n{report}"),
            BenchError::FaultsNeedSim => {
                write!(f, "fault injection requires the sim backend (model has no fault model)")
            }
        }
    }
}

impl std::error::Error for BenchError {}

impl From<BuildError> for BenchError {
    fn from(e: BuildError) -> Self {
        BenchError::Build(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<pap_model::ModelError> for BenchError {
    fn from(e: pap_model::ModelError) -> Self {
        BenchError::Model(e)
    }
}

/// Cached handles into the global metrics registry: per-cell wall time plus
/// backend routing counts (one relaxed add each per `measure` call).
struct HarnessMetrics {
    cell_wall_us: pap_obs::Histogram,
    cells_sim: pap_obs::Counter,
    cells_model: pap_obs::Counter,
    cell_errors: pap_obs::Counter,
}

fn harness_metrics() -> &'static HarnessMetrics {
    static M: std::sync::OnceLock<HarnessMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = pap_obs::global();
        HarnessMetrics {
            cell_wall_us: reg.histogram(
                "bench.cell_wall_us",
                &[100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000],
            ),
            cells_sim: reg.counter("bench.cells.sim"),
            cells_model: reg.counter("bench.cells.model"),
            cell_errors: reg.counter("bench.cells.error"),
        }
    })
}

/// Measure one collective under one arrival pattern: `cfg.nrep` repetitions
/// of Listing 1, each an independent simulator run.
pub fn measure(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
    cfg: &BenchConfig,
) -> Result<crate::RunStats, BenchError> {
    let wall = std::time::Instant::now();
    let _span = pap_obs::span("bench", "measure_cell");
    let out = measure_inner(platform, spec, pattern, cfg);
    let m = harness_metrics();
    m.cell_wall_us.record(wall.elapsed().as_micros().min(u64::MAX as u128) as u64);
    match (&out, cfg.backend) {
        (Err(_), _) => m.cell_errors.inc(),
        (Ok(_), Backend::Sim) => m.cells_sim.inc(),
        (Ok(_), Backend::Model) => m.cells_model.inc(),
    }
    out
}

fn measure_inner(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
    cfg: &BenchConfig,
) -> Result<crate::RunStats, BenchError> {
    let p = platform.ranks;
    if pattern.len() != p {
        return Err(BenchError::PatternMismatch { pattern: pattern.len(), ranks: p });
    }

    if cfg.backend == Backend::Model {
        if !cfg.faults.is_none() {
            return Err(BenchError::FaultsNeedSim);
        }
        // The analytical backend is deterministic and noise-free: one
        // evaluation stands in for all repetitions.
        let pred = pap_model::predict(platform, spec, pattern)?;
        let m = Measurement { last_delay: pred.last_delay, total_delay: pred.total_delay };
        return Ok(crate::RunStats::new(vec![m; cfg.nrep.max(1)]));
    }

    // Clock infrastructure, set up once per benchmark (like a real
    // measurement campaign: sync first, then repeat).
    let clock_ctx = if cfg.clock_sync {
        let clocks = ClusterClocks::realistic(platform.occupied_nodes(), cfg.seed ^ 0xC10C);
        let calib = sync_cluster(&clocks, &cfg.hca3, cfg.seed ^ 0x5A5A);
        Some((clocks, calib))
    } else {
        None
    };

    let noise = cfg.noise.unwrap_or(platform.default_noise);
    let label = Label { kind: spec.kind.label_kind(), seq: 0 };
    // Start far enough in the future that harmonize targets are reachable.
    let target = START_TARGET;

    // Each repetition is an independent simulation; the schedule, harmonized
    // starts and pattern delays are identical across reps (only the noise
    // seed differs), so the program is built once and re-run.
    let built = build(spec, p)?;
    let starts: Vec<f64> = match &clock_ctx {
        Some((clocks, calib)) => harmonize_starts(clocks, calib, p, |r| platform.node_of(r), target, 0.0),
        None => vec![target; p],
    };
    let mut programs = Vec::with_capacity(p);
    for (r, ops) in built.rank_ops.into_iter().enumerate() {
        let mut prog = RankProgram::new();
        prog.push_anon(vec![
            Op::SleepUntil { time: starts[r] },
            Op::delay(pattern.delay_of(r)),
        ]);
        prog.push_labeled(label, ops);
        programs.push(prog);
    }
    let job = Job::new(programs);

    if cfg.lint {
        let lint_cfg = pap_lint::LintConfig::for_platform(platform);
        let report = pap_lint::lint_job(&job, &lint_cfg);
        if !report.is_clean() {
            return Err(BenchError::Lint(report.render()));
        }
    }

    let mut reps = Vec::with_capacity(cfg.nrep);
    for rep in 0..cfg.nrep {
        let sim_cfg = SimConfig {
            seed: cfg.seed.wrapping_add(rep as u64).wrapping_mul(0x9E37_79B9),
            track_data: false,
            noise,
            faults: cfg.faults.clone(),
            ..SimConfig::default()
        };
        let out = run_ref(platform, &job, &sim_cfg)?;
        // A crashed rank never exits its labeled segment, so faulted runs
        // may legitimately record fewer than p phases; the metric folds
        // below are over surviving ranks (degraded-mode semantics).
        debug_assert!(
            out.phases_for_iter(label).count() == p || cfg.faults.has_rank_faults(),
            "phase records missing without rank faults"
        );

        // Observe timestamps through the (possibly imperfect) clocks.
        let obs = |rank: usize, t: f64| match &clock_ctx {
            Some((clocks, calib)) => pap_clocksync::observe(clocks, calib, platform.node_of(rank), t),
            None => t,
        };
        let mut max_a = f64::NEG_INFINITY;
        let mut min_a = f64::INFINITY;
        let mut max_e = f64::NEG_INFINITY;
        // Min/max folds are order-independent: use the no-alloc iterator.
        for rec in out.phases_for_iter(label) {
            let a = obs(rec.rank, rec.enter);
            let e = obs(rec.rank, rec.exit);
            max_a = max_a.max(a);
            min_a = min_a.min(a);
            max_e = max_e.max(e);
        }
        if !max_e.is_finite() {
            // Every rank died inside the collective: there is no surviving
            // exit to measure against.
            return Err(BenchError::Sim(SimError::InvalidProgram(
                "fault spec crashed every rank before the collective completed".into(),
            )));
        }
        reps.push(Measurement { last_delay: max_e - max_a, total_delay: max_e - min_a });
    }
    Ok(crate::RunStats::new(reps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_arrival::{generate, Shape};
    use pap_collectives::CollectiveKind;

    fn pattern(shape: Shape, p: usize, s: f64) -> ArrivalPattern {
        generate(shape, p, s, 1)
    }

    #[test]
    fn no_delay_measurement_is_positive_and_deterministic() {
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let cfg = BenchConfig::simulation();
        let a = measure(&platform, &spec, &pattern(Shape::NoDelay, 8, 0.0), &cfg).unwrap();
        let b = measure(&platform, &spec, &pattern(Shape::NoDelay, 8, 0.0), &cfg).unwrap();
        assert!(a.mean_last() > 0.0);
        assert_eq!(a.mean_last(), b.mean_last(), "simulation must be exactly reproducible");
    }

    #[test]
    fn last_delay_never_exceeds_total_delay() {
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Alltoall, 3, 256);
        let cfg = BenchConfig::simulation();
        for shape in Shape::SUITE {
            let st = measure(&platform, &spec, &pattern(shape, 8, 1e-4), &cfg).unwrap();
            for m in &st.reps {
                assert!(m.last_delay <= m.total_delay + 1e-12, "{shape}: d̂ > d*");
                assert!(m.last_delay > 0.0, "{shape}: non-positive d̂");
            }
        }
    }

    #[test]
    fn skew_is_absorbed_into_total_delay() {
        // With a large LastDelayed skew, d* ≈ skew + collective time while
        // d̂ stays near the collective time.
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Bcast, 5, 1024);
        let cfg = BenchConfig::simulation();
        let skew = 10e-3;
        let st = measure(&platform, &spec, &pattern(Shape::LastDelayed, 8, skew), &cfg).unwrap();
        assert!(st.mean_total() > skew);
        assert!(st.mean_last() < skew / 10.0, "d̂ {} should be far below the skew", st.mean_last());
    }

    #[test]
    fn binomial_reduce_suffers_under_last_delayed_more_than_in_order() {
        // The paper's headline Reduce observation (Fig. 4a / Fig. 5a): with
        // the last process delayed, the in-order binary tree (rooted at the
        // last rank) absorbs the skew; the binomial tree (last rank deep in
        // the tree) cannot.
        let p = 64;
        let platform = Platform::simcluster(p);
        let cfg = BenchConfig::simulation();
        let skew = 1e-3;
        let pat = pattern(Shape::LastDelayed, p, skew);
        let binom = measure(&platform, &CollSpec::new(CollectiveKind::Reduce, 5, 64), &pat, &cfg).unwrap();
        let inbin = measure(&platform, &CollSpec::new(CollectiveKind::Reduce, 6, 64), &pat, &cfg).unwrap();
        assert!(
            inbin.mean_last() < binom.mean_last(),
            "in-order binary ({}) should beat binomial ({}) under LastDelayed",
            inbin.mean_last(),
            binom.mean_last()
        );
    }

    #[test]
    fn clock_sync_mode_adds_small_arrival_error() {
        let platform = Platform::hydra(8);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let mut cfg = BenchConfig::real_machine(2);
        cfg.noise = Some(NoiseModel::None);
        let st = measure(&platform, &spec, &pattern(Shape::NoDelay, 8, 0.0), &cfg).unwrap();
        // Harmonized starts differ by at most ~1µs (HCA3 residuals), so the
        // measured d̂ stays close to the ideal-clock measurement.
        let ideal = measure(&platform, &spec, &pattern(Shape::NoDelay, 8, 0.0), &BenchConfig::simulation())
            .unwrap();
        let diff = (st.mean_last() - ideal.mean_last()).abs();
        assert!(diff < 5e-6, "clock-sync effect too large: {diff}");
    }

    #[test]
    fn pre_run_lint_passes_registry_schedules_and_changes_nothing() {
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Allreduce, 4, 2048);
        let pat = pattern(Shape::NoDelay, 8, 0.0);
        let plain = measure(&platform, &spec, &pat, &BenchConfig::simulation()).unwrap();
        let linted =
            measure(&platform, &spec, &pat, &BenchConfig::simulation().with_lint()).unwrap();
        assert_eq!(plain.mean_last(), linted.mean_last(), "lint must be observation-free");
    }

    #[test]
    fn pattern_length_mismatch_rejected() {
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let err = measure(&platform, &spec, &pattern(Shape::NoDelay, 4, 0.0), &BenchConfig::simulation());
        assert!(matches!(err, Err(BenchError::PatternMismatch { .. })));
    }

    #[test]
    fn noise_makes_repetitions_vary() {
        let platform = Platform::hydra(8);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let cfg = BenchConfig::real_machine(4);
        let st = measure(&platform, &spec, &pattern(Shape::NoDelay, 8, 0.0), &cfg).unwrap();
        assert!(st.max_last() > st.min_last(), "noisy reps should differ");
    }
}
