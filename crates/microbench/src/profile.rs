//! Timeline profiling: one simulator run rendered as a Perfetto-loadable
//! Chrome Trace Event document — Fig. 1/2 of the paper as an interactive
//! timeline.
//!
//! [`profile`] runs a collective under an arrival pattern exactly like
//! [`measure`](crate::measure) in its noise-free simulation setting, but
//! with per-message recording enabled, and converts the [`RunOutcome`] into
//! a trace with:
//!
//! * one lane per rank (`tid` = rank, named `rank N`),
//! * a `wait` slice covering the rank's injected arrival delay,
//! * an arrival→exit slice for the collective itself (`aᵢ` → `eᵢ`), carrying
//!   the rank's delay in the detail pane,
//! * a flow arrow per point-to-point message, from the sender at its send
//!   time to the receiver at delivery,
//! * trace-level metadata with the run's `d̂`, `d*` and makespan, so the
//!   numbers in the timeline tie back to what `papctl bench` reports.

use pap_arrival::ArrivalPattern;
use pap_collectives::registry::algorithm;
use pap_collectives::{build, CollSpec};
use pap_obs::ChromeTrace;
use pap_sim::{
    run_ref, FaultSpec, Job, Label, NoiseModel, Op, Platform, RankProgram, SimConfig, SimError,
};
use serde::Content;

use crate::harness::BenchError;

/// Lane group ID used for simulator ranks in emitted traces.
const SIM_PID: u64 = 1;

/// A profiled run: the trace plus the scalar delays it visualizes.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The Perfetto-loadable timeline.
    pub trace: ChromeTrace,
    /// Last delay `d̂ = max(eᵢ) − max(aᵢ)` (Eq. 2).
    pub d_hat: f64,
    /// Total delay `d* = max(eᵢ) − min(aᵢ)` (Eq. 1).
    pub d_star: f64,
    /// Ranks in the run (= lanes in the trace).
    pub ranks: usize,
    /// Point-to-point messages (= flow arrows in the trace).
    pub messages: usize,
    /// Ranks that crashed before completing the collective (their lanes
    /// carry a `crashed` slice from the crash instant to the makespan;
    /// `d̂`/`d*` are computed over the survivors).
    pub crashed: usize,
}

/// Per-lane pending event, sorted by `(ts, order)` before emission so each
/// lane's event stream is timestamp-monotone. At equal timestamps a slice
/// end precedes the next begin (`wait` ends exactly where the collective
/// starts), and flows come last (a message sent at the arrival instant lands
/// inside the collective slice).
enum LaneEvent {
    End,
    Begin { name: String, cat: &'static str, args: Vec<(String, Content)> },
    FlowStart { id: u64, name: String },
    FlowEnd { id: u64, name: String },
}

impl LaneEvent {
    fn order(&self) -> u8 {
        match self {
            LaneEvent::End => 0,
            LaneEvent::Begin { .. } => 1,
            LaneEvent::FlowStart { .. } | LaneEvent::FlowEnd { .. } => 2,
        }
    }
}

fn us(t: f64) -> f64 {
    t * 1e6
}

/// Run `spec` under `pattern` on `platform` (noise-free simulation setting,
/// seeded by `seed`) and render the run as a timeline.
pub fn profile(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
    seed: u64,
) -> Result<Profile, BenchError> {
    profile_with_faults(platform, spec, pattern, seed, &FaultSpec::none())
}

/// [`profile`] with runtime faults injected: the timeline shows *where the
/// schedule stalled* — `stall` slices over frozen ranks, a `crashed` slice
/// from the crash instant to the makespan on every rank that died before
/// completing the collective, and link/storm windows in the trace metadata.
/// `d̂`/`d*` are folded over the surviving ranks (degraded-mode metric).
/// Errors when the faults crash every rank before it completes.
pub fn profile_with_faults(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
    seed: u64,
    faults: &FaultSpec,
) -> Result<Profile, BenchError> {
    let p = platform.ranks;
    if pattern.len() != p {
        return Err(BenchError::PatternMismatch { pattern: pattern.len(), ranks: p });
    }

    // Same program construction as the measurement harness (Listing 1):
    // harmonized start, pattern delay, labelled collective.
    let target = 1e-3;
    let label = Label { kind: spec.kind.label_kind(), seq: 0 };
    let built = build(spec, p)?;
    let mut programs = Vec::with_capacity(p);
    for (r, ops) in built.rank_ops.into_iter().enumerate() {
        let mut prog = RankProgram::new();
        prog.push_anon(vec![Op::SleepUntil { time: target }, Op::delay(pattern.delay_of(r))]);
        prog.push_labeled(label, ops);
        programs.push(prog);
    }
    let job = Job::new(programs);

    let sim_cfg = SimConfig {
        seed,
        track_data: false,
        noise: NoiseModel::None,
        record_messages: true,
        ..SimConfig::default()
    }
    .with_faults(faults.clone());
    let out = run_ref(platform, &job, &sim_cfg)?;

    // Ranks without a complete phase record crashed mid-collective; the
    // delay metrics fold over the survivors (degraded-mode semantics,
    // matching the measurement harness).
    let phases = out.phases_for(label);
    debug_assert!(phases.len() == p || faults.has_rank_faults(), "phase records missing without rank faults");
    if phases.is_empty() {
        return Err(BenchError::Sim(SimError::InvalidProgram(
            "fault spec crashed every rank before the collective completed".into(),
        )));
    }
    let max_a = phases.iter().map(|r| r.enter).fold(f64::NEG_INFINITY, f64::max);
    let min_a = phases.iter().map(|r| r.enter).fold(f64::INFINITY, f64::min);
    let max_e = phases.iter().map(|r| r.exit).fold(f64::NEG_INFINITY, f64::max);
    let d_hat = max_e - max_a;
    let d_star = max_e - min_a;

    let alg_name = algorithm(spec.kind, spec.alg)
        .map(|a| a.name)
        .unwrap_or("unknown algorithm");
    let slice_name = format!("{}[{}] {}", spec.kind, spec.alg, alg_name);

    // Gather per-lane events, then emit each lane in timestamp order.
    let mut lanes: Vec<Vec<(f64, LaneEvent)>> = (0..p).map(|_| Vec::new()).collect();
    for rec in &phases {
        let delay = pattern.delay_of(rec.rank);
        if delay > 0.0 {
            lanes[rec.rank].push((
                us(rec.enter - delay),
                LaneEvent::Begin {
                    name: "wait".to_string(),
                    cat: "pattern",
                    args: vec![("delay_s".to_string(), Content::F64(delay))],
                },
            ));
            lanes[rec.rank].push((us(rec.enter), LaneEvent::End));
        }
        lanes[rec.rank].push((
            us(rec.enter),
            LaneEvent::Begin {
                name: slice_name.clone(),
                cat: "collective",
                args: vec![
                    ("arrival_s".to_string(), Content::F64(rec.enter)),
                    ("exit_s".to_string(), Content::F64(rec.exit)),
                    ("delay_s".to_string(), Content::F64(delay)),
                ],
            },
        ));
        lanes[rec.rank].push((us(rec.exit), LaneEvent::End));
    }

    // Crashed ranks: no complete phase record; their lane carries a
    // `crashed` slice from the crash instant (= the rank's finish time) to
    // the end of the trace, so the timeline shows exactly where the
    // schedule lost them.
    let mut has_phase = vec![false; p];
    for rec in &phases {
        has_phase[rec.rank] = true;
    }
    let span_end = us(out.makespan());
    let mut crashed = 0usize;
    for (r, lane) in lanes.iter_mut().enumerate() {
        if !has_phase[r] {
            crashed += 1;
            let at = us(out.finish[r]);
            lane.push((
                at,
                LaneEvent::Begin {
                    name: "crashed".to_string(),
                    cat: "fault",
                    args: vec![("crash_s".to_string(), Content::F64(out.finish[r]))],
                },
            ));
            lane.push((span_end.max(at), LaneEvent::End));
        }
    }

    // Injected fault windows live on a dedicated lane (tid = ranks), so
    // they never interleave with the per-rank slice stacks: nominal stall
    // windows (cascading stalls may stretch further in reality), link
    // slowdowns, and noise storms.
    let mut fault_lane: Vec<(f64, LaneEvent)> = Vec::new();
    let mut window = |from: f64, until: f64, name: String, factor: Option<f64>| {
        let mut args = vec![
            ("from_s".to_string(), Content::F64(from)),
            ("until_s".to_string(), Content::F64(until)),
        ];
        if let Some(f) = factor {
            args.push(("factor".to_string(), Content::F64(f)));
        }
        fault_lane.push((us(from), LaneEvent::Begin { name, cat: "fault", args }));
        fault_lane.push((us(until), LaneEvent::End));
    };
    for s in &faults.stalls {
        window(s.at, s.at + s.stall, format!("stall r{}", s.rank), None);
    }
    for l in &faults.links {
        let node = |n: usize| {
            if n == pap_sim::ANY_NODE {
                "*".to_string()
            } else {
                format!("{n}")
            }
        };
        window(
            l.from,
            l.until,
            format!("link n{}->n{} x{}", node(l.src_node), node(l.dst_node), l.factor),
            Some(l.factor),
        );
    }
    for s in &faults.storms {
        window(
            s.from,
            s.until,
            format!("storm r{}-r{} x{}", s.first_rank, s.last_rank, s.factor),
            Some(s.factor),
        );
    }

    let msg_events = out.msg_events.as_deref().unwrap_or(&[]);
    for (i, m) in msg_events.iter().enumerate() {
        let name = format!("{}B", m.bytes);
        lanes[m.src].push((
            us(m.sent),
            LaneEvent::FlowStart { id: i as u64, name: name.clone() },
        ));
        lanes[m.dst].push((us(m.delivered), LaneEvent::FlowEnd { id: i as u64, name }));
    }

    let mut trace = ChromeTrace::new();
    trace.process_name(SIM_PID, &format!("pap-sim: {slice_name}"));
    for r in 0..p {
        trace.thread_name(SIM_PID, r as u64, &format!("rank {r}"));
    }
    if !fault_lane.is_empty() {
        trace.thread_name(SIM_PID, p as u64, "faults");
        lanes.push(fault_lane);
    }
    for (rank, mut events) in lanes.into_iter().enumerate() {
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("sim times are finite")
                .then(a.1.order().cmp(&b.1.order()))
        });
        let tid = rank as u64;
        for (ts, ev) in events {
            match ev {
                LaneEvent::End => trace.end(SIM_PID, tid, ts),
                LaneEvent::Begin { name, cat, args } => {
                    trace.begin_with_args(SIM_PID, tid, &name, cat, ts, args)
                }
                LaneEvent::FlowStart { id, name } => {
                    trace.flow_start(SIM_PID, tid, &name, id, ts)
                }
                LaneEvent::FlowEnd { id, name } => trace.flow_end(SIM_PID, tid, &name, id, ts),
            }
        }
    }

    trace.set_metadata("collective", Content::Str(spec.kind.to_string()));
    trace.set_metadata("algorithm", Content::Str(format!("{} ({})", spec.alg, alg_name)));
    trace.set_metadata("bytes", Content::U64(spec.bytes));
    trace.set_metadata("ranks", Content::U64(p as u64));
    trace.set_metadata("max_skew_s", Content::F64(pattern.max_skew()));
    trace.set_metadata("d_hat_s", Content::F64(d_hat));
    trace.set_metadata("d_star_s", Content::F64(d_star));
    trace.set_metadata("makespan_s", Content::F64(out.makespan()));
    trace.set_metadata("messages", Content::U64(out.messages));
    if !faults.is_none() {
        trace.set_metadata("faults", Content::Str(faults.to_string()));
        trace.set_metadata("crashed_ranks", Content::U64(crashed as u64));
    }

    Ok(Profile { trace, d_hat, d_star, ranks: p, messages: msg_events.len(), crashed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_arrival::{generate, Shape};
    use pap_collectives::CollectiveKind;

    fn run_profile(p: usize) -> Profile {
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::Ascending, p, 1e-4, 1);
        profile(&platform, &spec, &pattern, 7).unwrap()
    }

    #[test]
    fn trace_validates_with_one_lane_per_rank() {
        let prof = run_profile(8);
        let stats = pap_obs::validate_trace(&prof.trace.to_json_string()).unwrap();
        assert_eq!(stats.lanes, 8);
        assert!(stats.flows > 0, "reduce must move messages");
        assert_eq!(stats.flows, prof.messages);
        // Every rank has a collective slice; delayed ranks add wait slices.
        assert!(stats.slices >= 8);
    }

    #[test]
    fn delays_match_the_measurement_harness() {
        let p = 8;
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::Ascending, p, 1e-4, 1);
        let prof = profile(&platform, &spec, &pattern, 7).unwrap();
        let st = crate::measure(&platform, &spec, &pattern, &crate::BenchConfig::simulation())
            .unwrap();
        assert!((prof.d_hat - st.mean_last()).abs() < 1e-12, "profile d̂ must match measure");
        assert!((prof.d_star - st.mean_total()).abs() < 1e-12, "profile d* must match measure");
    }

    #[test]
    fn profile_is_deterministic() {
        let a = run_profile(4).trace.to_json_string();
        let b = run_profile(4).trace.to_json_string();
        assert_eq!(a, b);
    }

    #[test]
    fn faulted_profile_marks_crashes_and_fault_windows() {
        let p = 8;
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Bcast, 3, 1024);
        let pattern = generate(Shape::Ascending, p, 1e-4, 1);
        let clean = profile(&platform, &spec, &pattern, 7).unwrap();
        // Crash a leaf after the root has fed the tree, stall another rank,
        // and slow a link: the timeline must grow a faults lane and a
        // crashed slice while the survivors' metric stays well-defined.
        let faults = FaultSpec::none()
            .with_crash(p - 1, 1e-3 + 1e-7)
            .with_stall(1, 1e-3, 5e-4)
            .with_link(0, 1, 1e-3, 2e-3, 4.0);
        let prof = profile_with_faults(&platform, &spec, &pattern, 7, &faults).unwrap();
        assert_eq!(prof.crashed, 1, "exactly the leaf crashes");
        assert!(prof.d_hat >= clean.d_hat, "faults cannot speed up survivors");
        let json = prof.trace.to_json_string();
        let stats = pap_obs::validate_trace(&json).unwrap();
        assert_eq!(stats.lanes, p + 1, "ranks plus the faults lane");
        assert!(json.contains("crashed"), "crashed slice present");
        assert!(json.contains("stall r1"), "stall window present");
        assert!(json.contains("\"faults\""), "fault spec recorded in metadata");
    }

    #[test]
    fn all_ranks_crashed_is_an_error() {
        let p = 4;
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::NoDelay, p, 0.0, 1);
        let mut faults = FaultSpec::none();
        for r in 0..p {
            faults = faults.with_crash(r, 1e-9);
        }
        let res = profile_with_faults(&platform, &spec, &pattern, 7, &faults);
        assert!(
            matches!(&res, Err(BenchError::Sim(SimError::InvalidProgram(m))) if m.contains("crashed every rank")),
            "{res:?}"
        );
    }

    #[test]
    fn pattern_mismatch_is_rejected() {
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::NoDelay, 4, 0.0, 1);
        assert!(matches!(
            profile(&platform, &spec, &pattern, 0),
            Err(BenchError::PatternMismatch { .. })
        ));
    }
}
