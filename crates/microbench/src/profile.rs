//! Timeline profiling: one simulator run rendered as a Perfetto-loadable
//! Chrome Trace Event document — Fig. 1/2 of the paper as an interactive
//! timeline.
//!
//! [`profile`] runs a collective under an arrival pattern exactly like
//! [`measure`](crate::measure) in its noise-free simulation setting, but
//! with per-message recording enabled, and converts the [`RunOutcome`] into
//! a trace with:
//!
//! * one lane per rank (`tid` = rank, named `rank N`),
//! * a `wait` slice covering the rank's injected arrival delay,
//! * an arrival→exit slice for the collective itself (`aᵢ` → `eᵢ`), carrying
//!   the rank's delay in the detail pane,
//! * a flow arrow per point-to-point message, from the sender at its send
//!   time to the receiver at delivery,
//! * trace-level metadata with the run's `d̂`, `d*` and makespan, so the
//!   numbers in the timeline tie back to what `papctl bench` reports.

use pap_arrival::ArrivalPattern;
use pap_collectives::registry::algorithm;
use pap_collectives::{build, CollSpec};
use pap_obs::ChromeTrace;
use pap_sim::{run_ref, Job, Label, NoiseModel, Op, Platform, RankProgram, SimConfig};
use serde::Content;

use crate::harness::BenchError;

/// Lane group ID used for simulator ranks in emitted traces.
const SIM_PID: u64 = 1;

/// A profiled run: the trace plus the scalar delays it visualizes.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The Perfetto-loadable timeline.
    pub trace: ChromeTrace,
    /// Last delay `d̂ = max(eᵢ) − max(aᵢ)` (Eq. 2).
    pub d_hat: f64,
    /// Total delay `d* = max(eᵢ) − min(aᵢ)` (Eq. 1).
    pub d_star: f64,
    /// Ranks in the run (= lanes in the trace).
    pub ranks: usize,
    /// Point-to-point messages (= flow arrows in the trace).
    pub messages: usize,
}

/// Per-lane pending event, sorted by `(ts, order)` before emission so each
/// lane's event stream is timestamp-monotone. At equal timestamps a slice
/// end precedes the next begin (`wait` ends exactly where the collective
/// starts), and flows come last (a message sent at the arrival instant lands
/// inside the collective slice).
enum LaneEvent {
    End,
    Begin { name: String, cat: &'static str, args: Vec<(String, Content)> },
    FlowStart { id: u64, name: String },
    FlowEnd { id: u64, name: String },
}

impl LaneEvent {
    fn order(&self) -> u8 {
        match self {
            LaneEvent::End => 0,
            LaneEvent::Begin { .. } => 1,
            LaneEvent::FlowStart { .. } | LaneEvent::FlowEnd { .. } => 2,
        }
    }
}

fn us(t: f64) -> f64 {
    t * 1e6
}

/// Run `spec` under `pattern` on `platform` (noise-free simulation setting,
/// seeded by `seed`) and render the run as a timeline.
pub fn profile(
    platform: &Platform,
    spec: &CollSpec,
    pattern: &ArrivalPattern,
    seed: u64,
) -> Result<Profile, BenchError> {
    let p = platform.ranks;
    if pattern.len() != p {
        return Err(BenchError::PatternMismatch { pattern: pattern.len(), ranks: p });
    }

    // Same program construction as the measurement harness (Listing 1):
    // harmonized start, pattern delay, labelled collective.
    let target = 1e-3;
    let label = Label { kind: spec.kind.label_kind(), seq: 0 };
    let built = build(spec, p)?;
    let mut programs = Vec::with_capacity(p);
    for (r, ops) in built.rank_ops.into_iter().enumerate() {
        let mut prog = RankProgram::new();
        prog.push_anon(vec![Op::SleepUntil { time: target }, Op::delay(pattern.delay_of(r))]);
        prog.push_labeled(label, ops);
        programs.push(prog);
    }
    let job = Job::new(programs);

    let sim_cfg = SimConfig {
        seed,
        track_data: false,
        noise: NoiseModel::None,
        record_messages: true,
        ..SimConfig::default()
    };
    let out = run_ref(platform, &job, &sim_cfg)?;

    let phases = out.phases_for(label);
    debug_assert_eq!(phases.len(), p);
    let max_a = phases.iter().map(|r| r.enter).fold(f64::NEG_INFINITY, f64::max);
    let min_a = phases.iter().map(|r| r.enter).fold(f64::INFINITY, f64::min);
    let max_e = phases.iter().map(|r| r.exit).fold(f64::NEG_INFINITY, f64::max);
    let d_hat = max_e - max_a;
    let d_star = max_e - min_a;

    let alg_name = algorithm(spec.kind, spec.alg)
        .map(|a| a.name)
        .unwrap_or("unknown algorithm");
    let slice_name = format!("{}[{}] {}", spec.kind, spec.alg, alg_name);

    // Gather per-lane events, then emit each lane in timestamp order.
    let mut lanes: Vec<Vec<(f64, LaneEvent)>> = (0..p).map(|_| Vec::new()).collect();
    for rec in &phases {
        let delay = pattern.delay_of(rec.rank);
        if delay > 0.0 {
            lanes[rec.rank].push((
                us(rec.enter - delay),
                LaneEvent::Begin {
                    name: "wait".to_string(),
                    cat: "pattern",
                    args: vec![("delay_s".to_string(), Content::F64(delay))],
                },
            ));
            lanes[rec.rank].push((us(rec.enter), LaneEvent::End));
        }
        lanes[rec.rank].push((
            us(rec.enter),
            LaneEvent::Begin {
                name: slice_name.clone(),
                cat: "collective",
                args: vec![
                    ("arrival_s".to_string(), Content::F64(rec.enter)),
                    ("exit_s".to_string(), Content::F64(rec.exit)),
                    ("delay_s".to_string(), Content::F64(delay)),
                ],
            },
        ));
        lanes[rec.rank].push((us(rec.exit), LaneEvent::End));
    }

    let msg_events = out.msg_events.as_deref().unwrap_or(&[]);
    for (i, m) in msg_events.iter().enumerate() {
        let name = format!("{}B", m.bytes);
        lanes[m.src].push((
            us(m.sent),
            LaneEvent::FlowStart { id: i as u64, name: name.clone() },
        ));
        lanes[m.dst].push((us(m.delivered), LaneEvent::FlowEnd { id: i as u64, name }));
    }

    let mut trace = ChromeTrace::new();
    trace.process_name(SIM_PID, &format!("pap-sim: {slice_name}"));
    for r in 0..p {
        trace.thread_name(SIM_PID, r as u64, &format!("rank {r}"));
    }
    for (rank, mut events) in lanes.into_iter().enumerate() {
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("sim times are finite")
                .then(a.1.order().cmp(&b.1.order()))
        });
        let tid = rank as u64;
        for (ts, ev) in events {
            match ev {
                LaneEvent::End => trace.end(SIM_PID, tid, ts),
                LaneEvent::Begin { name, cat, args } => {
                    trace.begin_with_args(SIM_PID, tid, &name, cat, ts, args)
                }
                LaneEvent::FlowStart { id, name } => {
                    trace.flow_start(SIM_PID, tid, &name, id, ts)
                }
                LaneEvent::FlowEnd { id, name } => trace.flow_end(SIM_PID, tid, &name, id, ts),
            }
        }
    }

    trace.set_metadata("collective", Content::Str(spec.kind.to_string()));
    trace.set_metadata("algorithm", Content::Str(format!("{} ({})", spec.alg, alg_name)));
    trace.set_metadata("bytes", Content::U64(spec.bytes));
    trace.set_metadata("ranks", Content::U64(p as u64));
    trace.set_metadata("max_skew_s", Content::F64(pattern.max_skew()));
    trace.set_metadata("d_hat_s", Content::F64(d_hat));
    trace.set_metadata("d_star_s", Content::F64(d_star));
    trace.set_metadata("makespan_s", Content::F64(out.makespan()));
    trace.set_metadata("messages", Content::U64(out.messages));

    Ok(Profile { trace, d_hat, d_star, ranks: p, messages: msg_events.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_arrival::{generate, Shape};
    use pap_collectives::CollectiveKind;

    fn run_profile(p: usize) -> Profile {
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::Ascending, p, 1e-4, 1);
        profile(&platform, &spec, &pattern, 7).unwrap()
    }

    #[test]
    fn trace_validates_with_one_lane_per_rank() {
        let prof = run_profile(8);
        let stats = pap_obs::validate_trace(&prof.trace.to_json_string()).unwrap();
        assert_eq!(stats.lanes, 8);
        assert!(stats.flows > 0, "reduce must move messages");
        assert_eq!(stats.flows, prof.messages);
        // Every rank has a collective slice; delayed ranks add wait slices.
        assert!(stats.slices >= 8);
    }

    #[test]
    fn delays_match_the_measurement_harness() {
        let p = 8;
        let platform = Platform::simcluster(p);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::Ascending, p, 1e-4, 1);
        let prof = profile(&platform, &spec, &pattern, 7).unwrap();
        let st = crate::measure(&platform, &spec, &pattern, &crate::BenchConfig::simulation())
            .unwrap();
        assert!((prof.d_hat - st.mean_last()).abs() < 1e-12, "profile d̂ must match measure");
        assert!((prof.d_star - st.mean_total()).abs() < 1e-12, "profile d* must match measure");
    }

    #[test]
    fn profile_is_deterministic() {
        let a = run_profile(4).trace.to_json_string();
        let b = run_profile(4).trace.to_json_string();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_mismatch_is_rejected() {
        let platform = Platform::simcluster(8);
        let spec = CollSpec::new(CollectiveKind::Reduce, 5, 1024);
        let pattern = generate(Shape::NoDelay, 4, 0.0, 1);
        assert!(matches!(
            profile(&platform, &spec, &pattern, 0),
            Err(BenchError::PatternMismatch { .. })
        ));
    }
}
