//! The fault grid: the Fig. 6 robustness methodology extended from arrival
//! skew to runtime faults.
//!
//! Where [`crate::sweep`] asks *"how does each algorithm degrade when
//! processes arrive late?"*, this module asks *"how does each algorithm
//! degrade when the machine misbehaves mid-collective?"* — a rank freezes,
//! a rank dies, a link slows down, a node range catches a noise storm. Each
//! scenario is a named [`FaultSpec`]; the grid is `(algorithm × scenario)`
//! and every cell re-measures the collective under that scenario.
//!
//! A cell whose algorithm *cannot finish* under the scenario (a crashed
//! rank starves its dependents — the engine reports a deadlock) records
//! `mean_last = None`: the degraded-mode analogue of an infinitely slow
//! algorithm. [`pap_core`]'s fault matrix maps those to an unbounded
//! worst-case degradation, which the fault-robust selection policy avoids.

use pap_collectives::{build, CollSpec, CollectiveKind, TAG_SPAN};
use pap_lint::{crash_cone, CrashPoint, LintConfig};
use pap_sim::{FaultSpec, Job, Platform, RankProgram, SimError, ANY_NODE};
use serde::{Deserialize, Serialize};

use crate::harness::{measure, BenchConfig, BenchError, START_TARGET};
use crate::sweep::derive_seed;

/// Version of the standard fault grid's scenario semantics. Bump whenever
/// the scenario set or its timing changes in a way that makes persisted
/// fault evidence (snapshots, fixtures) incomparable with fresh sweeps.
///
/// * v1 — crashes placed *inside* the collective (`start + 0.05 t`).
/// * v2 — crashes placed **at the arrival instant** (`start`): with strictly
///   positive send/receive overheads, nothing of the crashed rank's schedule
///   posts, so the engine's starved set equals `pap-lint`'s static
///   entry-crash cone exactly — the alignment the static prefilter and the
///   differential tests rely on.
pub const FAULT_GRID_VERSION: u32 = 2;

/// A named fault scenario: one cell column of the fault grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Scenario name (the grid row label, e.g. `"stall_root"`).
    pub name: String,
    /// The faults injected while the collective runs.
    pub faults: FaultSpec,
}

impl FaultScenario {
    /// Build a named scenario.
    pub fn new(name: impl Into<String>, faults: FaultSpec) -> Self {
        FaultScenario { name: name.into(), faults }
    }
}

/// The standard fault grid, scaled to a clean-run estimate `t` (seconds;
/// use [`crate::calibrate_avg_runtime`]): every window is placed relative
/// to the harmonized start so it actually overlaps the collective.
///
/// Scenarios:
/// * `clean` — no faults (the baseline every degradation is measured
///   against);
/// * `stall_root` — rank 0 freezes for `2t` just after the collective
///   starts (tree roots and bcast sources sit on the critical path);
/// * `stall_mid` — a mid-tree rank (`p/2`) freezes for `2t`;
/// * `link_degraded` — traffic out of node 0 is 8× slower for the whole
///   collective window;
/// * `storm_half` — ranks `[0, p/2)` compute 4× slower for the whole
///   window (correlated OS-noise storm);
/// * `crash_leaf` — the last rank dies **at the arrival instant**;
///   algorithms whose schedule needs that rank's cooperation never finish.
///   Crashing at (not after) arrival keeps the starved set identical to the
///   static entry-crash cone ([`FAULT_GRID_VERSION`] v2 semantics).
pub fn standard_grid(p: usize, t: f64) -> Vec<FaultScenario> {
    let start = START_TARGET;
    let window = start + 4.0 * t.max(1e-6);
    let stall = 2.0 * t.max(1e-6);
    vec![
        FaultScenario::new("clean", FaultSpec::none()),
        FaultScenario::new(
            "stall_root",
            FaultSpec::none().with_stall(0, start + 0.1 * t, stall),
        ),
        FaultScenario::new(
            "stall_mid",
            FaultSpec::none().with_stall(p / 2, start + 0.1 * t, stall),
        ),
        FaultScenario::new(
            "link_degraded",
            FaultSpec::none().with_link(0, ANY_NODE, start, window, 8.0),
        ),
        FaultScenario::new(
            "storm_half",
            FaultSpec::none().with_storm(0, p / 2 - 1, start, window, 4.0),
        ),
        FaultScenario::new("crash_leaf", FaultSpec::none().with_crash(p - 1, start)),
    ]
}

/// One measured cell of the fault grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultCell {
    /// Algorithm ID.
    pub alg: u8,
    /// Scenario name.
    pub scenario: String,
    /// Mean last delay `d̂` over the surviving ranks, or `None` when the
    /// algorithm could not finish under the scenario (starved dependents).
    pub mean_last: Option<f64>,
    /// The cell was decided by `pap-lint`'s static crash cone instead of a
    /// simulator run: an entry-crash scenario whose cone is non-empty can
    /// never finish, so no sim is spent on it. `false` for measured cells
    /// (and for evidence persisted before this field existed).
    #[serde(default)]
    pub statically_decided: bool,
}

/// Results of one (collective, message size) fault sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepResult {
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Message size (bytes, collective convention).
    pub bytes: u64,
    /// Algorithm IDs in sweep order.
    pub algs: Vec<u8>,
    /// Scenario names in sweep order.
    pub scenarios: Vec<String>,
    /// All cells (algs × scenarios), algorithm-major.
    pub cells: Vec<FaultCell>,
    /// [`FAULT_GRID_VERSION`] the sweep ran under; `0` for evidence
    /// persisted before grids were versioned. Consumers reject mismatches
    /// rather than compare incomparable scenario timings.
    #[serde(default)]
    pub grid_version: u32,
}

impl FaultSweepResult {
    /// The cell of (algorithm, scenario), if present.
    pub fn cell(&self, alg: u8, scenario: &str) -> Option<&FaultCell> {
        self.cells.iter().find(|c| c.alg == alg && c.scenario == scenario)
    }
}

/// Whether a scenario is decidable by the static crash cone alone: only
/// crashes (no stalls/links/storms — those change timing, not feasibility),
/// each placed at or before the harmonized start. Under the grid's `NoDelay`
/// arrival and a shared perfect clock, such a crash fires before the rank
/// posts anything — the engine's starved set then equals the static
/// entry-crash cone, so a non-empty cone proves the cell can never finish.
fn statically_decidable(faults: &FaultSpec, cfg: &BenchConfig) -> bool {
    !cfg.clock_sync
        && !faults.crashes.is_empty()
        && faults.stalls.is_empty()
        && faults.links.is_empty()
        && faults.storms.is_empty()
        && faults.crashes.iter().all(|c| c.at <= START_TARGET)
}

/// Run the `(algorithms × scenarios)` fault grid for one collective and
/// message size. Cells fan out over [`pap_parallel::par_map`] with derived
/// seeds and disjoint tag ranges, exactly like [`crate::sweep`], so the
/// result is byte-identical at any thread count. The arrival pattern is
/// `NoDelay` throughout: the grid isolates fault response from skew
/// response (compose with [`crate::sweep`] for the combined picture).
///
/// Entry-crash scenarios are pre-filtered by `pap-lint`'s static crash
/// cone: a non-empty cone settles the cell as `mean_last = None` (flagged
/// [`FaultCell::statically_decided`]) without spending a simulator run —
/// the differential test tier pins the static and simulated starved sets
/// against each other, so the shortcut cannot drift from the engine.
pub fn fault_sweep(
    platform: &Platform,
    kind: CollectiveKind,
    algs: &[u8],
    bytes: u64,
    scenarios: &[FaultScenario],
    cfg: &BenchConfig,
) -> Result<FaultSweepResult, BenchError> {
    let p = platform.ranks;
    let nodelay = pap_arrival::generate(pap_arrival::Shape::NoDelay, p, 0.0, 0);

    let mut grid: Vec<(u8, u64, &FaultScenario)> = Vec::new();
    for (ai, &alg) in algs.iter().enumerate() {
        for (si, scenario) in scenarios.iter().enumerate() {
            grid.push((alg, (ai * scenarios.len() + si) as u64, scenario));
        }
    }

    let lint_cfg = LintConfig::for_platform(platform);
    let runs = pap_parallel::par_map(&grid, |gi, &(alg, cell_id, scenario)| {
        let spec = CollSpec::new(kind, alg, bytes).with_tag_base(cell_id * 8 * TAG_SPAN);
        if statically_decidable(&scenario.faults, cfg) {
            let built = build(&spec, p).map_err(BenchError::Build)?;
            let job =
                Job::new(built.rank_ops.into_iter().map(RankProgram::from_ops).collect());
            let crashes: Vec<CrashPoint> =
                scenario.faults.crashes.iter().map(|c| CrashPoint::on_entry(c.rank)).collect();
            if !crash_cone(&job, &lint_cfg, &crashes).is_empty() {
                return Ok(FaultCell {
                    alg,
                    scenario: scenario.name.clone(),
                    mean_last: None,
                    statically_decided: true,
                });
            }
            // Empty cone: the schedule provably completes — fall through to
            // the sim for the actual degraded timing.
        }
        let run_cfg = cfg
            .clone()
            .with_seed(derive_seed(cfg.seed, gi as u64))
            .with_faults(scenario.faults.clone());
        match measure(platform, &spec, &nodelay, &run_cfg) {
            Ok(stats) => {
                pap_obs::pump_spans();
                Ok(FaultCell {
                    alg,
                    scenario: scenario.name.clone(),
                    mean_last: Some(stats.mean_last()),
                    statically_decided: false,
                })
            }
            // A deadlock here is the *measured outcome* of the scenario —
            // the schedule needs a dead rank — not a harness failure.
            Err(BenchError::Sim(SimError::Deadlock { .. })) => Ok(FaultCell {
                alg,
                scenario: scenario.name.clone(),
                mean_last: None,
                statically_decided: false,
            }),
            Err(e) => Err(e),
        }
    });
    let cells = runs.into_iter().collect::<Result<Vec<_>, _>>()?;

    Ok(FaultSweepResult {
        kind,
        bytes,
        algs: algs.to_vec(),
        scenarios: scenarios.iter().map(|s| s.name.clone()).collect(),
        cells,
        grid_version: FAULT_GRID_VERSION,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_is_valid_and_scaled() {
        let p = 16;
        let grid = standard_grid(p, 1e-4);
        assert_eq!(grid.len(), 6);
        assert!(grid[0].faults.is_none(), "first scenario is the clean baseline");
        let platform = Platform::simcluster(p);
        for s in &grid {
            s.faults
                .validate(platform.ranks, platform.nodes)
                .unwrap_or_else(|e| panic!("scenario {} invalid: {e}", s.name));
        }
    }

    #[test]
    fn fault_sweep_covers_grid_and_degrades_faulted_cells() {
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let t = crate::no_delay_runtime(&platform, CollectiveKind::Reduce, 5, 1024, &cfg, 0)
            .unwrap();
        let scenarios = standard_grid(8, t);
        let res =
            fault_sweep(&platform, CollectiveKind::Reduce, &[5, 6], 1024, &scenarios, &cfg).unwrap();
        assert_eq!(res.cells.len(), 12);
        for alg in [5u8, 6] {
            let clean = res.cell(alg, "clean").unwrap().mean_last.unwrap();
            let stalled = res.cell(alg, "stall_root").unwrap().mean_last.unwrap();
            assert!(
                stalled > clean,
                "alg {alg}: stalling the root must slow the collective ({stalled} vs {clean})"
            );
        }
    }

    #[test]
    fn crash_starved_cells_record_none() {
        // Reduce needs every rank's contribution: killing a leaf before it
        // sends starves the tree — the cell must record a clean None, not
        // an error.
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let scenarios =
            vec![FaultScenario::new("crash_leaf", FaultSpec::none().with_crash(7, START_TARGET))];
        let res =
            fault_sweep(&platform, CollectiveKind::Reduce, &[5], 1024, &scenarios, &cfg).unwrap();
        assert_eq!(res.cell(5, "crash_leaf").unwrap().mean_last, None);
    }

    #[test]
    fn entry_crash_cells_are_decided_statically_and_match_the_engine() {
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let scenarios = standard_grid(8, 1e-4);
        let res =
            fault_sweep(&platform, CollectiveKind::Reduce, &[1, 5], 1024, &scenarios, &cfg)
                .unwrap();
        assert_eq!(res.grid_version, FAULT_GRID_VERSION);
        for alg in [1u8, 5] {
            // Killing the leaf at arrival starves every reduce schedule:
            // the static cone settles the cell, no simulator run needed.
            let cell = res.cell(alg, "crash_leaf").unwrap();
            assert_eq!(cell.mean_last, None);
            assert!(cell.statically_decided, "entry crash must be decided by the cone");
            // Timing scenarios can never be decided statically.
            assert!(!res.cell(alg, "stall_root").unwrap().statically_decided);
            assert!(!res.cell(alg, "clean").unwrap().statically_decided);
        }
    }

    #[test]
    fn fault_sweep_is_deterministic() {
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let scenarios = standard_grid(8, 1e-4);
        let run = || {
            serde_json::to_string(
                &fault_sweep(&platform, CollectiveKind::Bcast, &[3, 5], 512, &scenarios, &cfg)
                    .unwrap(),
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
