//! Sweeps over (algorithm × arrival pattern) with the paper's skew
//! calibration rules.

use pap_arrival::{generate, ArrivalPattern, Shape};
use pap_collectives::{CollSpec, CollectiveKind, TAG_SPAN};
use pap_sim::Platform;
use serde::{Deserialize, Serialize};

use crate::harness::{measure, Backend, BenchConfig, BenchError};
use crate::stats::RunStats;

/// How the maximum process skew of the generated patterns is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SkewPolicy {
    /// A fixed skew in seconds (e.g. derived from an application trace, as
    /// in the Fig. 8 experiments).
    Fixed(f64),
    /// `factor × t̄ᵃ`, where `t̄ᵃ` is the average `NoDelay` runtime over all
    /// algorithms (§III-B; the paper reports the 1.5 factor).
    FactorOfAvg(f64),
    /// Scale each algorithm's pattern to that algorithm's own `NoDelay`
    /// runtime `tᵢ` (§IV-C, the robustness experiments).
    PerAlgorithm,
}

/// One measured cell of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Algorithm ID.
    pub alg: u8,
    /// Pattern name (a shape name or a measured-pattern name).
    pub pattern: String,
    /// The max skew actually applied (seconds).
    pub skew: f64,
    /// Measurement statistics.
    pub stats: RunStats,
}

/// Results of one (collective, message size) sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Message size (bytes, collective convention).
    pub bytes: u64,
    /// Algorithm IDs in sweep order.
    pub algs: Vec<u8>,
    /// Pattern names in sweep order.
    pub patterns: Vec<String>,
    /// All cells (algs × patterns).
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// The cell of (algorithm, pattern), if present.
    pub fn cell(&self, alg: u8, pattern: &str) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.alg == alg && c.pattern == pattern)
    }

    /// Mean last delay of a cell (the figure metric).
    pub fn mean_last(&self, alg: u8, pattern: &str) -> Option<f64> {
        self.cell(alg, pattern).map(|c| c.stats.mean_last())
    }
}

/// Derive an independent per-run seed from the base seed and the run's
/// position in the grid (SplitMix64 finalizer). A pure function of
/// `(base, index)`, so the parallel fan-out produces byte-identical output
/// to the sequential loop at any thread count.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// §III-B: the average `NoDelay` runtime `t̄ᵃ` over a set of algorithms,
/// used to size artificial skews. The per-algorithm runs are independent
/// and fan out over [`pap_parallel::par_map`].
pub fn calibrate_avg_runtime(
    platform: &Platform,
    kind: CollectiveKind,
    algs: &[u8],
    bytes: u64,
    cfg: &BenchConfig,
) -> Result<f64, BenchError> {
    let times = pap_parallel::par_map(algs, |i, &alg| no_delay_runtime(platform, kind, alg, bytes, cfg, i));
    let mut sum = 0.0;
    for t in times {
        sum += t?;
    }
    Ok(sum / algs.len() as f64)
}

/// One algorithm's `NoDelay` mean last-delay runtime `tᵢ`.
pub fn no_delay_runtime(
    platform: &Platform,
    kind: CollectiveKind,
    alg: u8,
    bytes: u64,
    cfg: &BenchConfig,
    tag_slot: usize,
) -> Result<f64, BenchError> {
    let spec = CollSpec::new(kind, alg, bytes).with_tag_base(tag_slot as u64 * 64 * TAG_SPAN);
    let nodelay = generate(Shape::NoDelay, platform.ranks, 0.0, 0);
    Ok(measure(platform, &spec, &nodelay, cfg)?.mean_last())
}

/// Run the full (algorithms × shapes) sweep for one collective and message
/// size, with patterns sized by `policy`. Extra named patterns (e.g. the
/// traced FT-Scenario) can be appended via `extra_patterns`; their delays
/// are used as-is.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    platform: &Platform,
    kind: CollectiveKind,
    algs: &[u8],
    shapes: &[Shape],
    bytes: u64,
    policy: SkewPolicy,
    extra_patterns: &[ArrivalPattern],
    cfg: &BenchConfig,
) -> Result<SweepResult, BenchError> {
    let p = platform.ranks;

    // The analytical backend is deterministic and independent of the
    // measurement seed and tag base, so the per-algorithm NoDelay runs that
    // calibrate the skew are the very measurements the grid's NoDelay
    // column would redo. Run them once up front and reuse them for both.
    // The simulator path keeps separate runs: its noise draws from the
    // per-cell derived seed, so calibration and grid cells differ there.
    let model_nodelay: Option<Vec<RunStats>> = if cfg.backend == Backend::Model
        && matches!(policy, SkewPolicy::FactorOfAvg(_) | SkewPolicy::PerAlgorithm)
    {
        let nodelay = generate(Shape::NoDelay, p, 0.0, 0);
        let runs = pap_parallel::par_map(algs, |i, &alg| {
            let spec = CollSpec::new(kind, alg, bytes).with_tag_base(i as u64 * 64 * TAG_SPAN);
            measure(platform, &spec, &nodelay, cfg)
        });
        Some(runs.into_iter().collect::<Result<Vec<_>, _>>()?)
    } else {
        None
    };

    // Calibrate skews.
    let fixed_skew = match policy {
        SkewPolicy::Fixed(s) => Some(s),
        SkewPolicy::FactorOfAvg(f) => {
            let avg = match &model_nodelay {
                Some(nd) => {
                    let mut sum = 0.0;
                    for s in nd {
                        sum += s.mean_last();
                    }
                    sum / algs.len() as f64
                }
                None => calibrate_avg_runtime(platform, kind, algs, bytes, cfg)?,
            };
            Some(f * avg)
        }
        SkewPolicy::PerAlgorithm => None,
    };
    let per_alg_skew: Vec<f64> = match policy {
        SkewPolicy::PerAlgorithm => match &model_nodelay {
            Some(nd) => nd.iter().map(|s| s.mean_last()).collect(),
            None => {
                let runs =
                    pap_parallel::par_map(algs, |i, &a| no_delay_runtime(platform, kind, a, bytes, cfg, i));
                runs.into_iter().collect::<Result<_, _>>()?
            }
        },
        _ => vec![fixed_skew.unwrap_or(0.0); algs.len()],
    };

    // Generate each distinct skew's shape patterns once and share them
    // across the grid: under Fixed/FactorOfAvg every algorithm faces the
    // same skew, so per-cell generation would repeat identical O(p) work
    // once per algorithm. Same (shape, p, skew, seed) arguments as the
    // per-cell calls, so the pattern values are unchanged.
    let mut row_skew_bits: Vec<u64> = Vec::new();
    let mut rows: Vec<Vec<ArrivalPattern>> = Vec::new();
    let row_of: Vec<usize> = per_alg_skew
        .iter()
        .map(|&skew| {
            let bits = skew.to_bits();
            if let Some(i) = row_skew_bits.iter().position(|&b| b == bits) {
                return i;
            }
            row_skew_bits.push(bits);
            rows.push(
                shapes
                    .iter()
                    .map(|&shape| {
                        let s = if shape == Shape::NoDelay { 0.0 } else { skew };
                        generate(shape, p, s, cfg.seed)
                    })
                    .collect(),
            );
            rows.len() - 1
        })
        .collect();

    let mut pattern_names: Vec<String> = shapes.iter().map(|s| s.name().to_string()).collect();
    pattern_names.extend(extra_patterns.iter().map(|e| e.name.clone()));

    // Flatten the (algorithm × pattern) grid into independent run
    // descriptors, then fan out. Each run derives its own measurement seed
    // from (base seed, grid index) and a disjoint tag range from the same
    // index, so runs are fully independent and the parallel result is
    // byte-identical to the sequential loop. Patterns are still generated
    // from the *base* seed: every algorithm must face the same pattern.
    enum Pat<'p> {
        Shape(usize),
        Extra(&'p ArrivalPattern),
    }
    let mut grid: Vec<(usize, u8, u64, Pat<'_>)> = Vec::new();
    for (ai, &alg) in algs.iter().enumerate() {
        let mut cell_id = 0u64;
        for si in 0..shapes.len() {
            grid.push((ai, alg, cell_id, Pat::Shape(si)));
            cell_id += 1;
        }
        for extra in extra_patterns {
            grid.push((ai, alg, cell_id, Pat::Extra(extra)));
            cell_id += 1;
        }
    }

    let runs = pap_parallel::par_map(&grid, |gi, &(ai, alg, cell_id, ref pat)| {
        let (name, pattern) = match pat {
            Pat::Shape(si) => {
                let shape = shapes[*si];
                if shape == Shape::NoDelay {
                    if let Some(nd) = &model_nodelay {
                        // Calibration already ran this exact measurement.
                        return Ok(SweepCell {
                            alg,
                            pattern: shape.name().to_string(),
                            skew: 0.0,
                            stats: nd[ai].clone(),
                        });
                    }
                }
                (shape.name().to_string(), std::borrow::Cow::Borrowed(&rows[row_of[ai]][*si]))
            }
            Pat::Extra(extra) => (extra.name.clone(), std::borrow::Cow::Borrowed(*extra)),
        };
        let spec =
            CollSpec::new(kind, alg, bytes).with_tag_base((ai as u64 * 64 + cell_id) * 8 * TAG_SPAN);
        let run_cfg = cfg.clone().with_seed(derive_seed(cfg.seed, gi as u64));
        let stats = measure(platform, &spec, &pattern, &run_cfg)?;
        // Stream completed spans out of the bounded rings between cells; a
        // long sweep would otherwise overflow them before a final drain.
        // No-op (one uncontended lock) unless a span stream is installed.
        pap_obs::pump_spans();
        Ok::<_, BenchError>(SweepCell { alg, pattern: name, skew: pattern.max_skew(), stats })
    });
    let cells = runs.into_iter().collect::<Result<Vec<_>, _>>()?;

    Ok(SweepResult { kind, bytes, algs: algs.to_vec(), patterns: pattern_names, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive_and_scales_with_size() {
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let algs = [1u8, 2, 3];
        let small = calibrate_avg_runtime(&platform, CollectiveKind::Reduce, &algs, 64, &cfg).unwrap();
        let large = calibrate_avg_runtime(&platform, CollectiveKind::Reduce, &algs, 1 << 20, &cfg).unwrap();
        assert!(small > 0.0);
        assert!(large > small * 5.0, "1 MiB ({large}) should dwarf 64 B ({small})");
    }

    #[test]
    fn sweep_produces_full_grid() {
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        let shapes = [Shape::NoDelay, Shape::Ascending, Shape::LastDelayed];
        let res = sweep(
            &platform,
            CollectiveKind::Alltoall,
            &[1, 2, 3],
            &shapes,
            128,
            SkewPolicy::FactorOfAvg(1.5),
            &[],
            &cfg,
        )
        .unwrap();
        assert_eq!(res.cells.len(), 9);
        assert_eq!(res.patterns.len(), 3);
        // The flattened fan-out must preserve the sequential grid order:
        // algorithm-major, pattern-minor.
        let order: Vec<(u8, &str)> = res.cells.iter().map(|c| (c.alg, c.pattern.as_str())).collect();
        let expected: Vec<(u8, &str)> =
            [1u8, 2, 3].iter().flat_map(|&a| shapes.iter().map(move |s| (a, s.name()))).collect();
        assert_eq!(order, expected);
        assert!(res.mean_last(3, "ascending").unwrap() > 0.0);
        assert!(res.cell(3, "bogus").is_none());
        // Non-NoDelay cells carry the calibrated skew.
        let skew = res.cell(1, "ascending").unwrap().skew;
        assert!(skew > 0.0);
        assert_eq!(res.cell(2, "ascending").unwrap().skew, skew, "FactorOfAvg is shared");
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        // Real-machine config: noise and clock generation consume the seed,
        // so this exercises the per-cell seed derivation rather than
        // trivially-equal noise-free runs. The serialized result must not
        // change with the thread count.
        let platform = Platform::hydra(8);
        let cfg = BenchConfig::real_machine(2).with_seed(0x5EED);
        let ft = ArrivalPattern::new(
            "ft_scenario",
            vec![0.0, 1e-4, 2e-4, 0.5e-4, 0.0, 3e-5, 0.0, 1e-5],
        );
        let run = || {
            let res = sweep(
                &platform,
                CollectiveKind::Reduce,
                &[1, 5, 6],
                &[Shape::NoDelay, Shape::Ascending, Shape::Random],
                1024,
                SkewPolicy::FactorOfAvg(1.5),
                std::slice::from_ref(&ft),
                &cfg,
            )
            .unwrap();
            serde_json::to_string(&res).unwrap()
        };
        let before = pap_parallel::threads();
        pap_parallel::set_threads(1);
        let sequential = run();
        for n in [2, 3, 8] {
            pap_parallel::set_threads(n);
            assert_eq!(run(), sequential, "thread count {n} changed the serialized sweep");
        }
        pap_parallel::set_threads(before);
    }

    #[test]
    fn per_algorithm_policy_gives_each_its_own_skew() {
        let platform = Platform::simcluster(8);
        let cfg = BenchConfig::simulation();
        // Linear (1) and Bruck (3) have very different NoDelay runtimes at
        // this size, so their robustness skews must differ.
        let res = sweep(
            &platform,
            CollectiveKind::Alltoall,
            &[1, 3],
            &[Shape::Ascending],
            16 * 1024,
            SkewPolicy::PerAlgorithm,
            &[],
            &cfg,
        )
        .unwrap();
        let s1 = res.cell(1, "ascending").unwrap().skew;
        let s3 = res.cell(3, "ascending").unwrap().skew;
        assert_ne!(s1, s3);
    }

    #[test]
    fn extra_patterns_are_measured_verbatim() {
        let platform = Platform::simcluster(4);
        let cfg = BenchConfig::simulation();
        let ft = ArrivalPattern::new("ft_scenario", vec![0.0, 1e-4, 2e-4, 0.5e-4]);
        let res = sweep(
            &platform,
            CollectiveKind::Reduce,
            &[5],
            &[Shape::NoDelay],
            256,
            SkewPolicy::Fixed(1e-4),
            std::slice::from_ref(&ft),
            &cfg,
        )
        .unwrap();
        assert_eq!(res.patterns, vec!["no_delay".to_string(), "ft_scenario".to_string()]);
        assert_eq!(res.cell(5, "ft_scenario").unwrap().skew, ft.max_skew());
    }
}
