//! Repetition statistics.

use serde::{Deserialize, Serialize};

use crate::harness::Measurement;

/// Aggregated statistics of one benchmarked (algorithm, pattern) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    /// Raw per-repetition measurements.
    pub reps: Vec<Measurement>,
}

impl RunStats {
    /// Wrap a set of repetitions.
    ///
    /// # Panics
    /// Panics on an empty set.
    pub fn new(reps: Vec<Measurement>) -> Self {
        assert!(!reps.is_empty(), "need at least one repetition");
        RunStats { reps }
    }

    fn lasts(&self) -> impl Iterator<Item = f64> + '_ {
        self.reps.iter().map(|m| m.last_delay)
    }

    /// Mean last delay `d̂` over repetitions (the paper's primary metric).
    pub fn mean_last(&self) -> f64 {
        self.lasts().sum::<f64>() / self.reps.len() as f64
    }

    /// Median last delay.
    pub fn median_last(&self) -> f64 {
        let mut v: Vec<f64> = self.lasts().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// Minimum last delay.
    pub fn min_last(&self) -> f64 {
        self.lasts().fold(f64::INFINITY, f64::min)
    }

    /// Maximum last delay.
    pub fn max_last(&self) -> f64 {
        self.lasts().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean total delay `d*`.
    pub fn mean_total(&self) -> f64 {
        self.reps.iter().map(|m| m.total_delay).sum::<f64>() / self.reps.len() as f64
    }

    /// Number of repetitions.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether there are no repetitions (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(last: f64, total: f64) -> Measurement {
        Measurement { last_delay: last, total_delay: total }
    }

    #[test]
    fn aggregates() {
        let s = RunStats::new(vec![m(1.0, 2.0), m(3.0, 4.0), m(2.0, 3.0)]);
        assert!((s.mean_last() - 2.0).abs() < 1e-12);
        assert_eq!(s.median_last(), 2.0);
        assert_eq!(s.min_last(), 1.0);
        assert_eq!(s.max_last(), 3.0);
        assert!((s.mean_total() - 3.0).abs() < 1e-12);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn even_count_median_averages() {
        let s = RunStats::new(vec![m(1.0, 1.0), m(2.0, 2.0)]);
        assert!((s.median_last() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = RunStats::new(vec![]);
    }
}
