//! Chrome Trace Event JSON export — the format Perfetto and
//! `chrome://tracing` load natively.
//!
//! We emit the *JSON Object Format* (`{"traceEvents": [...]}`) with:
//!
//! * `"B"`/`"E"` duration events for spans (arrival→exit per rank, host
//!   spans per thread),
//! * `"s"`/`"f"` flow events for message send→deliver arrows,
//! * `"M"` metadata events naming processes (lanes' group) and threads
//!   (one lane per rank / host thread).
//!
//! Timestamps are microseconds (`ts`), kept as `f64` so sub-microsecond
//! simulator times survive. [`validate_trace`] re-parses an emitted trace
//! and checks the structural invariants the property tests (and CI) rely
//! on: matched B/E pairs per lane and monotone non-negative timestamps.
//!
//! Serialization is hand-written against the vendored serde [`Content`]
//! model: the trace format needs field omission (`ts` absent on metadata
//! events) and a renamed `traceEvents` key, neither of which the offline
//! derive supports.

use std::collections::HashMap;
use std::fmt::Write as _;

use serde::{Content, Deserialize, Error, Serialize};

/// One Trace Event (a single element of `traceEvents`).
///
/// `None` fields are omitted from the JSON, keeping the output close to
/// what the format documents for each phase type.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span label, flow name, or metadata kind).
    pub name: String,
    /// Phase: `B`, `E`, `s`, `f`, `M`, …
    pub ph: String,
    /// Timestamp in microseconds. Metadata events omit it.
    pub ts: Option<f64>,
    /// Process ID (lane group).
    pub pid: u64,
    /// Thread ID (lane).
    pub tid: u64,
    /// Category list (comma-separated), e.g. `"collective"` / `"msg"`.
    pub cat: Option<String>,
    /// Flow-event binding ID (`s`/`f` pairs share one).
    pub id: Option<u64>,
    /// Flow binding point; `"e"` attaches the arrow to the enclosing slice.
    pub bp: Option<String>,
    /// Free-form arguments shown in the Perfetto detail pane.
    pub args: Option<Vec<(String, Content)>>,
}

impl TraceEvent {
    fn new(name: &str, ph: &str, pid: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            ph: ph.to_string(),
            ts: None,
            pid,
            tid,
            cat: None,
            id: None,
            bp: None,
            args: None,
        }
    }
}

impl Serialize for TraceEvent {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = vec![
            ("name".into(), Content::Str(self.name.clone())),
            ("ph".into(), Content::Str(self.ph.clone())),
        ];
        if let Some(ts) = self.ts {
            map.push(("ts".into(), Content::F64(ts)));
        }
        map.push(("pid".into(), Content::U64(self.pid)));
        map.push(("tid".into(), Content::U64(self.tid)));
        if let Some(cat) = &self.cat {
            map.push(("cat".into(), Content::Str(cat.clone())));
        }
        if let Some(id) = self.id {
            map.push(("id".into(), Content::U64(id)));
        }
        if let Some(bp) = &self.bp {
            map.push(("bp".into(), Content::Str(bp.clone())));
        }
        if let Some(args) = &self.args {
            map.push(("args".into(), Content::Map(args.clone())));
        }
        Content::Map(map)
    }
}

fn opt_field<T: Deserialize>(
    map: &[(String, Content)],
    name: &str,
) -> Result<Option<T>, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, Content::Null)) | None => Ok(None),
        Some((_, v)) => T::from_content(v).map(Some),
    }
}

impl Deserialize for TraceEvent {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let map = c
            .as_map()
            .ok_or_else(|| Error::custom("trace event must be a JSON object"))?;
        Ok(TraceEvent {
            name: serde::field(map, "name")?,
            ph: serde::field(map, "ph")?,
            ts: opt_field(map, "ts")?,
            pid: opt_field(map, "pid")?.unwrap_or(0),
            tid: opt_field(map, "tid")?.unwrap_or(0),
            cat: opt_field(map, "cat")?,
            id: opt_field(map, "id")?,
            bp: opt_field(map, "bp")?,
            args: match map.iter().find(|(k, _)| k == "args") {
                Some((_, Content::Map(m))) => Some(m.clone()),
                Some((_, Content::Null)) | None => None,
                Some((_, other)) => Some(vec![("value".to_string(), other.clone())]),
            },
        })
    }
}

/// Builder for a Trace Event JSON document.
#[derive(Debug, Default, Clone)]
pub struct ChromeTrace {
    /// The events, in emission order (viewers sort by `ts` themselves).
    pub events: Vec<TraceEvent>,
    /// Top-level free-form metadata (e.g. `d_hat`, `pattern`), rendered as
    /// an `"otherData"` object when non-empty.
    pub metadata: Vec<(String, Content)>,
}

impl Serialize for ChromeTrace {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = vec![(
            "traceEvents".into(),
            Content::Seq(self.events.iter().map(|e| e.to_content()).collect()),
        )];
        if !self.metadata.is_empty() {
            map.push(("otherData".into(), Content::Map(self.metadata.clone())));
        }
        Content::Map(map)
    }
}

impl Deserialize for ChromeTrace {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let map = c
            .as_map()
            .ok_or_else(|| Error::custom("trace must be a JSON object"))?;
        let events = match map.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, v)) => Vec::<TraceEvent>::from_content(v)?,
            None => Vec::new(),
        };
        let metadata = match map.iter().find(|(k, _)| k == "otherData") {
            Some((_, Content::Map(m))) => m.clone(),
            _ => Vec::new(),
        };
        Ok(ChromeTrace { events, metadata })
    }
}

impl ChromeTrace {
    /// Empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Attach a top-level metadata value (shown in the trace's
    /// `otherData`), replacing any previous value for `key`.
    pub fn set_metadata(&mut self, key: &str, value: Content) {
        self.metadata.retain(|(k, _)| k != key);
        self.metadata.push((key.to_string(), value));
    }

    /// Read back a metadata value by key.
    pub fn metadata_value(&self, key: &str) -> Option<&Content> {
        self.metadata.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Name the process (lane group) `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut ev = TraceEvent::new("process_name", "M", pid, 0);
        ev.args = Some(vec![("name".to_string(), Content::Str(name.to_string()))]);
        self.events.push(ev);
    }

    /// Name the thread (lane) `tid` within process `pid`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut ev = TraceEvent::new("thread_name", "M", pid, tid);
        ev.args = Some(vec![("name".to_string(), Content::Str(name.to_string()))]);
        self.events.push(ev);
    }

    /// Begin a duration slice on lane (`pid`, `tid`) at `ts_us`.
    pub fn begin(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts_us: f64) {
        let mut ev = TraceEvent::new(name, "B", pid, tid);
        ev.ts = Some(ts_us);
        ev.cat = Some(cat.to_string());
        self.events.push(ev);
    }

    /// Begin a duration slice with detail-pane `args`.
    pub fn begin_with_args(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts_us: f64,
        args: Vec<(String, Content)>,
    ) {
        let mut ev = TraceEvent::new(name, "B", pid, tid);
        ev.ts = Some(ts_us);
        ev.cat = Some(cat.to_string());
        ev.args = Some(args);
        self.events.push(ev);
    }

    /// End the innermost open slice on lane (`pid`, `tid`) at `ts_us`.
    pub fn end(&mut self, pid: u64, tid: u64, ts_us: f64) {
        let mut ev = TraceEvent::new("", "E", pid, tid);
        ev.ts = Some(ts_us);
        self.events.push(ev);
    }

    /// Start a flow arrow `id` (e.g. a message send) from lane (`pid`,
    /// `tid`) at `ts_us`. Bind with [`ChromeTrace::flow_end`].
    pub fn flow_start(&mut self, pid: u64, tid: u64, name: &str, id: u64, ts_us: f64) {
        let mut ev = TraceEvent::new(name, "s", pid, tid);
        ev.ts = Some(ts_us);
        ev.cat = Some("msg".to_string());
        ev.id = Some(id);
        self.events.push(ev);
    }

    /// Terminate flow arrow `id` on lane (`pid`, `tid`) at `ts_us`,
    /// binding to the enclosing slice (`bp: "e"`).
    pub fn flow_end(&mut self, pid: u64, tid: u64, name: &str, id: u64, ts_us: f64) {
        let mut ev = TraceEvent::new(name, "f", pid, tid);
        ev.ts = Some(ts_us);
        ev.cat = Some("msg".to_string());
        ev.id = Some(id);
        ev.bp = Some("e".to_string());
        self.events.push(ev);
    }

    /// Convert drained host spans into duration slices, one lane per
    /// recording thread, under process `pid`.
    ///
    /// Spans within one thread are properly nested (RAII guards follow
    /// stack discipline), so B/E events are interleaved via an end-time
    /// stack to keep each lane's emission order timestamp-monotone.
    pub fn push_spans(&mut self, pid: u64, spans: &[crate::trace::SpanRecord]) {
        let mut by_thread: std::collections::BTreeMap<u64, Vec<&crate::trace::SpanRecord>> =
            std::collections::BTreeMap::new();
        for s in spans {
            by_thread.entry(s.thread).or_default().push(s);
        }
        for (tid, mut list) in by_thread {
            // Outer spans first: by start ascending, then end descending.
            list.sort_by(|a, b| {
                a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns))
            });
            let mut open_ends: Vec<u64> = Vec::new();
            for s in list {
                while open_ends.last().is_some_and(|&e| e <= s.start_ns) {
                    let e = open_ends.pop().expect("checked non-empty");
                    self.end(pid, tid, e as f64 / 1_000.0);
                }
                self.begin(pid, tid, s.name, s.cat, s.start_ns as f64 / 1_000.0);
                open_ends.push(s.end_ns);
            }
            while let Some(e) = open_ends.pop() {
                self.end(pid, tid, e as f64 / 1_000.0);
            }
        }
    }

    /// Serialize to pretty JSON.
    ///
    /// # Panics
    /// Never panics: the structure serializes through the vendored serde
    /// data model, which has no fallible paths for these shapes.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Write the trace to `path` as JSON.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

/// Build a host-span trace (one process, one lane per thread) from drained
/// spans — the shape `--metrics` runs export.
pub fn from_spans(spans: &[crate::trace::SpanRecord]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.process_name(0, "host");
    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in &threads {
        trace.thread_name(0, *t, &format!("thread {t}"));
    }
    trace.push_spans(0, spans);
    trace
}

/// Structural summary returned by [`validate_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Completed B/E slice pairs.
    pub slices: usize,
    /// Flow `s`/`f` pairs sharing an ID.
    pub flows: usize,
    /// Distinct (pid, tid) lanes carrying at least one slice.
    pub lanes: usize,
}

/// Parse `json` as Trace Event JSON and check structural invariants:
///
/// * well-formed object format with a `traceEvents` array;
/// * every `B` has a matching later `E` on the same (pid, tid) lane and
///   vice versa (properly nested);
/// * timestamps are finite, non-negative and monotonically non-decreasing
///   per lane;
/// * every flow ID occurs as both `s` and `f`.
///
/// Returns lane/slice/flow counts on success, a description of the first
/// violation on failure.
pub fn validate_trace(json: &str) -> Result<TraceStats, String> {
    let trace: ChromeTrace =
        serde_json::from_str(json).map_err(|e| format!("not valid Trace Event JSON: {e}"))?;

    let mut stats = TraceStats { events: trace.events.len(), ..TraceStats::default() };
    // Per-lane open-slice stack depth and last timestamp.
    let mut open: HashMap<(u64, u64), usize> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut lanes_with_slices: HashMap<(u64, u64), ()> = HashMap::new();
    let mut flow_starts: HashMap<u64, usize> = HashMap::new();
    let mut flow_ends: HashMap<u64, usize> = HashMap::new();

    for (i, ev) in trace.events.iter().enumerate() {
        let lane = (ev.pid, ev.tid);
        if ev.ph != "M" {
            let ts = ev
                .ts
                .ok_or_else(|| format!("event #{i} ({}) has no timestamp", ev.ph))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("event #{i} has invalid timestamp {ts}"));
            }
            if let Some(&prev) = last_ts.get(&lane) {
                if ts < prev {
                    return Err(format!(
                        "lane (pid {}, tid {}) timestamps not monotone: {prev} then {ts} at event #{i}",
                        ev.pid, ev.tid
                    ));
                }
            }
            last_ts.insert(lane, ts);
        }
        match ev.ph.as_str() {
            "B" => {
                *open.entry(lane).or_insert(0) += 1;
                lanes_with_slices.insert(lane, ());
            }
            "E" => {
                let depth = open.entry(lane).or_insert(0);
                if *depth == 0 {
                    return Err(format!(
                        "lane (pid {}, tid {}) has 'E' without matching 'B' at event #{i}",
                        ev.pid, ev.tid
                    ));
                }
                *depth -= 1;
                stats.slices += 1;
            }
            "s" => {
                let id = ev.id.ok_or_else(|| format!("flow start #{i} has no id"))?;
                *flow_starts.entry(id).or_insert(0) += 1;
            }
            "f" => {
                let id = ev.id.ok_or_else(|| format!("flow end #{i} has no id"))?;
                *flow_ends.entry(id).or_insert(0) += 1;
            }
            "M" => {}
            other => return Err(format!("event #{i} has unsupported phase '{other}'")),
        }
    }

    for (lane, depth) in &open {
        if *depth != 0 {
            return Err(format!(
                "lane (pid {}, tid {}) ends with {depth} unclosed 'B' event(s)",
                lane.0, lane.1
            ));
        }
    }
    for (id, n) in &flow_starts {
        let ends = flow_ends.get(id).copied().unwrap_or(0);
        if ends != *n {
            return Err(format!("flow id {id} has {n} start(s) but {ends} end(s)"));
        }
        stats.flows += n;
    }
    for id in flow_ends.keys() {
        if !flow_starts.contains_key(id) {
            return Err(format!("flow id {id} has an end but no start"));
        }
    }
    stats.lanes = lanes_with_slices.len();
    Ok(stats)
}

/// Render a one-line human summary of [`TraceStats`].
pub fn describe(stats: &TraceStats) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{} events, {} slices across {} lanes, {} flow arrows",
        stats.events, stats.slices, stats.lanes, stats.flows
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.process_name(1, "sim");
        t.thread_name(1, 0, "rank 0");
        t.thread_name(1, 1, "rank 1");
        t.begin(1, 0, "reduce", "collective", 10.0);
        t.flow_start(1, 0, "msg", 7, 12.0);
        t.end(1, 0, 20.0);
        t.begin(1, 1, "reduce", "collective", 11.0);
        t.flow_end(1, 1, "msg", 7, 15.0);
        t.end(1, 1, 25.0);
        t.set_metadata("d_hat", Content::F64(1.5e-5));
        t
    }

    #[test]
    fn round_trip_validates() {
        let json = sample().to_json_string();
        let stats = validate_trace(&json).expect("sample trace must validate");
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.lanes, 2);
        assert_eq!(stats.flows, 1);
        assert!(describe(&stats).contains("2 slices"));
    }

    #[test]
    fn metadata_round_trips() {
        let json = sample().to_json_string();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.metadata_value("d_hat"), Some(&Content::F64(1.5e-5)));
        assert_eq!(back.events, sample().events);
    }

    #[test]
    fn none_fields_are_omitted_from_json() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "p");
        t.begin(0, 0, "x", "c", 1.0);
        t.end(0, 0, 2.0);
        let json = t.to_json_string();
        // Metadata events carry no ts; slices carry no id/bp/args.
        assert!(!json.contains("\"id\""), "{json}");
        assert!(!json.contains("\"bp\""), "{json}");
        assert!(!json.contains("null"), "{json}");
    }

    #[test]
    fn unbalanced_end_is_rejected() {
        let mut t = ChromeTrace::new();
        t.end(0, 0, 5.0);
        let err = validate_trace(&t.to_json_string()).unwrap_err();
        assert!(err.contains("without matching 'B'"), "{err}");
    }

    #[test]
    fn unclosed_begin_is_rejected() {
        let mut t = ChromeTrace::new();
        t.begin(0, 0, "x", "c", 1.0);
        let err = validate_trace(&t.to_json_string()).unwrap_err();
        assert!(err.contains("unclosed 'B'"), "{err}");
    }

    #[test]
    fn non_monotone_lane_is_rejected() {
        let mut t = ChromeTrace::new();
        t.begin(0, 0, "x", "c", 10.0);
        t.end(0, 0, 5.0);
        let err = validate_trace(&t.to_json_string()).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn dangling_flow_is_rejected() {
        let mut t = ChromeTrace::new();
        t.begin(0, 0, "x", "c", 1.0);
        t.flow_start(0, 0, "msg", 3, 2.0);
        t.end(0, 0, 4.0);
        let err = validate_trace(&t.to_json_string()).unwrap_err();
        assert!(err.contains("flow id 3"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(validate_trace("not json").is_err());
        assert_eq!(validate_trace("{}").unwrap().events, 0);
    }

    #[test]
    fn nested_spans_on_one_thread_stay_monotone() {
        let spans = vec![
            crate::trace::SpanRecord {
                cat: "sim",
                name: "outer",
                start_ns: 1_000,
                end_ns: 9_000,
                thread: 0,
            },
            crate::trace::SpanRecord {
                cat: "sim",
                name: "inner",
                start_ns: 2_000,
                end_ns: 3_000,
                thread: 0,
            },
            crate::trace::SpanRecord {
                cat: "sim",
                name: "later",
                start_ns: 4_000,
                end_ns: 5_000,
                thread: 0,
            },
        ];
        let trace = from_spans(&spans);
        let stats = validate_trace(&trace.to_json_string()).unwrap();
        assert_eq!(stats.slices, 3);
        assert_eq!(stats.lanes, 1);
    }

    #[test]
    fn host_spans_export() {
        let spans = vec![
            crate::trace::SpanRecord {
                cat: "sim",
                name: "run",
                start_ns: 1_000,
                end_ns: 4_000,
                thread: 0,
            },
            crate::trace::SpanRecord {
                cat: "pool",
                name: "task",
                start_ns: 2_000,
                end_ns: 3_000,
                thread: 1,
            },
        ];
        let trace = from_spans(&spans);
        let stats = validate_trace(&trace.to_json_string()).unwrap();
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.lanes, 2);
    }
}
