//! # pap-obs — low-overhead observability for the `pap` stack
//!
//! Three layers, usable independently:
//!
//! * **Span tracing** ([`trace`]): wall-clock begin/end records captured in
//!   per-thread ring buffers behind a single process-wide gate. The disabled
//!   path of [`span`] is *one relaxed atomic load* — no allocation, no time
//!   query, no locking — so instrumentation can stay compiled into the hot
//!   paths of the simulator, the sweep fan-out and the daemon permanently
//!   (the `obs_overhead` Criterion bench in `pap-bench` pins the cost).
//! * **Metrics** ([`metrics`]): a registry of named counters, gauges and
//!   fixed-bucket histograms. Handles are cheap `Arc`-backed atomics that
//!   record with relaxed stores; metrics are always on (a handful of atomic
//!   adds per *run*, never per simulated event). `papd`'s `Stats`, the
//!   `pap-parallel` pool and the micro-benchmark harness all publish through
//!   this one interface.
//! * **Export** ([`chrome`]): Chrome Trace Event JSON that Perfetto and
//!   `chrome://tracing` load directly — used both for drained host spans and
//!   for the simulator's per-rank collective timelines (`papctl profile`),
//!   plus a serializable [`MetricsSnapshot`] with an aligned text table.
//!
//! ## Gating discipline
//!
//! | layer   | disabled cost                | enabled cost                    |
//! |---------|------------------------------|---------------------------------|
//! | spans   | 1 relaxed load               | 2 `Instant` reads + ring push   |
//! | metrics | n/a (always on, per-run)     | relaxed atomic add              |
//!
//! Call [`set_enabled`]`(true)` (e.g. from `papctl … --metrics`) to start
//! capturing spans; [`trace::drain_spans`] collects what every thread
//! recorded since the last drain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

pub mod chrome;
pub mod metrics;
pub mod trace;

pub use chrome::{validate_trace, ChromeTrace, TraceEvent, TraceStats};
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use trace::{
    drain_spans, pump_spans, set_span_stream, span, SpanGuard, SpanRecord, SpanSink,
};

/// Process-wide span-capture gate. Relaxed is sufficient: observers only
/// need *eventual* agreement, and a span started just before `set_enabled`
/// flipped is simply not recorded.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span capture on or off (metrics are unaffected — they are always
/// on). Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span capture is currently enabled.
///
/// This is the *entire* disabled-path cost of [`span`]: one relaxed atomic
/// load and a branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_defaults_off_and_toggles() {
        // Tests in this crate serialize access to the global gate through
        // the trace-module lock; here a plain toggle round-trip suffices.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
