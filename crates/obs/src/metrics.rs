//! Unified metrics: named counters, gauges and fixed-bucket histograms.
//!
//! A [`Registry`] hands out cheap `Arc`-backed handles; recording through a
//! handle is a single relaxed atomic operation and never touches the
//! registry lock (the lock is taken only at handle creation and snapshot
//! time). Create one registry per logical service (`papd` does) or use the
//! process-wide [`global`] registry for library-level metrics (the sim
//! engine, the `pap-parallel` pool, the micro-benchmark harness).
//!
//! Snapshots ([`MetricsSnapshot`]) are serde-serializable (the `papd`
//! `Metrics` endpoint ships them over the wire) and render as an aligned
//! text table for terminals and CI step summaries.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (signed, so deltas can go negative).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta and return the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    /// Inclusive upper bounds; an implicit overflow bucket follows.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle (e.g. microsecond latencies).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let c = &self.0;
        let idx = c.bounds.iter().position(|&b| value <= b).unwrap_or(c.bounds.len());
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Count in the bucket with inclusive upper bound `le` (`u64::MAX` for
    /// the overflow bucket); `None` if no such bound exists.
    pub fn bucket_count(&self, le: u64) -> Option<u64> {
        let c = &self.0;
        if le == u64::MAX {
            return Some(c.buckets[c.bounds.len()].load(Ordering::Relaxed));
        }
        let i = c.bounds.iter().position(|&b| b == le)?;
        Some(c.buckets[i].load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics; see the module docs.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, m)) = inner.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric '{name}' already registered with a different type"),
            }
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        inner.push((name.to_string(), Metric::Counter(c.clone())));
        c
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, m)) = inner.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric '{name}' already registered with a different type"),
            }
        }
        let g = Gauge(Arc::new(AtomicI64::new(0)));
        inner.push((name.to_string(), Metric::Gauge(g.clone())));
        g
    }

    /// Get or create the histogram `name` with inclusive upper `bounds`
    /// (strictly increasing; an overflow bucket is appended automatically).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing, or if `name`
    /// is already registered as a different metric type. Re-registering an
    /// existing histogram returns the existing handle; its original bounds
    /// win.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram '{name}' needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram '{name}' bounds must be strictly increasing"
        );
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, m)) = inner.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric '{name}' already registered with a different type"),
            }
        }
        let h = Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }));
        inner.push((name.to_string(), Metric::Histogram(h.clone())));
        h
    }

    /// Read every metric into a serializable snapshot, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.push(NamedValue { name: name.clone(), value: c.get() })
                }
                Metric::Gauge(g) => {
                    snap.gauges.push(NamedGauge { name: name.clone(), value: g.get() })
                }
                Metric::Histogram(h) => {
                    let core = &h.0;
                    let mut buckets: Vec<BucketSnapshot> = core
                        .bounds
                        .iter()
                        .enumerate()
                        .map(|(i, &le)| BucketSnapshot {
                            le,
                            count: core.buckets[i].load(Ordering::Relaxed),
                        })
                        .collect();
                    buckets.push(BucketSnapshot {
                        le: u64::MAX,
                        count: core.buckets[core.bounds.len()].load(Ordering::Relaxed),
                    });
                    snap.histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        count: core.count.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                        buckets,
                    });
                }
            }
        }
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

/// The process-wide registry used by library-level instrumentation (sim
/// engine, `pap-parallel`, micro-benchmark harness).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A named counter value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedValue {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// A named gauge value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedGauge {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: i64,
}

/// One histogram bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Inclusive upper bound (`u64::MAX` = overflow bucket).
    pub le: u64,
    /// Observations in this bucket.
    pub count: u64,
}

/// A histogram's state in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket counts (non-cumulative), overflow last.
    pub buckets: Vec<BucketSnapshot>,
}

/// A point-in-time, wire-serializable view of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<NamedValue>,
    /// Gauges, sorted by name.
    pub gauges: Vec<NamedGauge>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Append another snapshot's metrics (e.g. the [`global`] registry's
    /// library metrics after a service's own), keeping each section sorted.
    pub fn extend(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Render as an aligned text table (terminals, CI step summaries).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.gauges.iter().map(|g| g.name.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        for c in &self.counters {
            out.push_str(&format!("{:<width$}  {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("{:<width$}  {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            let mean = if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 };
            out.push_str(&format!(
                "{:<width$}  count {} mean {:.1}  ",
                h.name, h.count, mean
            ));
            if h.count == 0 {
                out.push_str("(empty)\n");
                continue;
            }
            let parts: Vec<String> = h
                .buckets
                .iter()
                .filter(|b| b.count > 0)
                .map(|b| {
                    if b.le == u64::MAX {
                        format!("<=inf: {}", b.count)
                    } else {
                        format!("<={}: {}", b.le, b.count)
                    }
                })
                .collect();
            out.push_str(&parts.join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("requests");
        c.inc();
        c.add(4);
        let g = reg.gauge("backlog");
        g.set(7);
        assert_eq!(g.add(-3), 4);
        let h = reg.histogram("lat_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 4);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_count(10), Some(1));
        assert_eq!(h.bucket_count(100), Some(1));
        assert_eq!(h.bucket_count(u64::MAX), Some(1));
        assert_eq!(h.bucket_count(11), None);
    }

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_type_conflicts_panic() {
        let reg = Registry::new();
        let _c = reg.counter("dual");
        let _g = reg.gauge("dual");
    }

    #[test]
    fn snapshot_is_sorted_serializable_and_extendable() {
        let reg = Registry::new();
        reg.counter("z.last").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("m.mid").set(-3);
        reg.histogram("h", &[1, 2]).record(2);
        let mut snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a.first");
        assert_eq!(snap.counters[1].name, "z.last");
        assert_eq!(snap.gauges[0].value, -3);
        assert_eq!(snap.histograms[0].buckets.len(), 3);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let other = Registry::new();
        other.counter("k.other").inc();
        snap.extend(other.snapshot());
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "k.other", "z.last"]);
    }

    #[test]
    fn table_renders_all_sections() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(9);
        reg.histogram("h_us", &[10]).record(3);
        let t = reg.snapshot().render_table();
        assert!(t.contains("c"), "{t}");
        assert!(t.lines().any(|l| l.starts_with("c ") && l.ends_with('3')), "{t}");
        assert!(t.contains("<=10: 1"), "{t}");
        // Empty histogram renders a placeholder, not garbage.
        let reg2 = Registry::new();
        reg2.histogram("empty", &[1]);
        assert!(reg2.snapshot().render_table().contains("(empty)"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("mt");
        let h = reg.histogram("mt_h", &[1_000]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4_000);
        assert_eq!(h.count(), 4_000);
    }
}
