//! Span capture: per-thread ring buffers behind the process-wide gate.
//!
//! A [`span`] call on the disabled path performs exactly one relaxed atomic
//! load (the gate) and returns an inert guard; nothing is allocated and no
//! clock is read. On the enabled path the guard stamps a start time, and on
//! drop pushes one fixed-size [`SpanRecord`] into the calling thread's ring
//! buffer — an uncontended mutex around a fixed-capacity ring, never the
//! global registry lock.
//!
//! Rings hold the most recent [`RING_CAPACITY`] records per thread; older
//! records are overwritten and counted in [`dropped_spans`] so exporters can
//! report truncation instead of silently presenting a partial timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Completed-span capacity of one thread's ring buffer.
pub const RING_CAPACITY: usize = 1 << 14;

/// One completed span, in nanoseconds since the process trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Category (a `&'static str` by design: recording never allocates).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Start, ns since the trace epoch.
    pub start_ns: u64,
    /// End, ns since the trace epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Small dense ID of the recording thread (assigned on first record).
    pub thread: u64,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next write position (wraps).
    head: usize,
    /// Total records ever pushed (so `pushed - buf.len()` = overwritten).
    pushed: u64,
}

impl Ring {
    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
        }
        self.head = (self.head + 1) % RING_CAPACITY;
        self.pushed += 1;
    }

    fn drain_ordered(&mut self) -> Vec<SpanRecord> {
        // Oldest-first: the ring wrapped iff pushed > len.
        let mut out = if self.pushed as usize > self.buf.len() {
            let mut v = Vec::with_capacity(self.buf.len());
            v.extend_from_slice(&self.buf[self.head..]);
            v.extend_from_slice(&self.buf[..self.head]);
            v
        } else {
            std::mem::take(&mut self.buf)
        };
        self.buf.clear();
        self.head = 0;
        self.pushed = 0;
        out.shrink_to_fit();
        out
    }
}

/// Every thread's ring, for [`drain_spans`]. Rings outlive their threads so
/// a short-lived worker's spans survive until the next drain.
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Count of records overwritten because a ring wrapped since the last drain.
static DROPPED: AtomicU64 = AtomicU64::new(0);

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static LOCAL: (u64, Arc<Mutex<Ring>>) = {
        let ring = Arc::new(Mutex::new(Ring { buf: Vec::new(), head: 0, pushed: 0 }));
        RINGS.lock().expect("span ring registry poisoned").push(Arc::clone(&ring));
        (NEXT_THREAD.fetch_add(1, Ordering::Relaxed), ring)
    };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first observability use).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

struct ActiveSpan {
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
}

/// RAII guard returned by [`span`]; records the span when dropped.
///
/// An inert guard (disabled gate) carries `None` and its drop is a no-op.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard(Option<ActiveSpan>);

/// Open a span. Records on drop iff capture was enabled *at open time* —
/// flipping the gate mid-span neither loses other threads' data nor tears
/// this record.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan { cat, name, start_ns: now_ns() }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let end_ns = now_ns();
            LOCAL.with(|(thread, ring)| {
                let mut ring = ring.lock().expect("span ring poisoned");
                if ring.buf.len() == RING_CAPACITY {
                    DROPPED.fetch_add(1, Ordering::Relaxed);
                }
                ring.push(SpanRecord {
                    cat: s.cat,
                    name: s.name,
                    start_ns: s.start_ns,
                    end_ns,
                    thread: *thread,
                });
            });
        }
    }
}

/// Collect (and clear) every thread's recorded spans, oldest-first per
/// thread, then globally ordered by start time.
pub fn drain_spans() -> Vec<SpanRecord> {
    let rings: Vec<Arc<Mutex<Ring>>> =
        RINGS.lock().expect("span ring registry poisoned").clone();
    let mut out = Vec::new();
    for ring in rings {
        out.extend(ring.lock().expect("span ring poisoned").drain_ordered());
    }
    out.sort_by_key(|r| (r.start_ns, r.thread));
    out
}

/// Records lost to ring wrap-around since the last call (resets to zero).
pub fn dropped_spans() -> u64 {
    DROPPED.swap(0, Ordering::Relaxed)
}

/// A streaming span consumer: called with each drained batch, oldest-first.
pub type SpanSink = Box<dyn FnMut(&[SpanRecord]) + Send>;

static STREAM: Mutex<Option<SpanSink>> = Mutex::new(None);

/// Install (or, with `None`, remove) the process-wide streaming span sink.
///
/// Rings hold only the most recent [`RING_CAPACITY`] records per thread: a
/// long sweep or tune overflows them long before it finishes, and a single
/// end-of-run [`drain_spans`] would silently present the tail. A streaming
/// sink plus periodic [`pump_spans`] calls inside the long loop moves
/// completed spans out of the rings while they are still complete.
///
/// Returns the previously installed sink so callers can restore it.
pub fn set_span_stream(sink: Option<SpanSink>) -> Option<SpanSink> {
    std::mem::replace(&mut STREAM.lock().expect("span stream poisoned"), sink)
}

/// Drain every ring into the installed streaming sink; a no-op (that leaves
/// the rings untouched) when no sink is installed. Returns the number of
/// spans forwarded.
///
/// Cheap enough for long loops: without a sink this is one mutex lock; with
/// one it is the same work a [`drain_spans`] call would do at the end.
pub fn pump_spans() -> usize {
    let mut stream = STREAM.lock().expect("span stream poisoned");
    let Some(sink) = stream.as_mut() else {
        return 0;
    };
    let spans = drain_spans();
    if !spans.is_empty() {
        sink(&spans);
    }
    spans.len()
}

#[cfg(test)]
pub(crate) static TEST_GATE: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global gate or drain the global rings.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        crate::set_enabled(false);
        drain_spans();
        for _ in 0..100 {
            let _s = span("test", "noop");
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn enabled_spans_are_captured_in_order() {
        let _g = guard();
        crate::set_enabled(true);
        drain_spans();
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
        }
        crate::set_enabled(false);
        let spans = drain_spans();
        let ours: Vec<_> = spans.iter().filter(|s| s.cat == "test").collect();
        assert_eq!(ours.len(), 2);
        // Inner opened after outer but both end at scope exit; ordering is
        // by start time.
        assert_eq!(ours[0].name, "outer");
        assert_eq!(ours[1].name, "inner");
        for s in ours {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn spans_from_worker_threads_are_drained() {
        let _g = guard();
        crate::set_enabled(true);
        drain_spans();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("test_mt", "worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::set_enabled(false);
        let spans = drain_spans();
        let ours: Vec<_> = spans.iter().filter(|s| s.cat == "test_mt").collect();
        assert_eq!(ours.len(), 4, "spans of finished threads must survive until drain");
        let threads: std::collections::HashSet<u64> = ours.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4, "each thread gets its own lane id");
    }

    #[test]
    fn span_stream_receives_pumped_batches() {
        let _g = guard();
        crate::set_enabled(true);
        drain_spans();
        let got = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let prev = set_span_stream(Some(Box::new(move |batch: &[SpanRecord]| {
            sink.lock().unwrap().extend(batch.iter().copied());
        })));
        {
            let _s = span("test_stream", "a");
        }
        let n1 = pump_spans();
        assert!(n1 >= 1, "first pump must forward the recorded span");
        {
            let _s = span("test_stream", "b");
        }
        let n2 = pump_spans();
        assert!(n2 >= 1);
        set_span_stream(prev);
        crate::set_enabled(false);
        let names: Vec<&str> = got
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.cat == "test_stream")
            .map(|s| s.name)
            .collect();
        assert_eq!(names, vec!["a", "b"], "batches arrive incrementally, in order");
        // Pumped spans are gone from the rings: nothing left to drain.
        assert!(drain_spans().iter().all(|s| s.cat != "test_stream"));
    }

    #[test]
    fn pump_without_sink_leaves_rings_untouched() {
        let _g = guard();
        crate::set_enabled(true);
        drain_spans();
        {
            let _s = span("test_nosink", "kept");
        }
        assert_eq!(pump_spans(), 0, "no sink installed: nothing forwarded");
        crate::set_enabled(false);
        let spans = drain_spans();
        assert!(
            spans.iter().any(|s| s.cat == "test_nosink"),
            "span must still be in the ring after a sink-less pump"
        );
    }

    #[test]
    fn ring_overflow_keeps_newest_and_counts_drops() {
        let _g = guard();
        crate::set_enabled(true);
        drain_spans();
        dropped_spans();
        for _ in 0..RING_CAPACITY + 10 {
            let _s = span("test_of", "x");
        }
        crate::set_enabled(false);
        let spans: Vec<_> =
            drain_spans().into_iter().filter(|s| s.cat == "test_of").collect();
        assert_eq!(spans.len(), RING_CAPACITY);
        assert_eq!(dropped_spans(), 10);
        // Oldest-first even across the wrap point.
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }
}
