//! Loopback throughput of a shard fleet (numbers land in BENCH_fleet.json):
//! cold-miss queries routed over 1-shard and 4-shard fleets, and warm
//! batches spread across shards.
//!
//! Cold cells cycle `(collective, ranks)` pairs that were never tuned, so
//! every query pays the full inline model sweep on whichever shard the ring
//! routes it to. Only the paper's collectives are used — other kinds carry
//! no experiment algorithms and would be rejected, not computed.

use std::cell::Cell;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pap_collectives::CollectiveKind;
use pap_fleet::{Fleet, FleetClient, FleetConfig};
use pap_service::{QueryRequest, ServeConfig};

const KINDS: [CollectiveKind; 3] =
    [CollectiveKind::Reduce, CollectiveKind::Allreduce, CollectiveKind::Alltoall];

fn start(shards: usize, tune: bool) -> (Fleet, FleetClient) {
    let base = ServeConfig {
        addr: "127.0.0.1:0".into(),
        tune_at_startup: tune,
        l1_capacity: 0,
        refine_threads: 0, // keep the workload deterministic
        ..ServeConfig::default()
    };
    let fleet = Fleet::start(FleetConfig { shards, base }).expect("fleet start");
    let client = FleetClient::new(fleet.addrs().to_vec());
    (fleet, client)
}

fn cold_query(i: usize) -> QueryRequest {
    QueryRequest {
        machine: "simcluster".into(),
        collective: KINDS[(i / 512) % KINDS.len()],
        bytes: 4096,
        ranks: 2 + (i % 512),
        arrivals: None,
    }
}

/// Cold misses one round trip at a time — every query pays its own wire
/// overhead on top of the inline sweep.
fn bench_cold(c: &mut Criterion, name: &str, shards: usize) {
    let (fleet, mut client) = start(shards, false);
    let next = Cell::new(0usize);
    let mut g = c.benchmark_group("fleet/loopback");
    g.throughput(Throughput::Elements(1));
    g.bench_function(name, |b| {
        b.iter(|| {
            let i = next.get();
            next.set(i + 1);
            client.query(cold_query(i)).expect("cold query")
        });
    });
    g.finish();
    drop(client);
    fleet.join_all();
}

/// Cold misses in routed batches — the client groups by owning shard and
/// pipelines each shard's sub-batch, so the wire cost amortizes and every
/// shard's inline sweeps stream back to back. This is how a tracing MPI
/// library would actually warm a fleet.
fn bench_cold_batch(c: &mut Criterion, name: &str, shards: usize) {
    const BATCH: usize = 32;
    let (fleet, mut client) = start(shards, false);
    let next = Cell::new(0usize);
    let mut g = c.benchmark_group("fleet/loopback");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function(name, |b| {
        b.iter(|| {
            let base = next.get();
            next.set(base + BATCH);
            let qs: Vec<QueryRequest> = (base..base + BATCH).map(cold_query).collect();
            let replies = client.query_batch(qs).expect("cold batch");
            for r in &replies {
                r.as_ref().expect("cold query");
            }
            replies
        });
    });
    g.finish();
    drop(client);
    fleet.join_all();
}

fn bench_cold_1shard(c: &mut Criterion) {
    bench_cold(c, "cold_miss_1shard", 1);
}

fn bench_cold_4shard(c: &mut Criterion) {
    bench_cold(c, "cold_miss_4shard", 4);
}

fn bench_cold_batch_4shard(c: &mut Criterion) {
    bench_cold_batch(c, "cold_batch_4shard", 4);
}

/// Warm batches over a replicated 4-shard fleet: every shard serves the
/// same L2 evidence, the ring spreads the batch by key.
fn bench_warm_batch_4shard(c: &mut Criterion) {
    const BATCH: u64 = 64;
    let (fleet, mut client) = start(4, true);
    let qs: Vec<QueryRequest> = (0..BATCH)
        .map(|i| QueryRequest {
            machine: "simcluster".into(),
            collective: KINDS[i as usize % KINDS.len()],
            bytes: 1024,
            ranks: 16,
            arrivals: None,
        })
        .collect();
    let mut g = c.benchmark_group("fleet/loopback");
    g.throughput(Throughput::Elements(BATCH));
    g.bench_function("warm_batch_4shard", |b| {
        b.iter(|| client.query_batch(qs.clone()).expect("batch"));
    });
    g.finish();
    drop(client);
    fleet.join_all();
}

criterion_group!(
    benches,
    bench_cold_1shard,
    bench_cold_4shard,
    bench_cold_batch_4shard,
    bench_warm_batch_4shard
);
criterion_main!(benches);
