//! Warm replication: drain a peer's L2 evidence over the wire.
//!
//! A booting shard connects to a donor, pages through its L2 store with
//! [`Request::Replicate`](pap_service::Request::Replicate) frames, and
//! ingests each validated page. The donor serves pages from the same
//! stable export order (`TierStore::export_cells`), so a full drain over
//! an unchanging store sees every cell exactly once. The shard then
//! starts *hot*: its first query answers from L2 with no startup tuning
//! sweep — the same effect as loading a warm-restart snapshot, minus the
//! file.

use std::net::SocketAddr;

use pap_service::{Client, TierStore, REPLICA_PAGE_MAX};

/// Drain the donor's full L2 into `store`, page by page. Returns the
/// number of cells ingested. Fault evidence rides along with each cell, so
/// a fault-robust replica serves degraded-mode queries without
/// re-measuring either.
pub fn replicate_from(donor: SocketAddr, store: &TierStore) -> Result<usize, String> {
    let mut client = Client::connect(donor).map_err(|e| format!("replicate from {donor}: {e}"))?;
    let mut offset = 0;
    let mut ingested = 0;
    loop {
        let dump = client
            .replicate(offset, REPLICA_PAGE_MAX)
            .map_err(|e| format!("replicate from {donor} at offset {offset}: {e}"))?;
        if dump.cells.is_empty() {
            break;
        }
        ingested += store.ingest_replica(&dump.cells)?;
        offset += dump.cells.len();
        if offset >= dump.total {
            break;
        }
    }
    Ok(ingested)
}
