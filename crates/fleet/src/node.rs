//! The event-driven serving frontend: one thread, one epoll instance, any
//! number of concurrent connections.
//!
//! `papd`'s original frontend parks one pool thread per connection — fine
//! for tens of clients, hopeless for a fleet shard holding open sockets
//! from every rank of every job on the machine. This node replaces the
//! thread-per-connection model with a single readiness loop: a
//! nonblocking listener and per-connection read/write buffers multiplexed
//! over [`pap_sysio::Epoll`] (level-triggered). Protocol semantics are
//! untouched — complete frames are handed to the same
//! [`pap_service::Dispatcher`] the threaded server uses, so both frontends
//! answer byte-identically.
//!
//! Concurrency model: frame *dispatch* runs on the event-loop thread, so a
//! shard serves one request at a time, ordered across all connections.
//! Selection answers are microseconds (L1/L2) to a few milliseconds
//! (cold model sweep) — event-loop-friendly work. Background sim
//! refinements still run on their own bounded pool.
//!
//! Idle connections cost one slab slot and one kernel registration —
//! there is no per-connection thread, stack, or timeout timer. The
//! accept path raises `RLIMIT_NOFILE` (best effort) so "tens of
//! thousands of clients" does not die on the default 1024 soft limit.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pap_parallel::Pool;
use pap_service::proto::{encode_frame, Reply, MAX_FRAME_BYTES};
use pap_service::stats::Stats;
use pap_service::store::TierStore;
use pap_service::{build_store, Dispatcher, ServeConfig};
use pap_sysio::{Epoll, Event, Interest};

/// Poll interval of the event loop's `epoll_wait`: the latency bound on
/// noticing an out-of-band shutdown request.
const POLL: Duration = Duration::from_millis(100);

/// Read chunk size per readable connection.
const CHUNK: usize = 16 * 1024;

/// `RLIMIT_NOFILE` the node asks for at start (best effort).
const WANT_NOFILE: u64 = 32 * 1024;

/// Token of the listener in the epoll set; connections get `slot + 1`.
const LISTENER_TOKEN: u64 = 0;

/// One connection's state in the slab.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed.
    rbuf: Vec<u8>,
    /// Encoded replies not yet (fully) written.
    wbuf: Vec<u8>,
    /// How much of `wbuf` is already written.
    wpos: usize,
    /// Close once `wbuf` is flushed (Bye sent, oversized frame, or peer
    /// EOF).
    close_after_flush: bool,
    /// Peer sent EOF: stop reading, flush what we owe, then close.
    read_closed: bool,
    /// The interest currently registered with epoll.
    interest: Interest,
}

impl Conn {
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// A running event-driven daemon. Protocol-compatible with
/// [`pap_service::Server`]; serves from the same store/dispatcher stack.
pub struct FleetNode {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
    refine_pool: Option<Arc<Pool>>,
    dispatcher: Arc<Dispatcher>,
    stats: Arc<Stats>,
    store: Arc<TierStore>,
}

impl FleetNode {
    /// Bind, seed the store per the config (snapshot or startup tuning),
    /// and start the event loop.
    pub fn start(cfg: ServeConfig) -> Result<FleetNode, String> {
        let (stats, store) = build_store(&cfg)?;
        FleetNode::serve(&cfg, stats, store)
    }

    /// Start the event loop over an externally seeded store — the warm
    /// replication path: the fleet spawner builds the store, drains a
    /// peer's L2 into it, and only then exposes the shard.
    pub fn serve(
        cfg: &ServeConfig,
        stats: Arc<Stats>,
        store: Arc<TierStore>,
    ) -> Result<FleetNode, String> {
        // Best effort: a fleet shard holds one fd per client.
        let _ = pap_sysio::raise_nofile_limit(WANT_NOFILE);

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking listener: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let refine_pool = (cfg.refine_threads > 0)
            .then(|| Arc::new(Pool::new(cfg.refine_threads, 4 * cfg.refine_threads)));
        let dispatcher = Arc::new(Dispatcher::new(
            Arc::clone(&shutdown),
            Arc::clone(&stats),
            Arc::clone(&store),
            refine_pool.clone(),
        ));

        let thread = {
            let dispatcher = Arc::clone(&dispatcher);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                if let Err(e) = event_loop(listener, &dispatcher, &stats) {
                    // The loop only errors on a broken epoll fd; make the
                    // node drain rather than serve nothing silently.
                    eprintln!("fleet node event loop failed: {e}");
                }
            })
        };

        Ok(FleetNode { addr, shutdown, thread, refine_pool, dispatcher, stats, store })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's stats block.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The node's tier store.
    pub fn store(&self) -> &Arc<TierStore> {
        &self.store
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request a graceful drain (equivalent to a `Shutdown` frame).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until shutdown is requested, then drain: buffered frames are
    /// served, pending replies flushed, and queued refinements dropped.
    pub fn join(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        let _ = self.thread.join();
        // Mirror Server::join: once the loop exited, ours is the only
        // dispatcher (and hence refine-pool) holder.
        drop(self.dispatcher);
        if let Some(pool) = self.refine_pool {
            if let Ok(pool) = Arc::try_unwrap(pool) {
                let dropped = pool.abort();
                for _ in 0..dropped {
                    self.stats.refine_dropped();
                }
            }
        }
    }
}

/// The readiness loop: accept, read, frame, dispatch, write — all on one
/// thread, no blocking call other than `epoll_wait` itself.
fn event_loop(
    listener: TcpListener,
    dispatcher: &Dispatcher,
    stats: &Stats,
) -> std::io::Result<()> {
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    loop {
        epoll.wait(&mut events, 64, Some(POLL))?;
        for ev in events.drain(..) {
            if ev.token == LISTENER_TOKEN {
                accept_ready(&listener, &epoll, &mut conns, &mut free, stats);
                continue;
            }
            let slot = (ev.token - 1) as usize;
            let Some(conn) = conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                continue; // stale event for a slot torn down this batch
            };
            let mut dead = ev.closed && !ev.readable;
            if !dead && ev.readable && !conn.read_closed {
                dead = read_ready(conn, dispatcher);
            }
            if !dead && (ev.writable || conn.wants_write()) {
                dead = flush(conn);
            }
            if dead || (conn.close_after_flush && !conn.wants_write()) {
                teardown(&epoll, &mut conns, &mut free, slot);
            } else {
                rearm(&epoll, conn, ev.token);
            }
        }
        if dispatcher.shutdown_requested() {
            drain_on_shutdown(&mut conns, dispatcher);
            return Ok(());
        }
    }
}

/// Accept every pending connection (level-triggered: stop on WouldBlock).
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    stats: &Stats,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let slot = free.pop().unwrap_or_else(|| {
            conns.push(None);
            conns.len() - 1
        });
        let token = slot as u64 + 1;
        if epoll.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
            free.push(slot);
            continue; // fd table exhausted or similar; drop the connection
        }
        stats.connection();
        conns[slot] = Some(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            close_after_flush: false,
            read_closed: false,
            interest: Interest::READ,
        });
    }
}

/// Drain the socket, dispatch every complete frame, queue the replies.
/// Returns true when the connection is dead (hard error).
fn read_ready(conn: &mut Conn, dispatcher: &Dispatcher) -> bool {
    let mut chunk = [0u8; CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer EOF: no more requests. Flush what we owe, then close.
                conn.read_closed = true;
                conn.close_after_flush = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                // Dispatch as we go so rbuf cannot grow unboundedly on a
                // pipelining client.
                if serve_buffered(conn, dispatcher) {
                    break; // close pending; stop reading
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    serve_buffered(conn, dispatcher);
    false
}

/// Serve every complete frame in `rbuf`; returns true once the connection
/// is marked for close (Bye or oversized frame).
fn serve_buffered(conn: &mut Conn, dispatcher: &Dispatcher) -> bool {
    if conn.close_after_flush {
        // Already closing: frames after a Bye (or after an unfindable
        // frame boundary) are undeliverable.
        return true;
    }
    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        let reply = dispatcher.serve_frame(&line[..line.len() - 1]);
        let bye = matches!(reply.reply, Reply::Bye);
        conn.wbuf.extend_from_slice(encode_frame(&reply).as_bytes());
        if bye {
            conn.close_after_flush = true;
            return true;
        }
    }
    if conn.rbuf.len() > MAX_FRAME_BYTES {
        // No newline within the frame budget: there is no way to find the
        // next frame boundary. Reply, then close.
        conn.wbuf.extend_from_slice(encode_frame(&dispatcher.oversized_frame_reply()).as_bytes());
        conn.close_after_flush = true;
        return true;
    }
    false
}

/// Write as much of `wbuf` as the socket accepts. Returns true when the
/// connection is dead.
fn flush(conn: &mut Conn) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return true,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    false
}

/// Re-register the interest set to match the connection's pending work:
/// write interest only while a reply is partially flushed.
fn rearm(epoll: &Epoll, conn: &mut Conn, token: u64) {
    let want = if conn.wants_write() { Interest::READ_WRITE } else { Interest::READ };
    if want != conn.interest && epoll.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
        conn.interest = want;
    }
}

fn teardown(epoll: &Epoll, conns: &mut [Option<Conn>], free: &mut Vec<usize>, slot: usize) {
    if let Some(conn) = conns[slot].take() {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        // Dropping the stream closes the fd.
    }
    free.push(slot);
}

/// The drain path: shutdown was requested, so serve every frame already
/// buffered and flush every pending reply with (briefly) blocking writes —
/// in-flight pipelined requests complete, new bytes are not read.
fn drain_on_shutdown(conns: &mut [Option<Conn>], dispatcher: &Dispatcher) {
    for conn in conns.iter_mut().filter_map(|c| c.as_mut()) {
        serve_buffered(conn, dispatcher);
        let _ = conn.stream.set_nonblocking(false);
        let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(2)));
        if conn.wpos < conn.wbuf.len() {
            let _ = conn.stream.write_all(&conn.wbuf[conn.wpos..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_service::{Client, QueryRequest, Tier};

    fn cold_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            tune_at_startup: false,
            refine_threads: 0,
            ..ServeConfig::default()
        }
    }

    fn query(bytes: u64) -> QueryRequest {
        QueryRequest {
            machine: "simcluster".into(),
            collective: pap_collectives::CollectiveKind::Reduce,
            bytes,
            ranks: 8,
            arrivals: None,
        }
    }

    #[test]
    fn node_speaks_the_papd_protocol() {
        let node = FleetNode::start(cold_config()).expect("node start");
        let mut client = Client::connect(node.local_addr()).expect("connect");
        client.ping().expect("ping");
        let a = client.query(query(1024)).expect("query");
        assert_eq!(a.tier, Tier::Computed);
        let b = client.query(query(1024)).expect("query again");
        assert_eq!(b.tier, Tier::L1);
        let stats = client.stats().expect("stats");
        assert_eq!(stats.endpoints.query, 2);
        assert_eq!(stats.connections, 1);
        // In-band shutdown drains the node.
        client.shutdown().expect("bye");
        node.join();
    }

    #[test]
    fn node_survives_malformed_and_oversized_frames() {
        let node = FleetNode::start(cold_config()).expect("node start");
        let mut bad = Client::connect(node.local_addr()).expect("connect");
        bad.send_raw("not json\n").expect("send");
        let env = bad.recv().expect("error reply");
        assert!(matches!(env.reply, Reply::Error(_)));
        // Oversized frame: error reply, then the connection closes.
        let mut oversize = Client::connect(node.local_addr()).expect("connect");
        let big = "b".repeat(MAX_FRAME_BYTES + 1024);
        let _ = oversize.send_raw(&big);
        match oversize.recv() {
            Ok(env) => assert!(matches!(env.reply, Reply::Error(_))),
            Err(e) => assert!(e.contains("closed") || e.contains("recv"), "{e}"),
        }
        // The node is unharmed.
        let mut fresh = Client::connect(node.local_addr()).expect("reconnect");
        fresh.ping().expect("ping");
        node.stop();
        node.join();
    }

    #[test]
    fn pipelined_batch_over_the_event_loop() {
        let node = FleetNode::start(cold_config()).expect("node start");
        let mut client = Client::connect(node.local_addr()).expect("connect");
        let sizes: Vec<u64> = (0..64).map(|i| 8 << (i % 4)).collect();
        let results = client
            .query_batch(sizes.iter().map(|&b| query(b)).collect())
            .expect("batch");
        assert_eq!(results.len(), sizes.len());
        for (r, &b) in results.iter().zip(&sizes) {
            assert_eq!(r.as_ref().expect("valid query").bytes, b);
        }
        node.stop();
        node.join();
    }
}
