//! Fleet-wide stats: aggregate per-shard [`StatsReport`]s into one view.
//!
//! The `StatsReport` wire shape is pinned, so aggregation lives here (in
//! plain code over the existing fields) rather than as new protocol
//! surface. Counters sum; latency histograms merge bucket-wise by bound;
//! uptime reports the oldest shard. `snapshot_loaded` is an *all* (the
//! fleet is warm only if every shard is), `tuned_at_startup` an *any*
//! (somebody paid for the sweep).

use std::collections::BTreeMap;

use pap_service::proto::{LatencyBucket, StatsReport};

/// Merge per-shard reports into one fleet-wide report. An empty slice
/// yields an all-zero report.
pub fn aggregate_stats(reports: &[StatsReport]) -> StatsReport {
    let mut out = StatsReport {
        endpoints: Default::default(),
        tiers: Default::default(),
        connections: 0,
        frames: 0,
        l2_cells: 0,
        l1_entries: 0,
        snapshot_loaded: !reports.is_empty(),
        tuned_at_startup: false,
        uptime_s: 0.0,
        latency: Vec::new(),
    };
    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
    for r in reports {
        out.endpoints.query += r.endpoints.query;
        out.endpoints.stats += r.endpoints.stats;
        out.endpoints.ping += r.endpoints.ping;
        out.endpoints.shutdown += r.endpoints.shutdown;
        out.endpoints.calibrate += r.endpoints.calibrate;
        out.endpoints.error += r.endpoints.error;
        out.tiers.l1_hits += r.tiers.l1_hits;
        out.tiers.l2_exact += r.tiers.l2_exact;
        out.tiers.l2_near += r.tiers.l2_near;
        out.tiers.miss += r.tiers.miss;
        out.tiers.refines_scheduled += r.tiers.refines_scheduled;
        out.tiers.refines_applied += r.tiers.refines_applied;
        out.tiers.refines_dropped += r.tiers.refines_dropped;
        out.connections += r.connections;
        out.frames += r.frames;
        out.l2_cells += r.l2_cells;
        out.l1_entries += r.l1_entries;
        out.snapshot_loaded &= r.snapshot_loaded;
        out.tuned_at_startup |= r.tuned_at_startup;
        out.uptime_s = out.uptime_s.max(r.uptime_s);
        for b in &r.latency {
            *buckets.entry(b.le_us).or_insert(0) += b.count;
        }
    }
    out.latency = buckets.into_iter().map(|(le_us, count)| LatencyBucket { le_us, count }).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_service::proto::{EndpointCounters, TierCounters};

    fn report(query: u64, l2: u64, uptime: f64, warm: bool) -> StatsReport {
        StatsReport {
            endpoints: EndpointCounters { query, ..Default::default() },
            tiers: TierCounters { l2_exact: l2, ..Default::default() },
            connections: 1,
            frames: query,
            l2_cells: 3,
            l1_entries: 2,
            snapshot_loaded: warm,
            tuned_at_startup: !warm,
            uptime_s: uptime,
            latency: vec![
                LatencyBucket { le_us: 100, count: query },
                LatencyBucket { le_us: u64::MAX, count: 0 },
            ],
        }
    }

    #[test]
    fn counters_sum_and_histograms_merge_bucket_wise() {
        let agg = aggregate_stats(&[report(10, 4, 1.0, true), report(5, 2, 7.5, true)]);
        assert_eq!(agg.endpoints.query, 15);
        assert_eq!(agg.tiers.l2_exact, 6);
        assert_eq!(agg.connections, 2);
        assert_eq!(agg.l2_cells, 6);
        assert_eq!(agg.uptime_s, 7.5);
        assert!(agg.snapshot_loaded);
        assert_eq!(agg.latency, vec![
            LatencyBucket { le_us: 100, count: 15 },
            LatencyBucket { le_us: u64::MAX, count: 0 },
        ]);
        // The merged report renders through the pinned table unchanged.
        assert!(agg.render_table().contains("<=100us: 15"));
    }

    #[test]
    fn warmness_is_an_all_tuning_an_any() {
        let agg = aggregate_stats(&[report(1, 1, 1.0, true), report(1, 1, 1.0, false)]);
        assert!(!agg.snapshot_loaded, "one cold shard makes the fleet cold");
        assert!(agg.tuned_at_startup);
        assert!(!aggregate_stats(&[]).snapshot_loaded);
    }
}
