//! The fleet-aware client: consistent-hash routing, bounded retry, and
//! automatic failover.
//!
//! Every query routes by its `(machine, collective, ranks)` key over the
//! [`Ring`], so all byte sizes of one tuning cell land on one shard and
//! its L1/L2 caches stay hot. Transport failures (connect refused, reset,
//! EOF) retry the same shard with linear backoff, then mark it dead and
//! re-route clockwise — a killed shard costs its keys one failover, and
//! zero queries fail as long as any shard is alive. Server-side
//! rejections ([`Reply::Error`]) are *not* failed over: every shard would
//! reject the same malformed query the same way, so they surface to the
//! caller as typed per-query errors.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

use pap_service::proto::{
    CalibrateAnswer, CalibrateRequest, ErrorReply, QueryAnswer, QueryRequest, Reply, Request,
    StatsReport,
};
use pap_service::Client;

use crate::ring::Ring;
use crate::stats::aggregate_stats;

/// Attempts per shard before it is declared dead (first try + retries).
const ATTEMPTS_PER_SHARD: usize = 3;

/// Base backoff between retries on one shard (linear: `base * attempt`).
const BACKOFF: Duration = Duration::from_millis(20);

/// A client over every shard of a fleet. Connections are lazy (dialed on
/// first use per shard) and re-dialed after transport errors.
pub struct FleetClient {
    addrs: Vec<SocketAddr>,
    ring: Ring,
    conns: Vec<Option<Client>>,
    alive: Vec<bool>,
    registry: pap_obs::Registry,
}

impl FleetClient {
    /// Build a client over the fleet's shard addresses (index = shard ID;
    /// the order must match the fleet's own numbering, which is what ties
    /// this ring to the server side's placement).
    pub fn new(addrs: Vec<SocketAddr>) -> FleetClient {
        let n = addrs.len();
        FleetClient {
            ring: Ring::new(n),
            conns: (0..n).map(|_| None).collect(),
            alive: vec![true; n],
            addrs,
            registry: pap_obs::Registry::new(),
        }
    }

    /// Number of shards (dead or alive).
    pub fn shards(&self) -> usize {
        self.addrs.len()
    }

    /// Liveness flags, by shard (false once a shard exhausted its retries).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// The client's own observability counters (`fleet_client_*`: routes,
    /// retries, failovers, dead shards).
    pub fn metrics(&self) -> pap_obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The shard a query routes to right now (given the live set).
    pub fn route(&self, q: &QueryRequest) -> Option<usize> {
        self.ring.route_filtered(&q.machine, &q.collective.to_string(), q.ranks, &self.alive)
    }

    fn conn(&mut self, shard: usize) -> Result<&mut Client, String> {
        if self.conns[shard].is_none() {
            self.conns[shard] = Some(Client::connect(self.addrs[shard])?);
        }
        Ok(self.conns[shard].as_mut().expect("just connected"))
    }

    /// One round trip on one shard. `Err` means transport failure (the
    /// connection is dropped for re-dial); protocol-level errors come back
    /// as `Ok(Reply::Error)`.
    fn call_on(&mut self, shard: usize, req: Request) -> Result<Reply, String> {
        let result = self.conn(shard).and_then(|c| c.call(req));
        if result.is_err() {
            self.conns[shard] = None;
        }
        result
    }

    /// Route and serve one query with retry and failover. The outer
    /// `Result` is transport-level ("no shard could serve this"); the
    /// inner carries the server's typed rejection, if any.
    pub fn query_slot(&mut self, q: QueryRequest) -> Result<Result<QueryAnswer, ErrorReply>, String> {
        self.registry.counter("fleet_client_routes").add(1);
        let order = self.ring.failover_order(&q.machine, &q.collective.to_string(), q.ranks);
        let mut last_err = "fleet has no shards".to_string();
        let mut owner = true;
        for shard in order {
            if !self.alive[shard] {
                continue;
            }
            if !owner {
                self.registry.counter("fleet_client_failovers").add(1);
            }
            owner = false;
            for attempt in 0..ATTEMPTS_PER_SHARD {
                if attempt > 0 {
                    self.registry.counter("fleet_client_retries").add(1);
                    std::thread::sleep(BACKOFF * attempt as u32);
                }
                match self.call_on(shard, Request::Query(q.clone())) {
                    Ok(Reply::Answer(a)) => return Ok(Ok(a)),
                    Ok(Reply::Error(e)) => return Ok(Err(e)),
                    Ok(other) => return Err(format!("unexpected reply {other:?}")),
                    Err(e) => last_err = e,
                }
            }
            // Retries exhausted: the shard is dead; keys re-route clockwise.
            self.alive[shard] = false;
            self.registry.counter("fleet_client_dead_shards").add(1);
        }
        Err(format!("no live shard could serve the query: {last_err}"))
    }

    /// Like [`FleetClient::query_slot`] but flattening the server's typed
    /// rejection into the error string.
    pub fn query(&mut self, q: QueryRequest) -> Result<QueryAnswer, String> {
        match self.query_slot(q)? {
            Ok(a) => Ok(a),
            Err(e) => Err(format!("{:?}: {}", e.code, e.message)),
        }
    }

    /// Batch: queries are grouped by owning shard and pipelined per shard;
    /// results come back in input order, one slot per query. A shard that
    /// fails mid-batch gets its queries replayed through the retry/failover
    /// path, so a shard kill still yields zero transport-failed slots.
    pub fn query_batch(
        &mut self,
        queries: Vec<QueryRequest>,
    ) -> Result<Vec<Result<QueryAnswer, ErrorReply>>, String> {
        let mut slots: Vec<Option<Result<QueryAnswer, ErrorReply>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            let shard = self
                .route(q)
                .ok_or_else(|| "fleet has no live shards".to_string())?;
            groups.entry(shard).or_default().push(i);
        }
        self.registry.counter("fleet_client_routes").add(queries.len() as u64);
        for (shard, idxs) in groups {
            let qs: Vec<QueryRequest> = idxs.iter().map(|&i| queries[i].clone()).collect();
            match self.conn(shard).and_then(|c| c.query_batch(qs)) {
                Ok(results) => {
                    for (&i, r) in idxs.iter().zip(results) {
                        slots[i] = Some(r);
                    }
                }
                Err(_) => {
                    // Transport failure mid-batch: drop the connection and
                    // replay this group's queries one by one (retry, then
                    // failover).
                    self.conns[shard] = None;
                    for &i in &idxs {
                        slots[i] = Some(self.query_slot(queries[i].clone())?);
                    }
                }
            }
        }
        Ok(slots.into_iter().map(|s| s.expect("every query was routed")).collect())
    }

    /// Broadcast a calibration to every live shard, so whichever shard a
    /// later query routes to (including after failovers) knows the fitted
    /// machine and serves its L2 grid hot. Returns `(shard, answer)` pairs
    /// for the shards that accepted; a shard-level rejection fails the
    /// call (every shard runs the same guideline gate, so one rejection
    /// means all would reject).
    pub fn calibrate_all(
        &mut self,
        name: &str,
        ranks: usize,
        probe: pap_calibrate::Probe,
    ) -> Result<Vec<(usize, CalibrateAnswer)>, String> {
        let mut out = Vec::new();
        for shard in 0..self.addrs.len() {
            if !self.alive[shard] {
                continue;
            }
            let req = CalibrateRequest {
                name: name.to_string(),
                ranks,
                probe: probe.clone(),
            };
            match self.call_on(shard, Request::Calibrate(req)) {
                Ok(Reply::Calibrated(a)) => out.push((shard, a)),
                Ok(Reply::Error(e)) => {
                    return Err(format!("shard {shard} rejected calibration: {}", e.message))
                }
                Ok(other) => return Err(format!("unexpected reply {other:?}")),
                Err(_) => {} // dead shards simply drop out, as in stats
            }
        }
        if out.is_empty() {
            return Err("no live shard accepted the calibration".to_string());
        }
        Ok(out)
    }

    /// Per-shard stats from every live shard, as `(shard, report)` pairs.
    pub fn stats_per_shard(&mut self) -> Result<Vec<(usize, StatsReport)>, String> {
        let mut out = Vec::new();
        for shard in 0..self.addrs.len() {
            if !self.alive[shard] {
                continue;
            }
            match self.call_on(shard, Request::Stats) {
                Ok(Reply::Stats(r)) => out.push((shard, r)),
                Ok(other) => return Err(format!("unexpected reply {other:?}")),
                Err(_) => {} // dead shards simply drop out of the view
            }
        }
        Ok(out)
    }

    /// Fleet-wide aggregated stats (see [`aggregate_stats`]).
    pub fn stats(&mut self) -> Result<StatsReport, String> {
        let per = self.stats_per_shard()?;
        let reports: Vec<StatsReport> = per.into_iter().map(|(_, r)| r).collect();
        Ok(aggregate_stats(&reports))
    }

    /// Ask every reachable shard to shut down gracefully.
    pub fn shutdown_all(&mut self) {
        for shard in 0..self.addrs.len() {
            let _ = self.call_on(shard, Request::Shutdown);
        }
    }
}
