//! `pap-fleet`: the sharded, replicated, event-driven serving tier over
//! `pap-service`.
//!
//! One `papd` answers selection queries for one machine. A *fleet* scales
//! that out: N shards, each an event-driven [`node::FleetNode`] speaking
//! the unchanged wire protocol, with queries routed by consistent hashing
//! over `(machine, collective, ranks)` so every tuning cell's cache lives
//! on exactly one shard. Booting shards warm-replicate the donor shard's
//! L2 evidence over the wire and answer their first query from L2;
//! clients retry transport failures with bounded backoff and fail over
//! clockwise on the ring when a shard dies.
//!
//! * [`ring`] — the consistent-hash ring (FNV-1a, 64 vnodes/shard).
//! * [`node`] — the epoll readiness loop replacing thread-per-connection.
//! * [`replication`] — paged L2 drain over `Replicate` frames.
//! * [`fleet`] — spawn/kill/join of a shard set.
//! * [`client`] — routing, retry, failover, batches, aggregated stats.
//! * [`stats`] — fleet-wide [`pap_service::StatsReport`] aggregation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod node;
pub mod replication;
pub mod ring;
pub mod stats;

pub use client::FleetClient;
pub use fleet::{Fleet, FleetConfig};
pub use node::FleetNode;
pub use replication::replicate_from;
pub use ring::Ring;
pub use stats::aggregate_stats;
