//! Consistent-hash routing over the shard set.
//!
//! Keys are (machine, collective, ranks) — the same triple that names an L2
//! tuning cell, so all byte sizes and arrival shapes of one cell land on one
//! shard and its caches stay hot. Each shard contributes `VNODES` virtual
//! points hashed onto a `u64` ring; a key routes to the first point
//! clockwise. Removing a shard only removes its points: keys on other
//! shards' arcs keep their owner, which is the stability property the
//! proptests pin.

/// Virtual points per shard: enough to keep the per-shard load spread
/// within a few percent at single-digit shard counts, cheap to rebuild.
const VNODES: usize = 64;

/// FNV-1a, the stable non-cryptographic hash used for ring placement (the
/// std hasher is allowed to change between releases; routing must not).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over shard indices `0..n`.
#[derive(Debug, Clone)]
pub struct Ring {
    /// (point, shard) sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build a ring over `shards` shard slots.
    pub fn new(shards: usize) -> Ring {
        let mut points = Vec::with_capacity(shards * VNODES);
        for s in 0..shards {
            for v in 0..VNODES {
                let label = format!("shard-{s}-vnode-{v}");
                points.push((fnv1a(label.as_bytes()), s));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shard slots the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Hash of a routing key. Exposed so tests can reason about placement.
    pub fn key_hash(machine: &str, collective: &str, ranks: usize) -> u64 {
        let mut buf = Vec::with_capacity(machine.len() + collective.len() + 24);
        buf.extend_from_slice(machine.as_bytes());
        buf.push(0);
        buf.extend_from_slice(collective.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&(ranks as u64).to_le_bytes());
        fnv1a(&buf)
    }

    /// The shard owning a key, given the set of live shards (`alive[s]`).
    /// Dead shards' points are skipped, which is exactly the "only moved
    /// keys re-map" behavior: keys owned by live shards never move when
    /// another shard dies. Returns `None` when no shard is alive.
    pub fn route_filtered(&self, machine: &str, collective: &str, ranks: usize, alive: &[bool]) -> Option<usize> {
        self.walk(Self::key_hash(machine, collective, ranks), alive).next()
    }

    /// The shard owning a key with all shards alive.
    pub fn route(&self, machine: &str, collective: &str, ranks: usize) -> Option<usize> {
        self.route_filtered(machine, collective, ranks, &vec![true; self.shards])
    }

    /// All distinct shards in failover order for a key: the owner first,
    /// then each next distinct shard clockwise. A client retries down this
    /// list, so a key's fallback set is deterministic too.
    pub fn failover_order(&self, machine: &str, collective: &str, ranks: usize) -> Vec<usize> {
        self.walk(Self::key_hash(machine, collective, ranks), &vec![true; self.shards]).collect()
    }

    /// Walk distinct live shards clockwise from `hash`.
    fn walk<'a>(&'a self, hash: u64, alive: &'a [bool]) -> impl Iterator<Item = usize> + 'a {
        let start = self.points.partition_point(|&(pt, _)| pt < hash);
        let n = self.points.len();
        let mut seen = vec![false; self.shards];
        (0..n).filter_map(move |i| {
            let (_, s) = self.points[(start + i) % n];
            if s < alive.len() && alive[s] && !seen[s] {
                seen[s] = true;
                Some(s)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = Ring::new(4);
        for ranks in [2usize, 16, 130, 1024] {
            let a = ring.route("simcluster", "reduce", ranks).unwrap();
            let b = ring.route("simcluster", "reduce", ranks).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn all_shards_receive_some_keys() {
        let ring = Ring::new(4);
        let mut hit = [false; 4];
        for ranks in 2..200 {
            hit[ring.route("simcluster", "allreduce", ranks).unwrap()] = true;
        }
        assert!(hit.iter().all(|&h| h), "load spread misses a shard: {hit:?}");
    }

    #[test]
    fn failover_order_lists_every_shard_once() {
        let ring = Ring::new(5);
        let order = ring.failover_order("hydra", "bcast", 64);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(order[0], ring.route("hydra", "bcast", 64).unwrap());
    }

    #[test]
    fn dead_shard_only_moves_its_own_keys() {
        let ring = Ring::new(4);
        let all = vec![true; 4];
        for dead in 0..4 {
            let mut alive = all.clone();
            alive[dead] = false;
            for ranks in 2..300 {
                let before = ring.route_filtered("simcluster", "reduce", ranks, &all).unwrap();
                let after = ring.route_filtered("simcluster", "reduce", ranks, &alive).unwrap();
                if before != dead {
                    assert_eq!(before, after, "key ranks={ranks} moved although its shard survived");
                } else {
                    assert_ne!(after, dead);
                }
            }
        }
    }

    #[test]
    fn empty_alive_set_routes_nowhere() {
        let ring = Ring::new(2);
        assert_eq!(ring.route_filtered("m", "c", 8, &[false, false]), None);
    }
}
