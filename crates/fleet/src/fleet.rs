//! Fleet assembly: spawn N event-driven shards, warm-replicating shard 0's
//! evidence into the rest.
//!
//! Shard 0 seeds per the base config (snapshot file or startup tuning
//! sweep). Every later shard builds a cold store, drains shard 0's L2
//! over the real wire ([`crate::replication::replicate_from`]), marks
//! itself warm, and only then starts serving — so its very first query
//! answers from L2 with no startup tuning of its own. All shards serve
//! the identical evidence; the [`crate::client::FleetClient`] ring only
//! decides which shard's caches a key keeps hot.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;

use pap_service::{build_store, ServeConfig};

use crate::node::FleetNode;
use crate::replication::replicate_from;

/// How to start a fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (at least 1).
    pub shards: usize,
    /// Per-shard serve config. `addr` is the *base* address: port 0 gives
    /// every shard its own ephemeral port; a fixed port `p` puts shard `i`
    /// on `p + i`.
    pub base: ServeConfig,
}

/// A running fleet of event-driven shards.
pub struct Fleet {
    addrs: Vec<SocketAddr>,
    nodes: Vec<Option<FleetNode>>,
}

impl Fleet {
    /// Seed shard 0, replicate into shards `1..n`, start them all.
    pub fn start(cfg: FleetConfig) -> Result<Fleet, String> {
        if cfg.shards == 0 {
            return Err("a fleet needs at least one shard".to_string());
        }
        let base_addr: SocketAddr = cfg
            .base
            .addr
            .parse()
            .map_err(|e| format!("bad fleet base address {}: {e}", cfg.base.addr))?;
        let shard_addr = |i: usize| {
            let mut a = base_addr;
            if a.port() != 0 {
                a.set_port(a.port() + i as u16);
            }
            a
        };

        let mut cfg0 = cfg.base.clone();
        cfg0.addr = shard_addr(0).to_string();
        let first = FleetNode::start(cfg0)?;
        let donor = first.local_addr();

        let mut addrs = vec![donor];
        let mut nodes = vec![Some(first)];
        for i in 1..cfg.shards {
            let mut ci = cfg.base.clone();
            ci.addr = shard_addr(i).to_string();
            // Replicas never tune or load files themselves; they pull the
            // donor's evidence over the wire.
            ci.snapshot = None;
            ci.tune_at_startup = false;
            let (stats, store) = build_store(&ci)?;
            let cells = replicate_from(donor, &store)
                .map_err(|e| format!("shard {i} warm replication: {e}"))?;
            if cells > 0 {
                // Same semantics as loading a warm-restart snapshot: the
                // shard starts hot and never tuned.
                stats.snapshot_loaded.store(true, Ordering::Relaxed);
            }
            let node = FleetNode::serve(&ci, stats, store)?;
            addrs.push(node.local_addr());
            nodes.push(Some(node));
        }
        Ok(Fleet { addrs, nodes })
    }

    /// Every shard's address, by shard ID (killed shards keep their slot —
    /// the ring's stability depends on stable numbering).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Number of shard slots (including killed ones).
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a live shard's node.
    pub fn node(&self, shard: usize) -> Option<&FleetNode> {
        self.nodes.get(shard).and_then(|n| n.as_ref())
    }

    /// Kill one shard (graceful drain, then join). Returns false when the
    /// shard was already gone. Keys it owned re-route clockwise on the
    /// clients' rings.
    pub fn kill_shard(&mut self, shard: usize) -> bool {
        match self.nodes.get_mut(shard).and_then(|n| n.take()) {
            Some(node) => {
                node.stop();
                node.join();
                true
            }
            None => false,
        }
    }

    /// Gracefully stop and join every remaining shard.
    pub fn join_all(mut self) {
        for node in self.nodes.iter_mut().filter_map(|n| n.take()) {
            node.stop();
            node.join();
        }
    }
}
