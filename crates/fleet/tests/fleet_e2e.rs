//! End-to-end fleet tests over real sockets: warm replication, shard-kill
//! recovery, aggregated stats, and event-loop connection scale.

use pap_collectives::CollectiveKind;
use pap_fleet::{Fleet, FleetClient, FleetConfig, FleetNode};
use pap_service::{Client, QueryRequest, ServeConfig, Tier};

fn base(tune: bool) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        tune_at_startup: tune,
        refine_threads: 0,
        ..ServeConfig::default()
    }
}

fn query(kind: CollectiveKind, ranks: usize, bytes: u64) -> QueryRequest {
    QueryRequest { machine: "simcluster".into(), collective: kind, bytes, ranks, arrivals: None }
}

/// A shard booted by warm replication is indistinguishable from one booted
/// from a snapshot file: it never tuned, reports itself warm, and answers
/// its very first query straight from L2.
#[test]
fn replicated_shard_answers_first_query_from_l2() {
    let fleet = Fleet::start(FleetConfig { shards: 2, base: base(true) }).expect("fleet start");
    let mut replica = Client::connect(fleet.addrs()[1]).expect("connect replica");

    let pre = replica.stats().expect("stats");
    assert!(pre.snapshot_loaded, "replication must mark the shard warm");
    assert!(!pre.tuned_at_startup, "the replica must not have tuned");
    assert!(pre.l2_cells > 0, "replication delivered no cells");
    assert_eq!(pre.endpoints.query, 0);

    // The donor tuned (machine simcluster, 16 ranks, default sizes), so
    // this cell exists verbatim on the replica.
    let a = replica.query(query(CollectiveKind::Reduce, 16, 1024)).expect("first query");
    assert_eq!(a.tier, Tier::L2, "first answer must come from replicated L2 evidence");
    assert!(a.exact);

    let post = replica.stats().expect("stats");
    assert_eq!(post.tiers.l2_exact, 1);
    assert_eq!(post.tiers.miss, 0, "a warm shard computes nothing");

    // Replica and donor agree cell for cell.
    let mut donor = Client::connect(fleet.addrs()[0]).expect("connect donor");
    let d = donor.query(query(CollectiveKind::Reduce, 16, 1024)).expect("donor query");
    assert_eq!((d.alg, d.policy), (a.alg, a.policy));

    fleet.join_all();
}

/// Killing a shard mid-workload loses zero queries: transport failures
/// retry, the shard is declared dead, and its keys fail over clockwise.
/// Queries owned by surviving shards never move (ring stability).
#[test]
fn shard_kill_recovery_loses_zero_queries() {
    let mut fleet = Fleet::start(FleetConfig { shards: 4, base: base(true) }).expect("fleet start");
    let mut client = FleetClient::new(fleet.addrs().to_vec());

    let kinds = [CollectiveKind::Reduce, CollectiveKind::Allreduce, CollectiveKind::Alltoall];
    let queries: Vec<QueryRequest> =
        (0..30).map(|i| query(kinds[i % kinds.len()], 2 + (i % 15), 1024)).collect();

    // Warm pass with every shard alive.
    for q in &queries {
        client.query(q.clone()).expect("warm pass");
    }

    // Kill the shard owning the first query's key, then re-run everything.
    // Its warm-pass hits die with it: a dead shard's counters drop out of
    // the aggregated stats view, so remember how many that is.
    let victim = client.route(&queries[0]).expect("routed");
    let victim_warm_hits =
        queries.iter().filter(|q| client.route(q) == Some(victim)).count() as u64;
    assert!(fleet.kill_shard(victim));
    let mut failed = 0;
    for q in &queries {
        if client.query(q.clone()).is_err() {
            failed += 1;
        }
        if let Some(s) = client.route(q) {
            assert_ne!(s, victim, "no key may still route to the dead shard");
        }
    }
    assert_eq!(failed, 0, "shard kill must not lose a single query");
    assert!(!client.alive()[victim], "the victim must be marked dead");

    // The client observed the failure path.
    let metrics = client.metrics();
    let count = |name: &str| {
        metrics.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    };
    assert!(count("fleet_client_retries") > 0, "kill must trigger retries");
    assert!(count("fleet_client_failovers") > 0, "kill must trigger failover");
    assert_eq!(count("fleet_client_dead_shards"), 1);

    // Batch path reassembles in input order across the reduced fleet.
    let results = client.query_batch(queries.clone()).expect("batch");
    for (r, q) in results.iter().zip(&queries) {
        let a = r.as_ref().expect("no failed slots");
        assert_eq!((a.ranks, a.collective), (q.ranks, q.collective));
    }

    // Aggregated stats span the three survivors: every query of all three
    // passes except the warm-pass hits that died with the victim.
    let agg = client.stats().expect("aggregated stats");
    assert!(
        agg.endpoints.query >= 90 - victim_warm_hits,
        "survivors account for all three passes minus the victim's {} warm hits: {}",
        victim_warm_hits,
        agg.endpoints.query
    );
    assert!(agg.connections >= 3, "one client connection per surviving shard");

    fleet.join_all();
}

/// The event-driven node holds ≥ 1024 concurrent connections on one
/// thread — the scale the thread-per-connection frontend cannot reach —
/// and serves every one of them.
#[test]
fn event_node_sustains_1024_concurrent_connections() {
    const CONNS: usize = 1100;
    let node = FleetNode::start(base(false)).expect("node start");
    let addr = node.local_addr();

    let mut clients: Vec<Client> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        clients.push(Client::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")));
    }
    // Every connection is live and served while all the others stay open.
    for (i, c) in clients.iter_mut().enumerate() {
        c.ping().unwrap_or_else(|e| panic!("ping #{i}: {e}"));
    }
    let stats = clients[0].stats().expect("stats");
    assert!(stats.connections >= CONNS as u64, "accepted {}", stats.connections);
    assert_eq!(stats.endpoints.ping, CONNS as u64);

    drop(clients);
    node.stop();
    node.join();
}
