//! Property tests pinning the consistent-hash ring's stability guarantees
//! under shard-set changes — the contract client failover depends on.

use pap_fleet::Ring;
use proptest::prelude::*;

fn machines() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("simcluster".to_string()),
        Just("hydra".to_string()),
        Just("galileo100".to_string()),
        Just("discoverer".to_string()),
    ]
}

fn collectives() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("reduce".to_string()),
        Just("allreduce".to_string()),
        Just("bcast".to_string()),
        Just("alltoall".to_string()),
        Just("allgather".to_string()),
    ]
}

proptest! {
    /// Removing one shard re-maps ONLY the keys it owned; every key owned
    /// by a surviving shard keeps its owner. This is what makes a shard
    /// kill cost one failover for its own keys and zero for the rest.
    #[test]
    fn removing_a_shard_only_remaps_its_own_keys(
        shards in 2usize..9,
        dead_seed in 0usize..100,
        keys in proptest::collection::vec((machines(), collectives(), 2usize..4096), 1..60),
    ) {
        let ring = Ring::new(shards);
        let dead = dead_seed % shards;
        let all = vec![true; shards];
        let mut alive = all.clone();
        alive[dead] = false;
        for (m, c, ranks) in &keys {
            let before = ring.route_filtered(m, c, *ranks, &all).unwrap();
            let after = ring.route_filtered(m, c, *ranks, &alive).unwrap();
            if before == dead {
                prop_assert!(after != dead, "keys of the dead shard must move off it");
            } else {
                prop_assert_eq!(before, after, "a surviving shard's key moved");
            }
        }
    }

    /// Failover order is a permutation of all shards starting at the
    /// owner, and routing under any live set equals the first live entry
    /// of that order — so client-side retry walks exactly the ring.
    #[test]
    fn failover_order_is_consistent_with_filtered_routing(
        shards in 1usize..9,
        alive_mask in 1u32..512,
        m in machines(),
        c in collectives(),
        ranks in 2usize..4096,
    ) {
        let ring = Ring::new(shards);
        let order = ring.failover_order(&m, &c, ranks);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
        prop_assert_eq!(order[0], ring.route(&m, &c, ranks).unwrap());

        let alive: Vec<bool> = (0..shards).map(|s| alive_mask & (1 << s) != 0).collect();
        let expect = order.iter().copied().find(|&s| alive[s]);
        prop_assert_eq!(ring.route_filtered(&m, &c, ranks, &alive), expect);
    }
}
