//! Deterministic ordered fan-out over OS threads.
//!
//! The sweep, tuner and figure pipelines are embarrassingly parallel: a grid
//! of independent simulation runs whose outputs are combined by *index*, not
//! by completion order. [`par_map`] runs such a grid across a pool of scoped
//! threads and returns results in input order, so callers that derive any
//! per-item randomness from the item index produce byte-identical output at
//! every thread count.
//!
//! Thread count resolution, highest priority first:
//! 1. [`set_threads`] (e.g. from `papctl --threads N`),
//! 2. the `PAP_THREADS` environment variable,
//! 3. all available cores.
//!
//! A value of 1 forces the plain sequential loop (no threads spawned).
//! Nested [`par_map`] calls from inside a worker run sequentially, so outer
//! parallelism (e.g. the tuner's kind × size grid) is not multiplied by
//! inner parallelism (each cell's sweep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `PAP_THREADS` / core-count default.
static DEFAULT: OnceLock<usize> = OnceLock::new();

std::thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Set the global thread count (1 forces sequential execution).
///
/// Takes priority over `PAP_THREADS` and the core count.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// The thread count [`par_map`] will use at top level.
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("PAP_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("warning: ignoring invalid PAP_THREADS={v:?}");
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// True when called from inside a [`par_map`] worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Apply `f(index, &item)` to every item, returning results in input order.
///
/// Runs on [`threads`] scoped threads pulling indices from a shared counter;
/// sequential when the thread count is 1, the input has fewer than 2 items,
/// or the caller is itself a worker. A panic in `f` propagates.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 || in_worker() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // join() re-raises worker panics on the caller.
            for (i, v) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("par_map slot unfilled")).collect()
}

/// [`par_map`] over an index range instead of a slice.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global thread-count override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_at_any_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        for n in [1, 2, 7] {
            set_threads(n);
            assert_eq!(par_map(&items, |_, x| x.wrapping_mul(0x9E37_79B9)), seq);
        }
        set_threads(1);
    }

    #[test]
    fn nested_calls_run_sequentially() {
        let _guard = LOCK.lock().unwrap();
        set_threads(4);
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |_, &i| {
            assert!(in_worker());
            let inner: Vec<usize> = (0..4).collect();
            par_map(&inner, |_, &j| i * 10 + j)
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        set_threads(1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, x| *x).is_empty());
        assert_eq!(par_map(&[42u32], |_, x| *x), vec![42]);
        assert_eq!(par_map_range(3, |i| i * i), vec![0, 1, 4]);
    }
}
